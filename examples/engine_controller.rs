//! A full engine-controller task combining every design-level annotation
//! kind the paper's Section 4.3 proposes: operating modes, device-length
//! loop bounds, error budgets, a function-pointer dispatch table, and a
//! recursion-depth bound — analyzed as one system.
//!
//! ```sh
//! cargo run --example engine_controller
//! ```

use wcet_predictability::core::analyzer::{AnalyzerConfig, WcetAnalyzer};
use wcet_predictability::guidelines::annot::AnnotationSet;
use wcet_predictability::isa::asm::assemble;
use wcet_predictability::isa::image::Segment;
use wcet_predictability::isa::interp::{Interpreter, MachineConfig};
use wcet_predictability::isa::Addr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The controller: read mode + state from the sensor block, dispatch
    // the state handler through a table, drain the command mailbox, check
    // two fault flags (each able to trigger a recovery routine that
    // retries recursively), then actuate.
    let mut image = assemble(
        r#"
        .org 0x1000
        .equ SENSORS 0xf0000000
        .equ MAILBOX 0x8000
        main:
            li   r1, SENSORS
            lw   r2, 0(r1)          # operating mode: 0 = idle, 1 = running
            lw   r3, 4(r1)          # automaton state (0..3)
            # clamp + dispatch through the handler table
            li   r4, 4
            bltu r3, r4, ok
            li   r3, 0
        ok: shli r3, r3, 2
            li   r5, 0x6000
            add  r5, r5, r3
            lw   r6, 0(r5)
            callr r6
            # mode split: running mode drains the mailbox
            beq  r2, r0, idle_path
        running:
            lw   r7, 8(r1)          # pending command count (device!)
            li   r8, MAILBOX
        drain:
            beq  r7, r0, faults
            lw   r9, 0(r8)
            addi r8, r8, 4
            subi r7, r7, 1
            j    drain
        idle_path:
            addi r12, r12, 1        # bookkeeping only
        faults:
            lw   r9, 12(r1)         # fault flag A
            beq  r9, r0, fb
        fa_err:
            li   r1, 2              # retry budget
            call retry
            li   r1, SENSORS
        fb: lw   r9, 16(r1)         # fault flag B
            beq  r9, r0, act
        fb_err:
            li   r1, 2
            call retry
            li   r1, SENSORS
        act:
            li   r10, 0xf0000020
            sw   r12, 0(r10)        # actuator write (MMIO)
            halt

        # recovery: retries itself until the budget is exhausted
        retry:
            beq  r1, r0, retry_done
            subi sp, sp, 4
            sw   lr, 0(sp)
            li   r11, 6
        retry_work:
            mul  r13, r11, r11
            subi r11, r11, 1
            bne  r11, r0, retry_work
            subi r1, r1, 1
            call retry
            lw   lr, 0(sp)
            addi sp, sp, 4
        retry_done:
            ret

        handler0: addi r12, r12, 1
                  ret
        handler1: li   r11, 3
        h1w:      addi r12, r12, 2
                  subi r11, r11, 1
                  bne  r11, r0, h1w
                  ret
        handler2: li   r11, 8
        h2w:      mul  r12, r12, r12
                  subi r11, r11, 1
                  bne  r11, r0, h2w
                  ret
        handler3: addi r12, r12, 4
                  ret
        "#,
    )?;
    // Link the dispatch table.
    let table: Vec<u32> = (0..4)
        .map(|s| image.symbol(&format!("handler{s}")).expect("handler").0)
        .collect();
    image.data.push(Segment::from_words(Addr(0x6000), &table));

    // Every annotation kind in one file.
    let drain = image.symbol("drain").expect("drain");
    let running = image.symbol("running").expect("running");
    let idle = image.symbol("idle_path").expect("idle_path");
    let fa_err = image.symbol("fa_err").expect("fa_err");
    let fb_err = image.symbol("fb_err").expect("fb_err");
    let retry = image.symbol("retry").expect("retry");
    let annotations = AnnotationSet::parse(&format!(
        "# engine controller design knowledge\n\
         mode idle, running;\n\
         loop {drain} bound 9;\n\
         exclude {running} in mode idle;\n\
         exclude {idle} in mode running;\n\
         sumcount {fa_err}, {fb_err} max 1;\n\
         recursion {retry} depth 3;\n"
    ))?;

    let config = AnalyzerConfig {
        annotations,
        ..AnalyzerConfig::new()
    };
    let report = WcetAnalyzer::with_config(config).analyze(&image)?;

    println!("── engine controller: full design-level analysis ──");
    println!("{}", report.trace);
    println!();
    println!("functions analyzed: {}", report.functions.len());
    for (mode, wcet) in &report.mode_wcet {
        println!(
            "WCET in {:<10} {wcet} cycles",
            mode.as_deref().unwrap_or("(global)")
        );
    }

    // Soundness sweep over design-consistent inputs: every state, both
    // modes, ≤ 8 pending commands, at most one fault.
    println!();
    let mut worst_seen = 0u64;
    for mode in [0u32, 1] {
        for state in 0..4u32 {
            for pending in [0u32, 8] {
                for fault in [(0u32, 0u32), (1, 0), (0, 1)] {
                    let mut interp = Interpreter::with_config(&image, MachineConfig::simple());
                    interp.poke_word(Addr(0xf000_0000), mode);
                    interp.poke_word(Addr(0xf000_0004), state);
                    interp.poke_word(Addr(0xf000_0008), pending);
                    interp.poke_word(Addr(0xf000_000c), fault.0);
                    interp.poke_word(Addr(0xf000_0010), fault.1);
                    let cycles = interp.run(1_000_000)?.cycles;
                    worst_seen = worst_seen.max(cycles);
                    let mode_name = if mode == 0 { "idle" } else { "running" };
                    let bound = report.mode_wcet[&Some(mode_name.to_owned())];
                    assert!(
                        cycles <= bound,
                        "mode {mode_name} state {state}: {cycles} > {bound}"
                    );
                }
            }
        }
    }
    println!(
        "72 design-consistent input combinations executed; worst observed \
         {worst_seen} cycles — all within their mode bounds ✓"
    );
    Ok(())
}
