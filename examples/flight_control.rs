//! Operating-mode analysis of a flight-control task (paper Section 4.3).
//!
//! The paper: "different operating modes … might lead to mutual exclusive
//! execution paths in the software system. By using this knowledge, a
//! static timing analyzer is able to produce much tighter worst-case
//! execution time bounds for each mode of operation separately."
//!
//! ```sh
//! cargo run --example flight_control
//! ```

use wcet_predictability::core::analyzer::{AnalyzerConfig, WcetAnalyzer};
use wcet_predictability::core::workload;
use wcet_predictability::isa::interp::{Interpreter, MachineConfig};
use wcet_predictability::isa::Addr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = workload::flight_control();
    println!("workload: {}", w.description);
    println!();

    // Mode-oblivious analysis first.
    let plain = WcetAnalyzer::new().analyze(&w.image)?;
    println!(
        "mode-oblivious WCET bound:        {} cycles (must cover the air path)",
        plain.wcet_cycles
    );

    // Now with the design-level mode annotations.
    let config = AnalyzerConfig {
        annotations: w.annotations.clone(),
        ..AnalyzerConfig::new()
    };
    let report = WcetAnalyzer::with_config(config).analyze(&w.image)?;
    for (mode, wcet) in &report.mode_wcet {
        let label = mode.as_deref().unwrap_or("(global)");
        println!("WCET bound in mode {label:<10} {wcet} cycles");
    }

    // Measured executions per mode input.
    println!();
    for (mode_value, name) in [(0u32, "ground"), (1, "air")] {
        let mut interp = Interpreter::with_config(&w.image, MachineConfig::simple());
        interp.poke_word(Addr(0xf000_0000), mode_value);
        let cycles = interp.run(1_000_000)?.cycles;
        let bound = report.mode_wcet[&Some(name.to_owned())];
        println!(
            "measured in {name:<6} mode: {cycles:>5} cycles  (mode bound {bound}, sound: {})",
            cycles <= bound
        );
        assert!(cycles <= bound);
    }

    let ground = report.mode_wcet[&Some("ground".to_owned())];
    let global = report.mode_wcet[&None];
    println!();
    println!(
        "documenting the modes tightens the ground-mode budget {:.1}× — \
         schedulability analysis can use the per-mode bounds",
        global as f64 / ground as f64
    );
    Ok(())
}
