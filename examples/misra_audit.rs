//! Audit a corpus of binaries against the MISRA-C:2004 rules the paper
//! analyzes (Section 4.2), with each finding classified by its *actual*
//! impact on static WCET analysis.
//!
//! ```sh
//! cargo run --example misra_audit
//! ```

use wcet_predictability::analysis::analyze_function;
use wcet_predictability::cfg::graph::{reconstruct, TargetResolver};
use wcet_predictability::guidelines::report::PredictabilityReport;
use wcet_predictability::guidelines::rules::check_program;
use wcet_predictability::isa::asm::assemble;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus: Vec<(&str, &str)> = vec![
        (
            "clean counter task",
            "main: li r1, 16\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt",
        ),
        (
            "float-controlled loop (13.4)",
            "main: fmov f0, r0\n li r1, 0x41200000\n fmov f2, r1\nl: fadd f0, f0, f2\n fblt f0, f2, l\n halt",
        ),
        (
            "counter written twice (13.6)",
            "main: li r1, 8\nl: subi r1, r1, 1\n subi r1, r1, 1\n bne r1, r0, l\n halt",
        ),
        (
            "dead code after halt (14.1)",
            "main: li r1, 1\n halt\n nop\n nop\n nop",
        ),
        (
            "goto into a loop body (14.4)",
            "main: beq r1, r0, b\na: subi r2, r2, 1\n j b\nb: addi r2, r2, 1\n bne r2, r0, a\n halt",
        ),
        (
            "continue-style back edge (14.5 — style only)",
            "main: li r1, 9\nh: beq r1, r0, d\n subi r1, r1, 1\n beq r2, r0, h\n subi r2, r2, 1\n j h\nd: halt",
        ),
        (
            "input-dependent loop (16.1)",
            "main: mov r1, r4\nl: subi r1, r1, 1\n bne r1, r0, l\n halt",
        ),
        (
            "indirect recursion (16.2)",
            "main: call f\n halt\nf: beq r1, r0, o\n call g\no: ret\ng: call f\n ret",
        ),
        (
            "heap allocation (20.4)",
            "main: li r1, 64\n alloc r2, r1\n sw r0, 0(r2)\n halt",
        ),
        (
            "longjmp-like indirect jump (20.7)",
            "main: lw r1, 0(r4)\n jr r1",
        ),
        (
            "unresolved function pointer (challenge)",
            "main: callr r4\n halt",
        ),
    ];

    let mut tier1_blocked = 0usize;
    for (name, src) in &corpus {
        let image = assemble(src)?;
        let program = reconstruct(&image, &TargetResolver::empty())?;
        let analyses: Vec<_> = program
            .functions
            .keys()
            .map(|&f| analyze_function(&program, f, &image))
            .collect();
        let report = PredictabilityReport::new(check_program(&image, &program, &analyses));
        println!("─── {name} ───");
        if report.is_clean() {
            println!("  clean: WCET computable without annotations\n");
            continue;
        }
        for finding in report.findings() {
            println!("  {finding}");
        }
        if !report.tier1_clean() {
            tier1_blocked += 1;
            println!("  ⇒ tier-1 BLOCKED: needs design-level annotations");
        } else {
            println!("  ⇒ tier-2 only: WCET computable, precision reduced");
        }
        println!();
    }
    println!(
        "{tier1_blocked}/{} corpus programs cannot be bounded without \
         design-level knowledge — adhering to the guidelines alone \"does \
         not suffice\" (paper, Conclusion)",
        corpus.len()
    );
    Ok(())
}
