//! Regenerate the paper's Table 1: observed iteration counts for
//! `ldivmod` over random inputs.
//!
//! ```sh
//! cargo run --release --example table1            # 10^7 samples
//! cargo run --release --example table1 -- 100000000   # the paper's 10^8
//! ```

use wcet_predictability::arith::histogram::{paper_pathological_inputs, run_table1, Table1Config};
use wcet_predictability::arith::ldivmod::correction_bound;
use wcet_predictability::arith::restoring::restoring_div;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let samples: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(10_000_000);

    println!("Table 1 — observed iteration counts for ldivmod ({samples} random inputs)");
    println!();
    println!("{:<44} {:>14}", "Iteration Counts", "Frequency");
    println!("{:-<60}", "");
    let hist = run_table1(&Table1Config {
        samples,
        ..Table1Config::default()
    });
    for (label, count) in hist.rows() {
        println!("{label:<44} {count:>14}");
    }
    println!("{:-<60}", "");
    println!(
        "one-iteration fraction:   {:>9.4} %   (paper: > 99.8 %)",
        100.0 * hist.one_iteration_fraction()
    );
    println!(
        "0–2-iteration fraction:   {:>9.5} %   (paper: > 99.999 %)",
        100.0 * hist.upto_two_fraction()
    );
    println!(
        "maximum iterations:       {:>9}     (paper: 204)",
        hist.max_iterations
    );

    println!();
    println!("the paper's pathological inputs through our routine:");
    for ((n, d), iters) in paper_pathological_inputs() {
        println!("  ldivmod(0x{n:08x}, 0x{d:08x}) = {iters} iterations");
    }

    println!();
    println!(
        "analytical correction bound for divisors ≥ 2^20: {} iterations",
        correction_bound(1 << 20)
    );
    println!(
        "the WCET-predictable alternative (restoring division) always takes {} iterations",
        restoring_div(12345, 7)?.iterations
    );
    println!();
    println!(
        "\"There seems to be no simple way to derive the number of \
         iterations from given inputs\" — which is exactly why the static \
         analyzer must assume the worst case for every context (paper, \
         Section 4.3)."
    );
    Ok(())
}
