//! Quickstart: assemble an embedded task, run the full Figure 1 analysis
//! pipeline, and compare the WCET bound against measured executions.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use wcet_predictability::core::analyzer::WcetAnalyzer;
use wcet_predictability::isa::asm::assemble;
use wcet_predictability::isa::interp::{Interpreter, MachineConfig};
use wcet_predictability::isa::Reg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small control task: scale 12 sensor samples stored in SRAM.
    let image = assemble(
        r#"
        .org 0x1000
        .equ SAMPLES 0x8000
        main:
            li   r1, SAMPLES
            li   r2, 12             # sample count
        loop:
            lw   r3, 0(r1)
            mul  r3, r3, r3         # square
            shri r3, r3, 4          # scale
            sw   r3, 0(r1)
            addi r1, r1, 4
            subi r2, r2, 1
            bne  r2, r0, loop
            halt
        "#,
    )?;

    // --- static analysis -------------------------------------------------
    let report = WcetAnalyzer::new().analyze(&image)?;
    println!("=== static WCET analysis (Figure 1 pipeline) ===");
    println!("{}", report.trace);
    println!();
    println!("WCET bound: {} cycles", report.wcet_cycles);
    println!("BCET bound: {} cycles", report.bcet_cycles);
    if let Some(guidelines) = &report.guidelines {
        println!("guideline findings: {}", guidelines.findings().len());
    }

    // --- measurement -----------------------------------------------------
    println!();
    println!("=== concrete executions (soundness check) ===");
    for seed in [0u32, 7, 0xffff_ffff] {
        let mut interp = Interpreter::with_config(&image, MachineConfig::simple());
        for i in 0..12u32 {
            interp.poke_word(wcet_predictability::isa::Addr(0x8000 + 4 * i), seed ^ i);
        }
        let outcome = interp.run(1_000_000)?;
        let ok = outcome.cycles <= report.wcet_cycles && outcome.cycles >= report.bcet_cycles;
        println!(
            "input seed 0x{seed:08x}: {} cycles (within [BCET, WCET]: {ok})",
            outcome.cycles
        );
        assert!(ok, "soundness violated");
        // r2 counted down to zero.
        assert_eq!(interp.reg(Reg::new(2)), 0);
    }
    println!();
    println!("every observed run is inside the computed [BCET, WCET] envelope ✓");
    Ok(())
}
