//! Design-level annotations for a CAN-style message handler (paper
//! Section 4.3, "Data-Dependent Algorithms").
//!
//! The handler copies between fixed-size buffers and a device; the copy
//! lengths come from the device (statically unknown) and receive/transmit
//! never happen in the same scheduling cycle. Without that design
//! knowledge the task has no WCET bound at all; with it the bound is
//! tight.
//!
//! ```sh
//! cargo run --example message_handler
//! ```

use wcet_predictability::core::analyzer::{AnalyzerConfig, WcetAnalyzer};
use wcet_predictability::core::workload;
use wcet_predictability::guidelines::annot::AnnotationSet;
use wcet_predictability::isa::interp::{Interpreter, MachineConfig};
use wcet_predictability::isa::Addr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let buf_words = 16;
    let w = workload::message_handler(buf_words);
    println!("workload: {}", w.description);
    println!();

    // 1. No annotations: tier-one failure.
    match WcetAnalyzer::new().analyze(&w.image) {
        Err(e) => println!("without annotations:\n  {e}\n"),
        Ok(_) => unreachable!("device-length loops cannot be bounded automatically"),
    }

    // 2. Buffer sizes only.
    let rx = w.image.symbol("rx_loop").expect("rx_loop");
    let tx = w.image.symbol("tx_loop").expect("tx_loop");
    let bounds_only = AnnotationSet::parse(&format!(
        "loop {rx} bound {buf_words};\nloop {tx} bound {buf_words};"
    ))?;
    let config = AnalyzerConfig {
        annotations: bounds_only,
        ..AnalyzerConfig::new()
    };
    let with_bounds = WcetAnalyzer::with_config(config).analyze(&w.image)?;
    println!(
        "with buffer-size annotations:       WCET = {} cycles (assumes rx AND tx)",
        with_bounds.wcet_cycles
    );

    // 3. Full design knowledge: + rx/tx mutual exclusion.
    let config = AnalyzerConfig {
        annotations: w.annotations.clone(),
        ..AnalyzerConfig::new()
    };
    let full = WcetAnalyzer::with_config(config).analyze(&w.image)?;
    println!(
        "with rx/tx exclusion documented:    WCET = {} cycles",
        full.wcet_cycles
    );
    println!(
        "tightening from the exclusion fact: {:.1} %",
        100.0 * (with_bounds.wcet_cycles - full.wcet_cycles) as f64
            / with_bounds.wcet_cycles as f64
    );

    // 4. Soundness against worst-case-consistent runs.
    println!();
    for (rx_pending, tx_pending, len, label) in [
        (1u32, 0u32, buf_words, "rx, full buffer"),
        (0, 1, buf_words, "tx, full buffer"),
        (0, 0, 0, "idle cycle"),
    ] {
        let mut interp = Interpreter::with_config(&w.image, MachineConfig::simple());
        interp.poke_word(Addr(0xf000_0000), rx_pending);
        interp.poke_word(Addr(0xf000_0004), tx_pending);
        interp.poke_word(Addr(0xf000_0008), len);
        let cycles = interp.run(1_000_000)?.cycles;
        println!(
            "measured ({label:<16}): {cycles:>5} cycles  (bound {}, sound: {})",
            full.wcet_cycles,
            cycles <= full.wcet_cycles
        );
        assert!(cycles <= full.wcet_cycles);
    }
    Ok(())
}
