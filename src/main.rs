//! `wcet` — the command-line front end of the analyzer.
//!
//! ```text
//! wcet <program.s> [options]     analyze an assembly program
//!   --annotations <file>         design-level annotation file (§4.3)
//!   --isa <name>                 instruction-set backend: `house` (the
//!                                default) or `rv32i`; assembly, timing
//!                                model, and the artifact-cache key space
//!                                all follow the selection
//!   --caches                     enable the i/d-cache machine model
//!   --unroll                     virtually unroll loops (context expansion)
//!   --context-depth <k>          analyze one unit per (function, call-string
//!                                of length ≤ k) — VIVU-style context
//!                                sensitivity; default 0 = merged analysis
//!   --persistence                per-context cache persistence analysis:
//!                                callee footprint summaries at calls and
//!                                first-miss classification (one miss per
//!                                activation); needs --caches and
//!                                --context-depth ≥ 1
//!   --pipeline                   abstract in-order pipeline timing with
//!                                static BTFNT branch prediction: block
//!                                costs become retirement deltas over
//!                                bounded residual-latency states and
//!                                mispredicted edges are charged in the
//!                                ILP; with --run the simulated machine
//!                                overlaps stages the same way
//!   --threads <n>                analysis worker threads (default: all
//!                                cores; 1 = sequential; same report either way)
//!   --cache-dir <dir>            persistent artifact cache: unchanged
//!                                functions replay cached analysis results
//!                                (hit statistics go to stderr; stdout is
//!                                byte-identical to an uncached run)
//!   --disasm                     print the disassembly listing
//!   --check-only                 run only the MISRA guideline checker
//!   --run                        also execute and report observed cycles
//! wcet batch <manifest> [opts]   analyze a stream of requests against a
//!                                shared cache; manifest lines are
//!                                `<program.s> [annotations-file]
//!                                [--isa <name>]` (the per-request ISA
//!                                defaults to the CLI-level selector); a
//!                                failing request is reported and skipped,
//!                                and the exit code reflects the failures
//! wcet serve <socket> [opts]     long-lived analysis daemon on a Unix
//!                                socket (or --stdio): batch-manifest
//!                                request lines in, length-prefixed report
//!                                frames out, `@shutdown` to stop
//!   --workers <n>                persistent worker-pool size shared by
//!                                every request (default: all cores)
//!   --max-cache-bytes <size>     GC watermark: when the --cache-dir store
//!                                grows past this, evict LRU artifacts
//!                                (suffixes k/m/g are binary units)
//! wcet gc --cache-dir <dir>      sweep stale temp files and, with
//!        [--max-bytes <size>]    --max-bytes, evict LRU artifacts until
//!                                the store fits under the watermark
//! wcet fuzz [--programs N]       differential fuzzing: generate N random
//!           [--seed S]           programs per ISA (deterministic in S),
//!           [--isa <name>]       check interpreter-observed cycles against
//!                                the analyzer's [BCET, WCET] across the
//!                                whole config matrix, and shrink the first
//!                                violation to a minimal reproducer;
//!                                default: both ISAs
//! wcet --table1 [samples]        regenerate the paper's Table 1
//! wcet --experiments             regenerate every experiment (E1–E16)
//! ```

#![forbid(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use wcet_predictability::core::analyzer::{AnalysisReport, AnalyzerConfig, WcetAnalyzer};
use wcet_predictability::core::experiments;
use wcet_predictability::core::fuzz;
use wcet_predictability::core::incr::{config_fingerprint, ArtifactCache};
use wcet_predictability::core::parallel::{worker_count, WorkerPool};
use wcet_predictability::core::serve::{self, AnalysisService};
use wcet_predictability::guidelines::annot::AnnotationSet;
use wcet_predictability::isa::asm::assemble_for;
use wcet_predictability::isa::disasm::disassemble;
use wcet_predictability::isa::interp::{Interpreter, MachineConfig};
use wcet_predictability::isa::{Image, IsaKind};
use wcet_predictability::render;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("wcet: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Options shared by the single-image, batch, serve, and gc front ends.
#[derive(Default, Clone)]
struct CliOptions {
    annot_path: Option<String>,
    caches: bool,
    unroll: bool,
    show_disasm: bool,
    check_only: bool,
    also_run: bool,
    parallelism: Option<usize>,
    cache_dir: Option<String>,
    context_depth: usize,
    persistence: bool,
    pipeline: bool,
    /// Instruction-set backend; `--isa rv32i` switches assembly,
    /// timing, and the cache key space. Per-request manifest/serve
    /// overrides start from this default.
    isa: IsaKind,
    /// Serve: persistent worker-pool size (falls back to --threads).
    workers: Option<usize>,
    /// Serve/gc: cache-store size watermark triggering LRU eviction.
    max_cache_bytes: Option<u64>,
    /// Serve: speak the frame protocol on stdin/stdout, no socket.
    stdio: bool,
}

impl CliOptions {
    /// These options with a per-request ISA override applied (batch
    /// manifest lines and serve requests may carry `--isa <name>`);
    /// `None` keeps the CLI-level selector.
    fn for_request(&self, isa: Option<IsaKind>) -> CliOptions {
        CliOptions {
            isa: isa.unwrap_or(self.isa),
            ..self.clone()
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print_usage();
        return Ok(());
    }

    if args[0] == "--table1" {
        let samples: u64 = args
            .get(1)
            .map(|s| s.parse().map_err(|_| format!("invalid sample count `{s}`")))
            .transpose()?
            .unwrap_or(10_000_000);
        let e = experiments::e1_table1(samples);
        println!("{e}");
        return Ok(());
    }

    if args[0] == "--experiments" {
        for e in experiments::run_all(1_000_000) {
            println!("{e}\n");
        }
        return Ok(());
    }

    if args[0] == "batch" {
        let (opts, files) = parse_options(&args[1..])?;
        let manifest = match files.as_slice() {
            [one] => one.clone(),
            [] => return Err("batch mode needs a manifest file".to_owned()),
            _ => return Err("batch mode takes exactly one manifest file".to_owned()),
        };
        return run_batch(&manifest, &opts);
    }

    if args[0] == "serve" {
        return run_serve(&args[1..]);
    }

    if args[0] == "gc" {
        return run_gc(&args[1..]);
    }

    if args[0] == "fuzz" {
        return run_fuzz(&args[1..]);
    }

    if args[0] == "fuzz-lp" {
        return run_fuzz_lp(&args[1..]);
    }

    // Single-image analyze mode.
    let (opts, files) = parse_options(&args)?;
    let source_path = match files.as_slice() {
        [one] => one.clone(),
        [] => return Err("no program file given".to_owned()),
        _ => return Err("more than one program file given".to_owned()),
    };
    let image = load_image(&source_path, opts.isa)?;
    let annotations = load_annotations(opts.annot_path.as_deref())?;

    if opts.show_disasm {
        println!("── disassembly ──");
        println!("{}", disassemble(&image).map_err(|e| e.to_string())?);
    }

    let mut cache = open_cache(opts.cache_dir.as_deref())?;
    let (report, machine) = analyze_one(&image, annotations, &opts, cache.as_mut(), None)?;
    if let Some(stats) = &report.incr {
        eprintln!("wcet: {stats}{}", lp_stats_suffix(&report));
    }

    print!("{}", compose_report(&image, &report, opts.check_only));
    if opts.check_only && report.guidelines.is_some() {
        return Ok(());
    }

    if opts.also_run {
        let mut interp = Interpreter::with_config(&image, machine);
        let outcome = interp
            .run(100_000_000)
            .map_err(|e| format!("execution: {e}"))?;
        println!();
        println!(
            "observed execution: {} cycles ({} instructions) — within bounds: {}",
            outcome.cycles,
            outcome.instructions,
            outcome.cycles <= report.wcet_cycles && outcome.cycles >= report.bcet_cycles
        );
    }
    Ok(())
}

/// Analyzes a manifest of `<program.s> [annotations] [--isa <name>]`
/// requests against a shared artifact cache — the service-shaped entry point: most requests
/// in a stream are small deltas, and the cache turns them into replays.
///
/// Failures are isolated per request: a bad path, unparseable image, or
/// malformed annotation file is reported on stderr and the stream
/// continues — one poison request cannot abort a certification batch.
/// The exit code still reflects them: any failed request turns the whole
/// run into an error carrying the failure count.
fn run_batch(manifest_path: &str, opts: &CliOptions) -> Result<(), String> {
    let manifest = std::fs::read_to_string(manifest_path)
        .map_err(|e| format!("cannot read {manifest_path}: {e}"))?;
    let manifest_dir = std::path::Path::new(manifest_path)
        .parent()
        .map(std::path::Path::to_path_buf)
        .unwrap_or_default();
    let mut cache = open_cache(opts.cache_dir.as_deref())?;
    // One persistent pool for the whole stream — every request's
    // per-function fan-outs share it instead of spawning fresh threads.
    let pool = Arc::new(WorkerPool::new(worker_count(
        opts.workers.or(opts.parallelism),
    )));

    let mut requests = 0usize;
    let mut failures = 0usize;
    let mut total_fn_hits = 0usize;
    let mut total_fns = 0usize;
    for (idx, raw) in manifest.lines().enumerate() {
        let mut outcome = || -> Result<(), String> {
            // Manifest lines share the serve request grammar, so batch
            // and serve can never drift apart on `--isa` or comments.
            let (program, annot, isa) = match serve::parse_request_line(raw) {
                serve::RequestLine::Empty => return Ok(()),
                serve::RequestLine::Shutdown => {
                    return Err("`@shutdown` is a serve control line, not a batch request".into())
                }
                serve::RequestLine::Malformed { message } => return Err(message),
                serve::RequestLine::Analyze {
                    program,
                    annotations,
                    isa,
                } => (program, annotations, isa),
            };
            // Paths resolve relative to the manifest, so a request file
            // can ship next to its programs.
            let resolve = |p: &std::path::Path| {
                if p.is_absolute() || manifest_dir.as_os_str().is_empty() {
                    p.to_string_lossy().into_owned()
                } else {
                    manifest_dir.join(p).to_string_lossy().into_owned()
                }
            };
            let program = resolve(&program);
            let annot = annot.as_deref().map(resolve);

            let request_opts = opts.for_request(isa);
            let image = load_image(&program, request_opts.isa)?;
            let annotations = load_annotations(annot.as_deref())?;
            let (report, _) = analyze_one(
                &image,
                annotations,
                &request_opts,
                cache.as_mut(),
                Some(&pool),
            )?;

            requests += 1;
            println!("── batch: {program} ──");
            print!("{}", render::render_report(&image, &report));
            println!();
            if let Some(stats) = &report.incr {
                eprintln!("wcet: {program}: {stats}{}", lp_stats_suffix(&report));
                total_fn_hits += stats.fn_hits;
                total_fns += stats.functions;
            }
            Ok(())
        };
        if let Err(error) = outcome() {
            failures += 1;
            eprintln!("wcet: {manifest_path}:{}: {error}", idx + 1);
        }
    }
    if requests == 0 && failures == 0 {
        return Err(format!("{manifest_path}: no requests in manifest"));
    }
    if opts.cache_dir.is_some() {
        eprintln!(
            "wcet: batch done: {requests} request(s), {total_fn_hits}/{total_fns} \
             function artifact(s) served from cache"
        );
    }
    if failures > 0 {
        return Err(format!(
            "batch: {failures} of {} request(s) failed",
            requests + failures
        ));
    }
    Ok(())
}

fn parse_options(args: &[String]) -> Result<(CliOptions, Vec<String>), String> {
    let mut opts = CliOptions::default();
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--annotations" => {
                opts.annot_path = Some(
                    it.next()
                        .ok_or_else(|| "--annotations needs a file".to_owned())?
                        .clone(),
                );
            }
            "--threads" => {
                let raw = it
                    .next()
                    .ok_or_else(|| "--threads needs a count".to_owned())?;
                let n: usize = raw
                    .parse()
                    .map_err(|_| format!("invalid thread count `{raw}`"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_owned());
                }
                opts.parallelism = Some(n);
            }
            "--isa" => {
                let raw = it.next().ok_or_else(|| "--isa needs a name".to_owned())?;
                opts.isa = IsaKind::parse(raw).ok_or_else(|| {
                    format!("unknown ISA `{raw}` (expected one of: house, rv32i)")
                })?;
            }
            "--cache-dir" => {
                opts.cache_dir = Some(
                    it.next()
                        .ok_or_else(|| "--cache-dir needs a directory".to_owned())?
                        .clone(),
                );
            }
            "--context-depth" => {
                let raw = it
                    .next()
                    .ok_or_else(|| "--context-depth needs a depth".to_owned())?;
                opts.context_depth = raw
                    .parse()
                    .map_err(|_| format!("invalid context depth `{raw}`"))?;
            }
            "--workers" => {
                let raw = it
                    .next()
                    .ok_or_else(|| "--workers needs a count".to_owned())?;
                let n: usize = raw
                    .parse()
                    .map_err(|_| format!("invalid worker count `{raw}`"))?;
                if n == 0 {
                    return Err("--workers must be at least 1".to_owned());
                }
                opts.workers = Some(n);
            }
            "--max-cache-bytes" | "--max-bytes" => {
                let raw = it.next().ok_or_else(|| format!("{arg} needs a size"))?;
                opts.max_cache_bytes = Some(parse_byte_size(raw)?);
            }
            "--stdio" => opts.stdio = true,
            "--caches" => opts.caches = true,
            "--persistence" => opts.persistence = true,
            "--pipeline" => opts.pipeline = true,
            "--unroll" => opts.unroll = true,
            "--disasm" => opts.show_disasm = true,
            "--check-only" => opts.check_only = true,
            "--run" => opts.also_run = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}` (try --help)"));
            }
            path => files.push(path.to_owned()),
        }
    }
    if opts.persistence {
        // The persistence analysis lives in the context-sensitive
        // pipeline and classifies against the cache model; without
        // either it would silently change nothing.
        if !opts.caches {
            return Err("--persistence requires --caches (there is no cache to persist in)".into());
        }
        if opts.context_depth == 0 {
            return Err(
                "--persistence requires --context-depth 1 or higher (it runs in the \
                 context-sensitive pipeline)"
                    .into(),
            );
        }
    }
    Ok((opts, files))
}

/// Renders the LP-solver effort of one run as a stderr suffix, empty
/// when the run did no solver work (cached replays, trivial programs) —
/// the cache/incremental stat lines stay byte-identical in that case.
fn lp_stats_suffix(report: &AnalysisReport) -> String {
    let trace = &report.trace;
    let mut suffix = String::new();
    if trace.lp_pivots > 0 {
        suffix.push_str(&format!(", {} LP pivot(s)", trace.lp_pivots));
    }
    if trace.lp_refactorizations > 0 {
        suffix.push_str(&format!(
            ", {} refactorization(s)",
            trace.lp_refactorizations
        ));
    }
    if trace.lp_presolve_removed > 0 {
        suffix.push_str(&format!(", {} presolved away", trace.lp_presolve_removed));
    }
    suffix
}

fn load_image(source_path: &str, isa: IsaKind) -> Result<Image, String> {
    let source = std::fs::read_to_string(source_path)
        .map_err(|e| format!("cannot read {source_path}: {e}"))?;
    assemble_for(isa, &source).map_err(|e| format!("{source_path}: {e}"))
}

fn load_annotations(path: Option<&str>) -> Result<AnnotationSet, String> {
    match path {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            AnnotationSet::parse(&text).map_err(|e| format!("{path}: {e}"))
        }
        None => Ok(AnnotationSet::new()),
    }
}

fn open_cache(dir: Option<&str>) -> Result<Option<ArtifactCache>, String> {
    match dir {
        Some(dir) => ArtifactCache::open(dir)
            .map(Some)
            .map_err(|e| format!("cannot open cache directory {dir}: {e}")),
        None => Ok(None),
    }
}

/// The analyzer configuration (and its machine model) one set of CLI
/// options describes — shared by the single-shot, batch, and serve paths
/// so their reports (and the serve dedup fingerprint) can never diverge.
fn analyzer_config(
    opts: &CliOptions,
    annotations: AnnotationSet,
) -> (AnalyzerConfig, MachineConfig) {
    let mut machine = if opts.caches {
        MachineConfig::with_caches_for(opts.isa)
    } else {
        MachineConfig::simple_for(opts.isa)
    };
    // The analysis flag and the simulated machine move together, so
    // `--run` observations stay comparable to the reported interval.
    machine.pipeline = opts.pipeline;
    let config = AnalyzerConfig {
        machine: machine.clone(),
        annotations,
        unrolling: opts.unroll,
        parallelism: opts.parallelism,
        context_depth: opts.context_depth,
        persistence: opts.persistence,
        pipeline: opts.pipeline,
        isa: opts.isa,
        ..AnalyzerConfig::new()
    };
    (config, machine)
}

fn analyze_one(
    image: &Image,
    annotations: AnnotationSet,
    opts: &CliOptions,
    cache: Option<&mut ArtifactCache>,
    pool: Option<&Arc<WorkerPool>>,
) -> Result<(AnalysisReport, MachineConfig), String> {
    let (config, machine) = analyzer_config(opts, annotations);
    let mut analyzer = WcetAnalyzer::with_config(config);
    if let Some(pool) = pool {
        analyzer = analyzer.with_pool(Arc::clone(pool));
    }
    let report = match cache {
        Some(cache) => analyzer.analyze_incremental(image, cache),
        None => analyzer.analyze(image),
    }
    .map_err(|e| e.to_string())?;
    Ok((report, machine))
}

/// Renders one analysis exactly as single-shot `wcet` prints it to
/// stdout — guideline findings, blank separator, analysis body (stopping
/// after the findings under `--check-only`). The serve handler returns
/// this same composition, which is what makes serve responses
/// byte-identical to single-shot runs.
fn compose_report(image: &Image, report: &AnalysisReport, check_only: bool) -> String {
    let mut out = render::render_guidelines(report);
    if report.guidelines.is_some() {
        out.push('\n');
        if check_only {
            return out;
        }
    }
    out.push_str(&render::render_analysis(image, report));
    out
}

/// Parses a byte-size argument: a plain byte count, or binary-unit
/// suffixes `k`, `m`, `g` (case-insensitive), e.g. `64m` = 64 MiB.
fn parse_byte_size(raw: &str) -> Result<u64, String> {
    let lower = raw.trim().to_ascii_lowercase();
    let (digits, unit) = if let Some(n) = lower.strip_suffix('k') {
        (n, 1u64 << 10)
    } else if let Some(n) = lower.strip_suffix('m') {
        (n, 1 << 20)
    } else if let Some(n) = lower.strip_suffix('g') {
        (n, 1 << 30)
    } else {
        (lower.as_str(), 1)
    };
    digits
        .parse::<u64>()
        .ok()
        .and_then(|v| v.checked_mul(unit))
        .ok_or_else(|| format!("invalid size `{raw}` (expected bytes or k/m/g suffix)"))
}

/// Builds the shared [`AnalysisService`]: one persistent worker pool plus
/// a handler that runs the full load → analyze → render path per request,
/// opening the shared `--cache-dir` store per request (the disk store is
/// shared; the in-memory maps are not, so concurrent connections never
/// serialize on one cache handle) and triggering the GC watermark.
fn build_service(opts: &CliOptions) -> Result<AnalysisService, String> {
    // Surface a bad cache directory at startup, not on every request.
    open_cache(opts.cache_dir.as_deref())?;
    let pool = Arc::new(WorkerPool::new(worker_count(
        opts.workers.or(opts.parallelism),
    )));
    // The dedup key's config half: annotations ride per-request, so they
    // are hashed by the service from the annotation file bytes instead.
    let (config, _) = analyzer_config(opts, AnnotationSet::new());
    let fingerprint = config_fingerprint(&config);
    let opts = opts.clone();
    let handler = move |program: &Path,
                        annotations: Option<&Path>,
                        isa: Option<IsaKind>|
          -> Result<String, String> {
        let opts = opts.for_request(isa);
        let image = load_image(&program.to_string_lossy(), opts.isa)?;
        let annot_path = annotations.map(|p| p.to_string_lossy().into_owned());
        let annotations = load_annotations(annot_path.as_deref())?;
        let mut cache = open_cache(opts.cache_dir.as_deref())?;
        let (report, _) = analyze_one(&image, annotations, &opts, cache.as_mut(), Some(&pool))?;
        if let Some(stats) = &report.incr {
            eprintln!(
                "wcet: {}: {stats}{}",
                program.display(),
                lp_stats_suffix(&report)
            );
        }
        if let (Some(cache), Some(max)) = (cache.as_mut(), opts.max_cache_bytes) {
            // Best-effort watermark check; a failed GC degrades to an
            // unbounded cache, never to a failed request.
            if cache.disk_bytes().is_ok_and(|bytes| bytes > max) {
                match cache.gc(max) {
                    Ok(stats) => eprintln!("wcet: {stats}"),
                    Err(error) => eprintln!("wcet: gc failed: {error}"),
                }
            }
        }
        Ok(compose_report(&image, &report, opts.check_only))
    };
    Ok(AnalysisService::new(fingerprint, Box::new(handler)))
}

/// `wcet serve`: the long-lived analysis daemon. Request paths resolve
/// relative to the daemon's working directory.
fn run_serve(args: &[String]) -> Result<(), String> {
    let (opts, files) = parse_options(args)?;
    let socket = match (opts.stdio, files.as_slice()) {
        (true, []) => None,
        (true, _) => return Err("serve --stdio takes no socket path".to_owned()),
        (false, [one]) => Some(one.clone()),
        (false, []) => return Err("serve needs a socket path (or --stdio)".to_owned()),
        (false, _) => return Err("serve takes exactly one socket path".to_owned()),
    };
    let service = Arc::new(build_service(&opts)?);
    match socket {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let stats = serve::serve_connection(&service, stdin.lock(), stdout.lock())
                .map_err(|e| format!("serve: {e}"))?;
            eprintln!(
                "wcet serve: done: {} request(s), {} failure(s), {} deduped",
                stats.requests,
                stats.failures,
                service.dedup_hits()
            );
        }
        Some(path) => {
            let summary = serve::serve_unix(&service, Path::new(&path), || {
                eprintln!("wcet serve: listening on {path}");
            })
            .map_err(|e| format!("serve: {e}"))?;
            eprintln!(
                "wcet serve: shutdown: {} connection(s), {} request(s), {} failure(s), {} deduped",
                summary.connections,
                summary.requests,
                summary.failures,
                service.dedup_hits()
            );
        }
    }
    // Per-request failures were answered with `err` frames — a clean
    // shutdown is a success for the daemon itself.
    Ok(())
}

/// `wcet fuzz`: the differential-fuzzing campaign (see `wcet_core::fuzz`).
/// Deterministic in `--seed`: a CI failure replays locally with the same
/// seed and program count.
fn run_fuzz(args: &[String]) -> Result<(), String> {
    let mut opts = fuzz::FuzzOptions {
        programs: 500,
        progress_every: 100,
        ..fuzz::FuzzOptions::default()
    };
    let mut isa_override = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--programs" => {
                let raw = value("--programs")?;
                opts.programs = raw
                    .parse()
                    .map_err(|_| format!("invalid program count `{raw}`"))?;
            }
            "--seed" => {
                let raw = value("--seed")?;
                opts.seed = raw.parse().map_err(|_| format!("invalid seed `{raw}`"))?;
            }
            "--isa" => {
                let raw = value("--isa")?;
                isa_override = Some(IsaKind::parse(&raw).ok_or_else(|| {
                    format!("unknown ISA `{raw}` (expected one of: house, rv32i)")
                })?);
            }
            other => return Err(format!("unknown fuzz option `{other}`")),
        }
    }
    if let Some(isa) = isa_override {
        opts.isas = vec![isa];
    }
    let isa_names: Vec<&str> = opts.isas.iter().map(|i| i.name()).collect();
    eprintln!(
        "wcet fuzz: {} program(s) per ISA [{}], seed {}",
        opts.programs,
        isa_names.join(", "),
        opts.seed
    );
    let report = fuzz::run_campaign(&opts);
    match report.failure {
        None => {
            eprintln!(
                "wcet fuzz: {} program(s) checked across {} analyzer configs — no violations",
                report.programs_checked,
                fuzz::MATRIX.len()
            );
            Ok(())
        }
        Some(failure) => Err(format!("{failure}")),
    }
}

/// `wcet fuzz-lp`: the differential LP campaign — random models through
/// the sparse LU/eta engine (with and without presolve) against the
/// dense tableau oracle, plus warm-restart fixpoint checks. See
/// `wcet_ilp::fuzz` for the invariants.
fn run_fuzz_lp(args: &[String]) -> Result<(), String> {
    use wcet_predictability::ilp::fuzz as lp_fuzz;

    let mut opts = lp_fuzz::LpFuzzOptions {
        progress_every: 250,
        ..lp_fuzz::LpFuzzOptions::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--models" => {
                let raw = value("--models")?;
                opts.models = raw
                    .parse()
                    .map_err(|_| format!("invalid model count `{raw}`"))?;
            }
            "--seed" => {
                let raw = value("--seed")?;
                opts.seed = raw.parse().map_err(|_| format!("invalid seed `{raw}`"))?;
            }
            other => return Err(format!("unknown fuzz-lp option `{other}`")),
        }
    }
    eprintln!("wcet fuzz-lp: {} model(s), seed {}", opts.models, opts.seed);
    let report = lp_fuzz::run_campaign(&opts);
    match report.failure {
        None => {
            eprintln!(
                "wcet fuzz-lp: {} model(s) checked against the dense oracle — no disagreements",
                report.models_checked
            );
            Ok(())
        }
        Some(failure) => Err(format!("fuzz-lp: {failure}")),
    }
}

/// `wcet gc`: one offline GC pass over a cache directory. Without
/// `--max-bytes` it only sweeps stale temp files.
fn run_gc(args: &[String]) -> Result<(), String> {
    let (opts, files) = parse_options(args)?;
    if !files.is_empty() {
        return Err("gc takes no positional arguments (use --cache-dir)".to_owned());
    }
    let Some(cache) = open_cache(opts.cache_dir.as_deref())? else {
        return Err("gc needs --cache-dir <dir>".to_owned());
    };
    let mut cache = cache;
    let stats = cache
        .gc(opts.max_cache_bytes.unwrap_or(u64::MAX))
        .map_err(|e| format!("gc: {e}"))?;
    println!("{stats}");
    Ok(())
}

fn print_usage() {
    println!(
        "wcet — static WCET analyzer (reproduction of 'Software Structure \
         and WCET Predictability', PPES/DATE 2011)\n\n\
         usage:\n  wcet <program.s> [--annotations <file>] [--isa <name>] \
         [--caches] [--unroll] [--context-depth <k>] [--persistence] \
         [--pipeline] [--threads <n>] [--cache-dir <dir>] [--disasm] \
         [--check-only] [--run]\n  \
         wcet batch <manifest> [--cache-dir <dir>] [--isa <name>] [--caches] \
         [--unroll] [--context-depth <k>] [--persistence] [--pipeline] \
         [--threads <n>]\n  \
         wcet serve <socket> | --stdio [--cache-dir <dir>] [--workers <n>] \
         [--max-cache-bytes <size>] [analysis options]\n  \
         wcet gc --cache-dir <dir> [--max-bytes <size>]\n  \
         wcet fuzz [--programs <n>] [--seed <s>] [--isa <name>]\n  \
         wcet fuzz-lp [--models <n>] [--seed <s>]\n  \
         wcet --table1 [samples]\n  wcet --experiments\n  wcet --help"
    );
}
