//! `wcet` — the command-line front end of the analyzer.
//!
//! ```text
//! wcet <program.s> [options]     analyze an assembly program
//!   --annotations <file>         design-level annotation file (§4.3)
//!   --caches                     enable the i/d-cache machine model
//!   --unroll                     virtually unroll loops (context expansion)
//!   --context-depth <k>          analyze one unit per (function, call-string
//!                                of length ≤ k) — VIVU-style context
//!                                sensitivity; default 0 = merged analysis
//!   --persistence                per-context cache persistence analysis:
//!                                callee footprint summaries at calls and
//!                                first-miss classification (one miss per
//!                                activation); needs --caches and
//!                                --context-depth ≥ 1
//!   --threads <n>                analysis worker threads (default: all
//!                                cores; 1 = sequential; same report either way)
//!   --cache-dir <dir>            persistent artifact cache: unchanged
//!                                functions replay cached analysis results
//!                                (hit statistics go to stderr; stdout is
//!                                byte-identical to an uncached run)
//!   --disasm                     print the disassembly listing
//!   --check-only                 run only the MISRA guideline checker
//!   --run                        also execute and report observed cycles
//! wcet batch <manifest> [opts]   analyze a stream of requests against a
//!                                shared cache; manifest lines are
//!                                `<program.s> [annotations-file]`
//! wcet --table1 [samples]        regenerate the paper's Table 1
//! wcet --experiments             regenerate every experiment (E1–E16)
//! ```

use std::process::ExitCode;

use wcet_predictability::core::analyzer::{AnalysisReport, AnalyzerConfig, WcetAnalyzer};
use wcet_predictability::core::experiments;
use wcet_predictability::core::incr::ArtifactCache;
use wcet_predictability::guidelines::annot::AnnotationSet;
use wcet_predictability::isa::asm::assemble;
use wcet_predictability::isa::disasm::disassemble;
use wcet_predictability::isa::interp::{Interpreter, MachineConfig};
use wcet_predictability::isa::Image;
use wcet_predictability::render;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("wcet: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Options shared by the single-image and batch front ends.
#[derive(Default)]
struct CliOptions {
    annot_path: Option<String>,
    caches: bool,
    unroll: bool,
    show_disasm: bool,
    check_only: bool,
    also_run: bool,
    parallelism: Option<usize>,
    cache_dir: Option<String>,
    context_depth: usize,
    persistence: bool,
}

fn run(args: Vec<String>) -> Result<(), String> {
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print_usage();
        return Ok(());
    }

    if args[0] == "--table1" {
        let samples: u64 = args
            .get(1)
            .map(|s| s.parse().map_err(|_| format!("invalid sample count `{s}`")))
            .transpose()?
            .unwrap_or(10_000_000);
        let e = experiments::e1_table1(samples);
        println!("{e}");
        return Ok(());
    }

    if args[0] == "--experiments" {
        for e in experiments::run_all(1_000_000) {
            println!("{e}\n");
        }
        return Ok(());
    }

    if args[0] == "batch" {
        let (opts, files) = parse_options(&args[1..])?;
        let manifest = match files.as_slice() {
            [one] => one.clone(),
            [] => return Err("batch mode needs a manifest file".to_owned()),
            _ => return Err("batch mode takes exactly one manifest file".to_owned()),
        };
        return run_batch(&manifest, &opts);
    }

    // Single-image analyze mode.
    let (opts, files) = parse_options(&args)?;
    let source_path = match files.as_slice() {
        [one] => one.clone(),
        [] => return Err("no program file given".to_owned()),
        _ => return Err("more than one program file given".to_owned()),
    };
    let image = load_image(&source_path)?;
    let annotations = load_annotations(opts.annot_path.as_deref())?;

    if opts.show_disasm {
        println!("── disassembly ──");
        println!("{}", disassemble(&image).map_err(|e| e.to_string())?);
    }

    let mut cache = open_cache(opts.cache_dir.as_deref())?;
    let (report, machine) = analyze_one(&image, annotations, &opts, cache.as_mut())?;
    if let Some(stats) = &report.incr {
        eprintln!("wcet: {stats}");
    }

    print!("{}", render::render_guidelines(&report));
    if report.guidelines.is_some() {
        println!();
        if opts.check_only {
            return Ok(());
        }
    }
    print!("{}", render::render_analysis(&image, &report));

    if opts.also_run {
        let mut interp = Interpreter::with_config(&image, machine);
        let outcome = interp
            .run(100_000_000)
            .map_err(|e| format!("execution: {e}"))?;
        println!();
        println!(
            "observed execution: {} cycles ({} instructions) — within bounds: {}",
            outcome.cycles,
            outcome.instructions,
            outcome.cycles <= report.wcet_cycles && outcome.cycles >= report.bcet_cycles
        );
    }
    Ok(())
}

/// Analyzes a manifest of `<program.s> [annotations]` requests against a
/// shared artifact cache — the service-shaped entry point: most requests
/// in a stream are small deltas, and the cache turns them into replays.
fn run_batch(manifest_path: &str, opts: &CliOptions) -> Result<(), String> {
    let manifest = std::fs::read_to_string(manifest_path)
        .map_err(|e| format!("cannot read {manifest_path}: {e}"))?;
    let manifest_dir = std::path::Path::new(manifest_path)
        .parent()
        .map(std::path::Path::to_path_buf)
        .unwrap_or_default();
    let mut cache = open_cache(opts.cache_dir.as_deref())?;

    let mut requests = 0usize;
    let mut total_fn_hits = 0usize;
    let mut total_fns = 0usize;
    for (idx, raw) in manifest.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let program = parts.next().expect("nonempty line");
        let annot = parts.next();
        if parts.next().is_some() {
            return Err(format!(
                "{manifest_path}:{}: expected `<program.s> [annotations]`",
                idx + 1
            ));
        }
        // Paths resolve relative to the manifest, so a request file can
        // ship next to its programs.
        let resolve = |p: &str| {
            let as_path = std::path::Path::new(p);
            if as_path.is_absolute() || manifest_dir.as_os_str().is_empty() {
                p.to_owned()
            } else {
                manifest_dir.join(as_path).to_string_lossy().into_owned()
            }
        };
        let program = resolve(program);
        let annot = annot.map(resolve);

        let image = load_image(&program)?;
        let annotations = load_annotations(annot.as_deref())?;
        let (report, _) = analyze_one(&image, annotations, opts, cache.as_mut())?;

        requests += 1;
        println!("── batch: {program} ──");
        print!("{}", render::render_report(&image, &report));
        println!();
        if let Some(stats) = &report.incr {
            eprintln!("wcet: {program}: {stats}");
            total_fn_hits += stats.fn_hits;
            total_fns += stats.functions;
        }
    }
    if requests == 0 {
        return Err(format!("{manifest_path}: no requests in manifest"));
    }
    if opts.cache_dir.is_some() {
        eprintln!(
            "wcet: batch done: {requests} request(s), {total_fn_hits}/{total_fns} \
             function artifact(s) served from cache"
        );
    }
    Ok(())
}

fn parse_options(args: &[String]) -> Result<(CliOptions, Vec<String>), String> {
    let mut opts = CliOptions::default();
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--annotations" => {
                opts.annot_path = Some(
                    it.next()
                        .ok_or_else(|| "--annotations needs a file".to_owned())?
                        .clone(),
                );
            }
            "--threads" => {
                let raw = it
                    .next()
                    .ok_or_else(|| "--threads needs a count".to_owned())?;
                let n: usize = raw
                    .parse()
                    .map_err(|_| format!("invalid thread count `{raw}`"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_owned());
                }
                opts.parallelism = Some(n);
            }
            "--cache-dir" => {
                opts.cache_dir = Some(
                    it.next()
                        .ok_or_else(|| "--cache-dir needs a directory".to_owned())?
                        .clone(),
                );
            }
            "--context-depth" => {
                let raw = it
                    .next()
                    .ok_or_else(|| "--context-depth needs a depth".to_owned())?;
                opts.context_depth = raw
                    .parse()
                    .map_err(|_| format!("invalid context depth `{raw}`"))?;
            }
            "--caches" => opts.caches = true,
            "--persistence" => opts.persistence = true,
            "--unroll" => opts.unroll = true,
            "--disasm" => opts.show_disasm = true,
            "--check-only" => opts.check_only = true,
            "--run" => opts.also_run = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}` (try --help)"));
            }
            path => files.push(path.to_owned()),
        }
    }
    if opts.persistence {
        // The persistence analysis lives in the context-sensitive
        // pipeline and classifies against the cache model; without
        // either it would silently change nothing.
        if !opts.caches {
            return Err("--persistence requires --caches (there is no cache to persist in)".into());
        }
        if opts.context_depth == 0 {
            return Err(
                "--persistence requires --context-depth 1 or higher (it runs in the \
                 context-sensitive pipeline)"
                    .into(),
            );
        }
    }
    Ok((opts, files))
}

fn load_image(source_path: &str) -> Result<Image, String> {
    let source = std::fs::read_to_string(source_path)
        .map_err(|e| format!("cannot read {source_path}: {e}"))?;
    assemble(&source).map_err(|e| format!("{source_path}: {e}"))
}

fn load_annotations(path: Option<&str>) -> Result<AnnotationSet, String> {
    match path {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            AnnotationSet::parse(&text).map_err(|e| format!("{path}: {e}"))
        }
        None => Ok(AnnotationSet::new()),
    }
}

fn open_cache(dir: Option<&str>) -> Result<Option<ArtifactCache>, String> {
    match dir {
        Some(dir) => ArtifactCache::open(dir)
            .map(Some)
            .map_err(|e| format!("cannot open cache directory {dir}: {e}")),
        None => Ok(None),
    }
}

fn analyze_one(
    image: &Image,
    annotations: AnnotationSet,
    opts: &CliOptions,
    cache: Option<&mut ArtifactCache>,
) -> Result<(AnalysisReport, MachineConfig), String> {
    let machine = if opts.caches {
        MachineConfig::with_caches()
    } else {
        MachineConfig::simple()
    };
    let config = AnalyzerConfig {
        machine: machine.clone(),
        annotations,
        unrolling: opts.unroll,
        parallelism: opts.parallelism,
        context_depth: opts.context_depth,
        persistence: opts.persistence,
        ..AnalyzerConfig::new()
    };
    let analyzer = WcetAnalyzer::with_config(config);
    let report = match cache {
        Some(cache) => analyzer.analyze_incremental(image, cache),
        None => analyzer.analyze(image),
    }
    .map_err(|e| e.to_string())?;
    Ok((report, machine))
}

fn print_usage() {
    println!(
        "wcet — static WCET analyzer (reproduction of 'Software Structure \
         and WCET Predictability', PPES/DATE 2011)\n\n\
         usage:\n  wcet <program.s> [--annotations <file>] [--caches] \
         [--unroll] [--context-depth <k>] [--persistence] [--threads <n>] \
         [--cache-dir <dir>] [--disasm] [--check-only] [--run]\n  \
         wcet batch <manifest> [--cache-dir <dir>] [--caches] [--unroll] \
         [--context-depth <k>] [--persistence] [--threads <n>]\n  \
         wcet --table1 [samples]\n  wcet --experiments\n  wcet --help"
    );
}
