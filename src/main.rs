//! `wcet` — the command-line front end of the analyzer.
//!
//! ```text
//! wcet <program.s> [options]     analyze an assembly program
//!   --annotations <file>         design-level annotation file (§4.3)
//!   --caches                     enable the i/d-cache machine model
//!   --unroll                     virtually unroll loops (context expansion)
//!   --threads <n>                analysis worker threads (default: all
//!                                cores; 1 = sequential; same report either way)
//!   --disasm                     print the disassembly listing
//!   --check-only                 run only the MISRA guideline checker
//!   --run                        also execute and report observed cycles
//! wcet --table1 [samples]        regenerate the paper's Table 1
//! wcet --experiments             regenerate every experiment (E1–E16)
//! ```

use std::process::ExitCode;

use wcet_predictability::core::analyzer::{AnalyzerConfig, WcetAnalyzer};
use wcet_predictability::core::experiments;
use wcet_predictability::guidelines::annot::AnnotationSet;
use wcet_predictability::isa::asm::assemble;
use wcet_predictability::isa::disasm::disassemble;
use wcet_predictability::isa::interp::{Interpreter, MachineConfig};

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("wcet: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print_usage();
        return Ok(());
    }

    if args[0] == "--table1" {
        let samples: u64 = args
            .get(1)
            .map(|s| s.parse().map_err(|_| format!("invalid sample count `{s}`")))
            .transpose()?
            .unwrap_or(10_000_000);
        let e = experiments::e1_table1(samples);
        println!("{e}");
        return Ok(());
    }

    if args[0] == "--experiments" {
        for e in experiments::run_all(1_000_000) {
            println!("{e}\n");
        }
        return Ok(());
    }

    // Analyze mode.
    let mut source_path: Option<String> = None;
    let mut annot_path: Option<String> = None;
    let mut caches = false;
    let mut unroll = false;
    let mut show_disasm = false;
    let mut check_only = false;
    let mut also_run = false;
    let mut parallelism: Option<usize> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--annotations" => {
                annot_path = Some(
                    it.next()
                        .ok_or_else(|| "--annotations needs a file".to_owned())?,
                );
            }
            "--threads" => {
                let raw = it
                    .next()
                    .ok_or_else(|| "--threads needs a count".to_owned())?;
                let n: usize = raw
                    .parse()
                    .map_err(|_| format!("invalid thread count `{raw}`"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_owned());
                }
                parallelism = Some(n);
            }
            "--caches" => caches = true,
            "--unroll" => unroll = true,
            "--disasm" => show_disasm = true,
            "--check-only" => check_only = true,
            "--run" => also_run = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}` (try --help)"));
            }
            path => {
                if source_path.replace(path.to_owned()).is_some() {
                    return Err("more than one program file given".to_owned());
                }
            }
        }
    }
    let source_path = source_path.ok_or_else(|| "no program file given".to_owned())?;

    let source = std::fs::read_to_string(&source_path)
        .map_err(|e| format!("cannot read {source_path}: {e}"))?;
    let image = assemble(&source).map_err(|e| format!("{source_path}: {e}"))?;

    let annotations = match &annot_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            AnnotationSet::parse(&text).map_err(|e| format!("{path}: {e}"))?
        }
        None => AnnotationSet::new(),
    };

    if show_disasm {
        println!("── disassembly ──");
        println!("{}", disassemble(&image).map_err(|e| e.to_string())?);
    }

    let machine = if caches {
        MachineConfig::with_caches()
    } else {
        MachineConfig::simple()
    };
    let config = AnalyzerConfig {
        machine: machine.clone(),
        annotations,
        unrolling: unroll,
        parallelism,
        ..AnalyzerConfig::new()
    };
    let report = WcetAnalyzer::with_config(config)
        .analyze(&image)
        .map_err(|e| e.to_string())?;

    if let Some(guidelines) = &report.guidelines {
        println!("── guideline check ──");
        print!("{guidelines}");
        println!();
        if check_only {
            return Ok(());
        }
    }

    println!("── analysis ──");
    println!("{}", report.trace);
    println!();
    println!("task WCET bound: {} cycles", report.wcet_cycles);
    println!("task BCET bound: {} cycles", report.bcet_cycles);
    if report.mode_wcet.len() > 1 {
        println!();
        println!("── per-mode WCET bounds ──");
        for (mode, wcet) in &report.mode_wcet {
            println!(
                "  {:<12} {wcet} cycles",
                mode.as_deref().unwrap_or("(global)")
            );
        }
    }

    // The worst-case path as a symbolized block trace (abbreviated). Use
    // the CFG the path was computed on: under --unroll that is the peeled
    // copy, whose ids exceed the original entry CFG's range.
    let entry_cfg = report.analyzed_entry_cfg();
    let path_blocks: Vec<String> = report
        .worst_path
        .iter()
        .take(24)
        .map(|&b| {
            let start = entry_cfg.block(b).start;
            image
                .symbol_at(start)
                .map(str::to_owned)
                .unwrap_or_else(|| start.to_string())
        })
        .collect();
    if !path_blocks.is_empty() {
        println!();
        println!(
            "worst-case path: {}{}",
            path_blocks.join(" → "),
            if report.worst_path.len() > 24 { " → …" } else { "" }
        );
    }

    if also_run {
        let mut interp = Interpreter::with_config(&image, machine);
        let outcome = interp
            .run(100_000_000)
            .map_err(|e| format!("execution: {e}"))?;
        println!();
        println!(
            "observed execution: {} cycles ({} instructions) — within bounds: {}",
            outcome.cycles,
            outcome.instructions,
            outcome.cycles <= report.wcet_cycles && outcome.cycles >= report.bcet_cycles
        );
    }
    Ok(())
}

fn print_usage() {
    println!(
        "wcet — static WCET analyzer (reproduction of 'Software Structure \
         and WCET Predictability', PPES/DATE 2011)\n\n\
         usage:\n  wcet <program.s> [--annotations <file>] [--caches] \
         [--unroll] [--threads <n>] [--disasm] [--check-only] [--run]\n  \
         wcet --table1 [samples]\n  wcet --experiments\n  wcet --help"
    );
}
