//! Canonical text rendering of an analysis report.
//!
//! This is the `wcet` CLI's human-readable output, factored into the
//! library so the golden snapshot tests pin the exact bytes: formatting
//! drift now fails a test (regenerate deliberately with `WCET_BLESS=1`)
//! instead of slipping into production output unnoticed. The incremental
//! engine's byte-identity guarantee is stated over this rendering, which
//! is why cache statistics are *not* part of it — they go to stderr.

use std::fmt::Write as _;

use wcet_core::analyzer::AnalysisReport;
use wcet_isa::Image;

/// Renders the guideline-check section, when checking ran.
#[must_use]
pub fn render_guidelines(report: &AnalysisReport) -> String {
    let mut out = String::new();
    if let Some(guidelines) = &report.guidelines {
        out.push_str("── guideline check ──\n");
        let _ = write!(out, "{guidelines}");
        out.push('\n');
    }
    out
}

/// Renders the analysis section: phase trace, task bounds, per-mode
/// bounds, and the symbolized worst-case path.
#[must_use]
pub fn render_analysis(image: &Image, report: &AnalysisReport) -> String {
    let mut out = String::new();
    out.push_str("── analysis ──\n");
    let _ = writeln!(out, "{}", report.trace);
    out.push('\n');
    let _ = writeln!(out, "task WCET bound: {} cycles", report.wcet_cycles);
    let _ = writeln!(out, "task BCET bound: {} cycles", report.bcet_cycles);
    if report.mode_wcet.len() > 1 {
        out.push('\n');
        out.push_str("── per-mode WCET bounds ──\n");
        for (mode, wcet) in &report.mode_wcet {
            let _ = writeln!(
                out,
                "  {:<12} {wcet} cycles",
                mode.as_deref().unwrap_or("(global)")
            );
        }
    }

    // The worst-case path as a symbolized block trace (abbreviated). Use
    // the CFG the path was computed on: under --unroll that is the peeled
    // copy, whose ids exceed the original entry CFG's range.
    let entry_cfg = report.analyzed_entry_cfg();
    let path_blocks: Vec<String> = report
        .worst_path
        .iter()
        .take(24)
        .map(|&b| {
            let start = entry_cfg.block(b).start;
            image
                .symbol_at(start)
                .map_or_else(|| start.to_string(), str::to_owned)
        })
        .collect();
    if !path_blocks.is_empty() {
        out.push('\n');
        let _ = writeln!(
            out,
            "worst-case path: {}{}",
            path_blocks.join(" → "),
            if report.worst_path.len() > 24 {
                " → …"
            } else {
                ""
            }
        );
    }
    out
}

/// The full report rendering: guidelines (if any) followed by the
/// analysis section — exactly what `wcet <program.s>` prints to stdout.
/// Timings inside the phase trace are real clocks; golden tests zero
/// `report.trace.phase_times`/`phase_work_times` before rendering.
#[must_use]
pub fn render_report(image: &Image, report: &AnalysisReport) -> String {
    let guidelines = render_guidelines(report);
    let analysis = render_analysis(image, report);
    if guidelines.is_empty() {
        analysis
    } else {
        format!("{guidelines}\n{analysis}")
    }
}
