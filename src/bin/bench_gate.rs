//! `bench_gate` — the CI perf-regression gate over the bench summaries.
//!
//! Compares freshly produced `BENCH_<group>.json` files (median
//! nanoseconds per bench id, written by the vendored criterion stand-in)
//! against the committed baselines in `bench-summaries/` and fails when
//! any gated bench id's median regressed by more than the threshold:
//!
//! ```text
//! bench_gate --baseline bench-summaries --current target/bench-current \
//!            --groups serve,incremental,persistence [--threshold-pct 15]
//! ```
//!
//! Rules, chosen so a gap never reads as a pass:
//!
//! * a gated group missing from `--current` is a failure (the bench run
//!   silently skipped it);
//! * a bench id present in the baseline but absent from the current
//!   summary is a failure (lost coverage);
//! * a gated group with no committed baseline is reported and skipped —
//!   that is what a brand-new group looks like on its first run;
//! * new bench ids in the current summary pass — they gate once a
//!   baseline containing them is committed.
//!
//! Quick-mode medians on shared runners are noisy; the committed
//! baselines are refreshed deliberately (see `bench-summaries/README.md`)
//! and the threshold is generous for that reason.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One group's summary: bench id → median nanoseconds.
type Summary = BTreeMap<String, u64>;

/// Parses the fixed `BENCH_<group>.json` shape the vendored criterion
/// writes (see `vendor/criterion/src/lib.rs::finish`): a flat
/// `"median_ns"` object of `"id": integer` pairs. Not a general JSON
/// parser — both producer and consumer live in this repository.
fn parse_summary(text: &str) -> Summary {
    let mut out = Summary::new();
    let mut in_medians = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with("\"median_ns\"") {
            in_medians = true;
            continue;
        }
        if !in_medians {
            continue;
        }
        if line.starts_with('}') {
            break;
        }
        // `"id": 12345,` — the id may itself contain `/` or spaces.
        let Some((key, value)) = line.rsplit_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value = value.trim().trim_end_matches(',');
        if let Ok(ns) = value.parse::<u64>() {
            out.insert(key.to_owned(), ns);
        }
    }
    out
}

fn load_summary(dir: &Path, group: &str) -> Option<Summary> {
    let path = dir.join(format!("BENCH_{group}.json"));
    let text = std::fs::read_to_string(path).ok()?;
    Some(parse_summary(&text))
}

/// Compares one group; returns human-readable failures (empty = pass).
fn gate_group(
    group: &str,
    baseline: &Summary,
    current: &Summary,
    threshold_pct: u64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (id, &base_ns) in baseline {
        let Some(&cur_ns) = current.get(id) else {
            failures.push(format!(
                "{group}/{id}: present in the baseline but missing from the current run"
            ));
            continue;
        };
        // Integer arithmetic; median_ns values are far below u64::MAX/200.
        let limit = base_ns + base_ns * threshold_pct / 100;
        if cur_ns > limit {
            failures.push(format!(
                "{group}/{id}: median {cur_ns} ns exceeds baseline {base_ns} ns by more than {threshold_pct}% (limit {limit} ns)"
            ));
        }
    }
    failures
}

struct Options {
    baseline: PathBuf,
    current: PathBuf,
    groups: Vec<String>,
    threshold_pct: u64,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut baseline = None;
    let mut current = None;
    let mut groups = Vec::new();
    let mut threshold_pct = 15u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline")?)),
            "--current" => current = Some(PathBuf::from(value("--current")?)),
            "--groups" => {
                groups = value("--groups")?
                    .split(',')
                    .map(|g| g.trim().to_owned())
                    .filter(|g| !g.is_empty())
                    .collect();
            }
            "--threshold-pct" => {
                threshold_pct = value("--threshold-pct")?
                    .parse()
                    .map_err(|e| format!("--threshold-pct: {e}"))?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(Options {
        baseline: baseline.ok_or("--baseline <dir> is required")?,
        current: current.ok_or("--current <dir> is required")?,
        groups: if groups.is_empty() {
            return Err("--groups <a,b,c> is required".to_owned());
        } else {
            groups
        },
        threshold_pct,
    })
}

fn run(opts: &Options) -> Result<(), Vec<String>> {
    let mut failures = Vec::new();
    for group in &opts.groups {
        let Some(current) = load_summary(&opts.current, group) else {
            failures.push(format!(
                "{group}: no current summary in {} (bench run skipped the group?)",
                opts.current.display()
            ));
            continue;
        };
        let Some(baseline) = load_summary(&opts.baseline, group) else {
            eprintln!(
                "bench_gate: {group}: no committed baseline in {}; skipping (new group)",
                opts.baseline.display()
            );
            continue;
        };
        let group_failures = gate_group(group, &baseline, &current, opts.threshold_pct);
        if group_failures.is_empty() {
            eprintln!(
                "bench_gate: {group}: {} bench id(s) within {}% of baseline",
                baseline.len(),
                opts.threshold_pct
            );
        }
        failures.extend(group_failures);
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            eprintln!(
                "usage: bench_gate --baseline <dir> --current <dir> --groups <a,b,c> [--threshold-pct 15]"
            );
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(failures) => {
            for f in &failures {
                eprintln!("bench_gate: REGRESSION: {f}");
            }
            eprintln!(
                "bench_gate: {} regression(s) against {}",
                failures.len(),
                opts.baseline.display()
            );
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "group": "persistence",
  "median_ns": {
    "persistence_killer/clobber": 120517,
    "persistence_killer/persist": 133911,
    "call_tree_2x3/clobber": 3066217
  }
}
"#;

    #[test]
    fn parses_the_criterion_summary_shape() {
        let s = parse_summary(SAMPLE);
        assert_eq!(s.len(), 3);
        assert_eq!(s["persistence_killer/clobber"], 120_517);
        assert_eq!(s["call_tree_2x3/clobber"], 3_066_217);
    }

    #[test]
    fn gate_passes_within_threshold_and_fails_beyond() {
        let baseline = parse_summary(SAMPLE);
        let mut current = baseline.clone();
        // +15% exactly is still within the gate (strictly-greater fails).
        current.insert(
            "persistence_killer/clobber".into(),
            120_517 + 120_517 * 15 / 100,
        );
        assert!(gate_group("persistence", &baseline, &current, 15).is_empty());
        current.insert("persistence_killer/clobber".into(), 120_517 * 2);
        let failures = gate_group("persistence", &baseline, &current, 15);
        assert_eq!(failures.len(), 1);
        assert!(
            failures[0].contains("persistence_killer/clobber"),
            "{failures:?}"
        );
    }

    #[test]
    fn missing_current_id_is_lost_coverage() {
        let baseline = parse_summary(SAMPLE);
        let mut current = baseline.clone();
        current.remove("persistence_killer/persist");
        let failures = gate_group("persistence", &baseline, &current, 15);
        assert_eq!(failures.len(), 1);
        assert!(
            failures[0].contains("missing from the current run"),
            "{failures:?}"
        );
    }

    #[test]
    fn improvements_and_new_ids_pass() {
        let baseline = parse_summary(SAMPLE);
        let mut current = baseline.clone();
        for v in current.values_mut() {
            *v /= 2;
        }
        current.insert("brand_new_bench".into(), u64::MAX / 4);
        assert!(gate_group("persistence", &baseline, &current, 15).is_empty());
    }
}
