//! `bench_gate` — the CI perf-regression gate over the bench summaries.
//!
//! Compares freshly produced `BENCH_<group>.json` files (median
//! nanoseconds per bench id, written by the vendored criterion stand-in)
//! against the committed baselines in `bench-summaries/` and fails when
//! any gated bench id's median regressed by more than the threshold:
//!
//! ```text
//! bench_gate --baseline bench-summaries --current target/bench-current \
//!            --groups serve,incremental,persistence [--threshold-pct 15] \
//!            [--history bench-summaries/BENCH_history.jsonl]
//! ```
//!
//! Rules, chosen so a gap never reads as a pass:
//!
//! * a gated group missing from `--current` is a failure (the bench run
//!   silently skipped it);
//! * a bench id present in the baseline but absent from the current
//!   summary is a failure (lost coverage);
//! * a gated group with no committed baseline falls back to the *latest*
//!   `--history` entry, so a group gates from its very first recorded
//!   run; with no history entry either it is reported and skipped —
//!   that is what a brand-new group looks like on its first run;
//! * new bench ids in the current summary pass — they gate once a
//!   baseline containing them is committed.
//!
//! The history file is a per-PR perf trajectory, one JSON line per CI
//! run, appended by the bench job after the gate passes:
//!
//! ```text
//! bench_gate append-history --current target/bench-current \
//!            --history bench-summaries/BENCH_history.jsonl \
//!            --sha <commit> --date <iso-utc>
//! ```
//!
//! Quick-mode medians on shared runners are noisy; the committed
//! baselines are refreshed deliberately (see `bench-summaries/README.md`)
//! and the threshold is generous for that reason.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One group's summary: bench id → median nanoseconds.
type Summary = BTreeMap<String, u64>;

/// Parses the fixed `BENCH_<group>.json` shape the vendored criterion
/// writes (see `vendor/criterion/src/lib.rs::finish`): a flat
/// `"median_ns"` object of `"id": integer` pairs. Not a general JSON
/// parser — both producer and consumer live in this repository.
fn parse_summary(text: &str) -> Summary {
    let mut out = Summary::new();
    let mut in_medians = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with("\"median_ns\"") {
            in_medians = true;
            continue;
        }
        if !in_medians {
            continue;
        }
        if line.starts_with('}') {
            break;
        }
        // `"id": 12345,` — the id may itself contain `/` or spaces.
        let Some((key, value)) = line.rsplit_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value = value.trim().trim_end_matches(',');
        if let Ok(ns) = value.parse::<u64>() {
            out.insert(key.to_owned(), ns);
        }
    }
    out
}

fn load_summary(dir: &Path, group: &str) -> Option<Summary> {
    let path = dir.join(format!("BENCH_{group}.json"));
    let text = std::fs::read_to_string(path).ok()?;
    Some(parse_summary(&text))
}

/// Renders one history line. Medians are keyed `"<group>/<id>"` so the
/// whole entry stays a single flat object — the same
/// producer-and-consumer-in-one-repo bargain as `parse_summary`, and the
/// reason `history_latest` can get away without a JSON parser.
fn history_line(sha: &str, date: &str, groups: &BTreeMap<String, Summary>) -> String {
    let mut medians = Vec::new();
    for (group, summary) in groups {
        for (id, ns) in summary {
            medians.push(format!("\"{group}/{id}\":{ns}"));
        }
    }
    format!(
        "{{\"sha\":\"{sha}\",\"date\":\"{date}\",\"medians\":{{{}}}}}",
        medians.join(",")
    )
}

/// Parses the *latest* (last non-empty) history line back into
/// per-group summaries. Returns `None` on an empty or absent history.
fn history_latest(text: &str) -> Option<BTreeMap<String, Summary>> {
    let line = text.lines().rev().find(|l| !l.trim().is_empty())?;
    let (_, medians) = line.split_once("\"medians\":{")?;
    let medians = medians.strip_suffix("}}").unwrap_or(medians);
    let mut out: BTreeMap<String, Summary> = BTreeMap::new();
    for entry in medians.split(',') {
        let Some((key, value)) = entry.rsplit_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let Some((group, id)) = key.split_once('/') else {
            continue;
        };
        if let Ok(ns) = value.trim().parse::<u64>() {
            out.entry(group.to_owned())
                .or_default()
                .insert(id.to_owned(), ns);
        }
    }
    Some(out)
}

/// Loads every `BENCH_<group>.json` under `dir` (the append side records
/// *all* groups the run produced, not just the gated ones — the history
/// is the trajectory, the gate is the subset with acceptance bars).
fn load_all_summaries(dir: &Path) -> std::io::Result<BTreeMap<String, Summary>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(group) = name
            .strip_prefix("BENCH_")
            .and_then(|n| n.strip_suffix(".json"))
        {
            let text = std::fs::read_to_string(entry.path())?;
            out.insert(group.to_owned(), parse_summary(&text));
        }
    }
    Ok(out)
}

/// Compares one group; returns human-readable failures (empty = pass).
fn gate_group(
    group: &str,
    baseline: &Summary,
    current: &Summary,
    threshold_pct: u64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (id, &base_ns) in baseline {
        let Some(&cur_ns) = current.get(id) else {
            failures.push(format!(
                "{group}/{id}: present in the baseline but missing from the current run"
            ));
            continue;
        };
        // Integer arithmetic; median_ns values are far below u64::MAX/200.
        let limit = base_ns + base_ns * threshold_pct / 100;
        if cur_ns > limit {
            failures.push(format!(
                "{group}/{id}: median {cur_ns} ns exceeds baseline {base_ns} ns by more than {threshold_pct}% (limit {limit} ns)"
            ));
        }
    }
    failures
}

struct Options {
    baseline: PathBuf,
    current: PathBuf,
    groups: Vec<String>,
    threshold_pct: u64,
    history: Option<PathBuf>,
}

struct AppendOptions {
    current: PathBuf,
    history: PathBuf,
    sha: String,
    date: String,
}

enum Mode {
    Gate(Options),
    AppendHistory(AppendOptions),
}

fn parse_args(args: &[String]) -> Result<Mode, String> {
    if args.first().map(String::as_str) == Some("append-history") {
        return parse_append_args(&args[1..]).map(Mode::AppendHistory);
    }
    let mut baseline = None;
    let mut current = None;
    let mut groups = Vec::new();
    let mut threshold_pct = 15u64;
    let mut history = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline")?)),
            "--current" => current = Some(PathBuf::from(value("--current")?)),
            "--groups" => {
                groups = value("--groups")?
                    .split(',')
                    .map(|g| g.trim().to_owned())
                    .filter(|g| !g.is_empty())
                    .collect();
            }
            "--threshold-pct" => {
                threshold_pct = value("--threshold-pct")?
                    .parse()
                    .map_err(|e| format!("--threshold-pct: {e}"))?;
            }
            "--history" => history = Some(PathBuf::from(value("--history")?)),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(Mode::Gate(Options {
        baseline: baseline.ok_or("--baseline <dir> is required")?,
        current: current.ok_or("--current <dir> is required")?,
        groups: if groups.is_empty() {
            return Err("--groups <a,b,c> is required".to_owned());
        } else {
            groups
        },
        threshold_pct,
        history,
    }))
}

fn parse_append_args(args: &[String]) -> Result<AppendOptions, String> {
    let mut current = None;
    let mut history = None;
    let mut sha = None;
    let mut date = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--current" => current = Some(PathBuf::from(value("--current")?)),
            "--history" => history = Some(PathBuf::from(value("--history")?)),
            "--sha" => sha = Some(value("--sha")?),
            "--date" => date = Some(value("--date")?),
            other => return Err(format!("append-history: unknown option `{other}`")),
        }
    }
    Ok(AppendOptions {
        current: current.ok_or("append-history: --current <dir> is required")?,
        history: history.ok_or("append-history: --history <file> is required")?,
        sha: sha.ok_or("append-history: --sha <commit> is required")?,
        date: date.ok_or("append-history: --date <iso-utc> is required")?,
    })
}

fn run(opts: &Options) -> Result<(), Vec<String>> {
    let mut history = opts.history.as_ref().and_then(|path| {
        let text = std::fs::read_to_string(path).ok()?;
        history_latest(&text)
    });
    let mut failures = Vec::new();
    for group in &opts.groups {
        let Some(current) = load_summary(&opts.current, group) else {
            failures.push(format!(
                "{group}: no current summary in {} (bench run skipped the group?)",
                opts.current.display()
            ));
            continue;
        };
        // The committed baseline wins; the latest history entry covers a
        // gated group whose baseline has not been committed yet.
        let baseline = match load_summary(&opts.baseline, group) {
            Some(b) => b,
            None => match history.as_mut().and_then(|h| h.remove(group)) {
                Some(b) => {
                    eprintln!(
                        "bench_gate: {group}: no committed baseline in {}; gating against the latest history entry",
                        opts.baseline.display()
                    );
                    b
                }
                None => {
                    eprintln!(
                        "bench_gate: {group}: no committed baseline in {} and no history entry; skipping (new group)",
                        opts.baseline.display()
                    );
                    continue;
                }
            },
        };
        let group_failures = gate_group(group, &baseline, &current, opts.threshold_pct);
        if group_failures.is_empty() {
            eprintln!(
                "bench_gate: {group}: {} bench id(s) within {}% of baseline",
                baseline.len(),
                opts.threshold_pct
            );
        }
        failures.extend(group_failures);
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}

fn append_history(opts: &AppendOptions) -> Result<(), String> {
    let groups = load_all_summaries(&opts.current)
        .map_err(|e| format!("append-history: {}: {e}", opts.current.display()))?;
    if groups.is_empty() {
        return Err(format!(
            "append-history: no BENCH_*.json in {} (bench run skipped?)",
            opts.current.display()
        ));
    }
    let line = history_line(&opts.sha, &opts.date, &groups);
    let mut text = match std::fs::read_to_string(&opts.history) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(format!("append-history: {}: {e}", opts.history.display())),
    };
    if !text.is_empty() && !text.ends_with('\n') {
        text.push('\n');
    }
    text.push_str(&line);
    text.push('\n');
    std::fs::write(&opts.history, text)
        .map_err(|e| format!("append-history: {}: {e}", opts.history.display()))?;
    eprintln!(
        "bench_gate: appended {} group(s) for {} to {}",
        groups.len(),
        opts.sha,
        opts.history.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Mode::Gate(o)) => o,
        Ok(Mode::AppendHistory(o)) => {
            return match append_history(&o) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("bench_gate: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        Err(e) => {
            eprintln!("bench_gate: {e}");
            eprintln!(
                "usage: bench_gate --baseline <dir> --current <dir> --groups <a,b,c> [--threshold-pct 15] [--history <file>]"
            );
            eprintln!(
                "       bench_gate append-history --current <dir> --history <file> --sha <commit> --date <iso-utc>"
            );
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(failures) => {
            for f in &failures {
                eprintln!("bench_gate: REGRESSION: {f}");
            }
            eprintln!(
                "bench_gate: {} regression(s) against {}",
                failures.len(),
                opts.baseline.display()
            );
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "group": "persistence",
  "median_ns": {
    "persistence_killer/clobber": 120517,
    "persistence_killer/persist": 133911,
    "call_tree_2x3/clobber": 3066217
  }
}
"#;

    #[test]
    fn parses_the_criterion_summary_shape() {
        let s = parse_summary(SAMPLE);
        assert_eq!(s.len(), 3);
        assert_eq!(s["persistence_killer/clobber"], 120_517);
        assert_eq!(s["call_tree_2x3/clobber"], 3_066_217);
    }

    #[test]
    fn gate_passes_within_threshold_and_fails_beyond() {
        let baseline = parse_summary(SAMPLE);
        let mut current = baseline.clone();
        // +15% exactly is still within the gate (strictly-greater fails).
        current.insert(
            "persistence_killer/clobber".into(),
            120_517 + 120_517 * 15 / 100,
        );
        assert!(gate_group("persistence", &baseline, &current, 15).is_empty());
        current.insert("persistence_killer/clobber".into(), 120_517 * 2);
        let failures = gate_group("persistence", &baseline, &current, 15);
        assert_eq!(failures.len(), 1);
        assert!(
            failures[0].contains("persistence_killer/clobber"),
            "{failures:?}"
        );
    }

    #[test]
    fn missing_current_id_is_lost_coverage() {
        let baseline = parse_summary(SAMPLE);
        let mut current = baseline.clone();
        current.remove("persistence_killer/persist");
        let failures = gate_group("persistence", &baseline, &current, 15);
        assert_eq!(failures.len(), 1);
        assert!(
            failures[0].contains("missing from the current run"),
            "{failures:?}"
        );
    }

    #[test]
    fn history_line_round_trips_through_history_latest() {
        let mut groups: BTreeMap<String, Summary> = BTreeMap::new();
        groups.insert("persistence".into(), parse_summary(SAMPLE));
        let mut serve = Summary::new();
        serve.insert("stream/100 requests".into(), 42);
        groups.insert("serve".into(), serve);
        let line = history_line("deadbeef", "2026-08-08T00:00:00Z", &groups);
        assert!(line.starts_with("{\"sha\":\"deadbeef\""), "{line}");
        // Older entries are ignored: only the last non-empty line counts.
        let stale = history_line("00000000", "2026-01-01T00:00:00Z", &groups);
        let text = format!("{stale}\n{line}\n");
        let parsed = history_latest(&text).expect("latest entry parses");
        assert_eq!(parsed, groups);
    }

    #[test]
    fn empty_history_yields_no_baseline() {
        assert!(history_latest("").is_none());
        assert!(history_latest("\n\n").is_none());
    }

    #[test]
    fn improvements_and_new_ids_pass() {
        let baseline = parse_summary(SAMPLE);
        let mut current = baseline.clone();
        for v in current.values_mut() {
            *v /= 2;
        }
        current.insert("brand_new_bench".into(), u64::MAX / 4);
        assert!(gate_group("persistence", &baseline, &current, 15).is_empty());
    }
}
