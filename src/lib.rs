//! # wcet-predictability — umbrella crate
//!
//! Reproduction of *Software Structure and WCET Predictability* (Gebhard,
//! Cullmann, Heckmann; PPES/DATE 2011). This crate re-exports the whole
//! workspace so examples and integration tests can address every layer
//! through one dependency. See the repository `README.md`, `DESIGN.md`,
//! and `EXPERIMENTS.md` for the system inventory and experiment index.

#![forbid(unsafe_code)]

pub mod render;

pub use wcet_analysis as analysis;
pub use wcet_arith as arith;
pub use wcet_cfg as cfg;
pub use wcet_core as core;
pub use wcet_guidelines as guidelines;
pub use wcet_ilp as ilp;
pub use wcet_isa as isa;
pub use wcet_micro as micro;
pub use wcet_path as path;
