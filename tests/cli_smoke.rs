//! Smoke tests for the `wcet` binary: exit codes, help text, the Table-1
//! driver, and a full analyze run over an assembly program from a file.

use std::process::Command;

fn wcet(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_wcet"))
        .args(args)
        .output()
        .expect("spawning wcet binary")
}

#[test]
fn no_arguments_prints_usage_and_exits_zero() {
    let out = wcet(&[]);
    assert!(out.status.success(), "bare invocation must exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage:"), "usage text missing:\n{stdout}");
}

#[test]
fn help_flag_exits_zero() {
    for flag in ["--help", "-h"] {
        let out = wcet(&[flag]);
        assert!(out.status.success(), "{flag} must exit 0");
        assert!(String::from_utf8_lossy(&out.stdout).contains("WCET"));
    }
}

#[test]
fn unknown_option_fails_with_diagnostic() {
    let out = wcet(&["--frobnicate"]);
    assert!(!out.status.success(), "unknown options must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown option"),
        "diagnostic missing:\n{stderr}"
    );
}

#[test]
fn missing_file_fails_with_diagnostic() {
    let out = wcet(&["/nonexistent/program.s"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot read"),
        "diagnostic missing:\n{stderr}"
    );
}

#[test]
fn table1_driver_runs_small_sample_count() {
    let out = wcet(&["--table1", "20000"]);
    assert!(out.status.success(), "--table1 must exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("ldivmod"),
        "Table 1 output missing:\n{stdout}"
    );
}

#[test]
fn threads_flag_is_validated_and_bounds_agree() {
    let dir = std::env::temp_dir().join(format!("wcet-cli-threads-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let program = dir.join("fanout.s");
    std::fs::write(
        &program,
        ".org 0x1000\n\
         main:\n\
             call f0\n\
             call f1\n\
             halt\n\
         f0:\n\
             li   r1, 6\n\
         f0l:\n\
             subi r1, r1, 1\n\
             bne  r1, r0, f0l\n\
             ret\n\
         f1:\n\
             li   r1, 9\n\
         f1l:\n\
             subi r1, r1, 1\n\
             bne  r1, r0, f1l\n\
             ret\n",
    )
    .expect("write program");

    let bad = wcet(&[program.to_str().unwrap(), "--threads", "0"]);
    assert!(!bad.status.success(), "--threads 0 must be rejected");
    assert!(String::from_utf8_lossy(&bad.stderr).contains("--threads"));

    // The WCET/BCET headlines must not depend on the worker count
    // (phase times do — they are wall clocks).
    let headlines = |threads: &str| {
        let out = wcet(&[program.to_str().unwrap(), "--threads", threads]);
        assert!(out.status.success(), "--threads {threads} failed");
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| l.contains("bound:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let sequential = headlines("1");
    assert!(sequential.contains("task WCET bound:"), "{sequential}");
    assert_eq!(sequential, headlines("4"));

    std::fs::remove_dir_all(&dir).ok();
}

/// The CI contract for the warm-cache job, enforced on every test run:
/// analyzing twice against a shared cache directory leaves stdout
/// byte-identical, and the second (warm) run reports a nonzero cache-hit
/// count on stderr.
#[test]
fn warm_cache_run_is_byte_identical_with_nonzero_hits() {
    let dir = std::env::temp_dir().join(format!("wcet-cli-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let program = dir.join("fanout.s");
    std::fs::write(
        &program,
        ".org 0x1000\n\
         main:\n\
             call f0\n\
             call f1\n\
             halt\n\
         f0:\n\
             li   r1, 6\n\
         f0l:\n\
             subi r1, r1, 1\n\
             bne  r1, r0, f0l\n\
             ret\n\
         f1:\n\
             li   r1, 9\n\
         f1l:\n\
             subi r1, r1, 1\n\
             bne  r1, r0, f1l\n\
             ret\n",
    )
    .expect("write program");
    let cache_dir = dir.join("cache");
    let args = [
        program.to_str().unwrap(),
        "--cache-dir",
        cache_dir.to_str().unwrap(),
    ];

    let strip_timings = |stdout: &[u8]| {
        // Phase lines carry wall clocks; everything else must match.
        String::from_utf8_lossy(stdout)
            .lines()
            .filter(|l| !l.contains("Phase") && !l.contains("Graph") && !l.contains("Analysis:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let cold = wcet(&args);
    assert!(cold.status.success(), "cold cached run exits 0");
    let cold_stderr = String::from_utf8_lossy(&cold.stderr).into_owned();
    assert!(
        cold_stderr.contains("0/3 function artifact(s) hit"),
        "cold run misses everything:\n{cold_stderr}"
    );

    let warm = wcet(&args);
    assert!(warm.status.success(), "warm cached run exits 0");
    assert_eq!(
        strip_timings(&cold.stdout),
        strip_timings(&warm.stdout),
        "warm stdout diverged from cold"
    );
    let warm_stderr = String::from_utf8_lossy(&warm.stderr).into_owned();
    assert!(
        warm_stderr.contains("3/3 function artifact(s) hit"),
        "warm run hits everything:\n{warm_stderr}"
    );
    assert!(
        warm_stderr.contains("0 IPET solve(s)"),
        "warm run re-solved nothing:\n{warm_stderr}"
    );

    // An uncached run of the same program prints the same analysis.
    let plain = wcet(&[program.to_str().unwrap()]);
    assert!(plain.status.success());
    assert_eq!(strip_timings(&plain.stdout), strip_timings(&warm.stdout));
    assert!(
        plain.stderr.is_empty(),
        "no cache chatter without --cache-dir"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_mode_analyzes_a_manifest_against_a_shared_cache() {
    let dir = std::env::temp_dir().join(format!("wcet-cli-batch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    std::fs::write(
        dir.join("counter.s"),
        ".org 0x1000\nmain:\n li r1, 12\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n halt\n",
    )
    .expect("write counter");
    std::fs::write(
        dir.join("bounded.s"),
        ".org 0x1000\nmain:\n mov r1, r4\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n halt\n",
    )
    .expect("write bounded");
    std::fs::write(dir.join("bounded.ann"), "loop 0x1004 bound 32;\n").expect("write annots");
    // The same program twice: the second request replays the first's
    // artifacts within one batch run.
    std::fs::write(
        dir.join("requests.txt"),
        "# one request per line: <program.s> [annotations]\n\
         counter.s\n\
         bounded.s bounded.ann\n\
         counter.s\n",
    )
    .expect("write manifest");

    let cache_dir = dir.join("cache");
    let out = wcet(&[
        "batch",
        dir.join("requests.txt").to_str().unwrap(),
        "--cache-dir",
        cache_dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "batch run exits 0: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert_eq!(
        stdout.matches("── batch: ").count(),
        3,
        "three request banners:\n{stdout}"
    );
    assert_eq!(
        stdout.matches("task WCET bound:").count(),
        3,
        "three analyses:\n{stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        stderr.contains("batch done: 3 request(s)"),
        "summary missing:\n{stderr}"
    );
    // counter.s appears twice; its single function replays on the repeat.
    assert!(
        stderr.contains("1/1 function artifact(s) hit"),
        "repeat request hits the shared cache:\n{stderr}"
    );

    // Batch without a manifest fails with a diagnostic.
    let bad = wcet(&["batch"]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("manifest"));

    std::fs::remove_dir_all(&dir).ok();
}

/// The annotation-free corpus workloads through the binary: the
/// call-tree and context workloads analyze end to end from their
/// assembly sources, and `--context-depth 1` prints a strictly smaller
/// WCET headline than the merged default on both.
#[test]
fn corpus_workloads_analyze_via_cli_and_context_depth_tightens() {
    use wcet_predictability::core::workload;

    let dir = std::env::temp_dir().join(format!("wcet-cli-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let wcet_bound = |stdout: &[u8]| -> u64 {
        String::from_utf8_lossy(stdout)
            .lines()
            .find_map(|l| {
                l.strip_prefix("task WCET bound: ")?
                    .strip_suffix(" cycles")?
                    .parse()
                    .ok()
            })
            .expect("WCET headline present")
    };
    for w in [
        workload::call_tree_heavy(2, 3, &[]),
        workload::context_killer(),
    ] {
        let program = dir.join(format!("{}.s", w.name));
        std::fs::write(&program, &w.source).expect("write workload source");
        let merged = wcet(&[program.to_str().unwrap(), "--context-depth", "0"]);
        assert!(
            merged.status.success(),
            "{} analyzes at depth 0: {}",
            w.name,
            String::from_utf8_lossy(&merged.stderr)
        );
        let ctx = wcet(&[program.to_str().unwrap(), "--context-depth", "1"]);
        assert!(ctx.status.success(), "{} analyzes at depth 1", w.name);
        assert!(
            wcet_bound(&ctx.stdout) < wcet_bound(&merged.stdout),
            "{}: --context-depth 1 must print a smaller bound",
            w.name
        );
        // Depth 0 is the flag-free default.
        let plain = wcet(&[program.to_str().unwrap()]);
        assert!(plain.status.success());
        assert_eq!(wcet_bound(&plain.stdout), wcet_bound(&merged.stdout));
    }

    // --persistence on top of --caches --context-depth 1 must print a
    // strictly smaller bound on the persistence workload. The loop-bound
    // annotation is reconstructed inline (mirroring the workload's own
    // `bound 48`; drift only loosens this fixture's bound, which stays
    // sound) — this block smokes the CLI plumbing, the corpus-level
    // tightening itself is gated by tests/persistence.rs.
    {
        use wcet_predictability::core::workload;
        let w = workload::persistence_killer();
        let program = dir.join("persistence_killer.s");
        std::fs::write(&program, &w.source).expect("write workload source");
        let annots = dir.join("persistence_killer.annot");
        let header = w.image.symbol("loop").expect("loop label");
        std::fs::write(&annots, format!("loop {header} bound 48;\n")).expect("write annotations");
        let base = [
            program.to_str().unwrap(),
            "--annotations",
            annots.to_str().unwrap(),
            "--caches",
            "--context-depth",
            "1",
        ];
        let clobbered = wcet(&base);
        assert!(
            clobbered.status.success(),
            "persistence_killer analyzes: {}",
            String::from_utf8_lossy(&clobbered.stderr)
        );
        let mut with_persistence = base.to_vec();
        with_persistence.push("--persistence");
        let persistent = wcet(&with_persistence);
        assert!(persistent.status.success(), "--persistence analyzes");
        assert!(
            wcet_bound(&persistent.stdout) < wcet_bound(&clobbered.stdout),
            "--persistence must print a smaller bound"
        );
    }

    // --persistence is validated against its prerequisites.
    let no_caches = wcet(&["prog.s", "--persistence", "--context-depth", "1"]);
    assert!(!no_caches.status.success());
    assert!(String::from_utf8_lossy(&no_caches.stderr).contains("--caches"));
    let no_depth = wcet(&["prog.s", "--persistence", "--caches"]);
    assert!(!no_depth.status.success());
    assert!(String::from_utf8_lossy(&no_depth.stderr).contains("--context-depth"));

    // The flag is validated.
    let bad = wcet(&["--context-depth"]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("--context-depth"));
    let garbage = wcet(&["prog.s", "--context-depth", "lots"]);
    assert!(!garbage.status.success());
    assert!(String::from_utf8_lossy(&garbage.stderr).contains("invalid context depth"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyzes_an_assembly_file_end_to_end() {
    let dir = std::env::temp_dir().join(format!("wcet-cli-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let program = dir.join("countdown.s");
    std::fs::write(
        &program,
        ".org 0x1000\n\
         main:\n\
             li   r1, 10\n\
         loop:\n\
             subi r1, r1, 1\n\
             bne  r1, r0, loop\n\
             halt\n",
    )
    .expect("write program");

    // --caches --unroll exercises the peeled-CFG path symbolization
    // (regression: block ids from the unrolled CFG used to be looked up in
    // the original entry CFG and panic).
    let unrolled = wcet(&[program.to_str().unwrap(), "--caches", "--unroll"]);
    assert!(
        unrolled.status.success(),
        "--caches --unroll failed:\n{}",
        String::from_utf8_lossy(&unrolled.stderr)
    );
    assert!(String::from_utf8_lossy(&unrolled.stdout).contains("worst-case path:"));

    let out = wcet(&[program.to_str().unwrap(), "--run", "--disasm"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "analyze failed:\n{stdout}\n{stderr}");
    assert!(
        stdout.contains("task WCET bound:"),
        "no WCET headline:\n{stdout}"
    );
    assert!(
        stdout.contains("disassembly"),
        "disassembly listing missing:\n{stdout}"
    );
    assert!(
        stdout.contains("within bounds: true"),
        "observed run outside bounds:\n{stdout}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
