//! Per-backend binary round-trip properties and the cache-key forking
//! contract of the ISA boundary.
//!
//! The property tests drive each backend's encoder and decoder with
//! randomly generated *encodable* instructions (the generators honor each
//! ISA's immediate ranges, displacement reach, and subset restrictions)
//! and pin `decode(encode(inst)) == inst`, plus the disassembler listing
//! rendering every instruction it decodes. The vendored proptest runner
//! is deterministic (fixed seed per test name), so failures reproduce.
//!
//! The cache tests pin the multi-ISA artifact-cache contract: the config
//! fingerprint forks on the ISA tag alone, and a store warmed under one
//! backend yields *zero* artifact hits under the other — instruction
//! words mean different things per backend, so replaying across ISAs
//! would be unsound.

use std::process::Command;

use proptest::prelude::*;
use proptest::sample::select;
use wcet_predictability::core::analyzer::AnalyzerConfig;
use wcet_predictability::core::incr::config_fingerprint;
use wcet_predictability::isa::{
    disasm, Addr, AluOp, Cond, FAluOp, FCond, FReg, Image, Inst, IsaKind, Reg, Width,
};

/// Every instruction is encoded as if placed at this address; branch and
/// jump targets are generated relative to it so displacements stay in
/// range for both backends.
const AT: Addr = Addr(0x0001_0000);

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..16u8).prop_map(Reg::new)
}

fn freg() -> impl Strategy<Value = FReg> {
    (0u8..8u8).prop_map(FReg::new)
}

/// A word-aligned target within `words` instruction slots of [`AT`].
fn target(words: i64) -> impl Strategy<Value = Addr> {
    (-words..=words).prop_map(|w| AT.offset(4 * w))
}

/// Any instruction the house encoder accepts at [`AT`]: the full semantic
/// set, with 16-bit immediates (zero-extended for the logical ops,
/// sign-extended otherwise) and word displacements well inside the 16-bit
/// branch / 26-bit jump fields.
fn house_inst() -> BoxedStrategy<Inst> {
    prop_oneof![
        (select(AluOp::ALL.to_vec()), reg(), reg(), reg())
            .prop_map(|(op, rd, rs1, rs2)| Inst::Alu { op, rd, rs1, rs2 }),
        // Logical immediates are unsigned 16-bit, everything else signed.
        (
            select(vec![AluOp::And, AluOp::Or, AluOp::Xor]),
            reg(),
            reg(),
            0i32..=0xffff,
        )
            .prop_map(|(op, rd, rs1, imm)| Inst::AluImm { op, rd, rs1, imm }),
        (
            select(vec![
                AluOp::Add,
                AluOp::Sub,
                AluOp::Mul,
                AluOp::Mulhu,
                AluOp::Shl,
                AluOp::Shr,
                AluOp::Sra,
                AluOp::Slt,
                AluOp::Sltu,
            ]),
            reg(),
            reg(),
            -32768i32..=32767,
        )
            .prop_map(|(op, rd, rs1, imm)| Inst::AluImm { op, rd, rs1, imm }),
        (reg(), 0u32..=0xffff).prop_map(|(rd, imm)| Inst::Lui { rd, imm }),
        (select(Width::ALL.to_vec()), reg(), reg(), -32768i32..=32767).prop_map(
            |(width, rd, base, offset)| Inst::Load {
                width,
                rd,
                base,
                offset,
            }
        ),
        (select(Width::ALL.to_vec()), reg(), reg(), -32768i32..=32767).prop_map(
            |(width, rs, base, offset)| Inst::Store {
                width,
                rs,
                base,
                offset,
            }
        ),
        (select(Cond::ALL.to_vec()), reg(), reg(), target(900)).prop_map(
            |(cond, rs1, rs2, target)| Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            }
        ),
        target(200_000).prop_map(|target| Inst::Jump { target }),
        target(200_000).prop_map(|target| Inst::Call { target }),
        reg().prop_map(|rs| Inst::JumpInd { rs }),
        reg().prop_map(|rs| Inst::CallInd { rs }),
        Just(Inst::Ret),
        (reg(), reg(), reg(), reg()).prop_map(|(rd, rc, rt, rf)| Inst::Select { rd, rc, rt, rf }),
        (select(FAluOp::ALL.to_vec()), freg(), freg(), freg())
            .prop_map(|(op, fd, fs1, fs2)| Inst::FAlu { op, fd, fs1, fs2 }),
        (select(FCond::ALL.to_vec()), freg(), freg(), target(900)).prop_map(
            |(cond, fs1, fs2, target)| Inst::FBranch {
                cond,
                fs1,
                fs2,
                target,
            }
        ),
        (freg(), reg()).prop_map(|(fd, rs)| Inst::FMov { fd, rs }),
        (freg(), reg()).prop_map(|(fd, rs)| Inst::FCvt { fd, rs }),
        (reg(), reg()).prop_map(|(rd, rs)| Inst::Alloc { rd, rs }),
        Just(Inst::Nop),
        Just(Inst::Halt),
    ]
    .boxed()
}

/// Any instruction the RV32I backend encodes at [`AT`]: no FP, no select,
/// no alloc, 12-bit immediates, ±4 KiB branches, ±1 MiB jumps. Two shapes
/// are remapped rather than filtered because they alias canonical words:
/// `addi x0, x0, 0` *is* the NOP word (decodes as `Inst::Nop`), and
/// `jalr x0, 0(x15)` *is* the `ret` word (the encoder rejects
/// `JumpInd { rs: r15 }` as unencodable).
fn rv32i_inst() -> BoxedStrategy<Inst> {
    prop_oneof![
        // All twelve ALU ops exist in R-type form (mul/mulhu via M).
        (select(AluOp::ALL.to_vec()), reg(), reg(), reg())
            .prop_map(|(op, rd, rs1, rs2)| Inst::Alu { op, rd, rs1, rs2 }),
        (
            select(vec![
                AluOp::Add,
                AluOp::Slt,
                AluOp::Sltu,
                AluOp::Xor,
                AluOp::Or,
                AluOp::And,
            ]),
            reg(),
            reg(),
            -2048i32..=2047,
        )
            .prop_map(|(op, rd, rs1, imm)| {
                // Dodge the canonical NOP alias, keeping the case valid.
                let imm = if op == AluOp::Add && rd == Reg::new(0) && rs1 == Reg::new(0) && imm == 0
                {
                    1
                } else {
                    imm
                };
                Inst::AluImm { op, rd, rs1, imm }
            }),
        (
            select(vec![AluOp::Shl, AluOp::Shr, AluOp::Sra]),
            reg(),
            reg(),
            0i32..=31,
        )
            .prop_map(|(op, rd, rs1, imm)| Inst::AluImm { op, rd, rs1, imm }),
        (reg(), 0u32..=0xffff).prop_map(|(rd, imm)| Inst::Lui { rd, imm }),
        (select(Width::ALL.to_vec()), reg(), reg(), -2048i32..=2047).prop_map(
            |(width, rd, base, offset)| Inst::Load {
                width,
                rd,
                base,
                offset,
            }
        ),
        (select(Width::ALL.to_vec()), reg(), reg(), -2048i32..=2047).prop_map(
            |(width, rs, base, offset)| Inst::Store {
                width,
                rs,
                base,
                offset,
            }
        ),
        (select(Cond::ALL.to_vec()), reg(), reg(), target(500)).prop_map(
            |(cond, rs1, rs2, target)| Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            }
        ),
        target(200_000).prop_map(|target| Inst::Jump { target }),
        target(200_000).prop_map(|target| Inst::Call { target }),
        (0u8..15u8).prop_map(|i| Inst::JumpInd { rs: Reg::new(i) }),
        reg().prop_map(|rs| Inst::CallInd { rs }),
        Just(Inst::Ret),
        Just(Inst::Nop),
        Just(Inst::Halt),
    ]
    .boxed()
}

/// The shared round-trip body: encode at [`AT`], decode the word back,
/// and check the disassembler renders the instruction from a one-word
/// image (disassembly goes through [`Image::decode_code`], so this also
/// exercises the tagged-image dispatch path).
fn round_trip(isa: IsaKind, inst: &Inst) -> TestCaseResult {
    let word = match isa.encode(inst, AT) {
        Ok(w) => w,
        Err(e) => {
            return Err(TestCaseError::fail(format!(
                "{isa} refuses a generated instruction {inst:?}: {e}"
            )))
        }
    };
    let back = match isa.decode(word, AT) {
        Ok(i) => i,
        Err(e) => {
            return Err(TestCaseError::fail(format!(
                "{isa} cannot decode its own word {word:#010x} for {inst:?}: {e}"
            )))
        }
    };
    prop_assert_eq!(&back, inst, "{} round trip of {:#010x}", isa, word);

    let image = Image::from_code_words_for(isa, AT, AT, &[word]);
    let listing = match disasm::disassemble(&image) {
        Ok(l) => l,
        Err(e) => {
            return Err(TestCaseError::fail(format!(
                "{isa} disassembly of {word:#010x} fails: {e}"
            )))
        }
    };
    prop_assert!(
        listing.contains(&inst.to_string()),
        "{} listing omits `{}`:\n{}",
        isa,
        inst,
        listing
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn house_encode_decode_disasm_round_trip(inst in house_inst()) {
        round_trip(IsaKind::House, &inst)?;
    }

    #[test]
    fn rv32i_encode_decode_disasm_round_trip(inst in rv32i_inst()) {
        round_trip(IsaKind::Rv32i, &inst)?;
    }

    /// Whole-sequence consistency: `encode_all` agrees with per-word
    /// `encode` at each address, and `decode_region` inverts it.
    #[test]
    fn house_encode_all_agrees_with_decode_region(
        a in house_inst(), b in house_inst(), c in house_inst(),
    ) {
        sequence_round_trip(IsaKind::House, &[a, b, c])?;
    }

    #[test]
    fn rv32i_encode_all_agrees_with_decode_region(
        a in rv32i_inst(), b in rv32i_inst(), c in rv32i_inst(),
    ) {
        sequence_round_trip(IsaKind::Rv32i, &[a, b, c])?;
    }

    /// The disassembler's rendering re-assembles: an instruction's
    /// `Display` text, fed back through `assemble_for`, produces the
    /// same instruction under the same backend. Control transfers are
    /// skipped — they render absolute hex targets where the assembler
    /// takes label identifiers only.
    #[test]
    fn house_display_reassembles(inst in house_inst()) {
        display_reassembles(IsaKind::House, &inst)?;
    }

    #[test]
    fn rv32i_display_reassembles(inst in rv32i_inst()) {
        display_reassembles(IsaKind::Rv32i, &inst)?;
    }
}

fn display_reassembles(isa: IsaKind, inst: &Inst) -> TestCaseResult {
    if matches!(
        inst,
        Inst::Branch { .. } | Inst::FBranch { .. } | Inst::Jump { .. } | Inst::Call { .. }
    ) {
        return Ok(());
    }
    let src = format!(".org 0x{:x}\nmain:\n {inst}\n halt\n", AT.0);
    let image = match wcet_predictability::isa::asm::assemble_for(isa, &src) {
        Ok(i) => i,
        Err(e) => {
            return Err(TestCaseError::fail(format!(
                "{isa} assembler rejects the rendering `{inst}`: {e}"
            )))
        }
    };
    let decoded = image
        .decode_code()
        .map_err(|e| TestCaseError::fail(format!("{isa} decode of reassembly: {e}")))?;
    prop_assert_eq!(
        &decoded[0].1,
        inst,
        "{}: `{}` reassembled to something else",
        isa,
        inst
    );
    Ok(())
}

fn sequence_round_trip(isa: IsaKind, insts: &[Inst]) -> TestCaseResult {
    let words = match isa.encode_all(insts, AT) {
        Ok(w) => w,
        Err(e) => {
            return Err(TestCaseError::fail(format!(
                "{isa} refuses a generated sequence {insts:?}: {e}"
            )))
        }
    };
    for (i, (&word, inst)) in words.iter().zip(insts).enumerate() {
        let at = AT.offset(4 * i as i64);
        prop_assert_eq!(
            isa.encode(inst, at).expect("single encode agrees"),
            word,
            "word {} of the sequence",
            i
        );
    }
    let decoded = match isa.decode_region(&words, AT) {
        Ok(d) => d,
        Err(e) => {
            return Err(TestCaseError::fail(format!(
                "{isa} cannot decode its own region: {e}"
            )))
        }
    };
    let back: Vec<Inst> = decoded.into_iter().map(|(_, i)| i).collect();
    prop_assert_eq!(&back[..], insts, "{} region round trip", isa);
    Ok(())
}

/// The subset boundary is explicit, not a decode surprise: every
/// house-only shape comes back [`wcet_predictability::isa::IsaError::Unencodable`]
/// from the RV32I encoder.
#[test]
fn rv32i_rejects_house_only_shapes_as_unencodable() {
    use wcet_predictability::isa::IsaError;
    let shapes = [
        Inst::Select {
            rd: Reg::new(1),
            rc: Reg::new(2),
            rt: Reg::new(3),
            rf: Reg::new(4),
        },
        Inst::FAlu {
            op: FAluOp::FAdd,
            fd: FReg::new(0),
            fs1: FReg::new(1),
            fs2: FReg::new(2),
        },
        Inst::FBranch {
            cond: FCond::FEq,
            fs1: FReg::new(0),
            fs2: FReg::new(1),
            target: AT,
        },
        Inst::FMov {
            fd: FReg::new(0),
            rs: Reg::new(1),
        },
        Inst::FCvt {
            fd: FReg::new(0),
            rs: Reg::new(1),
        },
        Inst::Alloc {
            rd: Reg::new(1),
            rs: Reg::new(2),
        },
        Inst::AluImm {
            op: AluOp::Sub,
            rd: Reg::new(1),
            rs1: Reg::new(1),
            imm: 1,
        },
        Inst::JumpInd { rs: Reg::LINK },
    ];
    for inst in &shapes {
        assert!(
            matches!(
                IsaKind::Rv32i.encode(inst, AT),
                Err(IsaError::Unencodable { isa: "rv32i", .. })
            ),
            "{inst:?} must be unencodable on rv32i"
        );
        // ... while the house backend takes every one of them.
        IsaKind::House
            .encode(inst, AT)
            .unwrap_or_else(|e| panic!("house encodes {inst:?}: {e}"));
    }
}

// ---------------------------------------------------------------------------
// The artifact-cache key space forks on the ISA tag.
// ---------------------------------------------------------------------------

/// Two configs differing in *nothing but* the ISA tag fingerprint
/// differently — the fork does not depend on the machine model also
/// changing. And `for_isa(House)` is exactly the pre-multi-ISA default,
/// so house cache keys (and goldens) are unchanged by the boundary.
#[test]
fn config_fingerprint_forks_on_the_isa_tag_alone() {
    let house = AnalyzerConfig::new();
    let rv = AnalyzerConfig {
        isa: IsaKind::Rv32i,
        ..AnalyzerConfig::new()
    };
    assert_ne!(
        config_fingerprint(&house),
        config_fingerprint(&rv),
        "the fingerprint must fork on the ISA tag alone"
    );
    assert_eq!(
        config_fingerprint(&AnalyzerConfig::for_isa(IsaKind::House)),
        config_fingerprint(&house),
        "for_isa(House) is the pre-multi-ISA configuration"
    );
}

fn wcet(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_wcet"))
        .args(args)
        .output()
        .expect("spawning wcet binary")
}

/// Drops the wall-clock lines from a report so runs compare byte-for-byte.
fn strip_timings(stdout: &[u8]) -> String {
    String::from_utf8_lossy(stdout)
        .lines()
        .filter(|l| !l.contains("Phase") && !l.contains("Graph") && !l.contains("Analysis:"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// End to end through the binary: warming the store under one ISA buys
/// nothing under the other (zero artifact hits — the key spaces are
/// disjoint), while each ISA's own warm rerun hits everything and prints
/// a byte-identical report.
#[test]
fn artifact_cache_space_forks_on_the_isa() {
    let dir = std::env::temp_dir().join(format!("wcet-isa-fork-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    // A source portable across backends: `li`/`subi` assemble on both
    // (the rv32 builder normalizes `subi` to `addi` with a negated
    // immediate), so the *same bytes on disk* exercise both key spaces.
    let program = dir.join("countdown.s");
    std::fs::write(
        &program,
        ".org 0x1000\nmain:\n li r1, 4\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n halt\n",
    )
    .expect("write program");
    let cache_dir = dir.join("cache");

    let run = |isa: &str| {
        let out = wcet(&[
            program.to_str().unwrap(),
            "--isa",
            isa,
            "--cache-dir",
            cache_dir.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "--isa {isa} run exits 0: {out:?}");
        (
            strip_timings(&out.stdout),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };

    let (house_cold_out, house_cold_err) = run("house");
    assert!(
        house_cold_err.contains("0/1 function artifact(s) hit"),
        "house cold run misses:\n{house_cold_err}"
    );
    let (house_warm_out, house_warm_err) = run("house");
    assert!(
        house_warm_err.contains("1/1 function artifact(s) hit"),
        "house warm run replays:\n{house_warm_err}"
    );
    assert_eq!(house_cold_out, house_warm_out, "house warm == cold");

    // Same source, same cache directory, other backend: nothing replays.
    let (rv_cold_out, rv_cold_err) = run("rv32i");
    assert!(
        rv_cold_err.contains("0/1 function artifact(s) hit"),
        "a house-warmed store must yield zero rv32i hits:\n{rv_cold_err}"
    );
    let (rv_warm_out, rv_warm_err) = run("rv32i");
    assert!(
        rv_warm_err.contains("1/1 function artifact(s) hit"),
        "rv32i warm run replays:\n{rv_warm_err}"
    );
    assert_eq!(rv_cold_out, rv_warm_out, "rv32i warm == cold");

    assert_ne!(
        house_cold_out, rv_cold_out,
        "the two backends analyze to different reports"
    );

    // And back: the rv32i traffic did not evict or alias the house keys.
    let (house_again_out, house_again_err) = run("house");
    assert!(
        house_again_err.contains("1/1 function artifact(s) hit"),
        "house artifacts survive rv32i traffic:\n{house_again_err}"
    );
    assert_eq!(house_again_out, house_cold_out);

    std::fs::remove_dir_all(&dir).ok();
}
