//! Integration tests for the service-shaped front ends: `wcet serve`
//! (stdio and Unix-socket modes), batch error isolation, the manifest
//! comment fix, multi-process shared-cache races, and GC under a
//! concurrent writer.
//!
//! The identity oracle mirrors `tests/cli_smoke.rs`: reports must match
//! byte-for-byte once the wall-clock phase lines are stripped.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};

use wcet_predictability::core::workload;

fn wcet(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wcet"))
        .args(args)
        .output()
        .expect("run wcet binary")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wcet-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Drops the phase lines that carry wall clocks; everything else must
/// match byte-for-byte.
fn strip_timings(stdout: &[u8]) -> String {
    String::from_utf8_lossy(stdout)
        .lines()
        .filter(|l| !l.contains("Phase") && !l.contains("Graph") && !l.contains("Analysis:"))
        .collect::<Vec<_>>()
        .join("\n")
}

struct Frame {
    kind: String,
    seq: u64,
    payload: Vec<u8>,
}

/// Parses a serve response stream into its frames plus the final
/// `bye <requests> <failures>` totals.
fn parse_frames(mut bytes: &[u8]) -> (Vec<Frame>, Option<(u64, u64)>) {
    let mut frames = Vec::new();
    let mut bye = None;
    while !bytes.is_empty() {
        let nl = bytes
            .iter()
            .position(|&b| b == b'\n')
            .expect("frame header line");
        let header = std::str::from_utf8(&bytes[..nl]).expect("utf8 header");
        let mut fields = header.split_whitespace();
        let kind = fields.next().expect("frame kind").to_owned();
        bytes = &bytes[nl + 1..];
        if kind == "bye" {
            let requests = fields.next().expect("bye requests").parse().expect("u64");
            let failures = fields.next().expect("bye failures").parse().expect("u64");
            assert!(bytes.is_empty(), "bye is the last frame");
            bye = Some((requests, failures));
            break;
        }
        let seq: u64 = fields.next().expect("frame seq").parse().expect("u64");
        let len: usize = fields.next().expect("frame len").parse().expect("usize");
        assert!(bytes.len() >= len, "frame payload complete");
        frames.push(Frame {
            kind,
            seq,
            payload: bytes[..len].to_vec(),
        });
        bytes = &bytes[len..];
    }
    (frames, bye)
}

/// Runs `wcet serve --stdio`, feeding `requests` and returning parsed
/// frames, the bye totals, and the exit status.
fn serve_stdio(requests: &str, extra_args: &[&str]) -> (Vec<Frame>, Option<(u64, u64)>, Output) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_wcet"))
        .arg("serve")
        .arg("--stdio")
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn wcet serve --stdio");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(requests.as_bytes())
        .expect("write requests");
    let output = child.wait_with_output().expect("serve output");
    let (frames, bye) = parse_frames(&output.stdout);
    (frames, bye, output)
}

#[test]
fn batch_isolates_failing_requests_and_reports_them_in_the_exit_code() {
    let dir = scratch_dir("batch-isolation");
    let good = dir.join("good.s");
    std::fs::write(
        &good,
        "main:\n li r1, 4\nl:\n subi r1, r1, 1\n bne r1, r0, l\n halt\n",
    )
    .expect("write program");
    let bad_syntax = dir.join("bad.s");
    std::fs::write(&bad_syntax, "main:\n frobnicate r1\n").expect("write program");
    let manifest = dir.join("batch.txt");
    std::fs::write(
        &manifest,
        "good.s\nmissing.s\nbad.s\ngood.s extra fields here\ngood.s\n",
    )
    .expect("write manifest");
    let cache = dir.join("cache");

    let out = wcet(&[
        "batch",
        manifest.to_str().unwrap(),
        "--cache-dir",
        cache.to_str().unwrap(),
    ]);
    assert!(
        !out.status.success(),
        "failed requests must surface in the exit code"
    );
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert_eq!(
        stdout.matches("── batch: ").count(),
        2,
        "both good requests analyzed:\n{stdout}"
    );
    for needle in [
        "batch.txt:2: cannot read",
        "batch.txt:3:",
        "batch.txt:4: expected `<program.s> [annotations] [--isa <name>]`",
        "batch: 3 of 5 request(s) failed",
    ] {
        assert!(stderr.contains(needle), "missing `{needle}`:\n{stderr}");
    }
    // The stream kept going: request 5 hit the artifacts request 1 stored.
    assert!(
        stderr.contains("batch done: 2 request(s), 1/2 function artifact(s) served from cache"),
        "summary line intact after failures:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_stdio_mixed_isa_stream() {
    let dir = scratch_dir("stdio-mixed-isa");
    let prog = dir.join("p.s");
    // In the RV32I subset, so the same source analyzes on both backends.
    std::fs::write(
        &prog,
        "main:\n li r1, 4\nl:\n subi r1, r1, 1\n bne r1, r0, l\n halt\n",
    )
    .expect("write program");
    let p = prog.to_str().unwrap();

    let requests = format!("{p}\n{p} --isa rv32i\n{p} --isa house\n@shutdown\n");
    let (frames, bye, out) = serve_stdio(&requests, &[]);
    assert!(out.status.success());
    assert_eq!(bye, Some((3, 0)));
    assert_eq!(frames.len(), 3);
    for (i, frame) in frames.iter().enumerate() {
        assert_eq!(frame.kind, "ok", "request {} succeeds", i + 1);
        assert_eq!(frame.seq, (i + 1) as u64);
    }
    // Identity oracle per ISA: each frame matches the single-shot run
    // with the same selector byte-for-byte modulo wall clocks.
    let house_single = wcet(&[p]);
    let rv32_single = wcet(&[p, "--isa", "rv32i"]);
    assert!(house_single.status.success() && rv32_single.status.success());
    assert_eq!(
        strip_timings(&frames[0].payload),
        strip_timings(&house_single.stdout),
        "default request = single-shot house report"
    );
    assert_eq!(
        strip_timings(&frames[1].payload),
        strip_timings(&rv32_single.stdout),
        "--isa rv32i request = single-shot rv32i report"
    );
    assert_eq!(
        strip_timings(&frames[2].payload),
        strip_timings(&house_single.stdout),
        "--isa house override = the default backend"
    );
    // And the two backends genuinely disagree (different timing models),
    // so any cross-ISA report sharing would be visible here.
    assert_ne!(
        strip_timings(&frames[0].payload),
        strip_timings(&frames[1].payload),
        "house and rv32i reports must differ"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_manifest_isa_tokens_select_backends() {
    let dir = scratch_dir("batch-mixed-isa");
    let prog = dir.join("p.s");
    std::fs::write(
        &prog,
        "main:\n li r1, 3\nl:\n subi r1, r1, 1\n bne r1, r0, l\n halt\n",
    )
    .expect("write program");
    let manifest = dir.join("batch.txt");
    // Relative paths resolve against the manifest; per-line `--isa`
    // overrides the CLI default (rv32i here, so line 1 is the override).
    std::fs::write(&manifest, "p.s --isa house\np.s\n").expect("write manifest");

    let out = wcet(&["batch", manifest.to_str().unwrap(), "--isa", "rv32i"]);
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "mixed-ISA batch succeeds:\n{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert_eq!(stdout.matches("── batch: ").count(), 2, "{stdout}");
    // The two runs differ: same source, different backend bounds.
    let house_single = wcet(&[prog.to_str().unwrap()]);
    let rv32_single = wcet(&[prog.to_str().unwrap(), "--isa", "rv32i"]);
    let wcet_line = |o: &Output| {
        String::from_utf8_lossy(&o.stdout)
            .lines()
            .find(|l| l.starts_with("task WCET bound:"))
            .expect("wcet line")
            .to_owned()
    };
    assert!(stdout.contains(&wcet_line(&house_single)), "{stdout}");
    assert!(stdout.contains(&wcet_line(&rv32_single)), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn manifest_paths_may_contain_hash_characters() {
    let dir = scratch_dir("batch-hash");
    let subdir = dir.join("build#42");
    std::fs::create_dir_all(&subdir).expect("subdir with # in name");
    std::fs::write(
        subdir.join("prog#1.s"),
        "main:\n li r1, 2\nl:\n subi r1, r1, 1\n bne r1, r0, l\n halt\n",
    )
    .expect("write program");
    let manifest = dir.join("batch.txt");
    std::fs::write(
        &manifest,
        "# full-line comment\nbuild#42/prog#1.s # trailing comment\n",
    )
    .expect("write manifest");

    let out = wcet(&["batch", manifest.to_str().unwrap()]);
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "a `#` inside a path is not a comment:\n{stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        stdout.contains("── batch: ") && stdout.contains("build#42/prog#1.s"),
        "request banner names the hash-bearing path:\n{stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_stdio_responses_match_single_shot_goldens_for_the_corpus() {
    let dir = scratch_dir("corpus");
    let corpus = workload::corpus();
    assert!(corpus.len() >= 13, "corpus carries the 13 workloads");

    // Golden: one single-shot run per workload source. Some corpus images
    // append data segments programmatically, so re-assembly can fail or
    // report unresolved jumps — the daemon must mirror whatever the
    // single-shot front end does, success or failure.
    let mut requests = String::new();
    let mut goldens = Vec::new();
    for w in &corpus {
        let program = dir.join(format!("{}.s", w.name));
        std::fs::write(&program, &w.source).expect("write workload source");
        let golden = wcet(&[program.to_str().unwrap()]);
        requests.push_str(&format!("{}\n", program.display()));
        goldens.push((w.name, golden));
    }
    // One annotated request exercises the two-field line: annotations
    // ride per request, exactly like `--annotations` in single-shot.
    let annotated = workload::persistence_killer();
    let program = dir.join("persistence_killer.s");
    std::fs::write(&program, &annotated.source).expect("write workload source");
    let annots = dir.join("persistence_killer.annot");
    let header = annotated.image.symbol("loop").expect("loop label");
    std::fs::write(&annots, format!("loop {header} bound 48;\n")).expect("write annotations");
    let golden = wcet(&[
        program.to_str().unwrap(),
        "--annotations",
        annots.to_str().unwrap(),
    ]);
    requests.push_str(&format!("{} {}\n", program.display(), annots.display()));
    goldens.push(("persistence_killer+annotations", golden));
    requests.push_str("@shutdown\n");

    let (frames, bye, output) = serve_stdio(&requests, &[]);
    assert!(output.status.success(), "clean daemon shutdown exits 0");
    assert_eq!(frames.len(), goldens.len(), "one frame per request");
    let mut failures = 0;
    for (idx, (frame, (name, golden))) in frames.iter().zip(&goldens).enumerate() {
        assert_eq!(
            frame.seq,
            idx as u64 + 1,
            "{name}: frames arrive in request order"
        );
        if golden.status.success() {
            assert_eq!(frame.kind, "ok", "{name}: single-shot succeeded");
            assert_eq!(
                strip_timings(&frame.payload),
                strip_timings(&golden.stdout),
                "{name}: serve response diverged from single-shot stdout"
            );
        } else {
            assert_eq!(frame.kind, "err", "{name}: single-shot failed");
            failures += 1;
        }
    }
    let (requests_total, failures_total) = bye.expect("bye frame");
    assert_eq!(requests_total, goldens.len() as u64);
    assert_eq!(failures_total, failures);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_unix_socket_serves_connections_and_shuts_down_cleanly() {
    let dir = scratch_dir("socket");
    let program = dir.join("prog.s");
    std::fs::write(
        &program,
        "main:\n li r1, 6\nl:\n subi r1, r1, 1\n bne r1, r0, l\n halt\n",
    )
    .expect("write program");
    let socket = dir.join("wcet.sock");
    let cache = dir.join("cache");
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_wcet"))
        .args([
            "serve",
            socket.to_str().unwrap(),
            "--cache-dir",
            cache.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    for _ in 0..200 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert!(socket.exists(), "daemon bound its socket");

    let talk = |lines: &str| -> Vec<u8> {
        let mut stream = UnixStream::connect(&socket).expect("connect");
        stream.write_all(lines.as_bytes()).expect("send requests");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut response = Vec::new();
        stream.read_to_end(&mut response).expect("read frames");
        response
    };

    let request = format!("{}\nmissing.s\n{0}\n", program.display());
    let cold = talk(&request);
    let warm = talk(&format!("{request}@shutdown\n"));
    let status = daemon.wait().expect("daemon exit");
    assert!(status.success(), "@shutdown exits the daemon cleanly");
    assert!(!socket.exists(), "socket removed on shutdown");

    for (label, bytes) in [("cold", &cold), ("warm", &warm)] {
        let (frames, bye) = parse_frames(bytes);
        assert_eq!(bye, Some((3, 1)), "{label} connection totals");
        assert_eq!(
            frames.iter().map(|f| f.kind.as_str()).collect::<Vec<_>>(),
            ["ok", "err", "ok"],
            "{label}: the poison request is isolated mid-stream"
        );
        assert_eq!(frames[0].seq, 1);
        assert_eq!(frames[2].seq, 3);
    }
    let (cold_frames, _) = parse_frames(&cold);
    let (warm_frames, _) = parse_frames(&warm);
    assert_eq!(
        strip_timings(&cold_frames[0].payload),
        strip_timings(&warm_frames[0].payload),
        "cache-warm connection serves byte-identical reports"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Writes `count` distinct single-loop programs and a manifest listing
/// them all, returning the manifest path.
fn write_variant_manifest(dir: &Path, count: usize) -> PathBuf {
    let mut manifest = String::new();
    for i in 0..count {
        let name = format!("v{i}.s");
        std::fs::write(
            dir.join(&name),
            format!(
                "main:\n li r1, {}\nl:\n subi r1, r1, 1\n bne r1, r0, l\n halt\n",
                i + 2
            ),
        )
        .expect("write variant");
        manifest.push_str(&name);
        manifest.push('\n');
    }
    let path = dir.join("variants.txt");
    std::fs::write(&path, manifest).expect("write manifest");
    path
}

#[test]
fn racing_batch_processes_share_one_cache_without_corruption() {
    let dir = scratch_dir("race");
    let manifest = write_variant_manifest(&dir, 12);
    let cache = dir.join("cache");
    std::fs::create_dir_all(cache.join("fn")).expect("pre-create cache");
    // A crashed writer's dropping: swept when the racers open the cache.
    let stale_tmp = cache.join("fn").join("deadbeef.art.tmp.4000000000");
    std::fs::write(&stale_tmp, b"torn").expect("plant stale tmp");

    // Reference: the same manifest, no cache.
    let reference = wcet(&["batch", manifest.to_str().unwrap()]);
    assert!(reference.status.success());

    let spawn = || {
        Command::new(env!("CARGO_BIN_EXE_wcet"))
            .args([
                "batch",
                manifest.to_str().unwrap(),
                "--cache-dir",
                cache.to_str().unwrap(),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn racer")
    };
    let racers = [spawn(), spawn()];
    for racer in racers {
        let out = racer.wait_with_output().expect("racer output");
        assert!(
            out.status.success(),
            "racing batch exits 0: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            strip_timings(&out.stdout),
            strip_timings(&reference.stdout),
            "racing batch reports are byte-identical to the uncached run"
        );
    }
    assert!(!stale_tmp.exists(), "stale tmp swept on cache open");
    for kind in ["fn", "fp", "ipet"] {
        for entry in std::fs::read_dir(cache.join(kind)).expect("cache subdir") {
            let name = entry.expect("entry").file_name();
            assert!(
                !name.to_string_lossy().contains(".tmp."),
                "no tmp droppings after a clean race: {name:?}"
            );
        }
    }
    // The store the racers left behind replays cleanly.
    let warm = wcet(&[
        "batch",
        manifest.to_str().unwrap(),
        "--cache-dir",
        cache.to_str().unwrap(),
    ]);
    assert!(warm.status.success());
    assert_eq!(
        strip_timings(&warm.stdout),
        strip_timings(&reference.stdout)
    );
    assert!(
        String::from_utf8_lossy(&warm.stderr).contains("0 IPET solve(s)"),
        "post-race store serves every request from cache"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gc_shrinks_a_live_cache_below_the_watermark_without_corrupting_it() {
    let dir = scratch_dir("gc-race");
    let manifest = write_variant_manifest(&dir, 24);
    let cache = dir.join("cache");
    let reference = wcet(&["batch", manifest.to_str().unwrap()]);
    assert!(reference.status.success());

    // A writer streams 24 requests into the cache while gc passes run
    // against the same directory mid-flight.
    let writer = Command::new(env!("CARGO_BIN_EXE_wcet"))
        .args([
            "batch",
            manifest.to_str().unwrap(),
            "--cache-dir",
            cache.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn writer");
    let max_bytes = "2k";
    for _ in 0..5 {
        let gc = wcet(&[
            "gc",
            "--cache-dir",
            cache.to_str().unwrap(),
            "--max-bytes",
            max_bytes,
        ]);
        assert!(
            gc.status.success(),
            "gc survives a concurrent writer: {}",
            String::from_utf8_lossy(&gc.stderr)
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let out = writer.wait_with_output().expect("writer output");
    assert!(
        out.status.success(),
        "writer survives concurrent eviction: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        strip_timings(&out.stdout),
        strip_timings(&reference.stdout),
        "eviction mid-stream never changes analysis results"
    );

    // A final pass lands (and stays) under the watermark.
    let gc = wcet(&[
        "gc",
        "--cache-dir",
        cache.to_str().unwrap(),
        "--max-bytes",
        max_bytes,
    ]);
    assert!(gc.status.success());
    let stdout = String::from_utf8_lossy(&gc.stdout).into_owned();
    let kept: u64 = stdout
        .split(" evicted (")
        .nth(1)
        .and_then(|rest| rest.split(" bytes kept").next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("gc stats line: {stdout}"));
    assert!(kept <= 2048, "store fits under the watermark: {stdout}");

    // Whatever survived still replays correctly.
    let warm = wcet(&[
        "batch",
        manifest.to_str().unwrap(),
        "--cache-dir",
        cache.to_str().unwrap(),
    ]);
    assert!(warm.status.success());
    assert_eq!(
        strip_timings(&warm.stdout),
        strip_timings(&reference.stdout)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
