//! Minimized reproducers from the differential fuzzing campaign
//! (`wcet fuzz`), pinned so fixed bugs stay fixed without re-running the
//! fuzzer, plus generator self-tests and the shrinker's own acceptance
//! test against a deliberately planted unsoundness.

use wcet_predictability::core::fuzz::{
    check_program, generate, input_vectors, lower, program_seed, run_campaign, CheckKind, FuncSpec,
    FuzzOptions, OracleOptions, ProgSpec, Sabotage, Stmt,
};
use wcet_predictability::isa::interp::{Interpreter, MachineConfig};
use wcet_predictability::isa::{AluOp, Cond, IsaKind};

fn assert_sound(spec: &ProgSpec, seed: u64) {
    let gp = lower(spec).expect("reproducer lowers");
    let inputs = input_vectors(seed);
    if let Some(v) = check_program(&gp, &inputs, &OracleOptions::default()) {
        panic!(
            "oracle violation on pinned reproducer ({:?}): {v}",
            spec.isa
        );
    }
}

/// Found by `wcet fuzz --seed 1` (program #38, rv32i, shrunk to 19
/// instructions): with caches at context depth 0, a callee's cache
/// fixpoint started from the *cold* ACS, whose empty may-cache proves
/// every line absent and classifies the callee's entry fetches
/// always-miss. The real machine hits those fetches whenever the caller
/// warmed the line — here the `call` fetch itself pulls the callee's
/// first two instructions into the shared icache line — so the analysis
/// BCET (108) exceeded the observed cycles (99). Callees now start from
/// the *unknown* ACS (may poisoned, absence never proven); only the task
/// entry is genuinely cold.
#[test]
fn cold_callee_entry_must_not_inflate_bcet() {
    for isa in [IsaKind::Rv32i, IsaKind::House] {
        let spec = ProgSpec {
            isa,
            // Flash: 10-cycle reads make the 9-cycle hit/miss gap visible.
            code_base: 0x0010_0000,
            funcs: vec![
                FuncSpec {
                    level: 0,
                    body: vec![
                        Stmt::Store { rs: 0, slot: 13 },
                        Stmt::Alu {
                            op: AluOp::Slt,
                            rd: 2,
                            rs1: 7,
                            rs2: 2,
                        },
                        Stmt::Alu {
                            op: AluOp::Slt,
                            rd: 2,
                            rs1: 9,
                            rs2: 8,
                        },
                        Stmt::Call { callee: 1 },
                    ],
                },
                // The callee body is empty: its prologue/epilogue alone
                // shares an icache line with the caller's call site.
                FuncSpec {
                    level: 1,
                    body: vec![],
                },
            ],
        };
        assert_sound(&spec, 10452641423838070007);
    }
}

/// The same shape with the roles reversed: a callee that *does* work in
/// SRAM code, exercising the unknown-entry ACS for the data cache too.
#[test]
fn sram_callee_with_data_traffic_stays_sound() {
    for isa in [IsaKind::House, IsaKind::Rv32i] {
        let spec = ProgSpec {
            isa,
            code_base: 0x1000,
            funcs: vec![
                FuncSpec {
                    level: 0,
                    body: vec![
                        Stmt::Store { rs: 1, slot: 3 },
                        Stmt::Call { callee: 1 },
                        Stmt::Load { rd: 2, slot: 3 },
                    ],
                },
                FuncSpec {
                    level: 1,
                    body: vec![
                        Stmt::Load { rd: 4, slot: 3 },
                        Stmt::Store { rs: 4, slot: 5 },
                    ],
                },
            ],
        };
        assert_sound(&spec, 7);
    }
}

/// `Interval::mul` reduces fully-wrapping products modulo 2³² (PR 7 left
/// it "top on possible wrap"): programs whose values ride on `mul`/`mulhu`
/// wraps must stay inside the analyzer's bounds on both ISAs — on RV32I
/// these lower to the M-extension register forms.
#[test]
fn wrapping_mul_and_mulhu_programs_stay_sound() {
    for isa in [IsaKind::House, IsaKind::Rv32i] {
        let spec = ProgSpec {
            isa,
            code_base: 0x1000,
            funcs: vec![FuncSpec {
                level: 0,
                body: vec![
                    Stmt::Li {
                        rd: 0,
                        value: 1 << 20,
                    },
                    // r2 = 2²⁰ · 2²⁰ mod 2³² = 0 (a full wrap the domain
                    // now tracks exactly).
                    Stmt::Alu {
                        op: AluOp::Mul,
                        rd: 1,
                        rs1: 0,
                        rs2: 0,
                    },
                    Stmt::Li {
                        rd: 2,
                        value: 0xffff_ffff,
                    },
                    // MAX · MAX wraps to 1; mulhu keeps the high half.
                    Stmt::Alu {
                        op: AluOp::Mul,
                        rd: 3,
                        rs1: 2,
                        rs2: 2,
                    },
                    Stmt::Alu {
                        op: AluOp::Mulhu,
                        rd: 4,
                        rs1: 2,
                        rs2: 2,
                    },
                    // Fold the products into memory and a branch so the
                    // value analysis result is load-bearing.
                    Stmt::Store { rs: 3, slot: 1 },
                    Stmt::Diamond {
                        cond: wcet_predictability::isa::Cond::Eq,
                        rs1: 1,
                        rs2: 9, // index past the register files = r0
                        then_body: vec![Stmt::Store { rs: 4, slot: 2 }],
                        else_body: vec![Stmt::Load { rd: 5, slot: 2 }],
                    },
                ],
            }],
        };
        assert_sound(&spec, 99);
    }
}

/// Generator self-test at the integration level: a slice of the seeded
/// corpus lowers, terminates, respects its annotations, and stays inside
/// the analyzer's bounds across the whole oracle matrix on both ISAs.
#[test]
fn seeded_corpus_slice_is_sound_on_both_isas() {
    for isa in [IsaKind::House, IsaKind::Rv32i] {
        for index in 0..8u64 {
            let seed = program_seed(1, index, isa);
            let spec = generate(seed, isa);
            let gp = lower(&spec)
                .unwrap_or_else(|e| panic!("seed {seed} ({}) failed to lower: {e}", isa.name()));
            let inputs = input_vectors(seed);
            if let Some(v) = check_program(&gp, &inputs, &OracleOptions::default()) {
                panic!("seed {seed} ({}): {v}", isa.name());
            }
        }
    }
}

/// Generated annotations match real trip counts: the interpreter executes
/// an annotated call-bearing loop exactly `bound` times (measured at the
/// callee's entry, which runs once per iteration).
#[test]
fn emitted_annotations_match_observed_trip_counts() {
    for isa in [IsaKind::House, IsaKind::Rv32i] {
        let bound = 6u16;
        let spec = ProgSpec {
            isa,
            code_base: 0x1000,
            funcs: vec![
                FuncSpec {
                    level: 0,
                    body: vec![Stmt::Loop {
                        bound,
                        annotate: true,
                        body: vec![Stmt::Call { callee: 1 }],
                    }],
                },
                FuncSpec {
                    level: 1,
                    body: vec![Stmt::Load { rd: 1, slot: 0 }],
                },
            ],
        };
        let gp = lower(&spec).expect("lowers");
        assert!(
            gp.annotations.contains("bound 6"),
            "call-bearing loop must be annotated: {:?}",
            gp.annotations
        );
        let mut interp = Interpreter::with_config(&gp.image, MachineConfig::simple_for(isa));
        let outcome = interp.run(1_000_000).expect("terminates");
        let callee_entry = gp.image.symbol("f1").expect("f1 exists");
        assert_eq!(
            outcome.profile.get(&callee_entry).copied(),
            Some(u64::from(bound)),
            "callee must run once per annotated iteration ({})",
            isa.name()
        );
        assert_sound(&spec, 11);
    }
}

/// Pipeline-timing stress pinned from the matrix extension (PR 10): a
/// branch ladder inside an annotated loop around a call. Every shape the
/// abstract pipeline has to get right at once — forward/backward BTFNT
/// edges, the drained state after a mispredict, call-site residual
/// snapshots feeding the callee's entry, and the loop fixpoint over
/// residual-latency vectors. `check_program` runs the full oracle matrix,
/// so this pins the `pipeline` cases (with and without caches) against
/// the cycle-exact pipelined interpreter on both ISAs.
#[test]
fn branch_ladders_stay_sound_under_pipeline_timing() {
    for isa in [IsaKind::House, IsaKind::Rv32i] {
        let spec = ProgSpec {
            isa,
            code_base: 0x0010_0000,
            funcs: vec![
                FuncSpec {
                    level: 0,
                    body: vec![
                        Stmt::Li { rd: 1, value: 3 },
                        Stmt::Loop {
                            bound: 7,
                            annotate: true,
                            body: vec![
                                Stmt::Diamond {
                                    cond: Cond::Lt,
                                    rs1: 0,
                                    rs2: 1,
                                    then_body: vec![Stmt::Load { rd: 2, slot: 1 }],
                                    else_body: vec![Stmt::Store { rs: 2, slot: 2 }],
                                },
                                Stmt::Call { callee: 1 },
                                Stmt::Diamond {
                                    cond: Cond::Ne,
                                    rs1: 2,
                                    rs2: 0,
                                    then_body: vec![Stmt::Alu {
                                        op: AluOp::Add,
                                        rd: 3,
                                        rs1: 3,
                                        rs2: 1,
                                    }],
                                    else_body: vec![],
                                },
                            ],
                        },
                    ],
                },
                FuncSpec {
                    level: 1,
                    body: vec![
                        Stmt::Diamond {
                            cond: Cond::Geu,
                            rs1: 1,
                            rs2: 0,
                            then_body: vec![Stmt::Load { rd: 4, slot: 3 }],
                            else_body: vec![Stmt::Li { rd: 4, value: 9 }],
                        },
                        Stmt::Store { rs: 4, slot: 4 },
                    ],
                },
            ],
        };
        assert_sound(&spec, 0x9_1010);
    }
}

/// The shrinker's own acceptance test: a deliberately planted unsoundness
/// (the analyzer silently modeling a cache-less machine while the real one
/// has caches) is caught by the oracle and shrunk to a reproducer of at
/// most 10 instructions.
#[test]
fn planted_cache_unsoundness_is_caught_and_shrunk() {
    let report = run_campaign(&FuzzOptions {
        programs: 5,
        seed: 1,
        sabotage: Sabotage::AnalyzeWithoutCaches,
        thread_check_every: 0,
        cache_check_every: 0,
        progress_every: 0,
        ..FuzzOptions::default()
    });
    let failure = report
        .failure
        .expect("dropping every cache penalty must violate the bounds oracle");
    assert!(
        matches!(failure.violation.kind, CheckKind::Bounds { .. }),
        "expected a bounds violation, got {:?}",
        failure.violation.kind
    );
    let insts = failure.minimized.image.code_len();
    assert!(
        insts <= 10,
        "shrinker left {insts} instructions (> 10):\n{failure}"
    );
}
