//! Incremental-vs-fresh equivalence: for random single-function
//! mutations over workload images, the incrementally recomputed report
//! must be **byte-identical** to a from-scratch analysis, untouched leaf
//! functions must be genuine artifact-cache hits, and only the mutated
//! function plus its transitive callers may re-solve.

use std::path::PathBuf;

use proptest::prelude::*;

use wcet_predictability::core::analyzer::{AnalysisReport, AnalyzerConfig, WcetAnalyzer};
use wcet_predictability::core::incr::ArtifactCache;
use wcet_predictability::core::workload;
use wcet_predictability::isa::interp::MachineConfig;

/// A fresh per-test cache directory (cleaned up by the guard).
struct TempCache {
    dir: PathBuf,
}

impl TempCache {
    fn new(tag: &str) -> TempCache {
        let dir = std::env::temp_dir().join(format!(
            "wcet-incr-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempCache { dir }
    }

    fn open(&self) -> ArtifactCache {
        ArtifactCache::open(&self.dir).expect("cache directory opens")
    }
}

impl Drop for TempCache {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// The canonical comparison form: real clocks zeroed, cache statistics
/// dropped (they legitimately differ between cached and fresh runs),
/// everything else byte-compared — per-function results, worst paths,
/// guideline findings, phase counters, the lot.
fn canonical(mut report: AnalysisReport) -> String {
    report.trace.phase_times = Default::default();
    report.trace.phase_work_times = Default::default();
    report.incr = None;
    format!("{report:#?}")
}

fn config(machine: MachineConfig, unrolling: bool, parallelism: Option<usize>) -> AnalyzerConfig {
    AnalyzerConfig {
        machine,
        unrolling,
        parallelism,
        ..AnalyzerConfig::new()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Mutate one random leaf of a fan-out workload: the warm incremental
    /// run must reproduce the from-scratch report byte for byte, hit the
    /// artifact cache for every untouched function, and re-solve IPET
    /// only for the mutated leaf and its (sole) caller.
    #[test]
    fn prop_single_function_mutation_replays_exactly(
        n in 3u32..10,
        victim_raw in 0u32..10,
        new_iters in 1u32..40,
        threads in prop_oneof![Just(None), Just(Some(1)), Just(Some(4))],
    ) {
        let victim = victim_raw % n;
        let base = workload::call_fanout_with(n, &[]);
        let mutated = workload::call_fanout_with(n, &[(victim, new_iters)]);
        let tmp = TempCache::new("prop");
        let mut cache = tmp.open();

        let analyzer = WcetAnalyzer::with_config(config(MachineConfig::simple(), false, threads));
        analyzer
            .analyze_incremental(&base.image, &mut cache)
            .expect("base analyzes");

        let warm = analyzer
            .analyze_incremental(&mutated.image, &mut cache)
            .expect("mutated analyzes incrementally");
        let stats = warm.incr.clone().expect("cached run carries stats");
        let fresh = analyzer.analyze(&mutated.image).expect("mutated analyzes fresh");
        prop_assert_eq!(
            canonical(warm),
            canonical(fresh),
            "incremental and from-scratch reports diverged (n {}, victim {})",
            n, victim
        );

        let total = (n + 1) as usize; // main + n leaves
        prop_assert_eq!(stats.functions, total);
        if new_iters == 4 + (victim % 7) * 3 {
            // The "mutation" reproduced the original body: nothing changed.
            prop_assert_eq!(stats.fn_hits, total);
            prop_assert_eq!(stats.dirty, 0);
        } else {
            prop_assert_eq!(stats.fn_misses, 1, "only the victim re-analyzes");
            prop_assert_eq!(stats.fn_hits, total - 1, "untouched functions are genuine hits");
            prop_assert_eq!(stats.dirty, 2, "victim + its caller (main)");
            prop_assert_eq!(stats.ipet_solves, 2, "victim + main re-solve");
            prop_assert_eq!(stats.ipet_hits, total - 2, "clean functions replay IPET");
        }
    }

    /// Thread count must not change a warm replay: the same mutated image
    /// against the same primed cache renders identically at every
    /// parallelism setting, and matches the cacheless run.
    #[test]
    fn prop_warm_replay_thread_invariant(
        n in 3u32..8,
        victim_raw in 0u32..8,
        new_iters in 1u32..30,
    ) {
        let victim = victim_raw % n;
        let base = workload::call_fanout_with(n, &[]);
        let mutated = workload::call_fanout_with(n, &[(victim, new_iters)]);
        let tmp = TempCache::new("threads");
        let mut cache = tmp.open();
        WcetAnalyzer::with_config(config(MachineConfig::simple(), false, None))
            .analyze_incremental(&base.image, &mut cache)
            .expect("base analyzes");

        let reference = canonical(
            WcetAnalyzer::with_config(config(MachineConfig::simple(), false, None))
                .analyze(&mutated.image)
                .expect("fresh"),
        );
        for threads in [Some(1), Some(2), Some(8), None] {
            let warm = WcetAnalyzer::with_config(config(MachineConfig::simple(), false, threads))
                .analyze_incremental(&mutated.image, &mut cache)
                .expect("warm");
            prop_assert_eq!(
                canonical(warm),
                reference.clone(),
                "threads {:?} changed the warm report", threads
            );
        }
    }
}

/// The same replay guarantee under the cached machine model with virtual
/// unrolling: peeled CFGs are re-derived from artifacts, and the reports
/// still match from-scratch byte for byte.
#[test]
fn unrolled_cached_machine_replays_exactly() {
    let base = workload::call_fanout_with(6, &[]);
    let mutated = workload::call_fanout_with(6, &[(2, 17)]);
    let tmp = TempCache::new("unroll");
    let mut cache = tmp.open();
    let analyzer = WcetAnalyzer::with_config(config(MachineConfig::with_caches(), true, None));
    analyzer
        .analyze_incremental(&base.image, &mut cache)
        .expect("base analyzes");
    let warm = analyzer
        .analyze_incremental(&mutated.image, &mut cache)
        .expect("warm analyzes");
    let stats = warm.incr.clone().expect("stats present");
    assert_eq!(stats.fn_misses, 1, "one leaf changed: {stats:?}");
    let fresh = analyzer.analyze(&mutated.image).expect("fresh analyzes");
    assert_eq!(canonical(warm), canonical(fresh));
}

/// Every corpus workload replays byte-identically from a
/// warm cache, with zero IPET re-solves on the second run.
#[test]
fn all_workloads_replay_from_warm_cache() {
    for w in workload::corpus() {
        let tmp = TempCache::new(&format!("wl-{}", w.name));
        let mut cache = tmp.open();
        let analyzer = WcetAnalyzer::with_config(AnalyzerConfig {
            annotations: w.annotations.clone(),
            ..AnalyzerConfig::new()
        });
        let cold = analyzer
            .analyze_incremental(&w.image, &mut cache)
            .unwrap_or_else(|e| panic!("{} analyzes cold: {e}", w.name));
        let warm = analyzer
            .analyze_incremental(&w.image, &mut cache)
            .unwrap_or_else(|e| panic!("{} analyzes warm: {e}", w.name));
        let stats = warm.incr.clone().expect("stats present");
        assert_eq!(
            stats.fn_hits, stats.functions,
            "{}: every function replays: {stats:?}",
            w.name
        );
        assert_eq!(
            stats.ipet_solves, 0,
            "{}: nothing re-solves: {stats:?}",
            w.name
        );
        assert_eq!(stats.dirty, 0, "{}: nothing is dirty: {stats:?}", w.name);
        assert_eq!(
            canonical(cold),
            canonical(warm),
            "{}: warm replay diverged",
            w.name
        );
    }
}

/// A corrupted artifact file must degrade to a miss (fresh recompute),
/// never to a wrong report.
#[test]
fn corrupted_cache_degrades_to_miss() {
    let w = workload::call_fanout_with(4, &[]);
    let tmp = TempCache::new("corrupt");
    let analyzer = WcetAnalyzer::new();
    let reference = canonical(analyzer.analyze(&w.image).expect("fresh"));
    {
        let mut cache = tmp.open();
        analyzer
            .analyze_incremental(&w.image, &mut cache)
            .expect("cold run");
    }
    // Corrupt every stored artifact and solution on disk: alternately by
    // truncation (caught by length/digest checks) and by flipping a
    // payload byte (caught by the digest alone — the bytes still parse).
    for sub in ["fn", "ipet"] {
        for (i, entry) in std::fs::read_dir(tmp.dir.join(sub))
            .expect("cache dir exists")
            .enumerate()
        {
            let path = entry.expect("dir entry").path();
            let mut bytes = std::fs::read(&path).expect("readable");
            if i % 2 == 0 {
                bytes.truncate(bytes.len() / 2);
            } else {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x20;
            }
            std::fs::write(&path, &bytes).expect("writable");
        }
    }
    let mut cache = tmp.open();
    let report = analyzer
        .analyze_incremental(&w.image, &mut cache)
        .expect("analyzes despite corruption");
    let stats = report.incr.clone().expect("stats present");
    assert_eq!(
        stats.fn_hits, 0,
        "corrupted artifacts read as misses: {stats:?}"
    );
    assert_eq!(canonical(report), reference, "report is still exact");

    // The recompute must have *replaced* the bad bytes: a further run is
    // a clean all-hit replay.
    drop(cache);
    let mut cache = tmp.open();
    let healed = analyzer
        .analyze_incremental(&w.image, &mut cache)
        .expect("analyzes from the healed cache");
    let stats = healed.incr.clone().expect("stats present");
    assert_eq!(
        stats.fn_hits, stats.functions,
        "bad files were overwritten, not skipped: {stats:?}"
    );
    assert_eq!(canonical(healed), reference);
}
