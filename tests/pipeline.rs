//! Cross-crate integration tests of the Figure 1 pipeline: binary round
//! trips, workload analyses, annotation round trips, and the experiment
//! suite's headline orderings.

use proptest::prelude::*;

use wcet_predictability::core::analyzer::{AnalyzerConfig, WcetAnalyzer};
use wcet_predictability::core::{experiments, workload};
use wcet_predictability::guidelines::annot::AnnotationSet;
use wcet_predictability::isa::decode::decode;
use wcet_predictability::isa::encode::encode;
use wcet_predictability::isa::interp::{Interpreter, MachineConfig};
use wcet_predictability::isa::{Addr, AluOp, Cond, FAluOp, FCond, FReg, Inst, Reg, Width};

// ---------------------------------------------------------------------
// Encoder/decoder round trip over the whole instruction space
// ---------------------------------------------------------------------

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

fn arb_freg() -> impl Strategy<Value = FReg> {
    (0u8..8).prop_map(FReg::new)
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    // Branch displacements must stay inside the 16-bit word window; the
    // instruction is placed at 0x10_0000 and targets stay nearby.
    let near = (0i64..1000).prop_map(|w| Addr((0x10_0000 + 4 * w) as u32));
    prop_oneof![
        Just(Inst::Nop),
        Just(Inst::Halt),
        Just(Inst::Ret),
        (
            proptest::sample::select(AluOp::ALL.to_vec()),
            arb_reg(),
            arb_reg(),
            arb_reg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Inst::Alu { op, rd, rs1, rs2 }),
        (
            proptest::sample::select(AluOp::ALL.to_vec()),
            arb_reg(),
            arb_reg(),
            -32768i32..=32767
        )
            .prop_map(|(op, rd, rs1, imm)| {
                // Logical immediates are zero-extended 16-bit values.
                let imm = if matches!(op, AluOp::And | AluOp::Or | AluOp::Xor) {
                    imm & 0xffff
                } else {
                    imm
                };
                Inst::AluImm { op, rd, rs1, imm }
            }),
        (arb_reg(), 0u32..=0xffff).prop_map(|(rd, imm)| Inst::Lui { rd, imm }),
        (
            proptest::sample::select(Width::ALL.to_vec()),
            arb_reg(),
            arb_reg(),
            -32768i32..=32767
        )
            .prop_map(|(width, rd, base, offset)| Inst::Load {
                width,
                rd,
                base,
                offset
            }),
        (
            proptest::sample::select(Width::ALL.to_vec()),
            arb_reg(),
            arb_reg(),
            -32768i32..=32767
        )
            .prop_map(|(width, rs, base, offset)| Inst::Store {
                width,
                rs,
                base,
                offset
            }),
        (
            proptest::sample::select(Cond::ALL.to_vec()),
            arb_reg(),
            arb_reg(),
            near.clone()
        )
            .prop_map(|(cond, rs1, rs2, target)| Inst::Branch {
                cond,
                rs1,
                rs2,
                target
            }),
        near.clone().prop_map(|target| Inst::Jump { target }),
        near.clone().prop_map(|target| Inst::Call { target }),
        arb_reg().prop_map(|rs| Inst::JumpInd { rs }),
        arb_reg().prop_map(|rs| Inst::CallInd { rs }),
        (arb_reg(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rc, rt, rf)| Inst::Select {
            rd,
            rc,
            rt,
            rf
        }),
        (
            proptest::sample::select(FAluOp::ALL.to_vec()),
            arb_freg(),
            arb_freg(),
            arb_freg()
        )
            .prop_map(|(op, fd, fs1, fs2)| Inst::FAlu { op, fd, fs1, fs2 }),
        (
            proptest::sample::select(FCond::ALL.to_vec()),
            arb_freg(),
            arb_freg(),
            near
        )
            .prop_map(|(cond, fs1, fs2, target)| Inst::FBranch {
                cond,
                fs1,
                fs2,
                target
            }),
        (arb_freg(), arb_reg()).prop_map(|(fd, rs)| Inst::FMov { fd, rs }),
        (arb_freg(), arb_reg()).prop_map(|(fd, rs)| Inst::FCvt { fd, rs }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Inst::Alloc { rd, rs }),
    ]
}

proptest! {
    /// decode(encode(inst)) == inst for every encodable instruction.
    #[test]
    fn prop_encode_decode_round_trip(inst in arb_inst()) {
        let at = Addr(0x10_0000);
        let word = encode(&inst, at).expect("in-range instruction encodes");
        let back = decode(word, at).expect("well-formed word decodes");
        prop_assert_eq!(back, inst);
    }
}

// ---------------------------------------------------------------------
// Workloads end to end
// ---------------------------------------------------------------------

#[test]
fn every_annotated_workload_is_analyzable_and_sound() {
    let cases: Vec<(workload::Workload, Vec<(u32, u32)>)> = vec![
        (
            workload::flight_control(),
            vec![(0xf000_0000, 0), (0xf000_0000, 1)],
        ),
        (workload::matrix_kernel(4), vec![]),
        (workload::state_machine(4), vec![(0xf000_0000, 2)]),
    ];
    for (w, pokes) in cases {
        let config = AnalyzerConfig {
            annotations: w.annotations.clone(),
            ..AnalyzerConfig::new()
        };
        let report = WcetAnalyzer::with_config(config)
            .analyze(&w.image)
            .unwrap_or_else(|e| panic!("{} analyzes: {e}", w.name));
        let mut interp = Interpreter::with_config(&w.image, MachineConfig::simple());
        for (addr, value) in pokes {
            interp.poke_word(Addr(addr), value);
        }
        let outcome = interp.run(10_000_000).expect("halts");
        assert!(
            outcome.cycles <= report.wcet_cycles,
            "{}: observed {} > WCET {}",
            w.name,
            outcome.cycles,
            report.wcet_cycles
        );
    }
}

#[test]
fn state_machine_every_state_within_bound() {
    let w = workload::state_machine(5);
    let report = WcetAnalyzer::new().analyze(&w.image).expect("resolves");
    for state in 0..5u32 {
        let mut interp = Interpreter::with_config(&w.image, MachineConfig::simple());
        interp.poke_word(Addr(0xf000_0000), state);
        let cycles = interp.run(100_000).expect("halts").cycles;
        assert!(
            cycles <= report.wcet_cycles,
            "state {state}: {cycles} > {}",
            report.wcet_cycles
        );
    }
    // Out-of-range state clamps to 0 and must also be covered.
    let mut interp = Interpreter::with_config(&w.image, MachineConfig::simple());
    interp.poke_word(Addr(0xf000_0000), 0xdead_beef);
    assert!(interp.run(100_000).expect("halts").cycles <= report.wcet_cycles);
}

#[test]
fn error_handling_budget_is_sound_for_consistent_runs() {
    let n = 5u32;
    let w = workload::error_handling(n);
    let (_, budget) = workload::error_annotations(&w, n, 1);
    let config = AnalyzerConfig {
        annotations: budget,
        ..AnalyzerConfig::new()
    };
    let report = WcetAnalyzer::with_config(config)
        .analyze(&w.image)
        .expect("analyzes");
    // Any run with at most one error flag set respects the budget bound.
    for error_at in 0..n {
        let mut interp = Interpreter::with_config(&w.image, MachineConfig::simple());
        interp.poke_word(Addr(0xf000_0000 + 4 * error_at), 1);
        let cycles = interp.run(1_000_000).expect("halts").cycles;
        assert!(cycles <= report.wcet_cycles, "error at {error_at}");
    }
}

// ---------------------------------------------------------------------
// Wavefront scheduler determinism (acceptance criterion)
// ---------------------------------------------------------------------

/// A parallel run (N ≥ 2 workers) must produce a byte-identical
/// `AnalysisReport` to the sequential run on every workload — phase
/// timings excluded, since they are real clocks on both paths.
#[test]
fn parallel_reports_are_byte_identical_to_sequential() {
    let mut workloads = vec![
        workload::flight_control(),
        workload::message_handler(16),
        workload::state_machine(6),
        workload::error_handling(4),
        workload::matrix_kernel(4),
        workload::call_fanout(16),
    ];
    let (branchy, single) = workload::single_path_pair();
    workloads.push(branchy);
    workloads.push(single);
    let (killer, friendly) = workload::cache_pair();
    workloads.push(killer);
    workloads.push(friendly);

    for w in &workloads {
        let render = |parallelism: Option<usize>| {
            let config = AnalyzerConfig {
                annotations: w.annotations.clone(),
                machine: MachineConfig::with_caches(),
                // Unrolling exercises the parallel peel-and-reanalyze
                // fan-out, the one map site the other tests leave cold.
                unrolling: true,
                parallelism,
                ..AnalyzerConfig::new()
            };
            let mut report = WcetAnalyzer::with_config(config)
                .analyze(&w.image)
                .unwrap_or_else(|e| panic!("{} analyzes: {e}", w.name));
            report.trace.phase_times = Default::default();
            report.trace.phase_work_times = Default::default();
            format!("{:#?}\n{}", report, report.trace)
        };
        let sequential = render(Some(1));
        assert_eq!(
            sequential,
            render(Some(2)),
            "{}: 2 workers diverged",
            w.name
        );
        assert_eq!(
            sequential,
            render(Some(5)),
            "{}: 5 workers diverged",
            w.name
        );
        assert_eq!(
            sequential,
            render(None),
            "{}: auto workers diverged",
            w.name
        );
    }
}

// ---------------------------------------------------------------------
// Annotation language round trips
// ---------------------------------------------------------------------

#[test]
fn annotation_parse_is_stable_under_reformat() {
    let text = "mode a, b;\nloop 0x1000 bound 5;\nexclude 0x2000 in mode a;\nmutex 0x10, 0x20 capacity 2;\nmaxcount 0x30 4;\nsumcount 0x40, 0x44 max 2;\ncall 0x50 targets 0x100, 0x104;\naccess 0x60 range 0x0..0xff;";
    let a = AnnotationSet::parse(text).expect("parses");
    // Adding comments and blank lines must not change the result.
    let noisy = text
        .lines()
        .map(|l| format!("  {l}   # trailing comment\n\n"))
        .collect::<String>();
    let b = AnnotationSet::parse(&noisy).expect("parses");
    assert_eq!(a, b);
}

// ---------------------------------------------------------------------
// Experiment-suite headline orderings
// ---------------------------------------------------------------------

#[test]
fn experiment_suite_smoke() {
    let all = experiments::run_all(20_000);
    assert_eq!(all.len(), 17); // E1–E16 plus the ablation study
    for e in &all {
        assert!(!e.rows.is_empty(), "{} produced no rows", e.id);
        // Every experiment renders.
        assert!(e.to_string().contains(e.id));
    }
}
