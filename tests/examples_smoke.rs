//! Smoke tests: every example in `examples/` runs end to end without
//! panicking and prints sane headline numbers.
//!
//! Examples are invoked through the same cargo that is running the tests
//! (`CARGO` env), with small sample counts where an example accepts one, so
//! the suite stays fast in debug CI builds.

use std::process::Command;

/// Run `cargo run -q --example <name> -- <args>` and return stdout.
fn run_example(name: &str, args: &[&str]) -> String {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned());
    let mut cmd = Command::new(cargo);
    cmd.current_dir(env!("CARGO_MANIFEST_DIR"))
        .args(["run", "-q", "--example", name]);
    if !args.is_empty() {
        cmd.arg("--").args(args);
    }
    let out = cmd
        .output()
        .unwrap_or_else(|e| panic!("spawning example {name}: {e}"));
    assert!(
        out.status.success(),
        "example {name} failed ({}):\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8(out.stdout).unwrap_or_else(|e| panic!("example {name}: non-UTF8 output: {e}"))
}

/// First integer appearing after `prefix` in `text`.
fn number_after(text: &str, prefix: &str) -> u64 {
    let at = text
        .find(prefix)
        .unwrap_or_else(|| panic!("output lacks `{prefix}`:\n{text}"));
    let rest = &text[at + prefix.len()..];
    let digits: String = rest
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .unwrap_or_else(|_| panic!("no number after `{prefix}` in:\n{text}"))
}

#[test]
fn quickstart_reports_positive_bounds() {
    let out = run_example("quickstart", &[]);
    assert!(
        out.contains("Figure 1 pipeline"),
        "missing pipeline banner:\n{out}"
    );
    let wcet = number_after(&out, "WCET bound:");
    let bcet = number_after(&out, "BCET bound:");
    assert!(wcet > 0, "WCET bound must be positive");
    assert!(bcet <= wcet, "BCET {bcet} must not exceed WCET {wcet}");
}

#[test]
fn table1_histogram_covers_all_samples() {
    let out = run_example("table1", &["50000"]);
    assert!(out.contains("Table 1"), "missing Table 1 banner:\n{out}");
    assert!(
        out.contains("Iteration Counts"),
        "missing histogram header:\n{out}"
    );
    assert!(
        out.contains("50000 random inputs"),
        "sample count not echoed:\n{out}"
    );
}

#[test]
fn misra_audit_flags_tier1_and_tier2_rules() {
    let out = run_example("misra_audit", &[]);
    assert!(
        out.contains("clean: WCET computable"),
        "clean task must pass:\n{out}"
    );
    assert!(out.contains("tier-1 BLOCKED"), "no tier-1 findings:\n{out}");
    assert!(out.contains("tier-2 only"), "no tier-2 findings:\n{out}");
    // The headline rules of the paper's Section 3 must each be exercised.
    for rule in ["13.4", "13.6", "14.1", "14.4"] {
        assert!(out.contains(rule), "rule {rule} missing from audit:\n{out}");
    }
}

#[test]
fn flight_control_mode_bounds_are_ordered() {
    let out = run_example("flight_control", &[]);
    let air = number_after(&out, "WCET bound in mode air");
    let ground = number_after(&out, "WCET bound in mode ground");
    let global = number_after(&out, "WCET bound in mode (global)");
    assert!(air > 0 && ground > 0);
    assert!(ground <= air, "ground {ground} must not exceed air {air}");
    assert!(global >= air.max(ground), "global bound covers every mode");
}

#[test]
fn engine_controller_per_mode_bounds_within_global() {
    let out = run_example("engine_controller", &[]);
    let global = number_after(&out, "WCET in (global)");
    let idle = number_after(&out, "WCET in idle");
    assert!(global > 0);
    assert!(
        idle <= global,
        "idle {idle} must not exceed global {global}"
    );
}

#[test]
fn message_handler_annotations_tighten_the_bound() {
    let out = run_example("message_handler", &[]);
    let both = number_after(&out, "with buffer-size annotations:");
    let excl = number_after(&out, "with rx/tx exclusion documented:");
    assert!(both > 0);
    assert!(
        excl <= both,
        "documenting exclusion must tighten the bound ({excl} vs {both})"
    );
}
