//! The paper's soundness requirement, tested end to end: for randomly
//! generated analyzable programs, the concrete execution time never
//! exceeds the computed WCET bound and never undercuts the BCET bound
//! (Section 3: WCET guarantees must be "safe and precise upper bounds").

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wcet_predictability::core::analyzer::WcetAnalyzer;
use wcet_predictability::isa::builder::ProgramBuilder;
use wcet_predictability::isa::interp::{Interpreter, MachineConfig};
use wcet_predictability::isa::{AluOp, Cond, Image, Reg};

/// Generates a random, analyzable-by-construction program: straight-line
/// arithmetic, constant-bound counter loops (nestable once), diamonds,
/// and SRAM memory traffic. Registers r1–r7 are scratch; r8/r9 hold loop
/// counters; inputs come through r10–r12 (callee-saved, set by the test).
fn random_program(seed: u64, segments: usize) -> Image {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new(0x1000);
    let mut label = 0usize;
    let mut fresh = || {
        label += 1;
        format!("L{label}")
    };
    let scratch = |rng: &mut StdRng| Reg::new(rng.gen_range(1..=7));
    let ops = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Xor,
        AluOp::And,
        AluOp::Or,
        AluOp::Mul,
    ];

    b.label("main");
    for _ in 0..segments {
        match rng.gen_range(0..4u32) {
            // Straight-line arithmetic.
            0 => {
                for _ in 0..rng.gen_range(1..5) {
                    let op = ops[rng.gen_range(0..ops.len())];
                    let (rd, rs1, rs2) = (scratch(&mut rng), scratch(&mut rng), scratch(&mut rng));
                    b.alu(op, rd, rs1, rs2);
                }
            }
            // Counter loop (possibly with a nested inner loop).
            1 => {
                let outer_n = rng.gen_range(1..8u32);
                let head = fresh();
                b.li(Reg::new(8), outer_n);
                b.label(&head);
                let op = ops[rng.gen_range(0..ops.len())];
                b.alu(op, scratch(&mut rng), scratch(&mut rng), scratch(&mut rng));
                if rng.gen_bool(0.4) {
                    let inner_n = rng.gen_range(1..5u32);
                    let inner = fresh();
                    b.li(Reg::new(9), inner_n);
                    b.label(&inner);
                    b.alui(AluOp::Add, scratch(&mut rng), Reg::new(9), 3);
                    b.alui(AluOp::Sub, Reg::new(9), Reg::new(9), 1);
                    b.branch(Cond::Ne, Reg::new(9), Reg::ZERO, &inner);
                }
                b.alui(AluOp::Sub, Reg::new(8), Reg::new(8), 1);
                b.branch(Cond::Ne, Reg::new(8), Reg::ZERO, &head);
            }
            // Diamond on an input register.
            2 => {
                let (then_l, join_l) = (fresh(), fresh());
                let input = Reg::new(rng.gen_range(10..=12));
                b.branch(Cond::Eq, input, Reg::ZERO, &then_l);
                for _ in 0..rng.gen_range(1..4) {
                    b.alui(AluOp::Add, scratch(&mut rng), scratch(&mut rng), 1);
                }
                b.jump(&join_l);
                b.label(&then_l);
                b.alui(AluOp::Xor, scratch(&mut rng), scratch(&mut rng), 0x55);
                b.label(&join_l);
                b.nop();
            }
            // SRAM memory traffic at constant addresses.
            _ => {
                let addr = 0x8000 + 4 * rng.gen_range(0..64u32);
                let r = scratch(&mut rng);
                b.li(Reg::new(7), addr);
                b.sw(r, Reg::new(7), 0);
                b.lw(scratch(&mut rng), Reg::new(7), 0);
            }
        }
    }
    b.halt();
    b.build("main").expect("random program links")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Observed cycles ∈ [BCET, WCET] for every generated program and
    /// input assignment, on both the plain and the cached machine.
    #[test]
    fn prop_observed_within_bounds(
        seed in 0u64..10_000,
        segments in 1usize..8,
        in1 in 0u32..100,
        in2 in 0u32..100,
    ) {
        let image = random_program(seed, segments);
        for (machine, unrolling) in [
            (MachineConfig::simple(), false),
            (MachineConfig::with_caches(), false),
            (MachineConfig::with_caches(), true),
        ] {
            let config = wcet_predictability::core::analyzer::AnalyzerConfig {
                machine: machine.clone(),
                unrolling,
                ..wcet_predictability::core::analyzer::AnalyzerConfig::new()
            };
            let report = WcetAnalyzer::with_config(config)
                .analyze(&image)
                .expect("generated programs are analyzable");
            let mut interp = Interpreter::with_config(&image, machine);
            interp.set_reg(Reg::new(10), in1);
            interp.set_reg(Reg::new(11), in2);
            interp.set_reg(Reg::new(12), in1 ^ in2);
            let outcome = interp.run(10_000_000).expect("halts");
            prop_assert!(
                outcome.cycles <= report.wcet_cycles,
                "WCET unsound: observed {} > bound {} (seed {seed})",
                outcome.cycles,
                report.wcet_cycles
            );
            prop_assert!(
                outcome.cycles >= report.bcet_cycles,
                "BCET unsound: observed {} < bound {} (seed {seed})",
                outcome.cycles,
                report.bcet_cycles
            );
        }
    }
}

/// Deterministic sweep across many seeds (denser than the proptest run).
#[test]
fn soundness_sweep() {
    for seed in 0..150u64 {
        let image = random_program(seed, 1 + (seed as usize % 7));
        let report = WcetAnalyzer::new()
            .analyze(&image)
            .expect("generated programs are analyzable");
        for input in [0u32, 1, 99] {
            let mut interp = Interpreter::with_config(&image, MachineConfig::simple());
            interp.set_reg(Reg::new(10), input);
            interp.set_reg(Reg::new(11), input.wrapping_mul(17));
            interp.set_reg(Reg::new(12), !input);
            let outcome = interp.run(10_000_000).expect("halts");
            assert!(
                outcome.cycles <= report.wcet_cycles,
                "seed {seed} input {input}: observed {} > WCET {}",
                outcome.cycles,
                report.wcet_cycles
            );
            assert!(
                outcome.cycles >= report.bcet_cycles,
                "seed {seed} input {input}: observed {} < BCET {}",
                outcome.cycles,
                report.bcet_cycles
            );
        }
    }
}

/// The end-to-end soundness oracle over the named workload corpus: each
/// runs concretely through `isa::interp` with cycle accounting, and the
/// observed cycles must lie within the analyzer's [BCET, WCET] envelope —
/// under the default configuration, under `--unroll`, and under the
/// cached machine model with unrolling.
#[test]
fn workload_soundness_oracle() {
    use wcet_predictability::core::analyzer::AnalyzerConfig;
    use wcet_predictability::core::workload;

    for w in workload::corpus() {
        for (machine, unrolling) in [
            (MachineConfig::simple(), false),
            (MachineConfig::simple(), true),
            (MachineConfig::with_caches(), true),
        ] {
            let config = AnalyzerConfig {
                machine: machine.clone(),
                annotations: w.annotations.clone(),
                unrolling,
                ..AnalyzerConfig::new()
            };
            let report = WcetAnalyzer::with_config(config)
                .analyze(&w.image)
                .unwrap_or_else(|e| {
                    panic!("workload {} (unroll: {unrolling}) analyzes: {e}", w.name)
                });
            let mut interp = Interpreter::with_config(&w.image, machine);
            let outcome = interp
                .run(10_000_000)
                .unwrap_or_else(|e| panic!("workload {} halts: {e}", w.name));
            assert!(
                outcome.cycles <= report.wcet_cycles,
                "{} (unroll: {unrolling}): observed {} > WCET bound {}",
                w.name,
                outcome.cycles,
                report.wcet_cycles
            );
            assert!(
                outcome.cycles >= report.bcet_cycles,
                "{} (unroll: {unrolling}): observed {} < BCET bound {}",
                w.name,
                outcome.cycles,
                report.bcet_cycles
            );
        }
    }
}

/// The cross-ISA soundness oracle: every RV32I corpus port runs
/// concretely through the interpreter's RV32I cycle accounting (its own
/// timing model over rv32i-encoded words) and the observed cycles must
/// lie within the RV32I analysis's [BCET, WCET] envelope — the same
/// guarantee the house backend gives, end to end through the generic
/// pipeline.
#[test]
fn rv32i_workload_soundness_oracle() {
    use wcet_predictability::core::analyzer::AnalyzerConfig;
    use wcet_predictability::core::workload;
    use wcet_predictability::isa::IsaKind;

    for w in workload::rv32i_corpus() {
        assert_eq!(w.image.isa, IsaKind::Rv32i);
        for (machine, unrolling) in [
            (MachineConfig::simple_for(IsaKind::Rv32i), false),
            (MachineConfig::simple_for(IsaKind::Rv32i), true),
            (MachineConfig::with_caches_for(IsaKind::Rv32i), true),
        ] {
            let config = AnalyzerConfig {
                machine: machine.clone(),
                annotations: w.annotations.clone(),
                unrolling,
                ..AnalyzerConfig::for_isa(IsaKind::Rv32i)
            };
            let report = WcetAnalyzer::with_config(config)
                .analyze(&w.image)
                .unwrap_or_else(|e| panic!("rv32i {} (unroll: {unrolling}) analyzes: {e}", w.name));
            let mut interp = Interpreter::with_config(&w.image, machine);
            let outcome = interp
                .run(10_000_000)
                .unwrap_or_else(|e| panic!("rv32i {} halts: {e}", w.name));
            assert!(
                outcome.cycles <= report.wcet_cycles,
                "rv32i {} (unroll: {unrolling}): observed {} > WCET bound {}",
                w.name,
                outcome.cycles,
                report.wcet_cycles
            );
            assert!(
                outcome.cycles >= report.bcet_cycles,
                "rv32i {} (unroll: {unrolling}): observed {} < BCET bound {}",
                w.name,
                outcome.cycles,
                report.bcet_cycles
            );
        }
    }
}

/// The oracle under context expansion: every corpus workload analyzed at
/// `--context-depth 1` (and the context workloads at depth 2) must keep
/// the observed execution inside `[BCET, WCET]`, and the context bound
/// must never exceed the merged bound — context expansion only ever
/// *refines* entry states.
#[test]
fn workload_soundness_oracle_context_depth_1() {
    use wcet_predictability::core::analyzer::AnalyzerConfig;
    use wcet_predictability::core::workload;

    for w in workload::corpus() {
        let analyze = |depth: usize| {
            let config = AnalyzerConfig {
                annotations: w.annotations.clone(),
                context_depth: depth,
                ..AnalyzerConfig::new()
            };
            WcetAnalyzer::with_config(config)
                .analyze(&w.image)
                .unwrap_or_else(|e| panic!("workload {} (depth {depth}) analyzes: {e}", w.name))
        };
        let merged = analyze(0);
        let depths: &[usize] = if w.name == "context_killer" || w.name == "call_tree_heavy" {
            &[1, 2]
        } else {
            &[1]
        };
        let mut interp = Interpreter::with_config(&w.image, MachineConfig::simple());
        let observed = interp
            .run(10_000_000)
            .unwrap_or_else(|e| panic!("workload {} halts: {e}", w.name))
            .cycles;
        assert!(merged.wcet_cycles >= observed, "{}: merged WCET", w.name);
        for &depth in depths {
            let ctx = analyze(depth);
            assert!(
                ctx.wcet_cycles <= merged.wcet_cycles,
                "{} depth {depth}: context bound {} above merged {}",
                w.name,
                ctx.wcet_cycles,
                merged.wcet_cycles
            );
            assert!(
                ctx.wcet_cycles >= observed,
                "{} depth {depth}: observed {} > WCET {}",
                w.name,
                observed,
                ctx.wcet_cycles
            );
            assert!(
                ctx.bcet_cycles <= observed,
                "{} depth {depth}: observed {} < BCET {}",
                w.name,
                observed,
                ctx.bcet_cycles
            );
        }
    }
}

/// The oracle again, driving the workloads with adversarial inputs: the
/// mode register, device flags, and transfer lengths are forced to their
/// documented worst cases, which must still sit under the bound.
#[test]
fn workload_oracle_with_forced_inputs() {
    use wcet_predictability::core::analyzer::AnalyzerConfig;
    use wcet_predictability::core::workload;
    use wcet_predictability::isa::Addr;

    // (workload, MMIO pokes): each poke drives the worst documented case.
    let cases: Vec<(_, Vec<(u32, u32)>)> = vec![
        // Air mode (the long gain-scheduling loop).
        (workload::flight_control(), vec![(0xf000_0000, 1)]),
        // rx pending with the full 16-word transfer length. (Forcing rx
        // *and* tx together would violate the workload's documented
        // design contract — `mutex rx_head, tx_head capacity 1` — and
        // the bound is conditional on that contract.)
        (
            workload::message_handler(16),
            vec![(0xf000_0000, 1), (0xf000_0008, 16)],
        ),
        // The most expensive handler of the state machine.
        (workload::state_machine(4), vec![(0xf000_0000, 3)]),
        // Every error flag raised at once (the paper's "all errors at
        // once" pessimism — still within the un-annotated bound).
        (
            workload::error_handling(4),
            vec![
                (0xf000_0000, 1),
                (0xf000_0004, 1),
                (0xf000_0008, 1),
                (0xf000_000c, 1),
            ],
        ),
    ];
    for (w, pokes) in cases {
        let config = AnalyzerConfig {
            annotations: w.annotations.clone(),
            ..AnalyzerConfig::new()
        };
        let report = WcetAnalyzer::with_config(config).analyze(&w.image).unwrap();
        let mut interp = Interpreter::with_config(&w.image, MachineConfig::simple());
        for (addr, value) in pokes {
            interp.poke_word(Addr(addr), value);
        }
        let outcome = interp.run(10_000_000).unwrap();
        assert!(
            outcome.cycles <= report.wcet_cycles,
            "{}: forced-input run {} > WCET {}",
            w.name,
            outcome.cycles,
            report.wcet_cycles
        );
    }
}

/// The division kernels obey the same envelope once annotated.
#[test]
fn kernel_soundness() {
    use wcet_predictability::arith::kernels::{ldivmod_kernel, restoring_kernel};
    use wcet_predictability::arith::ldivmod::correction_bound;
    use wcet_predictability::core::analyzer::AnalyzerConfig;
    use wcet_predictability::guidelines::annot::AnnotationSet;

    // Restoring kernel: automatic.
    let kernel = restoring_kernel();
    let report = WcetAnalyzer::new()
        .analyze(&kernel.image)
        .expect("automatic");
    for (n, d) in [
        (0u32, 1u32),
        (u32::MAX, 1),
        (u32::MAX, 0x7fff_ffff),
        (12345, 678),
    ] {
        let mut interp = Interpreter::with_config(&kernel.image, MachineConfig::simple());
        interp.set_reg(kernel.n_reg, n);
        interp.set_reg(kernel.d_reg, d);
        let cycles = interp.run(1_000_000).expect("halts").cycles;
        assert!(cycles <= report.wcet_cycles, "restoring {n}/{d}");
    }

    // ldivmod kernel: annotated for divisors ≥ 2^20.
    let kernel = ldivmod_kernel();
    let d_min = 1u32 << 20;
    let bound = correction_bound(d_min) + 1;
    let corr = kernel.correction_loop.expect("labeled");
    let config = AnalyzerConfig {
        annotations: AnnotationSet::parse(&format!("loop {corr} bound {bound};")).expect("parses"),
        ..AnalyzerConfig::new()
    };
    let report = WcetAnalyzer::with_config(config)
        .analyze(&kernel.image)
        .expect("annotated");
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..200 {
        let n: u32 = rng.gen_range(1 << 20..=u32::MAX);
        let d: u32 = rng.gen_range(d_min..1 << 28);
        let mut interp = Interpreter::with_config(&kernel.image, MachineConfig::simple());
        interp.set_reg(kernel.n_reg, n);
        interp.set_reg(kernel.d_reg, d);
        let cycles = interp.run(10_000_000).expect("halts").cycles;
        assert!(
            cycles <= report.wcet_cycles,
            "ldivmod {n:#x}/{d:#x}: observed {cycles} > bound {}",
            report.wcet_cycles
        );
    }
}
