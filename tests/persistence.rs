//! Acceptance tests for the per-context cache persistence analysis
//! (`AnalyzerConfig::persistence` / `wcet --persistence`): with caches at
//! context depth 1, footprint-summarized calls plus first-miss
//! classification must *strictly* tighten the WCET bound on the
//! persistence workloads over the clobbering (PR-4) analysis, the
//! soundness oracle must hold across the whole corpus with the feature
//! on and off, and warm incremental replays must stay byte-identical to
//! cold at any thread count.

use std::path::PathBuf;

use wcet_predictability::core::analyzer::{AnalysisReport, AnalyzerConfig, WcetAnalyzer};
use wcet_predictability::core::incr::ArtifactCache;
use wcet_predictability::core::workload::{self, Workload};
use wcet_predictability::isa::interp::{Interpreter, MachineConfig};

struct TempCache {
    dir: PathBuf,
}

impl TempCache {
    fn new(tag: &str) -> TempCache {
        let dir = std::env::temp_dir().join(format!(
            "wcet-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempCache { dir }
    }

    fn open(&self) -> ArtifactCache {
        ArtifactCache::open(&self.dir).expect("cache directory opens")
    }
}

impl Drop for TempCache {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn config(w: &Workload, persistence: bool, parallelism: Option<usize>) -> AnalyzerConfig {
    AnalyzerConfig {
        machine: MachineConfig::with_caches(),
        annotations: w.annotations.clone(),
        context_depth: 1,
        persistence,
        parallelism,
        ..AnalyzerConfig::new()
    }
}

fn canonical(mut report: AnalysisReport) -> String {
    report.trace.phase_times = Default::default();
    report.trace.phase_work_times = Default::default();
    report.incr = None;
    format!("{report:#?}")
}

/// The headline acceptance claim: `--persistence` at depth 1 strictly
/// tightens the WCET bound on `persistence_killer` and
/// `call_tree_heavy`, and the observed cached execution stays inside
/// both envelopes.
#[test]
fn persistence_strictly_tightens_the_persistence_workloads() {
    for w in [
        workload::persistence_killer(),
        workload::call_tree_heavy(2, 3, &[]),
    ] {
        let clobbered = WcetAnalyzer::with_config(config(&w, false, None))
            .analyze(&w.image)
            .unwrap();
        let persistent = WcetAnalyzer::with_config(config(&w, true, None))
            .analyze(&w.image)
            .unwrap();
        assert!(
            persistent.wcet_cycles < clobbered.wcet_cycles,
            "{}: persistence bound {} must be strictly below the clobbering bound {}",
            w.name,
            persistent.wcet_cycles,
            clobbered.wcet_cycles
        );
        let mut interp = Interpreter::with_config(&w.image, MachineConfig::with_caches());
        let observed = interp.run(100_000_000).unwrap().cycles;
        for (label, r) in [("clobbered", &clobbered), ("persistent", &persistent)] {
            assert!(
                r.wcet_cycles >= observed,
                "{} {label}: observed {observed} > WCET {}",
                w.name,
                r.wcet_cycles
            );
            assert!(
                r.bcet_cycles <= observed,
                "{} {label}: observed {observed} < BCET {}",
                w.name,
                r.bcet_cycles
            );
        }
        assert!(
            persistent.trace.cache_first_miss > 0,
            "{}: the tightening must come from first-miss classifications",
            w.name
        );
    }
}

/// The soundness oracle across the whole corpus, persistence on and off,
/// on the cached machine at depth 1: observed ∈ [BCET, WCET], and the
/// persistence bound never exceeds the clobbering bound (footprints and
/// first-miss only ever refine).
#[test]
fn workload_soundness_oracle_persistence() {
    for w in workload::corpus() {
        let machine = MachineConfig::with_caches();
        let mut interp = Interpreter::with_config(&w.image, machine);
        let observed = interp
            .run(100_000_000)
            .unwrap_or_else(|e| panic!("workload {} halts: {e}", w.name))
            .cycles;
        let mut bounds = Vec::new();
        for persistence in [false, true] {
            let report = WcetAnalyzer::with_config(config(&w, persistence, None))
                .analyze(&w.image)
                .unwrap_or_else(|e| panic!("workload {} (persistence {persistence}): {e}", w.name));
            assert!(
                report.wcet_cycles >= observed,
                "{} (persistence {persistence}): observed {observed} > WCET {}",
                w.name,
                report.wcet_cycles
            );
            assert!(
                report.bcet_cycles <= observed,
                "{} (persistence {persistence}): observed {observed} < BCET {}",
                w.name,
                report.bcet_cycles
            );
            bounds.push(report.wcet_cycles);
        }
        assert!(
            bounds[1] <= bounds[0],
            "{}: persistence must only refine ({} vs {})",
            w.name,
            bounds[1],
            bounds[0]
        );
    }
}

/// Persistence-enabled reports are byte-identical at every thread count.
#[test]
fn persistence_reports_are_thread_invariant() {
    let w = workload::persistence_killer();
    let reference = canonical(
        WcetAnalyzer::with_config(config(&w, true, Some(1)))
            .analyze(&w.image)
            .unwrap(),
    );
    for threads in [Some(4), None] {
        let report = WcetAnalyzer::with_config(config(&w, true, threads))
            .analyze(&w.image)
            .unwrap();
        assert_eq!(
            canonical(report),
            reference,
            "threads {threads:?} changed the persistence report"
        );
    }
}

/// Warm incremental replays with persistence on: byte-identical to cold
/// at any thread count, every function artifact (and footprint) hit,
/// zero IPET re-solves.
#[test]
fn persistence_warm_replay_is_byte_identical_at_any_thread_count() {
    for w in [
        workload::persistence_killer(),
        workload::call_tree_heavy(2, 3, &[]),
    ] {
        let tmp = TempCache::new(w.name);
        let mut cache = tmp.open();
        let analyzer = WcetAnalyzer::with_config(config(&w, true, None));
        let plain = canonical(analyzer.analyze(&w.image).unwrap());
        let cold = analyzer.analyze_incremental(&w.image, &mut cache).unwrap();
        assert_eq!(canonical(cold), plain, "{}: cold cached run", w.name);

        for threads in [Some(1), Some(4), None] {
            let analyzer = WcetAnalyzer::with_config(config(&w, true, threads));
            let warm = analyzer.analyze_incremental(&w.image, &mut cache).unwrap();
            let stats = warm.incr.clone().expect("stats present");
            assert_eq!(
                stats.fn_hits, stats.functions,
                "{} threads {threads:?}: all artifacts replay: {stats:?}",
                w.name
            );
            assert_eq!(
                stats.ipet_solves, 0,
                "{} threads {threads:?}: no IPET re-solves: {stats:?}",
                w.name
            );
            assert_eq!(
                canonical(warm),
                plain,
                "{} threads {threads:?}: warm replay diverged",
                w.name
            );
        }
    }
}

/// Turning persistence on and off against one shared cache directory
/// must never cross-contaminate: the fingerprints fork the key space.
#[test]
fn persistence_flag_forks_the_cache_space() {
    let w = workload::persistence_killer();
    let tmp = TempCache::new("fork");
    let mut cache = tmp.open();
    let on = WcetAnalyzer::with_config(config(&w, true, None));
    let off = WcetAnalyzer::with_config(config(&w, false, None));
    let plain_on = canonical(on.analyze(&w.image).unwrap());
    let plain_off = canonical(off.analyze(&w.image).unwrap());
    assert_ne!(plain_on, plain_off, "the feature must change the report");

    let cold_on = canonical(on.analyze_incremental(&w.image, &mut cache).unwrap());
    let cold_off = canonical(off.analyze_incremental(&w.image, &mut cache).unwrap());
    let warm_on = canonical(on.analyze_incremental(&w.image, &mut cache).unwrap());
    let warm_off = canonical(off.analyze_incremental(&w.image, &mut cache).unwrap());
    assert_eq!(cold_on, plain_on);
    assert_eq!(cold_off, plain_off);
    assert_eq!(warm_on, plain_on, "warm persistence-on run contaminated");
    assert_eq!(warm_off, plain_off, "warm persistence-off run contaminated");
}
