//! Acceptance tests for VIVU-style context sensitivity (`context_depth`):
//! strict tightening on the context workloads, byte-identical warm
//! incremental replays at depth 1 at any thread count, and depth-0
//! equivalence with the classic pipeline (the golden snapshots pin the
//! depth-0 bytes themselves).

use std::path::PathBuf;

use wcet_predictability::core::analyzer::{AnalysisReport, AnalyzerConfig, WcetAnalyzer};
use wcet_predictability::core::incr::ArtifactCache;
use wcet_predictability::core::workload;
use wcet_predictability::isa::interp::{Interpreter, MachineConfig};

struct TempCache {
    dir: PathBuf,
}

impl TempCache {
    fn new(tag: &str) -> TempCache {
        let dir = std::env::temp_dir().join(format!(
            "wcet-ctx-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempCache { dir }
    }

    fn open(&self) -> ArtifactCache {
        ArtifactCache::open(&self.dir).expect("cache directory opens")
    }
}

impl Drop for TempCache {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn canonical(mut report: AnalysisReport) -> String {
    report.trace.phase_times = Default::default();
    report.trace.phase_work_times = Default::default();
    report.incr = None;
    format!("{report:#?}")
}

fn config(depth: usize, parallelism: Option<usize>) -> AnalyzerConfig {
    AnalyzerConfig {
        context_depth: depth,
        parallelism,
        ..AnalyzerConfig::new()
    }
}

/// The headline acceptance claim: on `context_killer` and on the
/// call-tree workload, depth 1 strictly tightens the WCET bound while
/// the observed execution stays inside both envelopes.
#[test]
fn context_depth_one_strictly_tightens_the_context_workloads() {
    for w in [
        workload::context_killer(),
        workload::call_tree_heavy(2, 3, &[]),
    ] {
        let merged = WcetAnalyzer::with_config(config(0, None))
            .analyze(&w.image)
            .unwrap();
        let ctx = WcetAnalyzer::with_config(config(1, None))
            .analyze(&w.image)
            .unwrap();
        assert!(
            ctx.wcet_cycles < merged.wcet_cycles,
            "{}: depth 1 bound {} must be strictly below depth 0 bound {}",
            w.name,
            ctx.wcet_cycles,
            merged.wcet_cycles
        );
        let mut interp = Interpreter::with_config(&w.image, MachineConfig::simple());
        let observed = interp.run(100_000_000).unwrap().cycles;
        for (depth, r) in [(0, &merged), (1, &ctx)] {
            assert!(r.wcet_cycles >= observed, "{} depth {depth}: WCET", w.name);
            assert!(r.bcet_cycles <= observed, "{} depth {depth}: BCET", w.name);
        }
    }
}

/// Depth-1 reports are byte-identical at every thread count, cached or
/// not: the context scheduler's merges are deterministic.
#[test]
fn context_reports_are_thread_invariant() {
    let w = workload::call_tree_heavy(2, 3, &[]);
    let reference = canonical(
        WcetAnalyzer::with_config(config(1, Some(1)))
            .analyze(&w.image)
            .unwrap(),
    );
    for threads in [Some(2), Some(8), None] {
        let report = WcetAnalyzer::with_config(config(1, threads))
            .analyze(&w.image)
            .unwrap();
        assert_eq!(
            canonical(report),
            reference,
            "threads {threads:?} changed the depth-1 report"
        );
    }
}

/// Warm incremental runs replay byte-identically at depth 1 — at any
/// thread count — with every function artifact hit and zero IPET
/// re-solves (per-context solutions are keyed on the context's
/// entry-state digest).
#[test]
fn context_warm_replay_is_byte_identical_at_any_thread_count() {
    for depth in [1usize, 2] {
        let w = workload::context_killer();
        let tmp = TempCache::new(&format!("replay-{depth}"));
        let mut cache = tmp.open();
        let analyzer = WcetAnalyzer::with_config(config(depth, None));
        let plain = canonical(analyzer.analyze(&w.image).unwrap());
        let cold = analyzer.analyze_incremental(&w.image, &mut cache).unwrap();
        assert_eq!(canonical(cold), plain, "depth {depth}: cold cached run");

        for threads in [Some(1), Some(4), None] {
            let analyzer = WcetAnalyzer::with_config(config(depth, threads));
            let warm = analyzer.analyze_incremental(&w.image, &mut cache).unwrap();
            let stats = warm.incr.clone().expect("stats present");
            assert_eq!(
                stats.fn_hits, stats.functions,
                "depth {depth} threads {threads:?}: all artifacts replay: {stats:?}"
            );
            assert_eq!(
                stats.ipet_solves, 0,
                "depth {depth} threads {threads:?}: no IPET re-solves: {stats:?}"
            );
            assert_eq!(
                canonical(warm),
                plain,
                "depth {depth} threads {threads:?}: warm replay diverged"
            );
        }
    }
}

/// A one-leaf mutation of the call tree under depth 1: the warm report
/// matches from-scratch byte for byte and only the mutated function's
/// artifact misses.
#[test]
fn context_incremental_mutation_replays_exactly() {
    let base = workload::call_tree_heavy(2, 3, &[]);
    // Leaf 4's default iteration count is 11 (`3 + (4 % 5) * 2`); 12 is
    // a genuine byte-level mutation.
    let mutated = workload::call_tree_heavy(2, 3, &[(4, 12)]);
    let tmp = TempCache::new("mutation");
    let mut cache = tmp.open();
    let analyzer = WcetAnalyzer::with_config(config(1, None));
    analyzer
        .analyze_incremental(&base.image, &mut cache)
        .unwrap();

    let warm = analyzer
        .analyze_incremental(&mutated.image, &mut cache)
        .unwrap();
    let stats = warm.incr.clone().expect("stats present");
    assert_eq!(
        stats.fn_misses, 1,
        "only the mutated leaf re-analyzes: {stats:?}"
    );
    assert_eq!(stats.dirty, 3, "leaf + its dispatcher + main: {stats:?}");
    let fresh = analyzer.analyze(&mutated.image).unwrap();
    assert_eq!(
        canonical(warm),
        canonical(fresh),
        "warm diverged from fresh"
    );
}

/// Context sensitivity composes with the cached machine model and
/// virtual unrolling: bounds stay sound, and the depth-1 bound does not
/// exceed the merged one.
#[test]
fn context_depth_composes_with_caches_and_unrolling() {
    let w = workload::context_killer();
    let analyze = |depth: usize| {
        let cfg = AnalyzerConfig {
            machine: MachineConfig::with_caches(),
            unrolling: true,
            context_depth: depth,
            ..AnalyzerConfig::new()
        };
        WcetAnalyzer::with_config(cfg).analyze(&w.image).unwrap()
    };
    let merged = analyze(0);
    let ctx = analyze(1);
    assert!(ctx.wcet_cycles <= merged.wcet_cycles);
    let mut interp = Interpreter::with_config(&w.image, MachineConfig::with_caches());
    let observed = interp.run(100_000_000).unwrap().cycles;
    assert!(ctx.wcet_cycles >= observed);
    assert!(ctx.bcet_cycles <= observed);
    assert!(merged.wcet_cycles >= observed);
}
