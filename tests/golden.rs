//! Golden snapshot tests for the `wcet` report rendering: one canonical
//! text report per named workload, checked into `tests/golden/`. Any
//! formatting or result drift fails here; regenerate *deliberately* with
//!
//! ```text
//! WCET_BLESS=1 cargo test --test golden
//! ```
//!
//! and review the diff like any other code change. Timings are zeroed
//! before rendering (they are real clocks); everything else — phase
//! counters, guideline findings, bounds, mode tables, the symbolized
//! worst-case path — is pinned byte for byte.

use std::fmt::Write as _;
use std::path::PathBuf;

use wcet_predictability::core::analyzer::{AnalyzerConfig, WcetAnalyzer};
use wcet_predictability::core::workload::{self, Workload};
use wcet_predictability::render;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// The canonical report text of one workload under its ISA's default
/// machine (its annotations applied), with clocks zeroed. House
/// workloads analyze under the exact pre-multi-ISA configuration, so
/// their snapshots are pinned byte for byte across the ISA refactor.
fn canonical_report(w: &Workload) -> String {
    let config = AnalyzerConfig {
        annotations: w.annotations.clone(),
        ..AnalyzerConfig::for_isa(w.image.isa)
    };
    let mut report = WcetAnalyzer::with_config(config)
        .analyze(&w.image)
        .unwrap_or_else(|e| panic!("workload {} analyzes: {e}", w.name));
    report.trace.phase_times = Default::default();
    report.trace.phase_work_times = Default::default();
    let mut out = String::new();
    let _ = writeln!(out, "# workload: {} — {}", w.name, w.description);
    out.push_str(&render::render_report(&w.image, &report));
    out
}

#[test]
fn golden_reports_for_all_workloads() {
    let bless = std::env::var_os("WCET_BLESS").is_some();
    let dir = golden_dir();
    if bless {
        std::fs::create_dir_all(&dir).expect("golden dir creatable");
    }
    let mut drifted = Vec::new();
    for w in workload::corpus() {
        let rendered = canonical_report(&w);
        let path = dir.join(format!("{}.txt", w.name));
        if bless {
            std::fs::write(&path, &rendered).expect("golden file writable");
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!(
                "missing golden snapshot {}; regenerate with WCET_BLESS=1 cargo test --test golden",
                path.display()
            )
        });
        if rendered != expected {
            drifted.push(format!(
                "{}: rendered report differs from {}\n--- expected\n{expected}\n--- rendered\n{rendered}",
                w.name,
                path.display()
            ));
        }
    }
    assert!(
        drifted.is_empty(),
        "{} golden snapshot(s) drifted (regenerate deliberately with WCET_BLESS=1):\n{}",
        drifted.len(),
        drifted.join("\n")
    );
}

#[test]
fn golden_reports_for_rv32i_ports() {
    // The cross-ISA snapshots: same corpus sources, RV32I backend —
    // different encodings, timing model, and therefore bounds, pinned in
    // their own `<name>.rv32i.txt` files next to the house snapshots.
    let bless = std::env::var_os("WCET_BLESS").is_some();
    let dir = golden_dir();
    if bless {
        std::fs::create_dir_all(&dir).expect("golden dir creatable");
    }
    let mut drifted = Vec::new();
    for w in workload::rv32i_corpus() {
        let rendered = canonical_report(&w);
        let path = dir.join(format!("{}.rv32i.txt", w.name));
        if bless {
            std::fs::write(&path, &rendered).expect("golden file writable");
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!(
                "missing golden snapshot {}; regenerate with WCET_BLESS=1 cargo test --test golden",
                path.display()
            )
        });
        if rendered != expected {
            drifted.push(format!(
                "{}: rendered report differs from {}\n--- expected\n{expected}\n--- rendered\n{rendered}",
                w.name,
                path.display()
            ));
        }
    }
    assert!(
        drifted.is_empty(),
        "{} rv32i golden snapshot(s) drifted (regenerate deliberately with WCET_BLESS=1):\n{}",
        drifted.len(),
        drifted.join("\n")
    );
}

#[test]
fn golden_corpus_is_exactly_the_checked_in_set() {
    if std::env::var_os("WCET_BLESS").is_some() {
        // The blessing test may still be writing files concurrently.
        return;
    }
    // A snapshot on disk without a generating workload is dead weight —
    // catch removals in both directions.
    let mut expected: Vec<String> = workload::corpus()
        .iter()
        .map(|w| format!("{}.txt", w.name))
        .chain(
            workload::rv32i_corpus()
                .iter()
                .map(|w| format!("{}.rv32i.txt", w.name)),
        )
        .collect();
    expected.sort();
    let mut on_disk: Vec<String> = std::fs::read_dir(golden_dir())
        .expect("golden dir exists (bless once with WCET_BLESS=1)")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    on_disk.sort();
    assert_eq!(on_disk, expected);
}
