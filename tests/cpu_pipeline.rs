//! Acceptance tests for the abstract in-order pipeline and static
//! branch-prediction timing analysis (`AnalyzerConfig::pipeline` /
//! `wcet --pipeline`): the pipeline bound must tighten `pipeline_killer`
//! by at least 10% on both ISAs, the soundness oracle must hold across
//! both corpora with the feature on and off (against the cycle-exact
//! pipelined interpreter), reports must be thread-invariant, warm
//! incremental replays must stay byte-identical to cold at any thread
//! count, and the flag must fork the artifact-cache key space.

use std::path::PathBuf;

use wcet_predictability::core::analyzer::{AnalysisReport, AnalyzerConfig, WcetAnalyzer};
use wcet_predictability::core::incr::ArtifactCache;
use wcet_predictability::core::workload::{self, Workload};
use wcet_predictability::isa::interp::{Interpreter, MachineConfig};
use wcet_predictability::isa::IsaKind;

struct TempCache {
    dir: PathBuf,
}

impl TempCache {
    fn new(tag: &str) -> TempCache {
        let dir = std::env::temp_dir().join(format!(
            "wcet-pipe-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempCache { dir }
    }

    fn open(&self) -> ArtifactCache {
        ArtifactCache::open(&self.dir).expect("cache directory opens")
    }
}

impl Drop for TempCache {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// The analyzer + machine pair one CLI invocation would build: the
/// analysis flag and the simulated machine always move together.
fn config(
    w: &Workload,
    isa: IsaKind,
    caches: bool,
    pipeline: bool,
    parallelism: Option<usize>,
) -> AnalyzerConfig {
    let mut machine = if caches {
        MachineConfig::with_caches_for(isa)
    } else {
        MachineConfig::simple_for(isa)
    };
    machine.pipeline = pipeline;
    AnalyzerConfig {
        machine,
        annotations: w.annotations.clone(),
        pipeline,
        parallelism,
        isa,
        ..AnalyzerConfig::new()
    }
}

fn canonical(mut report: AnalysisReport) -> String {
    report.trace.phase_times = Default::default();
    report.trace.phase_work_times = Default::default();
    report.incr = None;
    format!("{report:#?}")
}

fn observed_cycles(w: &Workload, config: &AnalyzerConfig) -> u64 {
    let mut interp = Interpreter::with_config(&w.image, config.machine.clone());
    interp
        .run(100_000_000)
        .unwrap_or_else(|e| panic!("workload {} halts: {e}", w.name))
        .cycles
}

/// The headline acceptance claim: `--pipeline` tightens the WCET bound
/// of `pipeline_killer` by at least 10% on both ISAs, the tightening
/// comes from the branch-prediction/pipeline machinery (the trace counts
/// predicted edges), and the observed pipelined execution stays inside
/// both envelopes.
#[test]
fn pipeline_tightens_the_pipeline_killer_past_ten_percent() {
    for isa in [IsaKind::House, IsaKind::Rv32i] {
        let w = workload::pipeline_killer_for(isa);
        let flat_cfg = config(&w, isa, false, false, None);
        let pipe_cfg = config(&w, isa, false, true, None);
        let flat = WcetAnalyzer::with_config(flat_cfg.clone())
            .analyze(&w.image)
            .unwrap();
        let piped = WcetAnalyzer::with_config(pipe_cfg.clone())
            .analyze(&w.image)
            .unwrap();
        assert!(
            piped.wcet_cycles * 10 <= flat.wcet_cycles * 9,
            "{}: pipeline bound {} must be >= 10% below the flat bound {}",
            isa.name(),
            piped.wcet_cycles,
            flat.wcet_cycles
        );
        assert!(
            piped.trace.pipeline_edges > 0,
            "{}: the pipeline run must price its branch edges",
            isa.name()
        );
        assert_eq!(
            flat.trace.pipeline_edges,
            0,
            "{}: the flat run must not",
            isa.name()
        );
        for (cfg, r) in [(&flat_cfg, &flat), (&pipe_cfg, &piped)] {
            let observed = observed_cycles(&w, cfg);
            assert!(
                r.bcet_cycles <= observed && observed <= r.wcet_cycles,
                "{}: observed {} !in [{}, {}]",
                isa.name(),
                observed,
                r.bcet_cycles,
                r.wcet_cycles
            );
        }
    }
}

/// The soundness oracle across both full corpora, pipeline on and off,
/// on the simple and the cached machine: the cycle-exact (pipelined)
/// interpreter's observation falls inside [BCET, WCET] every time.
#[test]
fn workload_soundness_oracle_pipeline() {
    let corpora = [
        (IsaKind::House, workload::corpus()),
        (IsaKind::Rv32i, workload::rv32i_corpus()),
    ];
    for (isa, corpus) in corpora {
        for w in corpus {
            for caches in [false, true] {
                for pipeline in [false, true] {
                    let cfg = config(&w, isa, caches, pipeline, None);
                    let report = WcetAnalyzer::with_config(cfg.clone())
                        .analyze(&w.image)
                        .unwrap_or_else(|e| {
                            panic!(
                                "{} {} (caches {caches} pipeline {pipeline}): {e}",
                                isa.name(),
                                w.name
                            )
                        });
                    let observed = observed_cycles(&w, &cfg);
                    assert!(
                        report.bcet_cycles <= observed && observed <= report.wcet_cycles,
                        "{} {} (caches {caches} pipeline {pipeline}): \
                         observed {} !in [{}, {}]",
                        isa.name(),
                        w.name,
                        observed,
                        report.bcet_cycles,
                        report.wcet_cycles
                    );
                }
            }
        }
    }
}

/// Pipeline-enabled reports are byte-identical at every thread count.
#[test]
fn pipeline_reports_are_thread_invariant() {
    for w in [workload::pipeline_killer(), workload::branch_heavy()] {
        let reference = canonical(
            WcetAnalyzer::with_config(config(&w, IsaKind::House, true, true, Some(1)))
                .analyze(&w.image)
                .unwrap(),
        );
        for threads in [Some(4), None] {
            let report = WcetAnalyzer::with_config(config(&w, IsaKind::House, true, true, threads))
                .analyze(&w.image)
                .unwrap();
            assert_eq!(
                canonical(report),
                reference,
                "{} threads {threads:?} changed the pipeline report",
                w.name
            );
        }
    }
}

/// Warm incremental replays with the pipeline on: byte-identical to cold
/// at any thread count, every function artifact hit, zero IPET re-solves.
#[test]
fn pipeline_warm_replay_is_byte_identical_at_any_thread_count() {
    for w in [workload::pipeline_killer(), workload::branch_heavy()] {
        let tmp = TempCache::new(w.name);
        let mut cache = tmp.open();
        let analyzer = WcetAnalyzer::with_config(config(&w, IsaKind::House, true, true, None));
        let plain = canonical(analyzer.analyze(&w.image).unwrap());
        let cold = analyzer.analyze_incremental(&w.image, &mut cache).unwrap();
        assert_eq!(canonical(cold), plain, "{}: cold cached run", w.name);

        for threads in [Some(1), Some(4), None] {
            let analyzer =
                WcetAnalyzer::with_config(config(&w, IsaKind::House, true, true, threads));
            let warm = analyzer.analyze_incremental(&w.image, &mut cache).unwrap();
            let stats = warm.incr.clone().expect("stats present");
            assert_eq!(
                stats.fn_hits, stats.functions,
                "{} threads {threads:?}: all artifacts replay: {stats:?}",
                w.name
            );
            assert_eq!(
                stats.ipet_solves, 0,
                "{} threads {threads:?}: no IPET re-solves: {stats:?}",
                w.name
            );
            assert_eq!(
                canonical(warm),
                plain,
                "{} threads {threads:?}: warm replay diverged",
                w.name
            );
        }
    }
}

/// Turning the pipeline on and off against one shared cache directory
/// must never cross-contaminate: the fingerprints fork the key space.
#[test]
fn pipeline_flag_forks_the_cache_space() {
    let w = workload::pipeline_killer();
    let tmp = TempCache::new("fork");
    let mut cache = tmp.open();
    let on = WcetAnalyzer::with_config(config(&w, IsaKind::House, false, true, None));
    let off = WcetAnalyzer::with_config(config(&w, IsaKind::House, false, false, None));
    let plain_on = canonical(on.analyze(&w.image).unwrap());
    let plain_off = canonical(off.analyze(&w.image).unwrap());
    assert_ne!(plain_on, plain_off, "the feature must change the report");

    let cold_on = canonical(on.analyze_incremental(&w.image, &mut cache).unwrap());
    let cold_off = canonical(off.analyze_incremental(&w.image, &mut cache).unwrap());
    let warm_on = canonical(on.analyze_incremental(&w.image, &mut cache).unwrap());
    let warm_off = canonical(off.analyze_incremental(&w.image, &mut cache).unwrap());
    assert_eq!(cold_on, plain_on);
    assert_eq!(cold_off, plain_off);
    assert_eq!(warm_on, plain_on, "warm pipeline-on run contaminated");
    assert_eq!(warm_off, plain_off, "warm pipeline-off run contaminated");
}
