//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, API-compatible subset of proptest 1.x: the `proptest!` family of
//! macros, the `Strategy` trait with `prop_map`/`prop_flat_map`/`boxed`,
//! range/tuple/`Just`/`prop_oneof!` strategies, `collection::{vec,
//! btree_set}`, `sample::{select, Index}`, `any::<T>()`, and a deterministic
//! `TestRunner`.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case reports its inputs and the RNG seed;
//!   rerun with `PROPTEST_SEED=<seed>` to reproduce the exact stream.
//! - **Deterministic by default.** Each test derives its stream from a fixed
//!   global seed XORed with a hash of the test name, so CI runs are
//!   reproducible without a `proptest-regressions/` directory. Set
//!   `PROPTEST_SEED` to explore a different stream, `PROPTEST_CASES` to
//!   scale the number of cases.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Alias of the crate root, so `prop::collection::vec(..)` and
    /// `prop::sample::Index` resolve as they do with real proptest.
    pub use crate as prop;
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(400))] // optional
///     /// docs and attributes pass through
///     #[test]
///     fn name(a in strategy_a, b in strategy_b) { ...body... }
///     // ...more fns...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, stringify!($name));
                let strategy = ($($strat,)+);
                runner.run(&strategy, |($($pat,)+)| {
                    let _ = $body;
                    Ok(())
                });
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body; failure reports the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left), stringify!($right), left, right, format!($($fmt)+)
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discard the current case (does not count toward the case total).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(format!($($fmt)+)),
            );
        }
    };
}

/// Choose uniformly between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}
