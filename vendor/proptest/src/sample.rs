//! `sample::select` and `sample::Index`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Uniformly select one of the given values.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "sample::select needs a non-empty list");
    Select { items }
}

#[derive(Clone, Debug)]
pub struct Select<T: Clone> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.items[rng.gen_range(0..self.items.len())].clone()
    }
}

/// An index into a collection whose length is not known at generation time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index {
    raw: u64,
}

impl Index {
    pub(crate) fn new(raw: u64) -> Self {
        Index { raw }
    }

    /// Project onto a collection of the given length.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.raw % len as u64) as usize
    }

    /// Select an element of the slice.
    pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
        &slice[self.index(slice.len())]
    }
}
