//! The `Strategy` trait and the combinators this workspace uses.
//!
//! Unlike real proptest there is no `ValueTree`/shrinking layer: a strategy
//! is simply a deterministic function from the runner's RNG to a value.

use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

use crate::test_runner::TestRng;
use rand::Rng;

/// Generates values of `Self::Value` from the runner's RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `Strategy::prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// `Strategy::prop_flat_map` adapter.
#[derive(Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Marker strategy returned by [`crate::arbitrary::any`].
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = rng.unit_f64();
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
