//! The deterministic test runner behind the `proptest!` macro.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::strategy::Strategy;

/// The RNG handed to strategies. Wraps the vendored deterministic `StdRng`.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform sample from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Runner configuration (`cases` is the only knob this workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each property must pass.
    pub cases: u32,
    /// Cap on rejected cases (`prop_assume!`) before the run aborts.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(256);
        ProptestConfig {
            cases,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: the case is discarded, not counted.
    Reject(String),
    /// `prop_assert*!` failed: the property does not hold.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives one property: generates inputs and evaluates the body.
///
/// The RNG stream is `PROPTEST_SEED` (if set) XORed with a hash of the test
/// name, so every test is deterministic run-to-run yet explores a stream of
/// its own.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    seed: u64,
    rng: TestRng,
}

const DEFAULT_SEED: u64 = 0x5eed_2011_da7e_0001;

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl TestRunner {
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        let seed = base ^ fnv1a(name);
        TestRunner {
            config,
            name,
            seed,
            rng: TestRng::from_seed(seed),
        }
    }

    /// Run the property to completion; panics (failing the `#[test]`) on the
    /// first case for which the body returns `TestCaseError::Fail`.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> TestCaseResult,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < self.config.cases {
            let value = strategy.generate(&mut self.rng);
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        panic!(
                            "proptest `{}`: too many rejected cases ({rejected}) — \
                             weaken the prop_assume! or widen the strategy",
                            self.name
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest `{}` failed after {passed} passing case(s): {msg}\n\
                         (deterministic stream seed {:#x}; rerun with \
                         PROPTEST_SEED={} to reproduce)",
                        self.name,
                        self.seed,
                        self.seed ^ fnv1a(self.name)
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn runner_is_deterministic() {
        let mut a = TestRunner::new(ProptestConfig::with_cases(10), "det");
        let mut b = TestRunner::new(ProptestConfig::with_cases(10), "det");
        let mut va = Vec::new();
        let mut vb = Vec::new();
        a.run(&(0u32..1000,), |(x,)| {
            va.push(x);
            Ok(())
        });
        b.run(&(0u32..1000,), |(x,)| {
            vb.push(x);
            Ok(())
        });
        assert_eq!(va, vb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_roundtrip(a in 0u32..100, b in 0u32..100) {
            prop_assume!(a != 99);
            prop_assert!(a < 100);
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn oneof_and_collections(v in prop::collection::vec(prop_oneof![Just(1u32), Just(2u32)], 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }
    }
}
