//! `any::<T>()` and the `Arbitrary` trait for the types this workspace uses.

use std::marker::PhantomData;

use crate::strategy::Any;
use crate::test_runner::TestRng;
use rand::RngCore;

/// Types with a canonical whole-domain generation strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::new(rng.next_u64())
    }
}
