//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Inclusive bounds on a generated collection's size.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// `Vec`s whose elements come from `element` and whose length is in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `BTreeSet`s with a size in `size` (best effort if the element domain is
/// too small to reach the minimum size).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < target.saturating_mul(100) + 100 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
