//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, API-compatible subset of `rand` 0.8: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over half-open and
//! inclusive integer ranges. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic for a given seed on every platform, which is
//! exactly what the test suites need.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly to produce a `T`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128) - (self.start as i128);
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span as u128;
                ((self.start as i128) + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128) - (lo as i128) + 1;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span as u128;
                ((lo as i128) + r as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing convenience methods, blanket-implemented for every core RNG.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let z: u32 = rng.gen_range(0x1000_0000..=u32::MAX);
            assert!(z >= 0x1000_0000);
        }
    }
}
