//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal wall-clock harness with criterion's API shape: `Criterion`,
//! `benchmark_group` / `bench_function` / `finish`, `Bencher::{iter,
//! iter_batched}`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros. There is no statistics engine: each benchmark
//! runs a short calibrated loop and reports mean wall-clock time per
//! iteration. `--no-run`-style compile checks and CI smoke runs work the
//! same as with real criterion (`harness = false` benches are plain
//! binaries).
//!
//! Machine-readable summaries: every finished benchmark group writes
//! `BENCH_<group>.json` — median nanoseconds per bench id — into
//! `$WCET_BENCH_DIR` (default `target/bench-summaries`), so CI can
//! archive a perf trajectory from the `--quick` smoke runs without
//! scraping the human-oriented log.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted for API compatibility; the
/// stand-in times each batch element individually either way).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Top-level handle: owns output formatting and budget defaults.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement: Duration,
    /// Default sample (iteration) cap per benchmark.
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --quick` (or CRITERION_QUICK=1) shrinks the
        // per-benchmark budget for CI smoke runs, mirroring real
        // criterion's quick mode.
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var_os("CRITERION_QUICK").is_some_and(|v| v != "0");
        if quick {
            Criterion {
                measurement: Duration::from_millis(10),
                sample_size: 3,
            }
        } else {
            Criterion {
                measurement: Duration::from_millis(200),
                sample_size: 50,
            }
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group = BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            medians: Vec::new(),
        };
        println!("group {}", group.name);
        group
    }

    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.measurement, self.sample_size);
        f(&mut bencher);
        bencher.report(&name.into());
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    /// `(bench id, median ns/iter)` pairs collected for the summary file.
    medians: Vec<(String, u128)>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut bencher = Bencher::new(self.criterion.measurement, samples);
        f(&mut bencher);
        let id = id.into();
        bencher.report(&format!("{}/{}", self.name, id));
        if let Some(median) = bencher.median_ns() {
            self.medians.push((id, median));
        }
        self
    }

    /// Ends the group and drops its `BENCH_<group>.json` summary (median
    /// ns per bench id) into `$WCET_BENCH_DIR` (default
    /// `target/bench-summaries`). Failures to write are non-fatal — the
    /// benches themselves already ran.
    pub fn finish(self) {
        if self.medians.is_empty() {
            return;
        }
        let dir = std::env::var_os("WCET_BENCH_DIR").map_or_else(
            || std::path::PathBuf::from("target/bench-summaries"),
            std::path::PathBuf::from,
        );
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let mut json = String::from("{\n");
        json.push_str(&format!("  \"group\": \"{}\",\n", self.name));
        json.push_str("  \"median_ns\": {\n");
        for (i, (id, median)) in self.medians.iter().enumerate() {
            let comma = if i + 1 < self.medians.len() { "," } else { "" };
            json.push_str(&format!("    \"{id}\": {median}{comma}\n"));
        }
        json.push_str("  }\n}\n");
        let path = dir.join(format!("BENCH_{}.json", self.name));
        let _ = std::fs::write(path, json);
    }
}

/// Passed to each benchmark closure; records the measured routine.
pub struct Bencher {
    budget: Duration,
    max_iters: usize,
    iters: u64,
    elapsed: Duration,
    /// Per-iteration wall-clock samples (ns), for the median summary.
    samples: Vec<u128>,
}

impl Bencher {
    fn new(budget: Duration, max_iters: usize) -> Self {
        Bencher {
            budget,
            max_iters,
            iters: 0,
            elapsed: Duration::ZERO,
            samples: Vec::new(),
        }
    }

    /// Time `routine` repeatedly until the time budget or iteration cap.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        loop {
            let t = Instant::now();
            let out = routine();
            self.samples.push(t.elapsed().as_nanos());
            std::hint::black_box(&out);
            self.iters += 1;
            if start.elapsed() >= self.budget || self.iters as usize >= self.max_iters {
                break;
            }
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut measured = Duration::ZERO;
        let started = Instant::now();
        loop {
            let input = setup();
            let t = Instant::now();
            let out = routine(input);
            let spent = t.elapsed();
            self.samples.push(spent.as_nanos());
            measured += spent;
            std::hint::black_box(&out);
            self.iters += 1;
            if started.elapsed() >= self.budget || self.iters as usize >= self.max_iters {
                break;
            }
        }
        self.elapsed = measured;
    }

    /// Median nanoseconds per iteration, if anything was measured.
    fn median_ns(&self) -> Option<u128> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        Some(sorted[sorted.len() / 2])
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("  {id:<40} (not measured)");
            return;
        }
        let per_iter = self.elapsed.as_nanos() / self.iters as u128;
        println!("  {id:<40} {per_iter:>12} ns/iter ({} iters)", self.iters);
    }
}

/// Declare a bench entry point running each function with a `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
