//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal wall-clock harness with criterion's API shape: `Criterion`,
//! `benchmark_group` / `bench_function` / `finish`, `Bencher::{iter,
//! iter_batched}`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros. There is no statistics engine: each benchmark
//! runs a short calibrated loop and reports mean wall-clock time per
//! iteration. `--no-run`-style compile checks and CI smoke runs work the
//! same as with real criterion (`harness = false` benches are plain
//! binaries).

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted for API compatibility; the
/// stand-in times each batch element individually either way).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Top-level handle: owns output formatting and budget defaults.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement: Duration,
    /// Default sample (iteration) cap per benchmark.
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --quick` (or CRITERION_QUICK=1) shrinks the
        // per-benchmark budget for CI smoke runs, mirroring real
        // criterion's quick mode.
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var_os("CRITERION_QUICK").is_some_and(|v| v != "0");
        if quick {
            Criterion { measurement: Duration::from_millis(10), sample_size: 3 }
        } else {
            Criterion { measurement: Duration::from_millis(200), sample_size: 50 }
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group = BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        };
        println!("group {}", group.name);
        group
    }

    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.measurement, self.sample_size);
        f(&mut bencher);
        bencher.report(&name.into());
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut bencher = Bencher::new(self.criterion.measurement, samples);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.into()));
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; records the measured routine.
pub struct Bencher {
    budget: Duration,
    max_iters: usize,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(budget: Duration, max_iters: usize) -> Self {
        Bencher { budget, max_iters, iters: 0, elapsed: Duration::ZERO }
    }

    /// Time `routine` repeatedly until the time budget or iteration cap.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        loop {
            let out = routine();
            std::hint::black_box(&out);
            self.iters += 1;
            if start.elapsed() >= self.budget || self.iters as usize >= self.max_iters {
                break;
            }
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut measured = Duration::ZERO;
        let started = Instant::now();
        loop {
            let input = setup();
            let t = Instant::now();
            let out = routine(input);
            measured += t.elapsed();
            std::hint::black_box(&out);
            self.iters += 1;
            if started.elapsed() >= self.budget || self.iters as usize >= self.max_iters {
                break;
            }
        }
        self.elapsed = measured;
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("  {id:<40} (not measured)");
            return;
        }
        let per_iter = self.elapsed.as_nanos() / self.iters as u128;
        println!("  {id:<40} {per_iter:>12} ns/iter ({} iters)", self.iters);
    }
}

/// Declare a bench entry point running each function with a `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
