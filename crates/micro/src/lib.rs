//! # wcet-micro — microarchitectural timing analysis
//!
//! The "(Cache and) Pipeline Analysis" phase of the paper's Figure 1:
//! computes *lower and upper execution-time bounds for basic blocks*.
//!
//! * [`acs`] — abstract cache states: Ferdinand-style LRU **must** (maximal
//!   age), **may** (minimal age), and **persistence** (maximal age since
//!   last load, with a virtual evicted-line top element) analyses, whose
//!   classifications are *always-hit* / *always-miss* / *first-miss* /
//!   *not-classified*,
//! * [`footprint`] — per-set summaries of the cache lines a callee
//!   subtree can touch; calls age the caller's abstract cache by them
//!   instead of clobbering it,
//! * [`cacheanalysis`] — instruction- and data-cache fixpoints over a CFG;
//!   the data-cache analysis consumes the value analysis' address values
//!   and reproduces the paper's headline effect: **an access with an
//!   unknown address empties the abstract must cache** ("invalidates large
//!   parts of the abstract cache (or even the whole cache)"),
//! * [`blocktime`] — combines base instruction costs, fetch
//!   classifications, and data-access latencies from the memory map into
//!   per-block WCET/BCET cycle bounds, the numbers the path analysis
//!   weighs its ILP with,
//! * [`pipeline`] — the abstract in-order pipeline: residual-latency
//!   vector sets carried block-to-block (like the ACS) so block cost
//!   becomes a state-dependent retirement delta instead of a latency
//!   sum, plus static BTFNT branch-prediction penalties per CFG edge.
//!
//! # Example
//!
//! ```
//! use wcet_isa::asm::assemble;
//! use wcet_isa::interp::MachineConfig;
//! use wcet_cfg::graph::{reconstruct, TargetResolver};
//! use wcet_analysis::analyze_function;
//! use wcet_micro::blocktime::BlockTimes;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let image = assemble("main: li r1, 2\n addi r1, r1, 3\n halt")?;
//! let p = reconstruct(&image, &TargetResolver::empty())?;
//! let fa = analyze_function(&p, p.entry, &image);
//! let times = BlockTimes::compute(&fa, &MachineConfig::simple());
//! let entry = fa.cfg().entry_block();
//! assert!(times.wcet(entry) >= times.bcet(entry));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod acs;
pub mod blocktime;
pub mod cacheanalysis;
pub mod footprint;
pub mod pipeline;

pub use acs::{AbstractCache, Classification};
pub use blocktime::BlockTimes;
pub use cacheanalysis::{CacheAnalysis, CacheCtx, CacheKind, CacheStates, CtxCacheAnalysis};
pub use footprint::{CacheFootprint, SetFootprint};
pub use pipeline::{BranchPenalties, CtxPipelineAnalysis, PipelineStates};
