//! Abstract in-order pipeline analysis.
//!
//! The flat timing model ([`crate::blocktime`]) sums per-instruction
//! latencies, throwing away every inter-instruction overlap. This module
//! models the machine the interpreter's pipeline mode implements: a
//! latched 4-stage in-order pipe (fetch / execute / memory / writeback)
//! where each stage holds its instruction until the next stage accepts
//! it. Block cost becomes the *retirement delta* computed from an
//! abstract pipeline state carried block-to-block — exactly the way
//! [`crate::cacheanalysis::CacheStates`] is carried — so back-to-back
//! short instructions stop paying the full latency sum.
//!
//! # The abstract state
//!
//! A concrete pipeline state, observed at an instruction's retirement,
//! is the residual vector `(b1, b2, b3)`: how long before retirement the
//! instruction entered execute, memory, and writeback. Larger residuals
//! mean stages were vacated earlier, so the *next* instruction overlaps
//! more and retires sooner; `(0, 0, 0)` is a drained pipe (every stage
//! busy until retirement — the worst case). The latching bounds each
//! residual by combinations of per-stage maximum latencies, which keeps
//! the state space finite and the fixpoint terminating.
//!
//! [`PipelineStates`] keeps *two* bounded sets of residual vectors:
//!
//! * `worst`: a pointwise-minimal antichain under-approximating every
//!   reachable residual (some member is `≤` the concrete vector). The
//!   block WCET delta maximizes over it with worst-case stage latencies.
//! * `best`: a pointwise-maximal antichain over-approximating every
//!   reachable residual. The block BCET delta minimizes over it with
//!   best-case latencies.
//!
//! Join is set union pruned to the antichain; past [`WIDENING_CAP`]
//! vectors the set collapses to its single pointwise bound (the
//! pointwise minimum for `worst`, maximum for `best`) — sound, just
//! blunter.
//!
//! Soundness is a *cumulative* (per-path) argument, not per-block: in
//! absolute time the latch recurrence is monotone in both the entry
//! state and the stage latencies, so an abstract machine started no
//! warmer (worst) / no colder (best) than the concrete one retires every
//! later instruction no earlier / no later. Summing per-block deltas
//! along any path therefore brackets the concrete cycle count, which is
//! exactly what IPET consumes.
//!
//! # Branch prediction
//!
//! Conditional branches are priced per CFG *edge* under a static BTFNT
//! predictor ([`wcet_isa::timing::TimingModel::btfnt_predicts_taken`]):
//! the predicted edge carries the transferred state; the mispredicted
//! edge drains the pipe (exact — the interpreter does the same) and
//! [`branch_penalties`] hands IPET the refill penalty to charge on that
//! edge's flow variable.

use std::collections::{BTreeMap, VecDeque};

use wcet_analysis::{FunctionAnalysis, Value};
use wcet_cfg::block::{BlockId, Terminator};
use wcet_cfg::graph::Cfg;
use wcet_isa::interp::MachineConfig;
use wcet_isa::timing::TimingModel;
use wcet_isa::{Addr, Inst};

use crate::blocktime::{self, AccessOverrides, BlockTimes};
use crate::cacheanalysis::CacheAnalysis;

/// Maximum number of residual vectors per polarity before a join
/// collapses the set to its single pointwise bound.
pub const WIDENING_CAP: usize = 8;

/// A residual vector: cycles before the last instruction's retirement at
/// which it entered execute, memory, and writeback. Nonincreasing and
/// nonnegative by construction.
type Resid = [u64; 3];

/// The abstract pipeline state flowed along CFG (and call) edges; see
/// the module docs for the two polarities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineStates {
    /// Pointwise-minimal antichain: some member lies `≤` every reachable
    /// concrete residual vector. Sorted for determinism.
    worst: Vec<Resid>,
    /// Pointwise-maximal antichain: some member lies `≥` every reachable
    /// concrete residual vector. Sorted for determinism.
    best: Vec<Resid>,
}

impl PipelineStates {
    /// The drained pipe — exact at the task entry (the machine really
    /// starts with empty stages) and after a mispredicted branch.
    #[must_use]
    pub fn drained() -> PipelineStates {
        PipelineStates {
            worst: vec![[0, 0, 0]],
            best: vec![[0, 0, 0]],
        }
    }

    /// The sound state for a function whose callers are not tracked (and
    /// for the caller's view after an opaque call): the pipe may be
    /// anything from drained to maximally warm. `worst` gets the global
    /// minimum; `best` gets the machine-derived residual ceiling.
    #[must_use]
    pub fn unknown(machine: &MachineConfig) -> PipelineStates {
        PipelineStates {
            worst: vec![[0, 0, 0]],
            best: vec![max_slack(machine)],
        }
    }

    /// A state from raw residual vectors, normalized (dominated members
    /// pruned, sorted, widening cap applied). The constructor the domain
    /// property tests build arbitrary states with; empty polarities fall
    /// back to the drained vector so the state stays well-formed.
    #[must_use]
    pub fn from_vectors(worst: Vec<[u64; 3]>, best: Vec<[u64; 3]>) -> PipelineStates {
        let fill = |v: Vec<Resid>| if v.is_empty() { vec![[0, 0, 0]] } else { v };
        PipelineStates {
            worst: fill(worst),
            best: fill(best),
        }
        .normalized()
    }

    /// Control-flow (and call-edge) merge: set union per polarity,
    /// pruned and capped.
    #[must_use]
    pub fn join(&self, other: &PipelineStates) -> PipelineStates {
        let mut worst = self.worst.clone();
        worst.extend_from_slice(&other.worst);
        let mut best = self.best.clone();
        best.extend_from_slice(&other.best);
        PipelineStates { worst, best }.normalized()
    }

    /// Prunes dominated vectors, sorts, and applies the widening cap.
    fn normalized(mut self) -> PipelineStates {
        self.worst = normalize(self.worst, Polarity::Worst);
        self.best = normalize(self.best, Polarity::Best);
        self
    }

    /// `self` adds nothing over `other`: every member is covered by one
    /// of `other`'s (below for `worst`, above for `best`), so flowing
    /// `other` already accounts for everything `self` describes.
    #[must_use]
    pub fn is_subsumed_by(&self, other: &PipelineStates) -> bool {
        self.worst
            .iter()
            .all(|v| other.worst.iter().any(|u| le(u, v)))
            && self
                .best
                .iter()
                .all(|v| other.best.iter().any(|u| le(v, u)))
    }

    /// A stable content digest (for incremental context-entry keys).
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = wcet_isa::hash::StableHasher::new();
        for dir in [&self.worst, &self.best] {
            h.write_u32(u32::try_from(dir.len()).unwrap_or(u32::MAX));
            for v in dir {
                for &c in v {
                    h.write_u64(c);
                }
            }
        }
        h.finish()
    }

    /// Number of vectors tracked (both polarities) — widening telemetry.
    #[must_use]
    pub fn width(&self) -> usize {
        self.worst.len() + self.best.len()
    }
}

/// Which bound a vector set serves.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Polarity {
    Worst,
    Best,
}

fn le(a: &Resid, b: &Resid) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

fn normalize(mut set: Vec<Resid>, polarity: Polarity) -> Vec<Resid> {
    set.sort_unstable();
    set.dedup();
    // Keep v only when no *other* member covers it: for `worst` a
    // smaller vector yields the larger delta, so `v` dominated from
    // below is redundant; mirrored for `best`.
    let kept: Vec<Resid> = set
        .iter()
        .filter(|v| {
            !set.iter().any(|u| {
                u != *v
                    && match polarity {
                        Polarity::Worst => le(u, v),
                        Polarity::Best => le(v, u),
                    }
            })
        })
        .copied()
        .collect();
    if kept.len() <= WIDENING_CAP {
        return kept;
    }
    // Collapse to the single pointwise bound of the whole set.
    let mut bound = kept[0];
    for v in &kept[1..] {
        for k in 0..3 {
            bound[k] = match polarity {
                Polarity::Worst => bound[k].min(v[k]),
                Polarity::Best => bound[k].max(v[k]),
            };
        }
    }
    vec![bound]
}

/// The residual ceiling reachable on `machine`, derived from the latch
/// recurrence's inductive bounds: `b3 = W`, `b2 ≤ W + max(M, W)`,
/// `b1 ≤ b2 + max(E, b2)` where `W` is the writeback occupancy, `M` the
/// worst memory-stage latency, and `E` the worst execute cost. A
/// generous overestimate is sound — it only loosens the BCET.
fn max_slack(machine: &MachineConfig) -> Resid {
    let t = &machine.timing;
    let e = u64::from(
        [
            t.alu,
            t.mul,
            t.falu,
            t.fdiv,
            t.jump,
            t.call,
            t.indirect,
            t.mem_issue,
            t.alloc,
            t.select,
            t.nop,
        ]
        .into_iter()
        .max()
        .unwrap_or(1)
        .max(t.branch_taken)
        .max(t.branch_not_taken),
    );
    let mut m = u64::from(
        machine
            .memmap
            .worst_read_latency()
            .max(machine.memmap.worst_write_latency()),
    );
    if let Some(dc) = &machine.dcache {
        m += u64::from(dc.hit_latency);
    }
    let w = u64::from(t.writeback);
    let b3 = w;
    let b2 = w + m.max(w);
    let b1 = b2 + e.max(b2);
    [b1, b2, b3]
}

/// One step of the latch recurrence: retires an instruction with stage
/// latencies `(s1, s2, s3, s4)` against residual `r`, returning the
/// retirement delta and the successor residual. Mirrors the
/// interpreter's `charge_pipelined` exactly.
fn step(r: Resid, s1: u64, s2: u64, s3: u64, s4: u64) -> (u64, Resid) {
    let to_i = |x: u64| i64::try_from(x).expect("stage latency fits i64");
    let u1 = to_i(s1) - to_i(r[0]);
    let v2 = u1.max(-to_i(r[1]));
    let d2 = v2 + to_i(s2);
    let v3 = d2.max(-to_i(r[2]));
    let d3 = v3 + to_i(s3);
    let v4 = d3.max(0);
    let d4 = v4 + to_i(s4);
    (
        d4.unsigned_abs(),
        [
            (d4 - v2).unsigned_abs(),
            (d4 - v3).unsigned_abs(),
            (d4 - v4).unsigned_abs(),
        ],
    )
}

/// Per-instruction stage latencies, split by bound direction. The
/// execute entry of a conditional-branch terminator is the *not-taken*
/// cost in `exec_lo` and the *taken* cost in `exec_hi`; edge-directed
/// transfers override it with the edge's exact cost.
struct InstLat {
    fetch_hi: u64,
    fetch_lo: u64,
    exec_hi: u64,
    exec_lo: u64,
    mem_hi: u64,
    mem_lo: u64,
    /// First-miss penalty (persistence runs), charged additively
    /// once-per-activation by IPET — never overlapped.
    first_miss: u64,
}

/// The BTFNT penalty per CFG edge, split by bound sense. Normally both
/// maps carry the same entry (the mispredicted edge's penalty — exact,
/// since the predictor is deterministic). When a branch's taken target
/// *is* its fall-through the single merged edge may or may not
/// mispredict, so only the WCET map charges it.
#[derive(Debug, Clone, Default)]
pub struct BranchPenalties {
    /// Penalties the WCET (maximizing) objective adds per edge.
    pub wcet: BTreeMap<(BlockId, BlockId), u64>,
    /// Penalties the BCET (minimizing) objective adds per edge.
    pub bcet: BTreeMap<(BlockId, BlockId), u64>,
}

/// Static BTFNT branch-prediction penalties for every conditional-branch
/// edge of `cfg`.
#[must_use]
pub fn branch_penalties(cfg: &Cfg, timing: &TimingModel) -> BranchPenalties {
    let mut out = BranchPenalties::default();
    let penalty = u64::from(timing.mispredict_penalty);
    if penalty == 0 {
        return out;
    }
    for (id, block) in cfg.iter() {
        let Terminator::CondBranch {
            taken, fallthrough, ..
        } = block.term
        else {
            continue;
        };
        let pc = block.site_addr();
        let predicted_taken = TimingModel::btfnt_predicts_taken(pc, taken);
        if taken == fallthrough {
            // Degenerate branch-to-next: one merged edge that may or may
            // not mispredict. Charge only the upper bound.
            for &succ in &cfg.succs[id.0] {
                if cfg.block(succ).start == taken {
                    out.wcet.insert((id, succ), penalty);
                }
            }
            continue;
        }
        let mispredicted = if predicted_taken { fallthrough } else { taken };
        for &succ in &cfg.succs[id.0] {
            if cfg.block(succ).start == mispredicted {
                out.wcet.insert((id, succ), penalty);
                out.bcet.insert((id, succ), penalty);
            }
        }
    }
    out
}

/// Conditional-branch out-edges priced by the BTFNT model — the
/// phase-trace statistic. A pure function of the CFG, so a warm replay
/// recounts it without re-running the fixpoint.
#[must_use]
pub fn predicted_edge_count(cfg: &Cfg) -> usize {
    cfg.iter()
        .filter(|(_, b)| matches!(b.term, Terminator::CondBranch { .. }))
        .map(|(id, _)| cfg.succs[id.0].len())
        .sum()
}

/// A pipeline analysis together with the context-propagation hooks: the
/// abstract state immediately after every call terminator (= the
/// callee's entry pipe), keyed by call site, mirroring
/// [`crate::cacheanalysis::CtxCacheAnalysis`].
#[derive(Debug, Clone)]
pub struct CtxPipelineAnalysis {
    /// Pipeline-aware per-block time bounds (first-miss penalties are
    /// identical to the flat model's — they stay additive).
    pub times: BlockTimes,
    /// Abstract pipe state entering each callee, keyed by call site
    /// (virtual unrolling can duplicate a site; duplicates are joined).
    pub call_states: BTreeMap<Addr, PipelineStates>,
    /// Conditional-branch edges priced by the BTFNT model (the
    /// phase-trace counter).
    pub predicted_edges: usize,
}

/// Runs the abstract pipeline fixpoint over `fa`'s CFG and derives
/// pipeline-aware [`BlockTimes`].
///
/// `icache`/`dcache` are the (context-entry-aware) cache analyses whose
/// classifications feed the fetch and memory stage latencies — passing
/// the same instances used for classification keeps timing and
/// classification agreeing, exactly as
/// [`BlockTimes::compute_from_parts`] requires. `entry` is the abstract
/// pipe at function entry (`None` = drained; use
/// [`PipelineStates::unknown`] for untracked callers).
#[must_use]
pub fn analyze(
    fa: &FunctionAnalysis,
    machine: &MachineConfig,
    overrides: &AccessOverrides,
    icache: Option<&CacheAnalysis>,
    dcache: Option<&CacheAnalysis>,
    entry: Option<&PipelineStates>,
) -> CtxPipelineAnalysis {
    let cfg = fa.cfg();
    let accesses = fa.access_values();
    let writeback = u64::from(machine.timing.writeback);

    // Per-block, per-instruction stage latencies.
    let lats: Vec<Vec<InstLat>> = cfg
        .iter()
        .map(|(id, block)| {
            block
                .insts
                .iter()
                .enumerate()
                .map(|(idx, (inst_addr, inst))| {
                    let (f_hi, f_lo, f_fm) =
                        blocktime::fetch_cost(*inst_addr, icache, machine, id, idx);
                    let (mut m_hi, mut m_lo, mut m_fm) = (0u32, 0u32, 0u32);
                    if inst.is_memory_access() {
                        let value = accesses.get(inst_addr).cloned().unwrap_or_else(Value::top);
                        let value =
                            blocktime::apply_override(value, overrides.range_of(*inst_addr));
                        let is_read = matches!(inst, Inst::Load { .. });
                        (m_hi, m_lo, m_fm) =
                            blocktime::data_cost(&value, is_read, dcache, machine, id, idx);
                    }
                    InstLat {
                        fetch_hi: u64::from(f_hi),
                        fetch_lo: u64::from(f_lo),
                        exec_hi: u64::from(machine.timing.worst_base_cost(inst)),
                        exec_lo: u64::from(machine.timing.base_cost(inst)),
                        mem_hi: u64::from(m_hi),
                        mem_lo: u64::from(m_lo),
                        first_miss: u64::from(f_fm) + u64::from(m_fm),
                    }
                })
                .collect()
        })
        .collect();

    // Transfers one polarity's vector through the block's instructions
    // (optionally overriding the last instruction's execute cost for
    // edge-directed branch transfers), returning the summed delta.
    let run_vec = |v: Resid, block: BlockId, hi: bool, exec_last: Option<u64>| -> (u64, Resid) {
        let rows = &lats[block.0];
        let mut r = v;
        let mut total = 0u64;
        for (idx, l) in rows.iter().enumerate() {
            let (s1, mut s2, s3) = if hi {
                (l.fetch_hi, l.exec_hi, l.mem_hi)
            } else {
                (l.fetch_lo, l.exec_lo, l.mem_lo)
            };
            if idx + 1 == rows.len() {
                if let Some(e) = exec_last {
                    s2 = e;
                }
            }
            let (d, next) = step(r, s1, s2, s3, writeback);
            total += d;
            r = next;
        }
        (total, r)
    };
    let transfer = |s: &PipelineStates, block: BlockId, exec_last: Option<u64>| -> PipelineStates {
        PipelineStates {
            worst: s
                .worst
                .iter()
                .map(|&v| run_vec(v, block, true, exec_last).1)
                .collect(),
            best: s
                .best
                .iter()
                .map(|&v| run_vec(v, block, false, exec_last).1)
                .collect(),
        }
        .normalized()
    };

    // What flows along each outgoing edge of `block` given its in-state.
    // Conditional branches fork: the predicted edge carries the
    // transferred state with that edge's exact execute cost; the
    // mispredicted edge drains the pipe (the interpreter restarts
    // against empty stages after the refill).
    let out_edges = |block: BlockId, in_state: &PipelineStates| -> Vec<(BlockId, PipelineStates)> {
        let b = cfg.block(block);
        match b.term {
            Terminator::CondBranch {
                taken, fallthrough, ..
            } => {
                let pc = b.site_addr();
                let predicted_taken = TimingModel::btfnt_predicts_taken(pc, taken);
                let not_taken_cost = u64::from(machine.timing.branch_not_taken);
                let taken_cost = u64::from(machine.timing.branch_taken);
                cfg.succs[block.0]
                    .iter()
                    .map(|&succ| {
                        let start = cfg.block(succ).start;
                        let is_taken_edge = start == taken;
                        let predicted = if taken == fallthrough {
                            true
                        } else {
                            is_taken_edge == predicted_taken
                        };
                        let state = if predicted {
                            let exec = if is_taken_edge {
                                taken_cost
                            } else {
                                not_taken_cost
                            };
                            transfer(in_state, block, Some(exec))
                        } else {
                            PipelineStates::drained()
                        };
                        (succ, state)
                    })
                    .collect()
            }
            Terminator::Call { .. } | Terminator::CallInd { .. } => {
                // The transferred state is the callee's entry pipe; the
                // caller resumes with an unknown pipe (snapshots are
                // taken in the classification pass below).
                cfg.succs[block.0]
                    .iter()
                    .map(|&succ| (succ, PipelineStates::unknown(machine)))
                    .collect()
            }
            _ => cfg.succs[block.0]
                .iter()
                .map(|&succ| (succ, transfer(in_state, block, None)))
                .collect(),
        }
    };

    // Worklist fixpoint, mirroring the cache analysis.
    let n = cfg.block_count();
    let mut in_states: Vec<Option<PipelineStates>> = vec![None; n];
    let entry_block = cfg.entry_block();
    in_states[entry_block.0] = Some(entry.cloned().unwrap_or_else(PipelineStates::drained));
    let mut work: VecDeque<BlockId> = VecDeque::from([entry_block]);
    while let Some(b) = work.pop_front() {
        let Some(in_state) = in_states[b.0].clone() else {
            continue;
        };
        for (succ, out) in out_edges(b, &in_state) {
            let new_in = match &in_states[succ.0] {
                Some(old) => old.join(&out),
                None => out,
            };
            let changed = match &in_states[succ.0] {
                Some(old) => !new_in.is_subsumed_by(old),
                None => true,
            };
            if changed {
                in_states[succ.0] = Some(new_in);
                work.push_back(succ);
            }
        }
    }

    // Charging pass: per-block deltas from the in-states, plus pre-call
    // snapshots for context propagation.
    let mut call_states: BTreeMap<Addr, PipelineStates> = BTreeMap::new();
    let mut wcet = Vec::with_capacity(n);
    let mut bcet = Vec::with_capacity(n);
    let mut first_miss = Vec::with_capacity(n);
    for (id, block) in cfg.iter() {
        // Unreachable blocks charge from a drained pipe — they never
        // execute, so any deterministic sound choice works.
        let in_state = in_states[id.0]
            .clone()
            .unwrap_or_else(PipelineStates::drained);
        let hi = in_state
            .worst
            .iter()
            .map(|&v| run_vec(v, id, true, None).0)
            .max()
            .unwrap_or(0);
        let lo = in_state
            .best
            .iter()
            .map(|&v| run_vec(v, id, false, None).0)
            .min()
            .unwrap_or(0);
        // The per-path (cumulative) soundness argument lets a block's
        // maximized delta undercut its minimized one in pathological
        // set shapes; clamping the lower bound down is always sound.
        wcet.push(hi);
        bcet.push(lo.min(hi));
        first_miss.push(lats[id.0].iter().map(|l| l.first_miss).sum());

        if matches!(
            block.term,
            Terminator::Call { .. } | Terminator::CallInd { .. }
        ) {
            // The post-terminator state — the call instruction has been
            // transferred — is the callee's entry pipe.
            let after = transfer(&in_state, id, None);
            let site = block.site_addr();
            let merged = match call_states.remove(&site) {
                Some(prev) => prev.join(&after),
                None => after,
            };
            call_states.insert(site, merged);
        }
    }

    CtxPipelineAnalysis {
        times: BlockTimes::from_pipeline(wcet, bcet, first_miss),
        call_states,
        predicted_edges: predicted_edge_count(cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_analysis::analyze_function;
    use wcet_cfg::graph::{reconstruct, TargetResolver};
    use wcet_isa::asm::assemble;
    use wcet_isa::interp::Interpreter;

    fn analyze_src(src: &str) -> (wcet_isa::Image, FunctionAnalysis) {
        let image = assemble(src).unwrap();
        let p = reconstruct(&image, &TargetResolver::empty()).unwrap();
        let fa = analyze_function(&p, p.entry, &image);
        (image, fa)
    }

    fn pipeline_times(fa: &FunctionAnalysis, machine: &MachineConfig) -> CtxPipelineAnalysis {
        analyze(fa, machine, &AccessOverrides::none(), None, None, None)
    }

    #[test]
    fn straight_line_matches_the_interpreter_exactly() {
        // One block, deterministic latencies (no caches): the abstract
        // drained-entry delta is the concrete pipelined cycle count.
        let src = "main: li r1, 3\n mul r2, r1, r1\n fdiv f1, f1, f1\n addi r2, r2, 1\n halt";
        let (image, fa) = analyze_src(src);
        let machine = MachineConfig {
            pipeline: true,
            ..MachineConfig::simple()
        };
        let t = pipeline_times(&fa, &machine);
        let mut interp = Interpreter::with_config(&image, machine);
        let observed = interp.run(1000).unwrap().cycles;
        let entry = fa.cfg().entry_block();
        assert_eq!(t.times.wcet(entry), observed);
        assert_eq!(t.times.bcet(entry), observed);
    }

    #[test]
    fn pipeline_tightens_flat_block_times() {
        let src = "main: fdiv f1, f1, f1\n fdiv f2, f2, f2\n fdiv f3, f3, f3\n halt";
        let (_, fa) = analyze_src(src);
        let machine = MachineConfig::simple();
        let flat = BlockTimes::compute(&fa, &machine);
        let piped = pipeline_times(&fa, &machine);
        let b = fa.cfg().entry_block();
        assert!(
            piped.times.wcet(b) < flat.wcet(b),
            "pipelined {} should beat flat {}",
            piped.times.wcet(b),
            flat.wcet(b)
        );
        assert!(piped.times.bcet(b) <= piped.times.wcet(b));
    }

    #[test]
    fn join_is_sound_and_subsumption_agrees() {
        let drained = PipelineStates::drained();
        let unknown = PipelineStates::unknown(&MachineConfig::simple());
        let joined = drained.join(&unknown);
        assert!(drained.is_subsumed_by(&joined));
        assert!(unknown.is_subsumed_by(&joined));
        assert_eq!(joined.join(&joined).digest(), joined.digest());
        assert_ne!(drained.digest(), unknown.digest());
    }

    #[test]
    fn widening_cap_collapses_to_pointwise_bound() {
        let mut acc = PipelineStates::drained();
        // Incomparable vectors: (k, CAP-k, 0) — an antichain wider than
        // the cap in the best direction.
        for k in 0..=(WIDENING_CAP as u64) {
            let v = [10 + k, (WIDENING_CAP as u64) - k, 0];
            let s = PipelineStates {
                worst: vec![[0, 0, 0]],
                best: vec![v],
            };
            acc = acc.join(&s);
        }
        assert!(
            acc.best.len() <= WIDENING_CAP,
            "cap respected, got {}",
            acc.best.len()
        );
    }

    #[test]
    fn branch_penalties_charge_the_mispredicted_edge() {
        // Backward loop branch: predicted taken → penalty on the exit
        // (fall-through) edge only.
        let (_, fa) = analyze_src("main: li r1, 4\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt");
        let cfg = fa.cfg();
        let timing = TimingModel::new();
        let p = branch_penalties(cfg, &timing);
        assert_eq!(p.wcet.len(), 1);
        assert_eq!(p.wcet, p.bcet);
        let (&(from, to), &pen) = p.wcet.iter().next().unwrap();
        assert_eq!(pen, u64::from(timing.mispredict_penalty));
        // The penalized edge leads to the halt block, not back to the loop.
        assert!(cfg.succs[from.0].contains(&to));
        assert!(
            !matches!(cfg.block(to).term, Terminator::CondBranch { .. }),
            "exit edge is the mispredicted one"
        );
    }

    #[test]
    fn loop_fixpoint_terminates_and_covers_the_interpreter() {
        // A loop whose body mixes latencies: the fixpoint must terminate
        // and the summed block bounds (entry + n·body) must cover the
        // concrete run. Charges per block: wcet × executions.
        let src = "main: li r1, 6\nloop: mul r2, r1, r1\n fdiv f1, f1, f1\n subi r1, r1, 1\n bne r1, r0, loop\n halt";
        let (image, fa) = analyze_src(src);
        let machine = MachineConfig {
            pipeline: true,
            ..MachineConfig::simple()
        };
        let t = pipeline_times(&fa, &machine);
        let mut interp = Interpreter::with_config(&image, machine.clone());
        let observed = interp.run(10_000).unwrap().cycles;
        let cfg = fa.cfg();
        // Path: entry once, loop 6 times, halt once, one mispredict.
        let entry = cfg.entry_block();
        let loop_b = cfg
            .iter()
            .find(|(_, b)| matches!(b.term, Terminator::CondBranch { .. }))
            .map(|(id, _)| id)
            .unwrap();
        let halt_b = cfg
            .iter()
            .find(|(_, b)| matches!(b.term, Terminator::Halt))
            .map(|(id, _)| id)
            .unwrap();
        let bound = t.times.wcet(entry)
            + 6 * t.times.wcet(loop_b)
            + t.times.wcet(halt_b)
            + u64::from(machine.timing.mispredict_penalty);
        assert!(bound >= observed, "bound {bound} < observed {observed}");
        let lower = t.times.bcet(entry)
            + 6 * t.times.bcet(loop_b)
            + t.times.bcet(halt_b)
            + u64::from(machine.timing.mispredict_penalty);
        assert!(lower <= observed, "lower {lower} > observed {observed}");
    }

    #[test]
    fn call_snapshot_feeds_callee_entry() {
        let (_, fa) = analyze_src("main: nop\n call f\n halt\nf: ret");
        let machine = MachineConfig::simple();
        let t = pipeline_times(&fa, &machine);
        assert_eq!(t.call_states.len(), 1, "one call site snapshotted");
        let state = t.call_states.values().next().unwrap();
        // A real transferred state, not the unknown fallback.
        assert_ne!(state.digest(), PipelineStates::unknown(&machine).digest());
    }
}
