//! Cache **footprint summaries**: which lines of which cache sets a
//! callee (including its transitive callees) can possibly touch.
//!
//! PR 4's soundness fix made every call wipe the caller's must cache and
//! permanently poison its may cache — sound, but it discards *all*
//! warm-cache knowledge across calls, so repeated calls in loops are
//! charged cold-cache misses forever. A footprint summary bounds the
//! damage instead: a callee that provably touches only lines `S_i` of set
//! `i` can age a caller-cached line in that set by at most `|S_i|`
//! positions, leaves every other set untouched, and cannot make any line
//! outside its footprint "possibly cached" — so the caller keeps its
//! must-cache guarantees for untouched lines and its may-cache stays
//! un-poisoned when the footprint is fully known.
//!
//! Footprints are computed per function from the CFG (instruction
//! fetches) and the value analysis' abstract data addresses, then closed
//! transitively over the call graph (bottom-up) by the analyzer. A set
//! the callee may touch through a statically unknown address degrades to
//! [`SetFootprint::Any`]; an address about which *nothing* is known
//! degrades every set.

use std::collections::{BTreeMap, BTreeSet};

use wcet_analysis::Value;
use wcet_cfg::graph::Cfg;
use wcet_isa::cache::CacheConfig;
use wcet_isa::memmap::MemoryMap;
use wcet_isa::Addr;

/// What a callee can do to one cache set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetFootprint {
    /// Only these line tags can be loaded into the set (possibly none).
    Lines(BTreeSet<u32>),
    /// Any line of the set may be loaded: the caller must assume full
    /// eviction (must) and possible presence of anything (may poison).
    Any,
}

impl SetFootprint {
    /// Number of distinct lines that can conflict with `line` in this
    /// set, or `None` for [`SetFootprint::Any`].
    #[must_use]
    pub fn conflicts_with(&self, line: u32) -> Option<usize> {
        match self {
            SetFootprint::Lines(ls) => Some(ls.len() - usize::from(ls.contains(&line))),
            SetFootprint::Any => None,
        }
    }
}

/// A per-set summary of the lines one callee subtree can touch in a
/// cache of a fixed geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheFootprint {
    config: CacheConfig,
    sets: Vec<SetFootprint>,
}

impl CacheFootprint {
    /// The empty footprint (touches nothing) for a cache geometry.
    #[must_use]
    pub fn empty(config: &CacheConfig) -> CacheFootprint {
        CacheFootprint {
            sets: vec![SetFootprint::Lines(BTreeSet::new()); config.sets],
            config: config.clone(),
        }
    }

    /// The unknown footprint (may touch anything).
    #[must_use]
    pub fn unknown(config: &CacheConfig) -> CacheFootprint {
        let mut fp = CacheFootprint::empty(config);
        fp.absorb_unknown();
        fp
    }

    /// Rebuilds a footprint from decoded parts (the incremental cache's
    /// replay path). `None` when the set vector does not fit the
    /// geometry.
    #[must_use]
    pub fn from_parts(config: CacheConfig, sets: Vec<SetFootprint>) -> Option<CacheFootprint> {
        (sets.len() == config.sets).then_some(CacheFootprint { config, sets })
    }

    /// The cache geometry this footprint describes.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The per-set summaries, in set order.
    #[must_use]
    pub fn sets(&self) -> &[SetFootprint] {
        &self.sets
    }

    /// True if no set can be touched at all.
    #[must_use]
    pub fn touches_nothing(&self) -> bool {
        self.sets
            .iter()
            .all(|s| matches!(s, SetFootprint::Lines(ls) if ls.is_empty()))
    }

    /// True if some set degraded to [`SetFootprint::Any`].
    #[must_use]
    pub fn has_unknown_set(&self) -> bool {
        self.sets.iter().any(|s| matches!(s, SetFootprint::Any))
    }

    /// Records a definite touch of `addr`'s line.
    pub fn absorb_addr(&mut self, addr: Addr) {
        let line = self.config.line_of(addr);
        let set = (line as usize) % self.config.sets;
        if let SetFootprint::Lines(ls) = &mut self.sets[set] {
            ls.insert(line);
        }
    }

    /// Records a touch somewhere in `[lo, hi]`. Ranges spanning at most
    /// the cache's line capacity enumerate their lines; wider ranges
    /// degrade to the unknown footprint (more lines than the cache holds
    /// necessarily cover every set — `capacity ≥ sets` — and could evict
    /// everything anyway).
    pub fn absorb_range(&mut self, lo: Addr, hi: Addr) {
        if hi < lo {
            return;
        }
        let line_lo = self.config.line_of(lo);
        let line_hi = self.config.line_of(hi);
        let count = u64::from(line_hi) - u64::from(line_lo) + 1;
        let capacity = (self.config.sets * self.config.assoc) as u64;
        if count > capacity {
            self.absorb_unknown();
            return;
        }
        for l in line_lo..=line_hi {
            let set = (l as usize) % self.config.sets;
            if let SetFootprint::Lines(ls) = &mut self.sets[set] {
                ls.insert(l);
            }
        }
    }

    /// Records a touch at a completely unknown address.
    pub fn absorb_unknown(&mut self) {
        for s in &mut self.sets {
            *s = SetFootprint::Any;
        }
    }

    /// Unions another footprint of the same geometry into this one.
    ///
    /// # Panics
    ///
    /// Panics when the geometries differ.
    pub fn union(&mut self, other: &CacheFootprint) {
        assert_eq!(
            self.config, other.config,
            "uniting footprints of different caches"
        );
        for (mine, theirs) in self.sets.iter_mut().zip(&other.sets) {
            match (&mut *mine, theirs) {
                (SetFootprint::Any, _) => {}
                (_, SetFootprint::Any) => *mine = SetFootprint::Any,
                (SetFootprint::Lines(a), SetFootprint::Lines(b)) => {
                    a.extend(b.iter().copied());
                }
            }
        }
    }
}

/// The instruction-cache footprint of one function body: every cacheable
/// instruction address it can fetch. Always fully known — fetch
/// addresses are static.
#[must_use]
pub fn instruction_footprint(
    cfg: &Cfg,
    config: &CacheConfig,
    memmap: &MemoryMap,
) -> CacheFootprint {
    let mut fp = CacheFootprint::empty(config);
    for (_, block) in cfg.iter() {
        for (addr, _) in &block.insts {
            if memmap.region_at(*addr).is_some_and(|r| r.cacheable) {
                fp.absorb_addr(*addr);
            }
        }
    }
    fp
}

/// The data-cache footprint of one function body, from the value
/// analysis' abstract access addresses (keyed by instruction address).
/// Precise address sets contribute their lines; bounded intervals
/// contribute ranges; unbounded or missing values degrade to unknown.
#[must_use]
pub fn data_footprint(
    cfg: &Cfg,
    config: &CacheConfig,
    memmap: &MemoryMap,
    accesses: &BTreeMap<Addr, Value>,
) -> CacheFootprint {
    let mut fp = CacheFootprint::empty(config);
    for (_, block) in cfg.iter() {
        for (inst_addr, inst) in &block.insts {
            if !inst.is_memory_access() {
                continue;
            }
            absorb_access(&mut fp, accesses.get(inst_addr), memmap);
        }
    }
    fp
}

fn absorb_access(fp: &mut CacheFootprint, value: Option<&Value>, memmap: &MemoryMap) {
    let Some(value) = value else {
        fp.absorb_unknown();
        return;
    };
    if let Some(set) = value.as_set() {
        for &a in set {
            let addr = Addr(a);
            if memmap.region_at(addr).is_some_and(|r| r.cacheable) {
                fp.absorb_addr(addr);
            }
        }
        return;
    }
    let iv = value.to_interval();
    match (iv.lo(), iv.hi()) {
        // A bounded interval: everything it spans might be loaded.
        // Uncacheable sub-ranges contribute lines that can never be in
        // the cache — harmless over-approximation.
        (Some(lo), Some(hi)) => fp.absorb_range(Addr(lo), Addr(hi)),
        _ => fp.absorb_unknown(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg4() -> CacheConfig {
        // 4 sets × 2 ways × 16-byte lines.
        CacheConfig::new(4, 2, 16, 1)
    }

    #[test]
    fn absorb_addr_collects_lines_per_set() {
        let mut fp = CacheFootprint::empty(&cfg4());
        assert!(fp.touches_nothing());
        fp.absorb_addr(Addr(0x100)); // line 16 → set 0
        fp.absorb_addr(Addr(0x104)); // same line
        fp.absorb_addr(Addr(0x110)); // line 17 → set 1
        assert!(!fp.touches_nothing());
        assert_eq!(fp.sets()[0], SetFootprint::Lines(BTreeSet::from([16])));
        assert_eq!(fp.sets()[1], SetFootprint::Lines(BTreeSet::from([17])));
        assert_eq!(fp.sets()[2], SetFootprint::Lines(BTreeSet::new()));
    }

    #[test]
    fn small_range_enumerates_wide_range_degrades() {
        let mut small = CacheFootprint::empty(&cfg4());
        small.absorb_range(Addr(0x100), Addr(0x12f)); // 3 lines
        assert_eq!(small.sets()[0], SetFootprint::Lines(BTreeSet::from([16])));
        assert!(!small.has_unknown_set());

        let mut wide = CacheFootprint::empty(&cfg4());
        wide.absorb_range(Addr(0x0), Addr(0xfff)); // 256 lines ≫ capacity 8
        assert!(wide.has_unknown_set());
        assert!(wide.sets().iter().all(|s| matches!(s, SetFootprint::Any)));
    }

    #[test]
    fn union_takes_the_weaker_summary() {
        let mut a = CacheFootprint::empty(&cfg4());
        a.absorb_addr(Addr(0x100));
        let mut b = CacheFootprint::empty(&cfg4());
        b.absorb_addr(Addr(0x140)); // line 20 → set 0
        b.sets[1] = SetFootprint::Any;
        a.union(&b);
        assert_eq!(a.sets()[0], SetFootprint::Lines(BTreeSet::from([16, 20])));
        assert_eq!(a.sets()[1], SetFootprint::Any);
    }

    #[test]
    fn conflicts_exclude_the_line_itself() {
        let lines = SetFootprint::Lines(BTreeSet::from([16, 20]));
        assert_eq!(lines.conflicts_with(16), Some(1));
        assert_eq!(lines.conflicts_with(99), Some(2));
        assert_eq!(SetFootprint::Any.conflicts_with(16), None);
    }

    #[test]
    fn from_parts_validates_geometry() {
        let cfg = cfg4();
        assert!(CacheFootprint::from_parts(cfg.clone(), vec![SetFootprint::Any; 4]).is_some());
        assert!(CacheFootprint::from_parts(cfg, vec![SetFootprint::Any; 3]).is_none());
    }
}
