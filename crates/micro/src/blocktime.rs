//! Per-basic-block execution-time bounds (the pipeline analysis output).
//!
//! For every block, combines
//!
//! 1. base instruction costs from the shared [`wcet_isa::timing`] model,
//! 2. fetch latencies from the instruction-cache classifications (or the
//!    code region's latency when no icache is configured),
//! 3. data-access latencies from the data-cache classifications and the
//!    memory map — where an access with an *unknown* address must be
//!    charged the **slowest region in the map** ("the slowest memory
//!    module will thus contribute the most to the overall WCET bound",
//!    Section 4.3),
//!
//! into a WCET and BCET cycle bound per block. These are exactly the
//! weights the IPET path analysis maximizes over.
//!
//! Memory-region annotations (Section 4.3's remedy) enter through
//! [`AccessOverrides`]: a per-access restriction of the possible address
//! range, typically "this driver routine only touches the CAN controller's
//! MMIO window".

use std::collections::BTreeMap;
use std::fmt;

use wcet_analysis::{FunctionAnalysis, Interval, Value};
use wcet_cfg::block::BlockId;
use wcet_isa::interp::MachineConfig;
use wcet_isa::memmap::MemoryMap;
use wcet_isa::{Addr, Inst};

use crate::acs::Classification;
use crate::cacheanalysis::CacheAnalysis;

/// An access override whose range is inverted (`lo > hi`): the empty
/// interval. Such a "fact" would silently drop the data-access charge for
/// the instruction entirely — an unsound annotation must be rejected, not
/// absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvertedRange {
    /// The access the override named.
    pub inst: Addr,
    /// The (inverted) lower bound.
    pub lo: u32,
    /// The (inverted) upper bound.
    pub hi: u32,
}

impl fmt::Display for InvertedRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "access override for {} has an inverted range {:#x}..{:#x} (lo > hi)",
            self.inst, self.lo, self.hi
        )
    }
}

impl std::error::Error for InvertedRange {}

/// Annotation-supplied address ranges for specific accesses, keyed by the
/// instruction address of the load/store. The analysis *intersects* its
/// own knowledge with these (they are design-level facts).
#[derive(Debug, Clone, Default)]
pub struct AccessOverrides {
    ranges: BTreeMap<Addr, Interval>,
}

impl AccessOverrides {
    /// No overrides.
    #[must_use]
    pub fn none() -> AccessOverrides {
        AccessOverrides::default()
    }

    /// Declares that the access at `inst` only touches `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// [`InvertedRange`] when `lo > hi`. This used to be accepted
    /// silently, registering an *empty* interval whose meet with the
    /// analysis result erased the access's memory charge.
    pub fn restrict(&mut self, inst: Addr, lo: u32, hi: u32) -> Result<(), InvertedRange> {
        if lo > hi {
            return Err(InvertedRange { inst, lo, hi });
        }
        self.ranges.insert(inst, Interval::new(lo, hi));
        Ok(())
    }

    /// The override for `inst`, if any.
    #[must_use]
    pub fn range_of(&self, inst: Addr) -> Option<Interval> {
        self.ranges.get(&inst).copied()
    }

    /// Number of overridden accesses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Returns true if no overrides are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

/// WCET/BCET cycle bounds per basic block, plus the block's *first-miss*
/// penalty: the summed miss penalties of accesses the persistence
/// analysis classified [`Classification::FirstMiss`]. Those accesses are
/// charged the hit latency in [`BlockTimes::wcet`]; the path analysis
/// charges the penalty **once per activation** through a dedicated ILP
/// variable instead of once per execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockTimes {
    wcet: Vec<u64>,
    bcet: Vec<u64>,
    first_miss: Vec<u64>,
}

impl BlockTimes {
    /// Computes block time bounds for the analyzed function on `machine`.
    #[must_use]
    pub fn compute(fa: &FunctionAnalysis, machine: &MachineConfig) -> BlockTimes {
        BlockTimes::compute_with_overrides(fa, machine, &AccessOverrides::none())
    }

    /// [`BlockTimes::compute`] with design-level memory-region overrides.
    #[must_use]
    pub fn compute_with_overrides(
        fa: &FunctionAnalysis,
        machine: &MachineConfig,
        overrides: &AccessOverrides,
    ) -> BlockTimes {
        let cfg = fa.cfg();
        let accesses = fa.access_values();
        let icache = machine
            .icache
            .as_ref()
            .map(|cc| CacheAnalysis::instruction(cfg, cc, &machine.memmap));
        let dcache = machine
            .dcache
            .as_ref()
            .map(|cc| CacheAnalysis::data(cfg, cc, &machine.memmap, &accesses));
        BlockTimes::compute_from_parts(fa, machine, overrides, icache.as_ref(), dcache.as_ref())
    }

    /// [`BlockTimes::compute_with_overrides`] against *prebuilt* cache
    /// analyses — the context-sensitive pipeline runs the cache fixpoints
    /// itself (with per-context entry ACS pairs) and hands the results
    /// in, so timing and classification always agree.
    #[must_use]
    pub fn compute_from_parts(
        fa: &FunctionAnalysis,
        machine: &MachineConfig,
        overrides: &AccessOverrides,
        icache: Option<&CacheAnalysis>,
        dcache: Option<&CacheAnalysis>,
    ) -> BlockTimes {
        let cfg = fa.cfg();
        let accesses = fa.access_values();

        let mut wcet = Vec::with_capacity(cfg.block_count());
        let mut bcet = Vec::with_capacity(cfg.block_count());
        let mut first_miss = Vec::with_capacity(cfg.block_count());
        for (id, block) in cfg.iter() {
            let mut hi = 0u64;
            let mut lo = 0u64;
            let mut fm = 0u64;
            for (idx, (inst_addr, inst)) in block.insts.iter().enumerate() {
                // Base execution cost.
                hi += u64::from(machine.timing.worst_base_cost(inst));
                lo += u64::from(machine.timing.base_cost(inst));

                // Fetch cost.
                let (f_hi, f_lo, f_fm) = fetch_cost(*inst_addr, icache, machine, id, idx);
                hi += u64::from(f_hi);
                lo += u64::from(f_lo);
                fm += u64::from(f_fm);

                // Data access cost.
                if inst.is_memory_access() {
                    let value = accesses.get(inst_addr).cloned().unwrap_or_else(Value::top);
                    let value = apply_override(value, overrides.range_of(*inst_addr));
                    let is_read = matches!(inst, Inst::Load { .. });
                    let (m_hi, m_lo, m_fm) = data_cost(&value, is_read, dcache, machine, id, idx);
                    hi += u64::from(m_hi);
                    lo += u64::from(m_lo);
                    fm += u64::from(m_fm);
                }
            }
            wcet.push(hi);
            bcet.push(lo);
            first_miss.push(fm);
        }
        BlockTimes {
            wcet,
            bcet,
            first_miss,
        }
    }

    /// Rebuilds block times from recorded per-block bounds (the
    /// artifact-cache replay path; first-miss penalties are always zero
    /// there — persistence runs recompute their block times). Returns
    /// `None` when the vectors disagree in length or any worst case
    /// undercuts its best case — a corrupted artifact must read as a
    /// cache miss, not as timing.
    #[must_use]
    pub fn from_raw(wcet: Vec<u64>, bcet: Vec<u64>) -> Option<BlockTimes> {
        if wcet.len() != bcet.len() || wcet.iter().zip(&bcet).any(|(w, b)| w < b) {
            return None;
        }
        let first_miss = vec![0; wcet.len()];
        Some(BlockTimes {
            wcet,
            bcet,
            first_miss,
        })
    }

    /// [`BlockTimes::from_raw`] with explicit per-block first-miss
    /// penalties (a persistence-enabled timing table). `None` on length
    /// mismatch, as for `from_raw`.
    #[must_use]
    pub fn from_raw_with_first_miss(
        wcet: Vec<u64>,
        bcet: Vec<u64>,
        first_miss: Vec<u64>,
    ) -> Option<BlockTimes> {
        if first_miss.len() != wcet.len() {
            return None;
        }
        let mut t = BlockTimes::from_raw(wcet, bcet)?;
        t.first_miss = first_miss;
        Some(t)
    }

    /// Builds block times the pipeline analysis computed itself (its
    /// per-block deltas already satisfy wcet ≥ bcet by construction).
    ///
    /// # Panics
    ///
    /// Panics when the vectors disagree in length or any worst case
    /// undercuts its best case — the pipeline fixpoint guarantees both,
    /// so a violation is an analysis bug, not an input condition.
    pub(crate) fn from_pipeline(
        wcet: Vec<u64>,
        bcet: Vec<u64>,
        first_miss: Vec<u64>,
    ) -> BlockTimes {
        assert_eq!(wcet.len(), bcet.len());
        assert_eq!(wcet.len(), first_miss.len());
        assert!(
            wcet.iter().zip(&bcet).all(|(w, b)| w >= b),
            "pipeline block times must keep wcet >= bcet"
        );
        BlockTimes {
            wcet,
            bcet,
            first_miss,
        }
    }

    /// Worst-case cycles for block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[must_use]
    pub fn wcet(&self, b: BlockId) -> u64 {
        self.wcet[b.0]
    }

    /// Best-case cycles for block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[must_use]
    pub fn bcet(&self, b: BlockId) -> u64 {
        self.bcet[b.0]
    }

    /// Summed first-miss penalties of block `b`: extra worst-case cycles
    /// that occur **at most once per activation** (not per execution).
    /// Zero unless the persistence analysis classified an access in `b`
    /// as [`Classification::FirstMiss`].
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[must_use]
    pub fn first_miss(&self, b: BlockId) -> u64 {
        self.first_miss[b.0]
    }

    /// Number of blocks covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.wcet.len()
    }

    /// Returns true if the function had no blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.wcet.is_empty()
    }
}

pub(crate) fn apply_override(value: Value, over: Option<Interval>) -> Value {
    match over {
        Some(range) => {
            let met = value.to_interval().meet(range);
            if met.is_bottom() {
                // The annotation contradicts the analysis: trust the
                // annotation (it is a design-level fact) but stay sound by
                // using the annotated range alone.
                Value::from_interval(range)
            } else {
                Value::from_interval(met)
            }
        }
        None => value,
    }
}

/// Returns (worst, best, first-miss penalty) fetch cycles for the
/// instruction at `addr`.
pub(crate) fn fetch_cost(
    addr: Addr,
    icache: Option<&CacheAnalysis>,
    machine: &MachineConfig,
    block: BlockId,
    idx: usize,
) -> (u32, u32, u32) {
    // A fetch outside every mapped region faults; charging the slowest
    // region keeps the WCET conservative, but the BCET must charge the
    // *fastest* — a lower bound above what any module could deliver
    // would be unsound.
    let (region_hi, region_lo) = match machine.memmap.region_at(addr) {
        Some(r) => (r.read_latency, r.read_latency),
        None => (
            machine.memmap.worst_read_latency(),
            machine.memmap.best_read_latency(),
        ),
    };
    match icache {
        Some(analysis) => match analysis.classification(block, idx) {
            Some(Classification::AlwaysHit) => {
                let h = machine
                    .icache
                    .as_ref()
                    .expect("icache configured")
                    .hit_latency;
                (h, h, 0)
            }
            Some(Classification::AlwaysMiss) => {
                let h = machine
                    .icache
                    .as_ref()
                    .expect("icache configured")
                    .hit_latency;
                (h + region_hi, h + region_lo, 0)
            }
            Some(Classification::FirstMiss) => {
                // Hit latency per execution; the miss penalty is charged
                // once per activation by the path analysis. BCET charges
                // a hit — a warm entry cache can make every execution
                // hit.
                let h = machine
                    .icache
                    .as_ref()
                    .expect("icache configured")
                    .hit_latency;
                (h, h, region_hi)
            }
            Some(Classification::NotClassified) => {
                let h = machine
                    .icache
                    .as_ref()
                    .expect("icache configured")
                    .hit_latency;
                (h + region_hi, h, 0)
            }
            None => (region_hi, region_lo, 0),
        },
        None => (region_hi, region_lo, 0),
    }
}

/// Returns (worst, best, first-miss penalty) data-access cycles.
pub(crate) fn data_cost(
    value: &Value,
    is_read: bool,
    dcache: Option<&CacheAnalysis>,
    machine: &MachineConfig,
    block: BlockId,
    idx: usize,
) -> (u32, u32, u32) {
    let memmap: &MemoryMap = &machine.memmap;
    // Candidate regions: everything the abstract address overlaps.
    let iv = value.to_interval();
    let regions = match (iv.lo(), iv.hi()) {
        (Some(lo), Some(hi)) => {
            // If the interval covers addresses outside all regions we do
            // not add extra cost: unmapped accesses fault rather than
            // stall. (The interpreter enforces this.)
            memmap.regions_overlapping(Addr(lo), Addr(hi))
        }
        _ => memmap.regions().iter().collect(),
    };
    if regions.is_empty() {
        // Faulting access: charge the worst latency to keep the WCET
        // conservative. The BCET must charge the *best* latency in the
        // map — charging the worst here raised the lower bound above
        // what a real (mis-annotated but executing) access could cost.
        let (w, b) = if is_read {
            (memmap.worst_read_latency(), memmap.best_read_latency())
        } else {
            (memmap.worst_write_latency(), memmap.best_write_latency())
        };
        return (w, b, 0);
    }
    let latency = |r: &wcet_isa::memmap::Region| {
        if is_read {
            r.read_latency
        } else {
            r.write_latency
        }
    };
    let worst_region = regions.iter().map(|r| latency(r)).max().expect("nonempty");
    let best_region = regions.iter().map(|r| latency(r)).min().expect("nonempty");
    let all_cacheable = regions.iter().all(|r| r.cacheable);
    let any_cacheable = regions.iter().any(|r| r.cacheable);

    match dcache {
        Some(analysis) if any_cacheable => {
            let h = machine
                .dcache
                .as_ref()
                .expect("dcache configured")
                .hit_latency;
            match analysis.classification(block, idx) {
                Some(Classification::AlwaysHit) if all_cacheable => (h, h, 0),
                Some(Classification::AlwaysMiss) if all_cacheable => {
                    (h + worst_region, h + best_region, 0)
                }
                Some(Classification::FirstMiss) if all_cacheable => (h, h, worst_region),
                _ => (h + worst_region, h.min(best_region), 0),
            }
        }
        _ => (worst_region, best_region, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_analysis::analyze_function;
    use wcet_cfg::graph::{reconstruct, TargetResolver};
    use wcet_isa::asm::assemble;
    use wcet_isa::interp::{Interpreter, MachineConfig};

    fn analyze(src: &str) -> (wcet_isa::Image, FunctionAnalysis) {
        let image = assemble(src).unwrap();
        let p = reconstruct(&image, &TargetResolver::empty()).unwrap();
        let fa = analyze_function(&p, p.entry, &image);
        (image, fa)
    }

    #[test]
    fn wcet_at_least_bcet_everywhere() {
        let (_, fa) = analyze(
            "main: li r1, 4\nloop: subi r1, r1, 1\n bne r1, r0, loop\n lw r2, 0(r4)\n halt",
        );
        for machine in [MachineConfig::simple(), MachineConfig::with_caches()] {
            let t = BlockTimes::compute(&fa, &machine);
            for (id, _) in fa.cfg().iter() {
                assert!(t.wcet(id) >= t.bcet(id));
            }
        }
    }

    #[test]
    fn straight_line_block_bound_covers_observed() {
        // Soundness on a single-block program: the block WCET must cover
        // the interpreter's measured cycles.
        let src = "main: li r1, 3\n addi r2, r1, 4\n sw r2, 0(r1)\n halt";
        let (image, fa) = analyze(src);
        let machine = MachineConfig::simple();
        let t = BlockTimes::compute(&fa, &machine);
        let mut interp = Interpreter::with_config(&image, machine);
        let outcome = interp.run(1000).unwrap();
        let entry = fa.cfg().entry_block();
        assert!(
            t.wcet(entry) >= outcome.cycles,
            "bound {} < observed {}",
            t.wcet(entry),
            outcome.cycles
        );
        assert!(t.bcet(entry) <= outcome.cycles);
    }

    #[test]
    fn unknown_access_charged_slowest_region() {
        // Two identical programs except for the store address knowledge:
        // unknown-address store must be charged ≥ the MMIO latency.
        let (_, fa_known) = analyze("main: li r1, 0x100\n sw r0, 0(r1)\n halt");
        let (_, fa_unknown) = analyze("main: mov r1, r4\n sw r0, 0(r1)\n halt");
        let machine = MachineConfig::simple();
        let known = BlockTimes::compute(&fa_known, &machine);
        let unknown = BlockTimes::compute(&fa_unknown, &machine);
        let kb = fa_known.cfg().entry_block();
        let ub = fa_unknown.cfg().entry_block();
        assert!(unknown.wcet(ub) > known.wcet(kb));
        let mmio = machine.memmap.worst_write_latency();
        assert!(unknown.wcet(ub) >= u64::from(mmio));
    }

    #[test]
    fn region_override_tightens_unknown_access() {
        // The driver-routine annotation: restricting the unknown access to
        // SRAM removes the MMIO charge.
        let (_, fa) = analyze("main: mov r1, r4\n lw r2, 0(r1)\n halt");
        let machine = MachineConfig::simple();
        let plain = BlockTimes::compute(&fa, &machine);
        let lw_addr = fa
            .cfg()
            .block(fa.cfg().entry_block())
            .insts
            .iter()
            .find(|(_, i)| i.is_memory_access())
            .map(|(a, _)| *a)
            .unwrap();
        let mut overrides = AccessOverrides::none();
        overrides.restrict(lw_addr, 0x0, 0x000f_ffff).unwrap(); // SRAM only
        let tightened = BlockTimes::compute_with_overrides(&fa, &machine, &overrides);
        let b = fa.cfg().entry_block();
        assert!(tightened.wcet(b) < plain.wcet(b));
    }

    #[test]
    fn inverted_override_range_is_rejected() {
        // Regression: `restrict(_, lo, hi)` with lo > hi used to register
        // an empty interval silently. It must be a hard error now.
        let mut overrides = AccessOverrides::none();
        let err = overrides
            .restrict(Addr(0x1004), 0x9000, 0x8000)
            .unwrap_err();
        assert_eq!(
            err,
            InvertedRange {
                inst: Addr(0x1004),
                lo: 0x9000,
                hi: 0x8000
            }
        );
        assert!(err.to_string().contains("inverted"));
        assert!(overrides.is_empty(), "a rejected override leaves no trace");

        // Degenerate-but-valid single-address ranges still register.
        overrides.restrict(Addr(0x1004), 0x8000, 0x8000).unwrap();
        assert_eq!(overrides.len(), 1);
        assert_eq!(
            overrides.range_of(Addr(0x1004)),
            Some(Interval::new(0x8000, 0x8000))
        );
    }

    #[test]
    fn rejected_override_does_not_change_block_times() {
        // The unsound old behavior: an inverted range zeroed the memory
        // charge of the access. Now the failed restrict leaves the
        // conservative (slowest-region) charge in place.
        let (_, fa) = analyze("main: mov r1, r4\n lw r2, 0(r1)\n halt");
        let machine = MachineConfig::simple();
        let plain = BlockTimes::compute(&fa, &machine);
        let lw_addr = fa
            .cfg()
            .block(fa.cfg().entry_block())
            .insts
            .iter()
            .find(|(_, i)| i.is_memory_access())
            .map(|(a, _)| *a)
            .unwrap();
        let mut overrides = AccessOverrides::none();
        assert!(overrides.restrict(lw_addr, 0x9000, 0x8000).is_err());
        let after = BlockTimes::compute_with_overrides(&fa, &machine, &overrides);
        let b = fa.cfg().entry_block();
        assert_eq!(after.wcet(b), plain.wcet(b));
        assert_eq!(after.bcet(b), plain.bcet(b));
    }

    #[test]
    fn faulting_access_charges_best_case_for_bcet() {
        // Regression: an access whose abstract address lies entirely
        // outside every mapped region ("faulting/unknown-region") was
        // charged the slowest-region latency in *both* bounds. That is
        // right for WCET but unsound for BCET: it raises the lower bound
        // above what a real execution can take. A contradicting (wrong)
        // access annotation makes this observable end to end — the
        // analysis trusts the annotated range (an unmapped hole) while
        // the real access goes to fast SRAM and the program completes.
        let (image, fa) = analyze("main: li r1, 0x100\n lw r2, 0(r1)\n halt");
        let machine = MachineConfig::simple();
        let lw_addr = fa
            .cfg()
            .block(fa.cfg().entry_block())
            .insts
            .iter()
            .find(|(_, i)| i.is_memory_access())
            .map(|(a, _)| *a)
            .unwrap();
        let mut overrides = AccessOverrides::none();
        // 0x0100_0000 sits in the hole between flash and heap.
        assert!(machine.memmap.region_at(Addr(0x0100_0000)).is_none());
        overrides
            .restrict(lw_addr, 0x0100_0000, 0x0100_0fff)
            .unwrap();
        let t = BlockTimes::compute_with_overrides(&fa, &machine, &overrides);
        let b = fa.cfg().entry_block();

        let mut interp = Interpreter::with_config(&image, machine.clone());
        let observed = interp.run(1000).unwrap().cycles;
        assert!(
            t.bcet(b) <= observed,
            "BCET {} must not exceed the observed {} cycles",
            t.bcet(b),
            observed
        );
        assert!(t.wcet(b) >= observed, "WCET still covers the run");
        // The WCET keeps the conservative slowest-region charge.
        assert!(t.wcet(b) >= u64::from(machine.memmap.worst_read_latency()));
    }

    #[test]
    fn memmap_best_latencies_are_the_minima() {
        let map = MemoryMap::default_embedded();
        assert_eq!(map.best_read_latency(), 1);
        assert_eq!(map.best_write_latency(), 1);
        assert!(map.best_read_latency() <= map.worst_read_latency());
        assert!(map.best_write_latency() <= map.worst_write_latency());
    }

    #[test]
    fn icache_tightens_loop_blocks() {
        let src = ".org 0x100000\nmain: li r1, 8\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt";
        let (_, fa) = analyze(src);
        let no_cache = BlockTimes::compute(&fa, &MachineConfig::simple());
        let cached = BlockTimes::compute(&fa, &MachineConfig::with_caches());
        // The loop block in flash: with an icache its WCET is at most the
        // uncached cost (cold miss) and its BCET strictly better.
        let loop_block = fa.cfg().block_at(Addr(0x0010_0004)).unwrap();
        assert!(cached.bcet(loop_block) < no_cache.bcet(loop_block));
    }

    #[test]
    fn branch_blocks_charged_taken_cost_for_wcet() {
        let (_, fa) = analyze("main: beq r1, r0, x\n nop\nx: halt");
        let machine = MachineConfig::simple();
        let t = BlockTimes::compute(&fa, &machine);
        let entry = fa.cfg().entry_block();
        // worst ≥ best + taken surcharge for a block ending in a branch.
        assert!(t.wcet(entry) >= t.bcet(entry) + u64::from(machine.timing.taken_surcharge()));
    }
}
