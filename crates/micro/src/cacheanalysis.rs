//! Cache analysis fixpoints over a function CFG.
//!
//! Runs the must/may abstract caches of [`crate::acs`] to a fixpoint and
//! records a [`Classification`] for every instruction fetch (instruction
//! cache) or data access (data cache). Data-access addresses come from the
//! value analysis; unknown addresses empty the must cache and poison the
//! may cache — mechanically reproducing the paper's Section 4.3.

use std::collections::{BTreeMap, VecDeque};

use wcet_analysis::Value;
use wcet_cfg::block::{BlockId, Terminator};
use wcet_cfg::graph::Cfg;
use wcet_isa::cache::CacheConfig;
use wcet_isa::memmap::MemoryMap;
use wcet_isa::{Addr, Inst};

use crate::acs::{classify_with_persist, AbstractCache, Classification, Polarity};
use crate::footprint::CacheFootprint;

/// Which cache an analysis instance models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheKind {
    /// The instruction cache (accessed by every fetch).
    Instruction,
    /// The data cache (accessed by loads and stores).
    Data,
}

/// Results of one cache analysis: a classification per instruction.
///
/// `None` means the access bypasses this cache (uncacheable region, or an
/// instruction that does not access it).
#[derive(Debug, Clone)]
pub struct CacheAnalysis {
    kind: CacheKind,
    /// Per block, per instruction index.
    class: Vec<Vec<Option<Classification>>>,
}

/// A must/may abstract-cache pair: the state the fixpoint flows along
/// edges, and — publicly — the unit of VIVU-style *entry-state
/// propagation*: the caller's pair at a call site becomes the callee's
/// per-context entry pair, replacing the cold (nothing-guaranteed)
/// default.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheStates {
    must: AbstractCache,
    may: AbstractCache,
    /// The persistence instance, present only when the analysis runs
    /// with first-miss classification enabled (its ages feed the
    /// context-entry digests, so it must not exist when the feature is
    /// off — depth-insensitive runs stay byte-identical).
    persist: Option<AbstractCache>,
}

impl CacheStates {
    /// The cold pair: no must guarantees, an empty (machine-start) may
    /// cache. Sound only where the machine really starts cold (the task
    /// entry); for a function with untracked callers use
    /// [`CacheStates::unknown`] — cold's empty may cache proves absence,
    /// which understates nothing but *overstates the BCET*.
    #[must_use]
    pub fn cold(config: &CacheConfig) -> CacheStates {
        CacheStates {
            must: AbstractCache::new(config.clone(), Polarity::Must),
            may: AbstractCache::new(config.clone(), Polarity::May),
            persist: None,
        }
    }

    /// The cold triple with an (empty) persistence instance attached —
    /// the entry state of a persistence-enabled analysis.
    #[must_use]
    pub fn cold_persistent(config: &CacheConfig) -> CacheStates {
        let mut s = CacheStates::cold(config);
        s.persist = Some(AbstractCache::new(config.clone(), Polarity::Persist));
        s
    }

    /// The unknown pair: no hit guarantees *and* no absence guarantees
    /// (the may cache is poisoned in every set). This is the sound entry
    /// state for a function whose callers are not tracked: the cold pair
    /// claims every line *guaranteed absent*, classifying entry fetches
    /// always-miss — which overstates the **BCET** whenever the caller
    /// already warmed the lines (the call-site fetch alone warms the
    /// callee's first line when they share one). Worst cases are
    /// unaffected: not-classified and always-miss charge the same upper
    /// latency. Only the task entry genuinely starts on a cold machine.
    #[must_use]
    pub fn unknown(config: &CacheConfig) -> CacheStates {
        let mut s = CacheStates::cold(config);
        s.may.access_unknown();
        s
    }

    /// Attaches or strips the persistence instance so the state matches
    /// what the current analysis tracks. A freshly attached instance is
    /// empty — sound for any entry (nothing is claimed loaded yet).
    fn normalize_persistence(&mut self, on: bool, config: &CacheConfig) {
        match (on, &self.persist) {
            (true, None) => {
                self.persist = Some(AbstractCache::new(config.clone(), Polarity::Persist));
            }
            (false, Some(_)) => self.persist = None,
            _ => {}
        }
    }

    /// Control-flow (and call-edge) merge.
    #[must_use]
    pub fn join(&self, other: &CacheStates) -> CacheStates {
        CacheStates {
            must: self.must.join(&other.must),
            may: self.may.join(&other.may),
            persist: match (&self.persist, &other.persist) {
                (Some(a), Some(b)) => Some(a.join(b)),
                _ => None,
            },
        }
    }

    /// A stable content digest (for incremental context-entry keys).
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = wcet_isa::hash::StableHasher::new();
        self.must.digest_into(&mut h);
        self.may.digest_into(&mut h);
        match &self.persist {
            Some(p) => {
                h.write_u32(1);
                p.digest_into(&mut h);
            }
            None => h.write_u32(0),
        }
        h.finish()
    }

    fn is_subsumed_by(&self, other: &CacheStates) -> bool {
        let persist_ok = match (&self.persist, &other.persist) {
            (Some(a), Some(b)) => a.is_subsumed_by(b),
            (None, None) => true,
            _ => false,
        };
        persist_ok && self.must.is_subsumed_by(&other.must) && self.may.is_subsumed_by(&other.may)
    }

    /// The effect of an opaque callee on the caller's view of the cache:
    /// the callee may touch arbitrarily many lines, so nothing stays
    /// *guaranteed* cached (must empties), nothing stays guaranteed
    /// absent (may poisons), and nothing stays persistent. Before this
    /// existed, a caller's post-call fetches kept their pre-call hit
    /// guarantees even though the callee could have evicted every line —
    /// unsound with the interpreter's real cache.
    fn clobber_call(&mut self) {
        self.must.access_unknown();
        self.may.access_unknown();
        if let Some(p) = &mut self.persist {
            p.access_unknown();
        }
    }

    /// The effect of a callee with a known [`CacheFootprint`]: age the
    /// must and persistence instances by the callee's per-set conflict
    /// counts (keeping guarantees for untouched lines), and admit the
    /// callee's possible lines into the may cache without poisoning it.
    /// `None` — no summary available — falls back to the opaque clobber.
    fn apply_callee(&mut self, footprint: Option<&CacheFootprint>) {
        match footprint {
            Some(fp) => {
                self.must.apply_footprint(fp);
                self.may.apply_footprint(fp);
                if let Some(p) = &mut self.persist {
                    p.apply_footprint(fp);
                }
            }
            None => self.clobber_call(),
        }
    }
}

type Acs = CacheStates;

/// Context inputs of one cache fixpoint beyond the CFG itself: the entry
/// ACS from the callers, per-call-site callee footprints, and whether to
/// run the persistence (first-miss) instance.
#[derive(Default)]
pub struct CacheCtx<'a> {
    /// The entry ACS (the join of the caller states at this function's
    /// producing call sites under one context); `None` = the cold state.
    pub entry: Option<&'a CacheStates>,
    /// Per call site (keyed by the call instruction's address): the
    /// joined transitive footprint of the site's possible callees, for
    /// *this* cache. A site absent from the map — or the whole map absent
    /// — is treated as an opaque call (full clobber).
    pub call_footprints: Option<&'a BTreeMap<Addr, CacheFootprint>>,
    /// Track the persistence instance and classify
    /// [`Classification::FirstMiss`].
    pub persistence: bool,
}

/// A cache analysis together with the context-propagation hooks: the
/// must/may pair immediately before every call terminator, keyed by call
/// site. The per-context pipeline joins these across a callee's
/// producing call edges to form the callee's entry pair.
#[derive(Debug, Clone)]
pub struct CtxCacheAnalysis {
    /// The classifications.
    pub analysis: CacheAnalysis,
    /// ACS pair before each call terminator (virtual unrolling can
    /// duplicate a site; duplicates are joined).
    pub call_states: BTreeMap<Addr, CacheStates>,
}

impl CacheAnalysis {
    /// Instruction-cache analysis: classifies every fetch in `cfg`.
    #[must_use]
    pub fn instruction(cfg: &Cfg, config: &CacheConfig, memmap: &MemoryMap) -> CacheAnalysis {
        CacheAnalysis::instruction_ctx(cfg, config, memmap, None).analysis
    }

    /// [`CacheAnalysis::instruction`] with an explicit entry ACS pair
    /// (the join of the caller states at this function's producing call
    /// sites under one context); `None` = the cold pair. Also returns
    /// the per-call-site ACS pairs for propagation into callees.
    #[must_use]
    pub fn instruction_ctx(
        cfg: &Cfg,
        config: &CacheConfig,
        memmap: &MemoryMap,
        entry: Option<&CacheStates>,
    ) -> CtxCacheAnalysis {
        CacheAnalysis::instruction_with(
            cfg,
            config,
            memmap,
            &CacheCtx {
                entry,
                ..CacheCtx::default()
            },
        )
    }

    /// [`CacheAnalysis::instruction_ctx`] with the full context inputs:
    /// per-site callee footprints and the persistence instance.
    #[must_use]
    pub fn instruction_with(
        cfg: &Cfg,
        config: &CacheConfig,
        memmap: &MemoryMap,
        ctx: &CacheCtx<'_>,
    ) -> CtxCacheAnalysis {
        run(
            cfg,
            config,
            CacheKind::Instruction,
            |_, addr, _| Access::Fetch(addr),
            memmap,
            ctx,
        )
    }

    /// Data-cache analysis: classifies every load/store using the value
    /// analysis' abstract addresses (`accesses`, keyed by instruction
    /// address).
    #[must_use]
    pub fn data(
        cfg: &Cfg,
        config: &CacheConfig,
        memmap: &MemoryMap,
        accesses: &BTreeMap<Addr, Value>,
    ) -> CacheAnalysis {
        CacheAnalysis::data_ctx(cfg, config, memmap, accesses, None).analysis
    }

    /// [`CacheAnalysis::data`] with an explicit entry ACS pair; see
    /// [`CacheAnalysis::instruction_ctx`].
    #[must_use]
    pub fn data_ctx(
        cfg: &Cfg,
        config: &CacheConfig,
        memmap: &MemoryMap,
        accesses: &BTreeMap<Addr, Value>,
        entry: Option<&CacheStates>,
    ) -> CtxCacheAnalysis {
        CacheAnalysis::data_with(
            cfg,
            config,
            memmap,
            accesses,
            &CacheCtx {
                entry,
                ..CacheCtx::default()
            },
        )
    }

    /// [`CacheAnalysis::data_ctx`] with the full context inputs; see
    /// [`CacheAnalysis::instruction_with`].
    #[must_use]
    pub fn data_with(
        cfg: &Cfg,
        config: &CacheConfig,
        memmap: &MemoryMap,
        accesses: &BTreeMap<Addr, Value>,
        ctx: &CacheCtx<'_>,
    ) -> CtxCacheAnalysis {
        run(
            cfg,
            config,
            CacheKind::Data,
            |inst, addr, mm| data_access(inst, addr, accesses, mm),
            memmap,
            ctx,
        )
    }

    /// Which cache this analysis modeled.
    #[must_use]
    pub fn kind(&self) -> CacheKind {
        self.kind
    }

    /// Classification for instruction `idx` of block `b` (`None` =
    /// bypasses this cache).
    #[must_use]
    pub fn classification(&self, b: BlockId, idx: usize) -> Option<Classification> {
        self.class
            .get(b.0)
            .and_then(|v| v.get(idx))
            .copied()
            .flatten()
    }

    /// Counts classifications across the whole function, as
    /// `(always_hit, always_miss, not_classified)`. First-miss accesses
    /// (persistence runs only) count as not-classified here; use
    /// [`CacheAnalysis::summary4`] when the split matters.
    #[must_use]
    pub fn summary(&self) -> (usize, usize, usize) {
        let (hit, miss, fm, nc) = self.summary4();
        (hit, miss, fm + nc)
    }

    /// Counts classifications across the whole function, as
    /// `(always_hit, always_miss, first_miss, not_classified)`.
    #[must_use]
    pub fn summary4(&self) -> (usize, usize, usize, usize) {
        let mut hit = 0;
        let mut miss = 0;
        let mut fm = 0;
        let mut nc = 0;
        for block in &self.class {
            for c in block.iter().flatten() {
                match c {
                    Classification::AlwaysHit => hit += 1,
                    Classification::AlwaysMiss => miss += 1,
                    Classification::FirstMiss => fm += 1,
                    Classification::NotClassified => nc += 1,
                }
            }
        }
        (hit, miss, fm, nc)
    }
}

/// What one instruction does to the cache being analyzed.
enum Access {
    /// No interaction.
    None,
    /// Definite access to one address.
    Fetch(Addr),
    /// Access to one of a small set of addresses.
    OneOf(Vec<Addr>),
    /// Access to a statically unknown address.
    Unknown,
    /// Access that bypasses the cache (uncacheable region).
    Bypass,
}

fn data_access(
    inst: &Inst,
    inst_addr: Addr,
    accesses: &BTreeMap<Addr, Value>,
    memmap: &MemoryMap,
) -> Access {
    if !inst.is_memory_access() {
        return Access::None;
    }
    let Some(value) = accesses.get(&inst_addr) else {
        return Access::Unknown;
    };
    if let Some(set) = value.as_set() {
        let addrs: Vec<Addr> = set.iter().map(|&a| Addr(a)).collect();
        let cacheable = |a: &Addr| memmap.region_at(*a).is_some_and(|r| r.cacheable);
        if addrs.iter().all(|a| !cacheable(a)) {
            return Access::Bypass;
        }
        if !addrs.iter().all(cacheable) {
            // Mixed cacheability: treat as unknown for the cache.
            return Access::Unknown;
        }
        if addrs.len() == 1 {
            return Access::Fetch(addrs[0]);
        }
        return Access::OneOf(addrs);
    }
    // Interval or top: too wide to enumerate.
    Access::Unknown
}

fn run(
    cfg: &Cfg,
    config: &CacheConfig,
    kind: CacheKind,
    classify_inst: impl Fn(&Inst, Addr, &MemoryMap) -> Access,
    memmap: &MemoryMap,
    ctx: &CacheCtx<'_>,
) -> CtxCacheAnalysis {
    let n = cfg.block_count();
    let mut in_states: Vec<Option<Acs>> = vec![None; n];
    let entry = cfg.entry_block();
    let mut entry_acs = match ctx.entry {
        Some(s) => s.clone(),
        None => Acs::cold(config),
    };
    entry_acs.normalize_persistence(ctx.persistence, config);
    in_states[entry.0] = Some(entry_acs);

    // The per-instruction transfer of one block, *excluding* the call
    // clobber (the classification pass and the pre-call snapshots need
    // the state right before the terminator).
    let transfer = |acs: &mut Acs, block: BlockId| {
        for (inst_addr, inst) in &cfg.block(block).insts {
            let access = match kind {
                CacheKind::Instruction => {
                    // Fetch of the instruction itself.
                    if memmap.region_at(*inst_addr).is_some_and(|r| r.cacheable) {
                        Access::Fetch(*inst_addr)
                    } else {
                        Access::Bypass
                    }
                }
                CacheKind::Data => classify_inst(inst, *inst_addr, memmap),
            };
            apply(acs, &access);
        }
    };
    let is_call = |b: BlockId| {
        matches!(
            cfg.block(b).term,
            Terminator::Call { .. } | Terminator::CallInd { .. }
        )
    };
    // The call transfer: a summarized callee ages the ACS by its
    // footprint; an unsummarized one clobbers it.
    let apply_call = |acs: &mut Acs, b: BlockId| {
        let block = cfg.block(b);
        let site = block.site_addr();
        acs.apply_callee(ctx.call_footprints.and_then(|m| m.get(&site)));
    };

    // Worklist fixpoint.
    let mut work: VecDeque<BlockId> = VecDeque::from([entry]);
    while let Some(b) = work.pop_front() {
        let Some(in_acs) = in_states[b.0].clone() else {
            continue;
        };
        let mut out = in_acs;
        transfer(&mut out, b);
        if is_call(b) {
            apply_call(&mut out, b);
        }
        for &succ in &cfg.succs[b.0] {
            let new_in = match &in_states[succ.0] {
                Some(old) => old.join(&out),
                None => out.clone(),
            };
            let changed = match &in_states[succ.0] {
                Some(old) => !new_in.is_subsumed_by(old),
                None => true,
            };
            if changed {
                in_states[succ.0] = Some(new_in);
                work.push_back(succ);
            }
        }
    }

    // Classification pass (and pre-call ACS snapshots for context
    // propagation).
    let mut call_states: BTreeMap<Addr, CacheStates> = BTreeMap::new();
    let mut class: Vec<Vec<Option<Classification>>> = Vec::with_capacity(n);
    for (id, block) in cfg.iter() {
        let mut row = Vec::with_capacity(block.insts.len());
        match in_states[id.0].clone() {
            Some(mut acs) => {
                for (inst_addr, inst) in &block.insts {
                    let access = match kind {
                        CacheKind::Instruction => {
                            if memmap.region_at(*inst_addr).is_some_and(|r| r.cacheable) {
                                Access::Fetch(*inst_addr)
                            } else {
                                Access::Bypass
                            }
                        }
                        CacheKind::Data => classify_inst(inst, *inst_addr, memmap),
                    };
                    let c = match &access {
                        Access::None | Access::Bypass => None,
                        Access::Fetch(a) => Some(classify_with_persist(
                            &acs.must,
                            &acs.may,
                            acs.persist.as_ref(),
                            *a,
                        )),
                        Access::OneOf(_) | Access::Unknown => Some(Classification::NotClassified),
                    };
                    row.push(c);
                    apply(&mut acs, &access);
                }
                if is_call(id) {
                    // `acs` now holds the state right before the call.
                    let site = block.site_addr();
                    match call_states.remove(&site) {
                        Some(prev) => {
                            call_states.insert(site, prev.join(&acs));
                        }
                        None => {
                            call_states.insert(site, acs);
                        }
                    }
                }
            }
            None => {
                // Unreachable block: every access unclassified (it never
                // executes, so the choice is irrelevant but must be sound).
                for (_, inst) in &block.insts {
                    let relevant = match kind {
                        CacheKind::Instruction => true,
                        CacheKind::Data => inst.is_memory_access(),
                    };
                    row.push(relevant.then_some(Classification::NotClassified));
                }
            }
        }
        class.push(row);
    }

    CtxCacheAnalysis {
        analysis: CacheAnalysis { kind, class },
        call_states,
    }
}

fn apply(acs: &mut Acs, access: &Access) {
    match access {
        Access::None | Access::Bypass => {}
        Access::Fetch(a) => {
            acs.must.access(*a);
            acs.may.access(*a);
            if let Some(p) = &mut acs.persist {
                p.access(*a);
            }
        }
        Access::OneOf(addrs) => {
            acs.must.access_one_of(addrs);
            acs.may.access_one_of(addrs);
            if let Some(p) = &mut acs.persist {
                p.access_one_of(addrs);
            }
        }
        Access::Unknown => {
            acs.must.access_unknown();
            acs.may.access_unknown();
            if let Some(p) = &mut acs.persist {
                p.access_unknown();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_analysis::analyze_function;
    use wcet_cfg::graph::{reconstruct, TargetResolver};
    use wcet_isa::asm::assemble;
    use wcet_isa::cache::CacheConfig;

    fn icache_of(src: &str) -> (wcet_cfg::graph::Program, CacheAnalysis) {
        let image = assemble(src).unwrap();
        let p = reconstruct(&image, &TargetResolver::empty()).unwrap();
        let a = CacheAnalysis::instruction(
            p.entry_cfg(),
            &CacheConfig::small_icache(),
            &MemoryMap::default_embedded(),
        );
        (p, a)
    }

    #[test]
    fn straight_line_first_miss_then_hits() {
        // Four instructions share one 16-byte line: fetch 1 misses (cold),
        // fetches 2–4 hit.
        let (p, a) = icache_of(".org 0x100000\nmain: nop\n nop\n nop\n halt");
        let b = p.entry_cfg().entry_block();
        assert_eq!(a.classification(b, 0), Some(Classification::AlwaysMiss));
        for i in 1..4 {
            assert_eq!(a.classification(b, i), Some(Classification::AlwaysHit));
        }
    }

    #[test]
    fn loop_body_hits_in_steady_state_after_join() {
        // A loop body that fits in the cache: after the first pass the
        // line is cached on the back edge but not on the entry edge → the
        // join classifies the header fetch NotClassified (peeling would
        // recover precision; see the unroll experiments).
        let (p, a) = icache_of(
            // Pad so the loop body sits in its own 16-byte cache line.
            ".org 0x100000\nmain: li r1, 4\n nop\n nop\n nop\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt",
        );
        let cfg = p.entry_cfg();
        let loop_block = cfg.block_at(wcet_isa::Addr(0x0010_0010)).unwrap();
        let c = a.classification(loop_block, 0);
        assert_eq!(c, Some(Classification::NotClassified));
        let (hit, _, _) = a.summary();
        assert!(hit > 0, "within-line fetches still hit");
    }

    #[test]
    fn call_clobbers_must_guarantees() {
        // Two call instructions in one icache line: before the clobber
        // fix the second fetch was an AlwaysHit even though the first
        // callee can evict the line. It must be NotClassified now (the
        // callee's footprint is unknown), never AlwaysMiss (poisoned may).
        let (p, a) = icache_of(".org 0x100000\nmain: call f\n call f\n halt\nf: ret");
        let cfg = p.entry_cfg();
        let second_call = cfg.block_at(wcet_isa::Addr(0x0010_0004)).unwrap();
        assert_eq!(
            a.classification(second_call, 0),
            Some(Classification::NotClassified),
            "post-call fetches lose their guarantees"
        );
    }

    #[test]
    fn entry_acs_propagation_turns_cold_misses_into_hits() {
        // A leaf fetched under a caller context whose ACS already holds
        // the leaf's line: the entry fetch classifies AlwaysHit instead
        // of the cold AlwaysMiss — the VIVU payoff in miniature.
        let config = CacheConfig::small_icache();
        let memmap = MemoryMap::default_embedded();
        // Analyze a caller whose call sites expose its ACS, then feed the
        // pre-call pair into the callee's analysis.
        let caller_src = ".org 0x100000\nmain: nop\n call f\n halt\nf: ret";
        let caller_image = assemble(caller_src).unwrap();
        let cp = reconstruct(&caller_image, &TargetResolver::empty()).unwrap();
        let caller = CacheAnalysis::instruction_ctx(cp.entry_cfg(), &config, &memmap, None);
        let (&site, pre_call) = caller.call_states.iter().next().unwrap();
        assert_eq!(site, caller_image.entry.offset(4));

        // f sits at 0x10000c — the same 16-byte line as main's code:
        // under the propagated entry the leaf's first fetch hits.
        let f = caller_image.symbol("f").unwrap();
        let f_cfg = cp.cfg(f).unwrap();
        let leaf_cold = CacheAnalysis::instruction_ctx(f_cfg, &config, &memmap, None);
        let leaf_warm = CacheAnalysis::instruction_ctx(f_cfg, &config, &memmap, Some(pre_call));
        let fb = f_cfg.entry_block();
        assert_eq!(
            leaf_cold.analysis.classification(fb, 0),
            Some(Classification::AlwaysMiss)
        );
        assert_eq!(
            leaf_warm.analysis.classification(fb, 0),
            Some(Classification::AlwaysHit),
            "caller's ACS pair warms the callee entry"
        );
        assert_ne!(pre_call.digest(), CacheStates::cold(&config).digest());
    }

    #[test]
    fn footprint_call_transfer_keeps_disjoint_guarantees() {
        // Two calls to a one-line callee: with the callee's footprint
        // known, the caller's own line (a different set) keeps its must
        // guarantee across the calls, so the second call-block fetch is
        // an AlwaysHit instead of the clobbered NotClassified.
        let config = CacheConfig::small_icache();
        let memmap = MemoryMap::default_embedded();
        // 13 padding nops push `f` to 0x100040 — a different cache set
        // (set 4) than main's code (set 0).
        let pad = " nop\n".repeat(13);
        let src = format!(".org 0x100000\nmain: call f\n call f\n halt\n{pad}f: ret");
        let src = src.as_str();
        let image = assemble(src).unwrap();
        let p = reconstruct(&image, &TargetResolver::empty()).unwrap();
        let cfg = p.entry_cfg();

        // f's footprint: the single line at 0x100040 (set 4).
        let mut fp = crate::footprint::CacheFootprint::empty(&config);
        fp.absorb_addr(wcet_isa::Addr(0x0010_0040));
        let mut footprints = BTreeMap::new();
        for (site, _) in cfg.call_sites() {
            footprints.insert(site, fp.clone());
        }

        let clobbered = CacheAnalysis::instruction_ctx(cfg, &config, &memmap, None);
        let summarized = CacheAnalysis::instruction_with(
            cfg,
            &config,
            &memmap,
            &CacheCtx {
                call_footprints: Some(&footprints),
                ..CacheCtx::default()
            },
        );
        let second_call = cfg.block_at(wcet_isa::Addr(0x0010_0004)).unwrap();
        assert_eq!(
            clobbered.analysis.classification(second_call, 0),
            Some(Classification::NotClassified),
            "opaque call wipes the caller's line"
        );
        assert_eq!(
            summarized.analysis.classification(second_call, 0),
            Some(Classification::AlwaysHit),
            "summarized call keeps the disjoint-set guarantee"
        );
    }

    #[test]
    fn persistence_classifies_loop_header_first_miss() {
        // The steady-state loop case the must/may pair cannot classify:
        // the entry-edge/back-edge join loses the must guarantee, but the
        // line is persistent — it classifies FirstMiss instead of
        // NotClassified.
        let config = CacheConfig::small_icache();
        let memmap = MemoryMap::default_embedded();
        let src = ".org 0x100000\nmain: li r1, 4\n nop\n nop\n nop\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt";
        let image = assemble(src).unwrap();
        let p = reconstruct(&image, &TargetResolver::empty()).unwrap();
        let cfg = p.entry_cfg();
        let plain = CacheAnalysis::instruction_ctx(cfg, &config, &memmap, None);
        let persistent = CacheAnalysis::instruction_with(
            cfg,
            &config,
            &memmap,
            &CacheCtx {
                persistence: true,
                ..CacheCtx::default()
            },
        );
        let loop_block = cfg.block_at(wcet_isa::Addr(0x0010_0010)).unwrap();
        assert_eq!(
            plain.analysis.classification(loop_block, 0),
            Some(Classification::NotClassified)
        );
        assert_eq!(
            persistent.analysis.classification(loop_block, 0),
            Some(Classification::FirstMiss),
            "the loop line persists across iterations"
        );
        // Guaranteed hits stay guaranteed hits under persistence.
        let (hit_plain, _, _) = plain.analysis.summary();
        let (hit_persist, _, _, _) = persistent.analysis.summary4();
        assert_eq!(hit_plain, hit_persist);
    }

    #[test]
    fn persistence_entry_state_digests_differ() {
        // The persistence instance is part of the propagated entry state
        // and therefore of the context digests the incremental cache
        // keys on.
        let config = CacheConfig::small_icache();
        let cold = CacheStates::cold(&config);
        let cold_p = CacheStates::cold_persistent(&config);
        assert_ne!(cold.digest(), cold_p.digest());
        assert_eq!(cold.join(&cold).digest(), cold.digest());
        assert_eq!(cold_p.join(&cold_p).digest(), cold_p.digest());
    }

    #[test]
    fn uncacheable_region_bypasses() {
        // Code in SRAM is cacheable by default; simulate uncacheable code
        // by building a map where nothing is cacheable.
        let image = assemble("main: nop\n halt").unwrap();
        let p = reconstruct(&image, &TargetResolver::empty()).unwrap();
        let mut regions = MemoryMap::default_embedded().regions().to_vec();
        for r in &mut regions {
            r.cacheable = false;
        }
        let map = MemoryMap::new(regions);
        let a = CacheAnalysis::instruction(p.entry_cfg(), &CacheConfig::small_icache(), &map);
        let b = p.entry_cfg().entry_block();
        assert_eq!(a.classification(b, 0), None);
    }

    #[test]
    fn dcache_known_addresses_classify() {
        let src = "main: li r1, 0x100\n lw r2, 0(r1)\n lw r3, 0(r1)\n halt";
        let image = assemble(src).unwrap();
        let p = reconstruct(&image, &TargetResolver::empty()).unwrap();
        let fa = analyze_function(&p, p.entry, &image);
        let a = CacheAnalysis::data(
            fa.cfg(),
            &CacheConfig::small_dcache(),
            &MemoryMap::default_embedded(),
            &fa.access_values(),
        );
        let b = fa.cfg().entry_block();
        // Instruction indices: 0 = li, 1 = first lw, 2 = second lw.
        assert_eq!(a.classification(b, 1), Some(Classification::AlwaysMiss));
        assert_eq!(a.classification(b, 2), Some(Classification::AlwaysHit));
    }

    #[test]
    fn dcache_unknown_address_destroys_guarantees() {
        // Load a known address (cached), then store through an unknown
        // pointer, then reload: the reload is no longer a guaranteed hit.
        let src = "main: li r1, 0x100\n lw r2, 0(r1)\n sw r2, 0(r4)\n lw r3, 0(r1)\n halt";
        let image = assemble(src).unwrap();
        let p = reconstruct(&image, &TargetResolver::empty()).unwrap();
        let fa = analyze_function(&p, p.entry, &image);
        let a = CacheAnalysis::data(
            fa.cfg(),
            &CacheConfig::small_dcache(),
            &MemoryMap::default_embedded(),
            &fa.access_values(),
        );
        let b = fa.cfg().entry_block();
        assert_eq!(a.classification(b, 1), Some(Classification::AlwaysMiss));
        assert_eq!(
            a.classification(b, 3),
            Some(Classification::NotClassified),
            "unknown store voided the guarantee"
        );
    }

    #[test]
    fn dcache_mmio_bypasses() {
        let src = "main: li r1, 0xf0000000\n lw r2, 0(r1)\n halt";
        let image = assemble(src).unwrap();
        let p = reconstruct(&image, &TargetResolver::empty()).unwrap();
        let fa = analyze_function(&p, p.entry, &image);
        let a = CacheAnalysis::data(
            fa.cfg(),
            &CacheConfig::small_dcache(),
            &MemoryMap::default_embedded(),
            &fa.access_values(),
        );
        let b = fa.cfg().entry_block();
        // Index 0 is the `lui` (li of a 16-bit-aligned constant), 1 the lw.
        assert_eq!(a.classification(b, 1), None, "MMIO bypasses the dcache");
    }
}
