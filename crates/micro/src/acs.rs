//! Abstract cache states for LRU must/may analysis (Ferdinand's domains).
//!
//! For a set-associative LRU cache, the **must** analysis tracks an upper
//! bound on each line's age (a line is *guaranteed* cached if its maximal
//! age is below the associativity), and the **may** analysis a lower bound
//! (a line is *guaranteed absent* if it appears in no may state). Their
//! combination classifies each access:
//!
//! | in must | in may | classification |
//! |---|---|---|
//! | yes | — | always hit |
//! | no | no | always miss |
//! | no | yes | not classified (must assume the worst) |

use std::collections::BTreeMap;

use wcet_isa::cache::CacheConfig;
use wcet_isa::Addr;

/// Classification of one memory access against the abstract caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Classification {
    /// The line is provably cached: charge the hit latency.
    AlwaysHit,
    /// The line is provably absent: charge the full miss latency (useful
    /// for BCET, where a guaranteed miss *raises* the lower bound).
    AlwaysMiss,
    /// Unknown: WCET charges a miss, BCET charges a hit.
    NotClassified,
}

/// One abstract cache (either the must or the may instance — the update
/// and join rules differ by [`Polarity`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractCache {
    config: CacheConfig,
    polarity: Polarity,
    /// Per set: line tag → abstract age (0 = MRU). Only ages `< assoc`
    /// are stored.
    sets: Vec<BTreeMap<u32, u8>>,
    /// True once an unknown-address access occurred on some path; voids
    /// always-miss conclusions from the may cache.
    poisoned: bool,
}

/// Whether the cache tracks maximal ages (must) or minimal ages (may).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// Upper bounds on age: intersection-join, pessimistic aging.
    Must,
    /// Lower bounds on age: union-join, optimistic aging.
    May,
}

impl AbstractCache {
    /// An empty (cold) abstract cache.
    #[must_use]
    pub fn new(config: CacheConfig, polarity: Polarity) -> AbstractCache {
        let sets = vec![BTreeMap::new(); config.sets];
        AbstractCache {
            config,
            polarity,
            sets,
            poisoned: false,
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Is the line of `addr` guaranteed present (must) / possibly present
    /// (may)?
    #[must_use]
    pub fn contains_line(&self, addr: Addr) -> bool {
        let line = self.config.line_of(addr);
        self.sets[(line as usize) % self.config.sets].contains_key(&line)
    }

    /// Records a definite access to `addr`'s line (LRU update).
    pub fn access(&mut self, addr: Addr) {
        let line = self.config.line_of(addr);
        let assoc = self.config.assoc as u8;
        let set = &mut self.sets[(line as usize) % self.config.sets];
        let old_age = set.get(&line).copied();
        let mut evicted = Vec::new();
        for (&l, age) in set.iter_mut() {
            if l == line {
                continue;
            }
            // Lines younger than the accessed line's old age grow older;
            // with the line previously absent, everyone ages.
            let ages = match old_age {
                Some(o) => *age < o,
                None => true,
            };
            if ages {
                *age += 1;
                if *age >= assoc {
                    evicted.push(l);
                }
            }
        }
        for l in evicted {
            set.remove(&l);
        }
        set.insert(line, 0);
    }

    /// Records an access that touches *one of* `addrs` (a precise-set
    /// address from the value analysis): the must cache ages
    /// conservatively, the may cache unions all possibilities.
    pub fn access_one_of(&mut self, addrs: &[Addr]) {
        // Join of the per-candidate updates; the polarity-aware join does
        // the right thing for both the must and the may instance.
        let mut acc: Option<AbstractCache> = None;
        for &a in addrs {
            let mut c = self.clone();
            c.access(a);
            acc = Some(match acc {
                Some(prev) => prev.join(&c),
                None => c,
            });
        }
        if let Some(out) = acc {
            *self = out;
        }
    }

    /// Records an access whose address is completely unknown.
    ///
    /// For the must cache this is catastrophic — any line might have been
    /// evicted, so *nothing* is guaranteed cached any more. This is the
    /// paper's "an imprecise memory access invalidates large parts of the
    /// abstract cache (or even the whole cache)". The may cache instead
    /// ages everything optimistically (nothing new can be *guaranteed*
    /// present either).
    pub fn access_unknown(&mut self) {
        match self.polarity {
            Polarity::Must => {
                for set in &mut self.sets {
                    set.clear();
                }
            }
            Polarity::May => {
                // Any line may now additionally be present; absent lines
                // stay possibly-absent. Conservatively age nothing (ages
                // are lower bounds; an unknown access can only make lines
                // younger, i.e. lower the bound — but we cannot know
                // which, so the sound choice is to keep ages and accept
                // that unknown lines are "possibly present" implicitly).
                // Classification of *future* accesses must treat absence
                // from may as no longer proving a miss; the analysis
                // records this via `poisoned`.
                self.poisoned = true;
            }
        }
    }

    /// Joins two abstract caches (control-flow merge).
    #[must_use]
    pub fn join(&self, other: &AbstractCache) -> AbstractCache {
        assert_eq!(self.config, other.config, "joining incompatible caches");
        let mut out = AbstractCache::new(self.config.clone(), self.polarity);
        out.poisoned = self.poisoned || other.poisoned;
        for (i, set) in out.sets.iter_mut().enumerate() {
            match self.polarity {
                Polarity::Must => {
                    // Intersection with maximal age.
                    for (l, &a) in &self.sets[i] {
                        if let Some(&b) = other.sets[i].get(l) {
                            set.insert(*l, a.max(b));
                        }
                    }
                }
                Polarity::May => {
                    // Union with minimal age.
                    for (l, &a) in &self.sets[i] {
                        set.insert(*l, a);
                    }
                    for (l, &b) in &other.sets[i] {
                        set.entry(*l).and_modify(|a| *a = (*a).min(b)).or_insert(b);
                    }
                }
            }
        }
        out
    }

    /// Domain order: `self ⊑ other` (self at least as precise).
    #[must_use]
    pub fn is_subsumed_by(&self, other: &AbstractCache) -> bool {
        if other.poisoned != self.poisoned && self.poisoned {
            return false;
        }
        match self.polarity {
            Polarity::Must => {
                // Other's guarantees must all follow from self's.
                other.sets.iter().enumerate().all(|(i, oset)| {
                    oset.iter()
                        .all(|(l, &ob)| self.sets[i].get(l).is_some_and(|&a| a <= ob))
                })
            }
            Polarity::May => {
                // Self's possibilities must all be admitted by other.
                self.sets.iter().enumerate().all(|(i, sset)| {
                    sset.iter()
                        .all(|(l, &a)| other.sets[i].get(l).is_some_and(|&ob| ob <= a))
                })
            }
        }
    }

    /// Absorbs the abstract cache into a stable hasher (for the
    /// incremental engine's context-entry digests).
    pub fn digest_into(&self, h: &mut wcet_isa::hash::StableHasher) {
        h.write_u32(match self.polarity {
            Polarity::Must => 0,
            Polarity::May => 1,
        });
        h.write_u64(u64::from(self.poisoned));
        h.write_usize(self.config.sets);
        h.write_usize(self.config.assoc);
        h.write_usize(self.sets.len());
        for set in &self.sets {
            h.write_usize(set.len());
            for (&line, &age) in set {
                h.write_u32(line);
                h.write_u32(u32::from(age));
            }
        }
    }

    /// True if an unknown-address access has been seen on some path, which
    /// voids "guaranteed absent" conclusions.
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Number of lines currently tracked.
    #[must_use]
    pub fn tracked_lines(&self) -> usize {
        self.sets.iter().map(BTreeMap::len).sum()
    }
}

/// Classifies an access given the must and may states *before* it.
#[must_use]
pub fn classify(must: &AbstractCache, may: &AbstractCache, addr: Addr) -> Classification {
    if must.contains_line(addr) {
        Classification::AlwaysHit
    } else if !may.contains_line(addr) && !may.is_poisoned() {
        Classification::AlwaysMiss
    } else {
        Classification::NotClassified
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg2way() -> CacheConfig {
        CacheConfig::new(2, 2, 16, 1)
    }

    fn must() -> AbstractCache {
        AbstractCache::new(cfg2way(), Polarity::Must)
    }

    fn may() -> AbstractCache {
        AbstractCache::new(cfg2way(), Polarity::May)
    }

    #[test]
    fn must_guarantees_after_access() {
        let mut m = must();
        assert!(!m.contains_line(Addr(0x100)));
        m.access(Addr(0x100));
        assert!(m.contains_line(Addr(0x100)));
        // Same line, different word.
        assert!(m.contains_line(Addr(0x104)));
    }

    #[test]
    fn must_eviction_by_aging() {
        let mut m = must();
        // Three lines in the same set of a 2-way cache: first is evicted.
        // Set index = line % 2; lines 0x100/16=16, 0x120/16=18, 0x140/16=20
        // are all even → set 0.
        m.access(Addr(0x100));
        m.access(Addr(0x120));
        m.access(Addr(0x140));
        assert!(!m.contains_line(Addr(0x100)), "aged out of 2 ways");
        assert!(m.contains_line(Addr(0x120)));
        assert!(m.contains_line(Addr(0x140)));
    }

    #[test]
    fn must_join_is_intersection_max_age() {
        let mut a = must();
        a.access(Addr(0x100));
        a.access(Addr(0x120)); // 0x100 now age 1
        let mut b = must();
        b.access(Addr(0x100)); // 0x100 age 0
        let j = a.join(&b);
        assert!(j.contains_line(Addr(0x100)));
        assert!(!j.contains_line(Addr(0x120)), "only in one branch");
        // Age must be the max (1): one more conflicting access evicts.
        let mut j2 = j.clone();
        j2.access(Addr(0x140));
        assert!(!j2.contains_line(Addr(0x100)));
    }

    #[test]
    fn may_join_is_union_min_age() {
        let mut a = may();
        a.access(Addr(0x100));
        let mut b = may();
        b.access(Addr(0x120));
        let j = a.join(&b);
        assert!(j.contains_line(Addr(0x100)));
        assert!(j.contains_line(Addr(0x120)));
    }

    #[test]
    fn classification_matrix() {
        let mut must_c = must();
        let mut may_c = may();
        // 0x100 accessed on all paths → always hit.
        must_c.access(Addr(0x100));
        may_c.access(Addr(0x100));
        assert_eq!(
            classify(&must_c, &may_c, Addr(0x100)),
            Classification::AlwaysHit
        );
        // 0x200 never accessed → always miss.
        assert_eq!(
            classify(&must_c, &may_c, Addr(0x200)),
            Classification::AlwaysMiss
        );
        // 0x120 accessed on some path only.
        may_c.access(Addr(0x120));
        let mut must_without = must();
        must_without.access(Addr(0x100));
        assert_eq!(
            classify(&must_without, &may_c, Addr(0x120)),
            Classification::NotClassified
        );
    }

    #[test]
    fn unknown_access_empties_must_cache() {
        let mut m = must();
        m.access(Addr(0x100));
        m.access(Addr(0x250));
        assert!(m.tracked_lines() > 0);
        m.access_unknown();
        assert_eq!(m.tracked_lines(), 0, "the paper's total invalidation");
    }

    #[test]
    fn unknown_access_poisons_may_cache() {
        let mut m = may();
        m.access(Addr(0x100));
        m.access_unknown();
        assert!(m.is_poisoned());
        // No more always-miss classifications afterwards.
        let must_c = must();
        assert_eq!(
            classify(&must_c, &m, Addr(0x999)),
            Classification::NotClassified
        );
    }

    #[test]
    fn set_access_weakens_must() {
        let mut m = must();
        m.access(Addr(0x100));
        // The access goes to 0x200 or 0x300: neither ends up guaranteed.
        m.access_one_of(&[Addr(0x200), Addr(0x300)]);
        assert!(!m.contains_line(Addr(0x200)));
        assert!(!m.contains_line(Addr(0x300)));
    }

    #[test]
    fn set_access_widens_may() {
        let mut m = may();
        m.access_one_of(&[Addr(0x200), Addr(0x300)]);
        assert!(m.contains_line(Addr(0x200)));
        assert!(m.contains_line(Addr(0x300)));
    }

    #[test]
    fn subsumption_order() {
        let empty = must();
        let mut one = must();
        one.access(Addr(0x100));
        // `one` has more guarantees → more precise → subsumed by empty.
        assert!(one.is_subsumed_by(&empty));
        assert!(!empty.is_subsumed_by(&one));
    }
}
