//! Abstract cache states for LRU must/may/persistence analysis
//! (Ferdinand's domains).
//!
//! For a set-associative LRU cache, the **must** analysis tracks an upper
//! bound on each line's age (a line is *guaranteed* cached if its maximal
//! age is below the associativity), and the **may** analysis a lower bound
//! (a line is *guaranteed absent* if it appears in no may state). The
//! **persistence** analysis tracks, per line, an upper bound on the number
//! of conflicting accesses since the line's last possible load, with a
//! virtual *evicted-line* top element at `age == assoc`: a line that never
//! reaches the top after first being loaded is never evicted again, so all
//! accesses to it within the scope (one function/context activation) miss
//! **at most once**. Their combination classifies each access:
//!
//! | in must | in may | persistent | classification |
//! |---|---|---|---|
//! | yes | — | — | always hit |
//! | no | no | — | always miss |
//! | no | yes | yes | first miss (≤ 1 miss per activation) |
//! | no | yes | no | not classified (must assume the worst) |

use std::collections::BTreeMap;

use wcet_isa::cache::CacheConfig;
use wcet_isa::Addr;

use crate::footprint::{CacheFootprint, SetFootprint};

/// Classification of one memory access against the abstract caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Classification {
    /// The line is provably cached: charge the hit latency.
    AlwaysHit,
    /// The line is provably absent: charge the full miss latency (useful
    /// for BCET, where a guaranteed miss *raises* the lower bound).
    AlwaysMiss,
    /// The line is persistent: at most one of the access's executions per
    /// activation misses. WCET charges the hit latency per execution plus
    /// one miss penalty per activation (an extra ILP variable); BCET
    /// charges a hit (zero misses are possible with a warm entry cache).
    FirstMiss,
    /// Unknown: WCET charges a miss, BCET charges a hit.
    NotClassified,
}

/// One abstract cache (the must, may, or persistence instance — update
/// and join rules differ by [`Polarity`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractCache {
    config: CacheConfig,
    polarity: Polarity,
    /// Per set: line tag → abstract age (0 = MRU). Must/may store only
    /// ages `< assoc`; the persistence instance additionally keeps lines
    /// at `age == assoc` — the virtual evicted-line top element.
    sets: Vec<BTreeMap<u32, u8>>,
    /// Per set: true once an unknown-address access (or an opaque callee)
    /// may have touched the set on some path; voids always-miss
    /// conclusions from the may cache *for that set only*. Poisoning used
    /// to be one sticky global flag, so a single opaque call voided
    /// always-miss (BCET) classifications for every line of the whole
    /// rest of the function — even lines in sets the callee provably
    /// never touches.
    poison: Vec<bool>,
}

/// Which bound the cache instance tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// Upper bounds on age: intersection-join, pessimistic aging.
    Must,
    /// Lower bounds on age: union-join, optimistic aging.
    May,
    /// Upper bounds on age since last possible load, clamped at the
    /// virtual evicted-line element (`assoc`): union-join with maximal
    /// age, conservative aging (every conflicting access ages every
    /// other line of the set).
    Persist,
}

impl AbstractCache {
    /// An empty (cold) abstract cache.
    #[must_use]
    pub fn new(config: CacheConfig, polarity: Polarity) -> AbstractCache {
        let sets = vec![BTreeMap::new(); config.sets];
        let poison = vec![false; config.sets];
        AbstractCache {
            config,
            polarity,
            sets,
            poison,
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn set_of(&self, line: u32) -> usize {
        (line as usize) % self.config.sets
    }

    /// Is the line of `addr` guaranteed present (must) / possibly present
    /// (may)? For the persistence instance: has the line possibly been
    /// loaded in this scope (at any age, including the evicted top)?
    #[must_use]
    pub fn contains_line(&self, addr: Addr) -> bool {
        let line = self.config.line_of(addr);
        self.sets[self.set_of(line)].contains_key(&line)
    }

    /// Persistence query: the line of `addr` is tracked *below* the
    /// virtual evicted-line element, i.e. fewer than `assoc` conflicting
    /// accesses happened since its last possible load. Once such an
    /// access loads the line, every later execution of the same access
    /// within the activation hits — the access misses at most once.
    #[must_use]
    pub fn persistent_line(&self, addr: Addr) -> bool {
        debug_assert_eq!(self.polarity, Polarity::Persist);
        let line = self.config.line_of(addr);
        let assoc = self.config.assoc as u8;
        self.sets[self.set_of(line)]
            .get(&line)
            .is_some_and(|&age| age < assoc)
    }

    /// Records a definite access to `addr`'s line (LRU update).
    pub fn access(&mut self, addr: Addr) {
        let line = self.config.line_of(addr);
        let assoc = self.config.assoc as u8;
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        match self.polarity {
            Polarity::Must | Polarity::May => {
                let old_age = set.get(&line).copied();
                let mut evicted = Vec::new();
                for (&l, age) in set.iter_mut() {
                    if l == line {
                        continue;
                    }
                    // Lines younger than the accessed line's old age grow
                    // older; with the line previously absent, everyone ages.
                    let ages = match old_age {
                        Some(o) => *age < o,
                        None => true,
                    };
                    if ages {
                        *age += 1;
                        if *age >= assoc {
                            evicted.push(l);
                        }
                    }
                }
                for l in evicted {
                    set.remove(&l);
                }
                set.insert(line, 0);
            }
            Polarity::Persist => {
                // Conservative aging (Cullmann's fix to Ferdinand's
                // original persistence): *every* access to a different
                // line of the set ages every other line, regardless of
                // relative ages — over-ages repeated hits, which only
                // loses precision, never soundness. Lines clamp at the
                // virtual evicted element instead of leaving the state.
                for (&l, age) in set.iter_mut() {
                    if l != line && *age < assoc {
                        *age += 1;
                    }
                }
                set.insert(line, 0);
            }
        }
    }

    /// Records an access that touches *one of* `addrs` (a precise-set
    /// address from the value analysis): the must cache ages
    /// conservatively, the may cache unions all possibilities, the
    /// persistence cache takes the maximal ages.
    pub fn access_one_of(&mut self, addrs: &[Addr]) {
        // Join of the per-candidate updates; the polarity-aware join does
        // the right thing for every instance.
        let mut acc: Option<AbstractCache> = None;
        for &a in addrs {
            let mut c = self.clone();
            c.access(a);
            acc = Some(match acc {
                Some(prev) => prev.join(&c),
                None => c,
            });
        }
        if let Some(out) = acc {
            *self = out;
        }
    }

    /// Records an access whose address is completely unknown.
    ///
    /// For the must cache this is catastrophic — any line might have been
    /// evicted, so *nothing* is guaranteed cached any more. This is the
    /// paper's "an imprecise memory access invalidates large parts of the
    /// abstract cache (or even the whole cache)". The may cache instead
    /// ages everything optimistically (nothing new can be *guaranteed*
    /// present either) and poisons every set. The persistence cache
    /// clamps every tracked line to the evicted top — any of them may
    /// have been pushed out.
    pub fn access_unknown(&mut self) {
        match self.polarity {
            Polarity::Must => {
                for set in &mut self.sets {
                    set.clear();
                }
            }
            Polarity::May => {
                // Any line may now additionally be present; absent lines
                // stay possibly-absent. Conservatively age nothing (ages
                // are lower bounds; an unknown access can only make lines
                // younger, i.e. lower the bound — but we cannot know
                // which, so the sound choice is to keep ages and accept
                // that unknown lines are "possibly present" implicitly).
                // Classification of *future* accesses must treat absence
                // from may as no longer proving a miss; the analysis
                // records this via per-set poisoning — an unknown address
                // can map anywhere, so every set poisons.
                for p in &mut self.poison {
                    *p = true;
                }
            }
            Polarity::Persist => {
                let assoc = self.config.assoc as u8;
                for set in &mut self.sets {
                    for age in set.values_mut() {
                        *age = assoc;
                    }
                }
            }
        }
    }

    /// Applies a callee's cache [`CacheFootprint`] — the transfer of a
    /// call whose possible cache traffic is summarized per set:
    ///
    /// * **must**: lines age by the number of distinct conflicting lines
    ///   the callee may load into their set; an [`SetFootprint::Any`] set
    ///   clears. Untouched sets keep every guarantee.
    /// * **may**: the callee's possible lines become possibly present
    ///   (age 0); an `Any` set poisons *that set only*. No global
    ///   poisoning — the footprint proves the callee cannot touch the
    ///   other sets.
    /// * **persistence**: like must, but clamping at the evicted top
    ///   instead of evicting; the callee's possible lines additionally
    ///   enter the state (they may have been loaded), at their maximal
    ///   in-callee age.
    ///
    /// # Panics
    ///
    /// Panics when the footprint's geometry differs from the cache's.
    pub fn apply_footprint(&mut self, fp: &CacheFootprint) {
        assert_eq!(
            fp.config(),
            &self.config,
            "footprint geometry must match the abstract cache"
        );
        let assoc = self.config.assoc as u8;
        for (i, sfp) in fp.sets().iter().enumerate() {
            match (self.polarity, sfp) {
                (Polarity::Must, SetFootprint::Any) => self.sets[i].clear(),
                (Polarity::Must, SetFootprint::Lines(_)) => {
                    let mut evicted = Vec::new();
                    for (&l, age) in self.sets[i].iter_mut() {
                        let k = sfp.conflicts_with(l).expect("Lines arm") as u64;
                        *age = age.saturating_add(k.min(255) as u8);
                        if *age >= assoc {
                            evicted.push(l);
                        }
                    }
                    for l in evicted {
                        self.sets[i].remove(&l);
                    }
                }
                (Polarity::May, SetFootprint::Any) => self.poison[i] = true,
                (Polarity::May, SetFootprint::Lines(ls)) => {
                    // Possibly loaded, possibly most recently: the sound
                    // lower bound on their age is 0. Existing lines keep
                    // their bounds (callee traffic only ages them).
                    for &l in ls {
                        self.sets[i].insert(l, 0);
                    }
                }
                (Polarity::Persist, SetFootprint::Any) => {
                    for age in self.sets[i].values_mut() {
                        *age = assoc;
                    }
                }
                (Polarity::Persist, SetFootprint::Lines(ls)) => {
                    for (&l, age) in self.sets[i].iter_mut() {
                        let k = sfp.conflicts_with(l).expect("Lines arm") as u64;
                        *age = age.saturating_add(k.min(255) as u8).min(assoc);
                    }
                    // A footprint line the caller never loaded may have
                    // been loaded by the callee, with at most
                    // |lines \ {l}| conflicts after its last in-callee
                    // load. Tracked lines keep their (larger) aged bound.
                    for &l in ls {
                        let k = ls.len() - 1;
                        if (k as u64) < u64::from(assoc) {
                            self.sets[i].entry(l).or_insert(k as u8);
                        }
                    }
                }
            }
        }
    }

    /// Joins two abstract caches (control-flow merge).
    #[must_use]
    pub fn join(&self, other: &AbstractCache) -> AbstractCache {
        assert_eq!(self.config, other.config, "joining incompatible caches");
        assert_eq!(self.polarity, other.polarity, "joining across polarities");
        let mut out = AbstractCache::new(self.config.clone(), self.polarity);
        for (i, p) in out.poison.iter_mut().enumerate() {
            *p = self.poison[i] || other.poison[i];
        }
        for (i, set) in out.sets.iter_mut().enumerate() {
            match self.polarity {
                Polarity::Must => {
                    // Intersection with maximal age.
                    for (l, &a) in &self.sets[i] {
                        if let Some(&b) = other.sets[i].get(l) {
                            set.insert(*l, a.max(b));
                        }
                    }
                }
                Polarity::May => {
                    // Union with minimal age.
                    for (l, &a) in &self.sets[i] {
                        set.insert(*l, a);
                    }
                    for (l, &b) in &other.sets[i] {
                        set.entry(*l).and_modify(|a| *a = (*a).min(b)).or_insert(b);
                    }
                }
                Polarity::Persist => {
                    // Union with maximal age: a line is "possibly loaded"
                    // if either path loaded it, and the conflict bound
                    // must cover both paths.
                    for (l, &a) in &self.sets[i] {
                        set.insert(*l, a);
                    }
                    for (l, &b) in &other.sets[i] {
                        set.entry(*l).and_modify(|a| *a = (*a).max(b)).or_insert(b);
                    }
                }
            }
        }
        out
    }

    /// Domain order: `self ⊑ other` (self at least as precise).
    #[must_use]
    pub fn is_subsumed_by(&self, other: &AbstractCache) -> bool {
        // A set poisoned in self but clean in other: self is strictly
        // less precise there.
        if self
            .poison
            .iter()
            .zip(&other.poison)
            .any(|(s, o)| *s && !*o)
        {
            return false;
        }
        match self.polarity {
            Polarity::Must => {
                // Other's guarantees must all follow from self's.
                other.sets.iter().enumerate().all(|(i, oset)| {
                    oset.iter()
                        .all(|(l, &ob)| self.sets[i].get(l).is_some_and(|&a| a <= ob))
                })
            }
            Polarity::May => {
                // Self's possibilities must all be admitted by other.
                self.sets.iter().enumerate().all(|(i, sset)| {
                    sset.iter()
                        .all(|(l, &a)| other.sets[i].get(l).is_some_and(|&ob| ob <= a))
                })
            }
            Polarity::Persist => {
                // Self's possibly-loaded lines must be admitted by other
                // at an age at least as large (larger age = weaker claim).
                self.sets.iter().enumerate().all(|(i, sset)| {
                    sset.iter()
                        .all(|(l, &a)| other.sets[i].get(l).is_some_and(|&ob| ob >= a))
                })
            }
        }
    }

    /// Absorbs the abstract cache into a stable hasher (for the
    /// incremental engine's context-entry digests).
    pub fn digest_into(&self, h: &mut wcet_isa::hash::StableHasher) {
        h.write_u32(match self.polarity {
            Polarity::Must => 0,
            Polarity::May => 1,
            Polarity::Persist => 2,
        });
        for &p in &self.poison {
            h.write_u32(u32::from(p));
        }
        h.write_usize(self.config.sets);
        h.write_usize(self.config.assoc);
        h.write_usize(self.sets.len());
        for set in &self.sets {
            h.write_usize(set.len());
            for (&line, &age) in set {
                h.write_u32(line);
                h.write_u32(u32::from(age));
            }
        }
    }

    /// True if an unknown-address access has been seen on some path, which
    /// voids "guaranteed absent" conclusions somewhere.
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.poison.iter().any(|&p| p)
    }

    /// True if `addr`'s *set* is poisoned — the per-set scope that
    /// actually voids an always-miss claim for this address.
    #[must_use]
    pub fn is_poisoned_at(&self, addr: Addr) -> bool {
        let line = self.config.line_of(addr);
        self.poison[self.set_of(line)]
    }

    /// Number of lines currently tracked.
    #[must_use]
    pub fn tracked_lines(&self) -> usize {
        self.sets.iter().map(BTreeMap::len).sum()
    }
}

/// Classifies an access given the must and may states *before* it.
#[must_use]
pub fn classify(must: &AbstractCache, may: &AbstractCache, addr: Addr) -> Classification {
    classify_with_persist(must, may, None, addr)
}

/// [`classify`] with an optional persistence state: an access that is
/// neither a guaranteed hit nor a guaranteed miss, but whose line is
/// persistent, classifies [`Classification::FirstMiss`].
#[must_use]
pub fn classify_with_persist(
    must: &AbstractCache,
    may: &AbstractCache,
    persist: Option<&AbstractCache>,
    addr: Addr,
) -> Classification {
    if must.contains_line(addr) {
        Classification::AlwaysHit
    } else if !may.contains_line(addr) && !may.is_poisoned_at(addr) {
        Classification::AlwaysMiss
    } else if persist.is_some_and(|p| p.persistent_line(addr)) {
        Classification::FirstMiss
    } else {
        Classification::NotClassified
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn cfg2way() -> CacheConfig {
        CacheConfig::new(2, 2, 16, 1)
    }

    fn must() -> AbstractCache {
        AbstractCache::new(cfg2way(), Polarity::Must)
    }

    fn may() -> AbstractCache {
        AbstractCache::new(cfg2way(), Polarity::May)
    }

    fn persist() -> AbstractCache {
        AbstractCache::new(cfg2way(), Polarity::Persist)
    }

    #[test]
    fn must_guarantees_after_access() {
        let mut m = must();
        assert!(!m.contains_line(Addr(0x100)));
        m.access(Addr(0x100));
        assert!(m.contains_line(Addr(0x100)));
        // Same line, different word.
        assert!(m.contains_line(Addr(0x104)));
    }

    #[test]
    fn must_eviction_by_aging() {
        let mut m = must();
        // Three lines in the same set of a 2-way cache: first is evicted.
        // Set index = line % 2; lines 0x100/16=16, 0x120/16=18, 0x140/16=20
        // are all even → set 0.
        m.access(Addr(0x100));
        m.access(Addr(0x120));
        m.access(Addr(0x140));
        assert!(!m.contains_line(Addr(0x100)), "aged out of 2 ways");
        assert!(m.contains_line(Addr(0x120)));
        assert!(m.contains_line(Addr(0x140)));
    }

    #[test]
    fn must_join_is_intersection_max_age() {
        let mut a = must();
        a.access(Addr(0x100));
        a.access(Addr(0x120)); // 0x100 now age 1
        let mut b = must();
        b.access(Addr(0x100)); // 0x100 age 0
        let j = a.join(&b);
        assert!(j.contains_line(Addr(0x100)));
        assert!(!j.contains_line(Addr(0x120)), "only in one branch");
        // Age must be the max (1): one more conflicting access evicts.
        let mut j2 = j.clone();
        j2.access(Addr(0x140));
        assert!(!j2.contains_line(Addr(0x100)));
    }

    #[test]
    fn may_join_is_union_min_age() {
        let mut a = may();
        a.access(Addr(0x100));
        let mut b = may();
        b.access(Addr(0x120));
        let j = a.join(&b);
        assert!(j.contains_line(Addr(0x100)));
        assert!(j.contains_line(Addr(0x120)));
    }

    #[test]
    fn classification_matrix() {
        let mut must_c = must();
        let mut may_c = may();
        // 0x100 accessed on all paths → always hit.
        must_c.access(Addr(0x100));
        may_c.access(Addr(0x100));
        assert_eq!(
            classify(&must_c, &may_c, Addr(0x100)),
            Classification::AlwaysHit
        );
        // 0x200 never accessed → always miss.
        assert_eq!(
            classify(&must_c, &may_c, Addr(0x200)),
            Classification::AlwaysMiss
        );
        // 0x120 accessed on some path only.
        may_c.access(Addr(0x120));
        let mut must_without = must();
        must_without.access(Addr(0x100));
        assert_eq!(
            classify(&must_without, &may_c, Addr(0x120)),
            Classification::NotClassified
        );
    }

    #[test]
    fn unknown_access_empties_must_cache() {
        let mut m = must();
        m.access(Addr(0x100));
        m.access(Addr(0x250));
        assert!(m.tracked_lines() > 0);
        m.access_unknown();
        assert_eq!(m.tracked_lines(), 0, "the paper's total invalidation");
    }

    #[test]
    fn unknown_access_poisons_may_cache() {
        let mut m = may();
        m.access(Addr(0x100));
        m.access_unknown();
        assert!(m.is_poisoned());
        assert!(m.is_poisoned_at(Addr(0x999)), "unknown poisons every set");
        // No more always-miss classifications afterwards.
        let must_c = must();
        assert_eq!(
            classify(&must_c, &m, Addr(0x999)),
            Classification::NotClassified
        );
    }

    #[test]
    fn set_access_weakens_must() {
        let mut m = must();
        m.access(Addr(0x100));
        // The access goes to 0x200 or 0x300: neither ends up guaranteed.
        m.access_one_of(&[Addr(0x200), Addr(0x300)]);
        assert!(!m.contains_line(Addr(0x200)));
        assert!(!m.contains_line(Addr(0x300)));
    }

    #[test]
    fn set_access_widens_may() {
        let mut m = may();
        m.access_one_of(&[Addr(0x200), Addr(0x300)]);
        assert!(m.contains_line(Addr(0x200)));
        assert!(m.contains_line(Addr(0x300)));
    }

    #[test]
    fn subsumption_order() {
        let empty = must();
        let mut one = must();
        one.access(Addr(0x100));
        // `one` has more guarantees → more precise → subsumed by empty.
        assert!(one.is_subsumed_by(&empty));
        assert!(!empty.is_subsumed_by(&one));
    }

    // --- persistence domain ------------------------------------------

    #[test]
    fn persistence_survives_within_associativity() {
        let mut p = persist();
        p.access(Addr(0x100)); // line 16, set 0
        p.access(Addr(0x120)); // line 18, set 0: ages 0x100 to 1
        assert!(p.persistent_line(Addr(0x100)), "one conflict in 2 ways");
        p.access(Addr(0x140)); // ages 0x100 to the evicted top
        assert!(!p.persistent_line(Addr(0x100)), "aged out of 2 ways");
        assert!(
            p.contains_line(Addr(0x100)),
            "the top element stays tracked"
        );
        // Re-loading restores persistence (age since last load resets).
        p.access(Addr(0x100));
        assert!(p.persistent_line(Addr(0x100)));
    }

    #[test]
    fn persist_join_is_union_max_age() {
        let mut a = persist();
        a.access(Addr(0x100));
        a.access(Addr(0x120)); // 0x100 at age 1
        let mut b = persist();
        b.access(Addr(0x100)); // 0x100 at age 0
        let j = a.join(&b);
        assert!(j.persistent_line(Addr(0x100)), "joined age is max = 1");
        let mut j2 = j.clone();
        j2.access(Addr(0x140)); // max age 1 + 1 = top
        assert!(!j2.persistent_line(Addr(0x100)));
        // Untracked-on-one-path lines stay tracked (union).
        assert!(j.contains_line(Addr(0x120)));
    }

    #[test]
    fn persist_unknown_access_clamps_to_top() {
        let mut p = persist();
        p.access(Addr(0x100));
        p.access_unknown();
        assert!(!p.persistent_line(Addr(0x100)));
        assert!(p.contains_line(Addr(0x100)));
        // A fresh load after the unknown access is persistent again.
        p.access(Addr(0x100));
        assert!(p.persistent_line(Addr(0x100)));
    }

    #[test]
    fn first_miss_classification_requires_persistence() {
        let must_c = must();
        let mut may_c = may();
        may_c.access(Addr(0x100));
        let mut p = persist();
        p.access(Addr(0x100));
        assert_eq!(
            classify_with_persist(&must_c, &may_c, Some(&p), Addr(0x100)),
            Classification::FirstMiss
        );
        // Aged to the top: back to not-classified.
        p.access(Addr(0x120));
        p.access(Addr(0x140));
        assert_eq!(
            classify_with_persist(&must_c, &may_c, Some(&p), Addr(0x100)),
            Classification::NotClassified
        );
        // Guaranteed absence still wins over persistence (it is exact for
        // WCET and strictly better for BCET).
        let fresh_may = may();
        let mut p2 = persist();
        p2.access(Addr(0x200));
        assert_eq!(
            classify_with_persist(&must_c, &fresh_may, Some(&p2), Addr(0x200)),
            Classification::AlwaysMiss
        );
    }

    // --- per-set poisoning and footprints ----------------------------

    #[test]
    fn footprint_poisons_only_its_any_sets() {
        // Regression for the sticky-poison bug: an opaque-per-set callee
        // voids always-miss only where it can actually touch.
        let mut m = may();
        m.access(Addr(0x100)); // set 0
                               // The callee may touch anything in set 1, nothing in set 0.
        let fp = CacheFootprint::from_parts(
            cfg2way(),
            vec![SetFootprint::Lines(BTreeSet::new()), SetFootprint::Any],
        )
        .unwrap();
        assert!(fp.has_unknown_set());
        m.apply_footprint(&fp);
        assert!(m.is_poisoned_at(Addr(0x110)), "touched set poisons");
        assert!(
            !m.is_poisoned_at(Addr(0x200)),
            "untouched set keeps always-miss power"
        );
        let must_c = must();
        assert_eq!(
            classify(&must_c, &m, Addr(0x200)),
            Classification::AlwaysMiss,
            "set-0 absence still proves a miss"
        );
        assert_eq!(
            classify(&must_c, &m, Addr(0x210)),
            Classification::NotClassified
        );
    }

    #[test]
    fn footprint_ages_must_by_conflicting_lines() {
        let mut m = must();
        m.access(Addr(0x100)); // line 16, set 0, age 0
        m.access(Addr(0x110)); // line 17, set 1, age 0
        let mut fp = CacheFootprint::empty(&cfg2way());
        fp.absorb_addr(Addr(0x120)); // line 18, set 0: one conflict
        m.apply_footprint(&fp);
        assert!(
            m.contains_line(Addr(0x100)),
            "one conflict in 2 ways survives"
        );
        assert!(m.contains_line(Addr(0x110)), "untouched set unaffected");
        // A second application evicts (age 2 ≥ assoc).
        m.apply_footprint(&fp);
        assert!(!m.contains_line(Addr(0x100)));
        assert!(m.contains_line(Addr(0x110)));
    }

    #[test]
    fn footprint_enters_may_without_poisoning() {
        let mut m = may();
        let mut fp = CacheFootprint::empty(&cfg2way());
        fp.absorb_addr(Addr(0x120));
        m.apply_footprint(&fp);
        assert!(m.contains_line(Addr(0x120)), "callee line possibly present");
        assert!(!m.is_poisoned(), "known footprint never poisons");
        let must_c = must();
        assert_eq!(
            classify(&must_c, &m, Addr(0x200)),
            Classification::AlwaysMiss,
            "absence outside the footprint still proves a miss"
        );
    }

    #[test]
    fn footprint_tracks_callee_lines_in_persist() {
        let mut p = persist();
        let mut fp = CacheFootprint::empty(&cfg2way());
        fp.absorb_addr(Addr(0x120)); // single line: 0 conflicts
        p.apply_footprint(&fp);
        assert!(
            p.persistent_line(Addr(0x120)),
            "a single-line callee leaves its line persistent"
        );
        // A caller line in the same set ages by one per application.
        p.access(Addr(0x100));
        p.apply_footprint(&fp);
        p.apply_footprint(&fp);
        assert!(!p.persistent_line(Addr(0x100)), "two conflicts in 2 ways");
    }

    #[test]
    fn join_ors_poison_per_set() {
        let mut a = may();
        let fp = CacheFootprint::from_parts(
            cfg2way(),
            vec![SetFootprint::Any, SetFootprint::Lines(BTreeSet::new())],
        )
        .unwrap();
        a.apply_footprint(&fp);
        let b = may();
        let j = a.join(&b);
        assert!(j.is_poisoned_at(Addr(0x100)));
        assert!(!j.is_poisoned_at(Addr(0x110)));
        // Subsumption: the poisoned state is not more precise than the
        // clean one.
        assert!(!a.is_subsumed_by(&b));
        assert!(b.is_subsumed_by(&a));
        // Digests separate the poison masks.
        let digest = |c: &AbstractCache| {
            let mut h = wcet_isa::hash::StableHasher::new();
            c.digest_into(&mut h);
            h.finish()
        };
        assert_ne!(digest(&a), digest(&b));
    }

    #[test]
    fn full_footprint_equals_clobber() {
        // An all-Any footprint must behave exactly like the opaque-call
        // clobber, for every polarity.
        for polarity in [Polarity::Must, Polarity::May, Polarity::Persist] {
            let mut via_fp = AbstractCache::new(cfg2way(), polarity);
            via_fp.access(Addr(0x100));
            via_fp.access(Addr(0x110));
            let mut via_unknown = via_fp.clone();
            let mut fp = CacheFootprint::empty(&cfg2way());
            fp.absorb_unknown();
            via_fp.apply_footprint(&fp);
            via_unknown.access_unknown();
            assert_eq!(via_fp, via_unknown, "{polarity:?}");
        }
    }

    #[test]
    fn empty_footprint_is_identity() {
        for polarity in [Polarity::Must, Polarity::May, Polarity::Persist] {
            let mut c = AbstractCache::new(cfg2way(), polarity);
            c.access(Addr(0x100));
            let before = c.clone();
            c.apply_footprint(&CacheFootprint::empty(&cfg2way()));
            assert_eq!(c, before, "{polarity:?}");
        }
    }

    #[test]
    fn footprint_line_set_helper() {
        // Cross-check the Lines constructor used by the tests above.
        let mut fp = CacheFootprint::empty(&cfg2way());
        fp.absorb_addr(Addr(0x100));
        assert_eq!(
            fp.sets()[0],
            SetFootprint::Lines(BTreeSet::from([16])),
            "line 16 lands in set 0"
        );
    }
}
