//! Property tests tying the *abstract* must/may cache analysis to the
//! *concrete* LRU simulation: whenever the abstract domains classify an
//! access, the concrete cache must agree, for any access sequence and any
//! geometry. This is the Ferdinand-correctness of the whole cache story.

use proptest::prelude::*;

use wcet_isa::cache::{AccessKind, CacheConfig, LruCache};
use wcet_isa::Addr;
use wcet_micro::acs::{classify, AbstractCache, Classification, Polarity};

fn geometry() -> impl Strategy<Value = CacheConfig> {
    (0u32..3, 1usize..4, 2u32..6).prop_map(|(sets_log, assoc, line_log)| {
        CacheConfig::new(1 << sets_log, assoc, 1 << line_log, 1)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Along a single path (no joins), the abstract classification of
    /// each access must match the concrete hit/miss outcome exactly.
    #[test]
    fn prop_straight_line_classification_exact(
        config in geometry(),
        accesses in proptest::collection::vec(0u32..1024, 1..60),
    ) {
        let mut concrete = LruCache::new(config.clone());
        let mut must = AbstractCache::new(config.clone(), Polarity::Must);
        let mut may = AbstractCache::new(config, Polarity::May);
        for raw in accesses {
            let addr = Addr(raw * 4);
            let class = classify(&must, &may, addr);
            let outcome = concrete.access(addr);
            match class {
                Classification::AlwaysHit => {
                    prop_assert_eq!(outcome, AccessKind::Hit, "must-analysis lied at {}", addr);
                }
                Classification::AlwaysMiss => {
                    prop_assert_eq!(outcome, AccessKind::Miss, "may-analysis lied at {}", addr);
                }
                Classification::FirstMiss | Classification::NotClassified => {
                    // Never exact on a single path with only definite
                    // accesses — but allowed (it is merely imprecise).
                    // FirstMiss needs a persistence state, which
                    // `classify` does not consult.
                }
            }
            must.access(addr);
            may.access(addr);
        }
    }

    /// After joining two paths, the classification must stay sound for
    /// *both* concrete cache states.
    #[test]
    fn prop_join_sound_for_both_paths(
        config in geometry(),
        path_a in proptest::collection::vec(0u32..256, 0..25),
        path_b in proptest::collection::vec(0u32..256, 0..25),
        probes in proptest::collection::vec(0u32..256, 1..10),
    ) {
        let run = |path: &[u32]| {
            let mut concrete = LruCache::new(config.clone());
            let mut must = AbstractCache::new(config.clone(), Polarity::Must);
            let mut may = AbstractCache::new(config.clone(), Polarity::May);
            for &raw in path {
                let addr = Addr(raw * 4);
                concrete.access(addr);
                must.access(addr);
                may.access(addr);
            }
            (concrete, must, may)
        };
        let (conc_a, must_a, may_a) = run(&path_a);
        let (conc_b, must_b, may_b) = run(&path_b);
        let must_join = must_a.join(&must_b);
        let may_join = may_a.join(&may_b);

        for &raw in &probes {
            let addr = Addr(raw * 4);
            match classify(&must_join, &may_join, addr) {
                Classification::AlwaysHit => {
                    prop_assert!(conc_a.contains(addr), "join AH but path A misses {}", addr);
                    prop_assert!(conc_b.contains(addr), "join AH but path B misses {}", addr);
                }
                Classification::AlwaysMiss => {
                    prop_assert!(!conc_a.contains(addr), "join AM but path A hits {}", addr);
                    prop_assert!(!conc_b.contains(addr), "join AM but path B hits {}", addr);
                }
                Classification::FirstMiss | Classification::NotClassified => {}
            }
        }
    }

    /// An unknown-address access may concretely touch *anything*; the
    /// abstract state after `access_unknown` must stay sound no matter
    /// which address the concrete access actually used.
    #[test]
    fn prop_unknown_access_sound(
        config in geometry(),
        warmup in proptest::collection::vec(0u32..128, 0..20),
        hidden in 0u32..128,
        probes in proptest::collection::vec(0u32..128, 1..8),
    ) {
        let mut concrete = LruCache::new(config.clone());
        let mut must = AbstractCache::new(config.clone(), Polarity::Must);
        let mut may = AbstractCache::new(config, Polarity::May);
        for &raw in &warmup {
            let addr = Addr(raw * 4);
            concrete.access(addr);
            must.access(addr);
            may.access(addr);
        }
        // The analysis sees "unknown"; the machine touches `hidden`.
        concrete.access(Addr(hidden * 4));
        must.access_unknown();
        may.access_unknown();

        for &raw in &probes {
            let addr = Addr(raw * 4);
            match classify(&must, &may, addr) {
                Classification::AlwaysHit => {
                    prop_assert!(concrete.contains(addr), "AH after unknown at {}", addr);
                }
                Classification::AlwaysMiss => {
                    prop_assert!(!concrete.contains(addr), "AM after unknown at {}", addr);
                }
                Classification::FirstMiss | Classification::NotClassified => {}
            }
        }
    }

    /// Set-valued accesses (`access_one_of`) must stay sound for every
    /// concrete choice among the candidates.
    #[test]
    fn prop_one_of_access_sound(
        config in geometry(),
        warmup in proptest::collection::vec(0u32..64, 0..15),
        candidates in proptest::collection::vec(0u32..64, 1..4),
        pick in 0usize..4,
        probes in proptest::collection::vec(0u32..64, 1..6),
    ) {
        let chosen = candidates[pick % candidates.len()];
        let mut concrete = LruCache::new(config.clone());
        let mut must = AbstractCache::new(config.clone(), Polarity::Must);
        let mut may = AbstractCache::new(config, Polarity::May);
        for &raw in &warmup {
            let addr = Addr(raw * 4);
            concrete.access(addr);
            must.access(addr);
            may.access(addr);
        }
        let addrs: Vec<Addr> = candidates.iter().map(|&c| Addr(c * 4)).collect();
        concrete.access(Addr(chosen * 4));
        must.access_one_of(&addrs);
        may.access_one_of(&addrs);

        for &raw in &probes {
            let addr = Addr(raw * 4);
            match classify(&must, &may, addr) {
                Classification::AlwaysHit => {
                    prop_assert!(concrete.contains(addr), "AH but concrete misses {}", addr);
                }
                Classification::AlwaysMiss => {
                    prop_assert!(!concrete.contains(addr), "AM but concrete hits {}", addr);
                }
                Classification::FirstMiss | Classification::NotClassified => {}
            }
        }
    }
}
