//! Property tests of the abstract-pipeline domain algebra itself
//! (mirroring `acs_props.rs` for the cache domain): the join is an upper
//! bound and monotone, normalization only ever *covers* what it prunes
//! (a widened state still accounts for every input vector), the widening
//! cap actually bounds the width, and `digest` / `is_subsumed_by` agree
//! about state identity.

use proptest::prelude::*;

use wcet_isa::interp::MachineConfig;
use wcet_isa::IsaKind;
use wcet_micro::pipeline::{PipelineStates, WIDENING_CAP};

/// An arbitrary residual vector. The analysis only ever produces
/// nonincreasing triples (an instruction enters execute no later than
/// memory, memory no later than writeback), so the generator sorts the
/// raw coordinates descending.
fn resid() -> impl Strategy<Value = [u64; 3]> {
    (0u64..12, 0u64..12, 0u64..12).prop_map(|(a, b, c)| {
        let mut v = [a, b, c];
        v.sort_unstable_by(|x, y| y.cmp(x));
        v
    })
}

fn vectors() -> impl Strategy<Value = Vec<[u64; 3]>> {
    proptest::collection::vec(resid(), 0..2 * WIDENING_CAP)
}

/// An arbitrary normalized abstract state.
fn state() -> impl Strategy<Value = PipelineStates> {
    (vectors(), vectors()).prop_map(|(w, b)| PipelineStates::from_vectors(w, b))
}

/// A singleton state carrying exactly one residual vector in both
/// polarities — the shape a concrete machine observation takes.
fn singleton(v: [u64; 3]) -> PipelineStates {
    PipelineStates::from_vectors(vec![v], vec![v])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The join is an upper bound in the domain order, and the order is
    /// consistent with itself: both inputs are subsumed by the join, and
    /// subsumption is reflexive.
    #[test]
    fn prop_join_is_an_upper_bound(a in state(), b in state()) {
        let j = a.join(&b);
        prop_assert!(a.is_subsumed_by(&j), "A not below A ⊔ B");
        prop_assert!(b.is_subsumed_by(&j), "B not below A ⊔ B");
        prop_assert!(j.is_subsumed_by(&j), "order not reflexive");
    }

    /// Joining is commutative and idempotent on normalized states — the
    /// fixpoint's convergence check depends on both.
    #[test]
    fn prop_join_commutes_and_is_idempotent(a in state(), b in state()) {
        let ab = a.join(&b);
        let ba = b.join(&a);
        prop_assert_eq!(ab.digest(), ba.digest(), "join not commutative");
        prop_assert_eq!(
            a.join(&a).digest(), a.digest(),
            "join not idempotent"
        );
        prop_assert_eq!(
            ab.join(&ab).digest(), ab.digest(),
            "join of a join not a fixpoint"
        );
    }

    /// The join is monotone: growing one argument can only grow the
    /// result. Without this the worklist fixpoint could oscillate.
    #[test]
    fn prop_join_is_monotone(a in state(), b in state(), c in state()) {
        let bigger = a.join(&b); // a ⊑ bigger by the upper-bound property
        prop_assert!(
            a.join(&c).is_subsumed_by(&bigger.join(&c)),
            "join not monotone in its first argument"
        );
    }

    /// Normalization (pruning + the widening cap) only ever *covers*:
    /// every raw input vector is still accounted for by the normalized
    /// state, no matter how hard the cap collapsed it. This is the
    /// soundness side of widening — a pruned state must never claim less
    /// reachable warmth (worst) or more (best) than its inputs did.
    #[test]
    fn prop_normalization_covers_every_input_vector(
        raw in proptest::collection::vec(resid(), 1..4 * WIDENING_CAP),
    ) {
        let normalized = PipelineStates::from_vectors(raw.clone(), raw.clone());
        for v in raw {
            prop_assert!(
                singleton(v).is_subsumed_by(&normalized),
                "normalization dropped {v:?} without covering it"
            );
        }
    }

    /// The widening cap bounds the width: no join chain can grow a state
    /// past `WIDENING_CAP` vectors per polarity.
    #[test]
    fn prop_widening_cap_bounds_the_width(states in proptest::collection::vec(state(), 1..8)) {
        let mut acc = PipelineStates::drained();
        for s in &states {
            acc = acc.join(s);
            prop_assert!(
                acc.width() <= 2 * WIDENING_CAP,
                "width {} escaped the cap", acc.width()
            );
        }
    }

    /// `digest` and the order agree on identity: mutual subsumption is
    /// exactly digest equality on normalized states. The incremental
    /// cache keys context entries by the digest, so two states the
    /// analysis would treat identically must never key differently.
    #[test]
    fn prop_digest_and_order_agree(a in state(), b in state()) {
        let equal = a.is_subsumed_by(&b) && b.is_subsumed_by(&a);
        prop_assert_eq!(
            equal,
            a.digest() == b.digest(),
            "digest and order disagree: {:?} vs {:?}", a, b
        );
    }

    /// `drained` is the bottom of the reachable order: it is subsumed by
    /// `unknown` on every machine (the unknown pipe covers the drained
    /// one), and joining anything with `drained` changes nothing about
    /// coverage of that thing.
    #[test]
    fn prop_drained_below_unknown(s in state()) {
        for isa in [IsaKind::House, IsaKind::Rv32i] {
            for machine in [
                MachineConfig::simple_for(isa),
                MachineConfig::with_caches_for(isa),
            ] {
                prop_assert!(
                    PipelineStates::drained().is_subsumed_by(&PipelineStates::unknown(&machine)),
                    "drained not below unknown on {}", isa.name()
                );
            }
        }
        prop_assert!(s.is_subsumed_by(&s.join(&PipelineStates::drained())));
    }
}
