//! Property tests of the abstract-cache domain algebra itself: joins can
//! only *weaken* classifications (a merge never invents an always-hit,
//! always-miss, or first-miss claim that one of the incoming paths did
//! not support), and `digest_into` / `is_subsumed_by` agree about the
//! per-set poison state — including the persistence domain.

use proptest::prelude::*;

use wcet_isa::cache::CacheConfig;
use wcet_isa::hash::StableHasher;
use wcet_isa::Addr;
use wcet_micro::acs::{classify_with_persist, AbstractCache, Classification, Polarity};
use wcet_micro::footprint::CacheFootprint;

fn geometry() -> impl Strategy<Value = CacheConfig> {
    (0u32..3, 1usize..4).prop_map(|(sets_log, assoc)| CacheConfig::new(1 << sets_log, assoc, 16, 1))
}

/// One abstract step of the analysis, as the fixpoint would apply it.
#[derive(Debug, Clone)]
enum Op {
    Access(u32),
    OneOf(Vec<u32>),
    Unknown,
    /// A summarized call touching the lines (and, with `any_set`, one
    /// fully unknown set).
    Footprint(Vec<u32>, bool),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..64).prop_map(Op::Access),
            (0u32..64).prop_map(Op::Access),
            (0u32..64).prop_map(Op::Access),
            proptest::collection::vec(0u32..64, 1..4).prop_map(Op::OneOf),
            Just(Op::Unknown),
            (proptest::collection::vec(0u32..64, 0..4), any::<bool>())
                .prop_map(|(ls, any_set)| Op::Footprint(ls, any_set)),
        ],
        0..20,
    )
}

/// Runs one path through a must/may/persist triple.
fn run_path(config: &CacheConfig, path: &[Op]) -> [AbstractCache; 3] {
    let mut states = [
        AbstractCache::new(config.clone(), Polarity::Must),
        AbstractCache::new(config.clone(), Polarity::May),
        AbstractCache::new(config.clone(), Polarity::Persist),
    ];
    for op in path {
        for s in &mut states {
            match op {
                Op::Access(raw) => s.access(Addr(raw * 4)),
                Op::OneOf(raws) => {
                    let addrs: Vec<Addr> = raws.iter().map(|&r| Addr(r * 4)).collect();
                    s.access_one_of(&addrs);
                }
                Op::Unknown => s.access_unknown(),
                Op::Footprint(lines, any_set) => {
                    let mut fp = CacheFootprint::empty(config);
                    for &l in lines {
                        fp.absorb_addr(Addr(l * 4));
                    }
                    if *any_set {
                        // Degrade one whole set: a bounded-but-wide
                        // callee range.
                        let span = config.sets as u32 * config.line_bytes;
                        fp.absorb_range(Addr(0), Addr(span.saturating_mul(2)));
                    }
                    s.apply_footprint(&fp);
                }
            }
        }
    }
    states
}

fn digest(c: &AbstractCache) -> u64 {
    let mut h = StableHasher::new();
    c.digest_into(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Joining two paths can only *weaken* a classification: if the join
    /// claims always-hit, always-miss, or first-miss at an address, both
    /// incoming paths must already support that claim (or a strictly
    /// stronger one). A join that invents a guarantee would let a merge
    /// point manufacture soundness out of thin air.
    #[test]
    fn prop_join_only_weakens_classifications(
        config in geometry(),
        path_a in ops(),
        path_b in ops(),
        probes in proptest::collection::vec(0u32..64, 1..10),
    ) {
        let [must_a, may_a, per_a] = run_path(&config, &path_a);
        let [must_b, may_b, per_b] = run_path(&config, &path_b);
        let must_j = must_a.join(&must_b);
        let may_j = may_a.join(&may_b);
        let per_j = per_a.join(&per_b);

        for &raw in &probes {
            let addr = Addr(raw * 4);
            let a = classify_with_persist(&must_a, &may_a, Some(&per_a), addr);
            let b = classify_with_persist(&must_b, &may_b, Some(&per_b), addr);
            let j = classify_with_persist(&must_j, &may_j, Some(&per_j), addr);
            match j {
                Classification::AlwaysHit => {
                    prop_assert_eq!(a, Classification::AlwaysHit, "join invented AH at {}", addr);
                    prop_assert_eq!(b, Classification::AlwaysHit, "join invented AH at {}", addr);
                }
                Classification::AlwaysMiss => {
                    prop_assert_eq!(a, Classification::AlwaysMiss, "join invented AM at {}", addr);
                    prop_assert_eq!(b, Classification::AlwaysMiss, "join invented AM at {}", addr);
                }
                Classification::FirstMiss => {
                    // First-miss is compatible with any branch claim
                    // except invention from nothing: the union join can
                    // only track a line one of the paths possibly
                    // loaded (an untracked line means "definitely not
                    // loaded in scope", and untracked ∪ untracked must
                    // stay untracked).
                    prop_assert!(
                        per_a.contains_line(addr) || per_b.contains_line(addr),
                        "join tracked {} though neither path loaded it (A {:?}, B {:?})",
                        addr, a, b
                    );
                }
                Classification::NotClassified => {}
            }
        }
    }

    /// The join is an upper bound in the domain order, and the order is
    /// consistent with itself: both inputs are subsumed by the join.
    #[test]
    fn prop_join_is_an_upper_bound(
        config in geometry(),
        path_a in ops(),
        path_b in ops(),
    ) {
        let states_a = run_path(&config, &path_a);
        let states_b = run_path(&config, &path_b);
        for (a, b) in states_a.iter().zip(&states_b) {
            let j = a.join(b);
            prop_assert!(a.is_subsumed_by(&j), "A not below A ⊔ B");
            prop_assert!(b.is_subsumed_by(&j), "B not below A ⊔ B");
            prop_assert!(j.is_subsumed_by(&j), "order not reflexive");
        }
    }

    /// `digest_into` and `is_subsumed_by` agree on the poison state:
    /// poisoning a set always changes the digest, always makes the state
    /// strictly less precise, and never affects the *other* polarity
    /// instances' behavior through the order.
    #[test]
    fn prop_digest_and_order_agree_on_poison(
        config in geometry(),
        path in ops(),
    ) {
        let states = run_path(&config, &path);
        for s in &states {
            let mut poisoned = s.clone();
            poisoned.access_unknown();
            // Join with the weakened twin reproduces the twin's poison
            // bits (join ORs them), so digests agree with the order on
            // both sides.
            let j = s.join(&poisoned);
            prop_assert_eq!(j.is_poisoned(), poisoned.is_poisoned());
            prop_assert!(s.is_subsumed_by(&poisoned), "weakening is monotone");
            if poisoned == *s {
                // The unknown access changed nothing (an empty state, or
                // an already fully-poisoned may state): the order and
                // the digest must both see equality.
                prop_assert!(poisoned.is_subsumed_by(s));
                prop_assert_eq!(digest(s), digest(&poisoned));
            } else {
                // Strictly weakened (guarantees dropped, ages clamped,
                // or poison bits newly set): the twin must not count as
                // at-least-as-precise, and the digest must separate the
                // states exactly where the order does.
                prop_assert!(!poisoned.is_subsumed_by(s));
                prop_assert_ne!(digest(s), digest(&poisoned));
            }
        }
    }
}
