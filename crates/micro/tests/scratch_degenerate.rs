use wcet_analysis::analyze_function;
use wcet_cfg::block::Terminator;
use wcet_cfg::graph::{reconstruct, TargetResolver};
use wcet_isa::asm::assemble;
use wcet_isa::interp::{Interpreter, MachineConfig};
use wcet_micro::blocktime::AccessOverrides;
use wcet_micro::pipeline;

#[test]
fn degenerate_branch_to_next_is_sound() {
    // Branch always taken, target == fall-through: BTFNT predicts
    // not-taken (forward), so every execution mispredicts and drains.
    let src = "main: fdiv f1, f1, f1\n beq r0, r0, next\nnext: fdiv f2, f2, f2\n fdiv f3, f3, f3\n halt";
    let image = assemble(src).unwrap();
    let p = reconstruct(&image, &TargetResolver::empty()).unwrap();
    let fa = analyze_function(&p, p.entry, &image);
    let machine = MachineConfig { pipeline: true, ..MachineConfig::simple() };
    let t = pipeline::analyze(&fa, &machine, &AccessOverrides::none(), None, None, None);
    let mut interp = Interpreter::with_config(&image, machine.clone());
    let observed = interp.run(10_000).unwrap().cycles;
    let cfg = fa.cfg();
    // Path: every block once, plus the (WCET-charged) mispredict penalty.
    let mut bound = u64::from(machine.timing.mispredict_penalty);
    for (id, b) in cfg.iter() {
        eprintln!("block {:?} term {:?} wcet {} bcet {}", id, b.term, t.times.wcet(id), t.times.bcet(id));
        bound += t.times.wcet(id);
    }
    let _ = Terminator::Halt;
    assert!(bound >= observed, "UNSOUND: bound {bound} < observed {observed}");
}
