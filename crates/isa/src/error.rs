//! Error types shared by the ISA crate.

use std::fmt;

use crate::inst::Addr;

/// Errors produced by encoding, decoding, assembling, or executing programs.
#[derive(Debug, Clone, PartialEq)]
pub enum IsaError {
    /// An immediate operand does not fit the 16-bit encoding field.
    ImmediateOutOfRange {
        /// The offending value.
        value: i64,
        /// Instruction address (if known at encode time).
        at: Option<Addr>,
    },
    /// A control-flow displacement does not fit its encoding field.
    DisplacementOutOfRange {
        /// Source instruction address.
        from: Addr,
        /// Requested target.
        to: Addr,
    },
    /// A control-flow target is not 4-byte aligned.
    MisalignedTarget {
        /// The unaligned target.
        target: Addr,
    },
    /// The instruction shape exists at the semantic level but has no
    /// binary encoding in the selected ISA (e.g. `sel`, floating point,
    /// or `alloc` on the RV32I subset backend).
    Unencodable {
        /// Name of the ISA that rejected the instruction.
        isa: &'static str,
        /// Human-readable description of the instruction shape.
        what: &'static str,
        /// Instruction address (if known at encode time).
        at: Option<Addr>,
    },
    /// The decoder met an opcode it does not know.
    UnknownOpcode {
        /// The raw 6-bit opcode.
        opcode: u8,
        /// The word address being decoded.
        at: Addr,
    },
    /// The decoder met an invalid sub-field (function code, register index).
    InvalidField {
        /// Human-readable description of the field.
        field: &'static str,
        /// The raw field value.
        value: u32,
        /// The word address being decoded.
        at: Addr,
    },
    /// The assembler rejected a line of input.
    Parse {
        /// 1-based source line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An assembler label was referenced but never defined.
    UndefinedLabel {
        /// The label name.
        name: String,
        /// 1-based source line of the reference.
        line: usize,
    },
    /// An assembler label was defined twice.
    DuplicateLabel {
        /// The label name.
        name: String,
        /// 1-based source line of the second definition.
        line: usize,
    },
    /// The interpreter fetched from an address holding no instruction.
    BadFetch {
        /// The program counter value.
        pc: Addr,
    },
    /// The interpreter accessed unmapped or forbidden memory.
    MemoryFault {
        /// The faulting data address.
        addr: Addr,
        /// The program counter of the access.
        pc: Addr,
    },
    /// The interpreter exceeded its fuel budget without halting.
    FuelExhausted {
        /// The instruction budget that was exhausted.
        budget: u64,
    },
    /// The heap allocator ran out of space.
    OutOfHeap {
        /// Requested size in bytes.
        requested: u32,
        /// The program counter of the allocation.
        pc: Addr,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::ImmediateOutOfRange { value, at } => match at {
                Some(at) => write!(f, "immediate {value} out of 16-bit range at {at}"),
                None => write!(f, "immediate {value} out of 16-bit range"),
            },
            IsaError::DisplacementOutOfRange { from, to } => {
                write!(
                    f,
                    "control-flow displacement from {from} to {to} out of range"
                )
            }
            IsaError::MisalignedTarget { target } => {
                write!(f, "control-flow target {target} is not 4-byte aligned")
            }
            IsaError::Unencodable { isa, what, at } => match at {
                Some(at) => write!(f, "`{what}` has no encoding on the {isa} ISA at {at}"),
                None => write!(f, "`{what}` has no encoding on the {isa} ISA"),
            },
            IsaError::UnknownOpcode { opcode, at } => {
                write!(f, "unknown opcode 0x{opcode:x} at {at}")
            }
            IsaError::InvalidField { field, value, at } => {
                write!(f, "invalid {field} field value {value} at {at}")
            }
            IsaError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            IsaError::UndefinedLabel { name, line } => {
                write!(f, "undefined label `{name}` referenced at line {line}")
            }
            IsaError::DuplicateLabel { name, line } => {
                write!(f, "duplicate label `{name}` at line {line}")
            }
            IsaError::BadFetch { pc } => write!(f, "instruction fetch from unmapped address {pc}"),
            IsaError::MemoryFault { addr, pc } => {
                write!(f, "memory fault at data address {addr} (pc {pc})")
            }
            IsaError::FuelExhausted { budget } => {
                write!(f, "execution exceeded fuel budget of {budget} instructions")
            }
            IsaError::OutOfHeap { requested, pc } => {
                write!(f, "heap exhausted allocating {requested} bytes (pc {pc})")
            }
        }
    }
}

impl std::error::Error for IsaError {}
