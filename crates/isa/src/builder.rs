//! Programmatic program construction with symbolic labels.
//!
//! Workload generators and tests build binaries through this API instead of
//! assembling text. Control-flow targets are symbolic until
//! [`ProgramBuilder::build`] resolves them, encodes every instruction, and
//! links the final [`Image`].
//!
//! # Example
//!
//! ```
//! use wcet_isa::builder::ProgramBuilder;
//! use wcet_isa::{AluOp, Cond, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new(0x1000);
//! let (r1, r0) = (Reg::new(1), Reg::ZERO);
//! b.label("main");
//! b.li(r1, 10);
//! b.label("loop");
//! b.alui(AluOp::Sub, r1, r1, 1);
//! b.branch(Cond::Ne, r1, r0, "loop");
//! b.halt();
//! let image = b.build("main")?;
//! assert_eq!(image.symbol("loop"), Some(wcet_isa::Addr(0x1004)));
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;

use crate::arch::IsaKind;
use crate::error::IsaError;
use crate::image::{Image, Segment};
use crate::inst::{Addr, AluOp, Cond, FCond, FReg, Inst, Reg, Width};

/// An instruction whose control-flow target may still be symbolic.
#[derive(Debug, Clone)]
enum Pending {
    /// Fully concrete instruction.
    Done(Inst),
    /// Conditional branch to a label.
    Branch(Cond, Reg, Reg, String),
    /// Floating-point branch to a label.
    FBranch(FCond, FReg, FReg, String),
    /// Unconditional jump to a label.
    Jump(String),
    /// Call to a label.
    Call(String),
    /// Tail of `la`: the final instruction of a fixed-slot constant-load
    /// sequence whose value is a label address. The preceding placeholder
    /// slots (one `lui` on the house ISA, four on RV32I) are patched once
    /// the label resolves.
    FixupLa(Reg, String),
}

/// Builds a binary [`Image`] instruction by instruction.
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    isa: IsaKind,
    base: Addr,
    pending: Vec<Pending>,
    labels: BTreeMap<String, usize>,
    data: Vec<Segment>,
}

impl ProgramBuilder {
    /// Starts a builder for the house ISA whose first instruction will
    /// live at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 4-byte aligned.
    #[must_use]
    pub fn new(base: u32) -> ProgramBuilder {
        ProgramBuilder::new_for(IsaKind::House, base)
    }

    /// Starts a builder targeting `isa`. The semantic helpers are shared;
    /// only constant synthesis (`li`/`la`), `subi` normalization, and the
    /// final encoding differ per backend.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 4-byte aligned.
    #[must_use]
    pub fn new_for(isa: IsaKind, base: u32) -> ProgramBuilder {
        assert!(base.is_multiple_of(4), "code base must be 4-byte aligned");
        ProgramBuilder {
            isa,
            base: Addr(base),
            pending: Vec::new(),
            labels: BTreeMap::new(),
            data: Vec::new(),
        }
    }

    /// The backend this builder encodes for.
    #[must_use]
    pub fn isa(&self) -> IsaKind {
        self.isa
    }

    /// Address the next emitted instruction will occupy.
    #[must_use]
    pub fn here(&self) -> Addr {
        self.base.offset(4 * self.pending.len() as i64)
    }

    /// Binds `name` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (programmatic duplicate labels
    /// are always bugs; the text assembler reports them as errors instead).
    pub fn label(&mut self, name: &str) -> &mut Self {
        let prev = self.labels.insert(name.to_owned(), self.pending.len());
        assert!(prev.is_none(), "duplicate label `{name}`");
        self
    }

    /// Emits a concrete instruction.
    pub fn inst(&mut self, inst: Inst) -> &mut Self {
        self.pending.push(Pending::Done(inst));
        self
    }

    // ----- Frequent instruction helpers -------------------------------

    /// `rd = rs1 op rs2`.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Alu { op, rd, rs1, rs2 })
    }

    /// `rd = rs1 op imm`. On RV32I, `subi` is normalized to `addi` with
    /// the negated immediate (there is no immediate subtract).
    pub fn alui(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        if self.isa == IsaKind::Rv32i && op == AluOp::Sub {
            return self.inst(Inst::AluImm {
                op: AluOp::Add,
                rd,
                rs1,
                imm: imm.wrapping_neg(),
            });
        }
        self.inst(Inst::AluImm { op, rd, rs1, imm })
    }

    /// Register move (`rd = rs`), encoded as `add rd, rs, r0`.
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.alu(AluOp::Add, rd, rs, Reg::ZERO)
    }

    /// Loads an arbitrary 32-bit constant, expanding to the backend's
    /// shortest synthesis sequence: on the house ISA `addi` for small
    /// values and `lui`(+`ori`) otherwise; on RV32I `addi`, `lui`(+`ori`),
    /// a shifted `addi`+`slli` pair, or the general five-instruction
    /// shift chain (the 12-bit immediates and 16-bit-granular `lui` cover
    /// less ground). All sequences are constant-foldable by the value
    /// analysis, so synthesized addresses stay precise.
    pub fn li(&mut self, rd: Reg, value: u32) -> &mut Self {
        match self.isa {
            IsaKind::House => {
                let signed = value as i32;
                if (-32768..=32767).contains(&signed) {
                    self.alui(AluOp::Add, rd, Reg::ZERO, signed)
                } else {
                    self.inst(Inst::Lui {
                        rd,
                        imm: value >> 16,
                    });
                    if value & 0xffff != 0 {
                        self.alui(AluOp::Or, rd, rd, (value & 0xffff) as i32);
                    }
                    self
                }
            }
            IsaKind::Rv32i => self.li_rv32(rd, value),
        }
    }

    fn li_rv32(&mut self, rd: Reg, value: u32) -> &mut Self {
        let signed = value as i32;
        if (-2048..=2047).contains(&signed) {
            return self.alui(AluOp::Add, rd, Reg::ZERO, signed);
        }
        if value & 0xffff == 0 {
            return self.inst(Inst::Lui {
                rd,
                imm: value >> 16,
            });
        }
        if value & 0xffff <= 0x7ff && value >> 16 != 0 {
            self.inst(Inst::Lui {
                rd,
                imm: value >> 16,
            });
            return self.alui(AluOp::Or, rd, rd, (value & 0xffff) as i32);
        }
        let tz = value.trailing_zeros();
        if value >> tz <= 2047 {
            self.alui(AluOp::Add, rd, Reg::ZERO, (value >> tz) as i32);
            return self.alui(AluOp::Shl, rd, rd, tz as i32);
        }
        // General case: build the constant 10 + 11 + 11 bits at a time.
        self.alui(AluOp::Add, rd, Reg::ZERO, (value >> 22) as i32);
        self.alui(AluOp::Shl, rd, rd, 11);
        self.alui(AluOp::Or, rd, rd, ((value >> 11) & 0x7ff) as i32);
        self.alui(AluOp::Shl, rd, rd, 11);
        self.alui(AluOp::Or, rd, rd, (value & 0x7ff) as i32)
    }

    /// `rd = mem[base + offset]` (word).
    pub fn lw(&mut self, rd: Reg, base: Reg, offset: i32) -> &mut Self {
        self.inst(Inst::Load {
            width: Width::Word,
            rd,
            base,
            offset,
        })
    }

    /// `mem[base + offset] = rs` (word).
    pub fn sw(&mut self, rs: Reg, base: Reg, offset: i32) -> &mut Self {
        self.inst(Inst::Store {
            width: Width::Word,
            rs,
            base,
            offset,
        })
    }

    /// Conditional branch to a label.
    pub fn branch(&mut self, cond: Cond, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.pending
            .push(Pending::Branch(cond, rs1, rs2, label.to_owned()));
        self
    }

    /// Floating-point branch to a label.
    pub fn fbranch(&mut self, cond: FCond, fs1: FReg, fs2: FReg, label: &str) -> &mut Self {
        self.pending
            .push(Pending::FBranch(cond, fs1, fs2, label.to_owned()));
        self
    }

    /// Unconditional jump to a label.
    pub fn jump(&mut self, label: &str) -> &mut Self {
        self.pending.push(Pending::Jump(label.to_owned()));
        self
    }

    /// Call to a label.
    pub fn call(&mut self, label: &str) -> &mut Self {
        self.pending.push(Pending::Call(label.to_owned()));
        self
    }

    /// Indirect call through a register (a function-pointer call).
    pub fn callr(&mut self, rs: Reg) -> &mut Self {
        self.inst(Inst::CallInd { rs })
    }

    /// Indirect jump through a register.
    pub fn jr(&mut self, rs: Reg) -> &mut Self {
        self.inst(Inst::JumpInd { rs })
    }

    /// Return through the link register.
    pub fn ret(&mut self) -> &mut Self {
        self.inst(Inst::Ret)
    }

    /// Predicated select `rd = rc != 0 ? rt : rf`.
    pub fn sel(&mut self, rd: Reg, rc: Reg, rt: Reg, rf: Reg) -> &mut Self {
        self.inst(Inst::Select { rd, rc, rt, rf })
    }

    /// Heap allocation `rd = alloc(rs)`.
    pub fn alloc(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.inst(Inst::Alloc { rd, rs })
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.inst(Inst::Nop)
    }

    /// Machine stop.
    pub fn halt(&mut self) -> &mut Self {
        self.inst(Inst::Halt)
    }

    /// Loads the address of a label into a register. The label must
    /// already be bound or be bound before `build`.
    ///
    /// The expansion is a *fixed* number of slots per backend (labels bind
    /// to instruction indices, so the width cannot depend on the address
    /// value): `lui`+`ori` (two slots) on the house ISA, the general
    /// five-slot shift chain on RV32I.
    pub fn la(&mut self, rd: Reg, label: &str) -> &mut Self {
        // Deferred: placeholder slots are patched in `build` once the
        // label resolves; `FixupLa` marks the final slot of the group.
        match self.isa {
            IsaKind::House => {
                self.pending.push(Pending::Done(Inst::Lui { rd, imm: 0 }));
            }
            IsaKind::Rv32i => {
                for _ in 0..4 {
                    self.pending.push(Pending::Done(Inst::Nop));
                }
            }
        }
        self.pending.push(Pending::FixupLa(rd, label.to_owned()));
        self
    }

    /// Adds an initialized data segment of 32-bit words at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 4-byte aligned.
    pub fn data_words(&mut self, base: u32, words: &[u32]) -> &mut Self {
        assert!(base.is_multiple_of(4), "data base must be 4-byte aligned");
        self.data.push(Segment::from_words(Addr(base), words));
        self
    }

    /// Resolves labels, encodes, and links the image with entry point at
    /// label `entry`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UndefinedLabel`] for unresolved references and
    /// propagates encoding failures (e.g. branch reach).
    pub fn build(&self, entry: &str) -> Result<Image, IsaError> {
        let addr_of = |label: &str| -> Result<Addr, IsaError> {
            self.labels
                .get(label)
                .map(|&idx| self.base.offset(4 * idx as i64))
                .ok_or_else(|| IsaError::UndefinedLabel {
                    name: label.to_owned(),
                    line: 0,
                })
        };

        let mut insts = Vec::with_capacity(self.pending.len());
        for p in &self.pending {
            let inst = match p {
                Pending::Done(inst) => *inst,
                Pending::Branch(cond, rs1, rs2, label) => Inst::Branch {
                    cond: *cond,
                    rs1: *rs1,
                    rs2: *rs2,
                    target: addr_of(label)?,
                },
                Pending::FBranch(cond, fs1, fs2, label) => Inst::FBranch {
                    cond: *cond,
                    fs1: *fs1,
                    fs2: *fs2,
                    target: addr_of(label)?,
                },
                Pending::Jump(label) => Inst::Jump {
                    target: addr_of(label)?,
                },
                Pending::Call(label) => Inst::Call {
                    target: addr_of(label)?,
                },
                Pending::FixupLa(rd, label) => {
                    let (rd, v) = (*rd, addr_of(label)?.0);
                    let or_imm = |imm: i32| Inst::AluImm {
                        op: AluOp::Or,
                        rd,
                        rs1: rd,
                        imm,
                    };
                    match self.isa {
                        IsaKind::House => {
                            // Patch the preceding `lui` with the high half.
                            let lui_idx = insts.len() - 1;
                            insts[lui_idx] = Inst::Lui { rd, imm: v >> 16 };
                            or_imm((v & 0xffff) as i32)
                        }
                        IsaKind::Rv32i => {
                            // Patch the four placeholder slots with the
                            // 10+11+11-bit shift chain; this slot is the
                            // final `ori`.
                            let shl = Inst::AluImm {
                                op: AluOp::Shl,
                                rd,
                                rs1: rd,
                                imm: 11,
                            };
                            let n = insts.len();
                            insts[n - 4] = Inst::AluImm {
                                op: AluOp::Add,
                                rd,
                                rs1: Reg::ZERO,
                                imm: (v >> 22) as i32,
                            };
                            insts[n - 3] = shl;
                            insts[n - 2] = or_imm(((v >> 11) & 0x7ff) as i32);
                            insts[n - 1] = shl;
                            or_imm((v & 0x7ff) as i32)
                        }
                    }
                }
            };
            insts.push(inst);
        }

        let words = self.isa.encode_all(&insts, self.base)?;
        let mut image = Image::from_code_words_for(self.isa, addr_of(entry)?, self.base, &words);
        image.data = self.data.clone();
        image.symbols = self
            .labels
            .iter()
            .map(|(name, &idx)| (name.clone(), self.base.offset(4 * idx as i64)))
            .collect();
        Ok(image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new(0x1000);
        b.label("start");
        b.jump("end"); // forward
        b.label("mid");
        b.nop();
        b.jump("mid"); // backward
        b.label("end");
        b.halt();
        let image = b.build("start").unwrap();
        let code = image.decode_code().unwrap();
        assert_eq!(
            code[0].1,
            Inst::Jump {
                target: Addr(0x100c)
            }
        );
        assert_eq!(
            code[2].1,
            Inst::Jump {
                target: Addr(0x1004)
            }
        );
    }

    #[test]
    fn undefined_label_reported() {
        let mut b = ProgramBuilder::new(0x1000);
        b.label("main");
        b.jump("nowhere");
        assert!(matches!(
            b.build("main"),
            Err(IsaError::UndefinedLabel { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut b = ProgramBuilder::new(0x1000);
        b.label("x");
        b.label("x");
    }

    #[test]
    fn li_small_and_large() {
        let mut b = ProgramBuilder::new(0);
        b.label("e");
        b.li(Reg::new(1), 7); // 1 inst
        b.li(Reg::new(2), 0xdead_beef); // 2 insts
        b.li(Reg::new(3), 0xffff_0000); // lui only
        b.halt();
        let image = b.build("e").unwrap();
        assert_eq!(image.code_len(), 5);
    }

    #[test]
    fn rv32_subi_normalizes_to_addi() {
        let mut b = ProgramBuilder::new_for(IsaKind::Rv32i, 0x1000);
        b.label("main");
        b.alui(AluOp::Sub, Reg::new(1), Reg::new(1), 1);
        b.halt();
        let image = b.build("main").unwrap();
        assert_eq!(
            image.decode_code().unwrap()[0].1,
            Inst::AluImm {
                op: AluOp::Add,
                rd: Reg::new(1),
                rs1: Reg::new(1),
                imm: -1
            }
        );
    }

    #[test]
    fn rv32_li_synthesizes_exact_constants() {
        use crate::interp::{Interpreter, MachineConfig};
        let values = [
            0u32,
            7,
            2047,
            0x800,
            0x5000,
            0xffff,
            0x1_0000,
            0xf000_0000,
            0xdead_beef,
            u32::MAX,
        ];
        let mut b = ProgramBuilder::new_for(IsaKind::Rv32i, 0x1000);
        b.label("main");
        for (i, &v) in values.iter().enumerate() {
            b.li(Reg::new(1 + i as u8 % 12), v);
        }
        b.halt();
        let image = b.build("main").unwrap();
        let mut interp =
            Interpreter::with_config(&image, MachineConfig::simple_for(IsaKind::Rv32i));
        interp.run(10_000).unwrap();
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(interp.reg(Reg::new(1 + i as u8 % 12)), v, "li 0x{v:x}");
        }
    }

    #[test]
    fn rv32_la_loads_label_address() {
        let mut b = ProgramBuilder::new_for(IsaKind::Rv32i, 0x1000);
        b.label("main");
        b.la(Reg::new(1), "target");
        b.halt();
        b.label("target");
        b.nop();
        let image = b.build("main").unwrap();
        let target = image.symbol("target").unwrap();
        // Fixed five-slot expansion: 5 (la) + 1 (halt) + 1 (nop).
        assert_eq!(image.code_len(), 7);
        assert_eq!(target, Addr(0x1000 + 5 * 4 + 4));
        use crate::interp::{Interpreter, MachineConfig};
        let mut interp =
            Interpreter::with_config(&image, MachineConfig::simple_for(IsaKind::Rv32i));
        interp.run(10_000).unwrap();
        assert_eq!(interp.reg(Reg::new(1)), target.0);
    }

    #[test]
    fn la_loads_label_address() {
        let mut b = ProgramBuilder::new(0x0010_0000);
        b.label("main");
        b.la(Reg::new(1), "target");
        b.halt();
        b.label("target");
        b.nop();
        let image = b.build("main").unwrap();
        let target = image.symbol("target").unwrap();
        let code = image.decode_code().unwrap();
        assert_eq!(
            code[0].1,
            Inst::Lui {
                rd: Reg::new(1),
                imm: target.0 >> 16
            }
        );
        assert_eq!(
            code[1].1,
            Inst::AluImm {
                op: AluOp::Or,
                rd: Reg::new(1),
                rs1: Reg::new(1),
                imm: (target.0 & 0xffff) as i32
            }
        );
    }
}
