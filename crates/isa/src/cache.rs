//! Cache geometry and a concrete LRU cache simulator.
//!
//! The geometry ([`CacheConfig`]) is shared between the *concrete*
//! simulation here (used by the interpreter to produce observed execution
//! times) and the *abstract* must/may analysis in `wcet-micro` (used by the
//! static analyzer). Keeping one definition of the hardware is what makes
//! "observed ≤ bound" a meaningful check.

use crate::inst::Addr;

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of cache sets (must be a power of two).
    pub sets: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: u32,
    /// Latency of a hit, in cycles.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// A small instruction cache: 16 sets × 2 ways × 16-byte lines (512 B).
    #[must_use]
    pub fn small_icache() -> CacheConfig {
        CacheConfig {
            sets: 16,
            assoc: 2,
            line_bytes: 16,
            hit_latency: 1,
        }
    }

    /// A small data cache: 8 sets × 2 ways × 16-byte lines (256 B).
    #[must_use]
    pub fn small_dcache() -> CacheConfig {
        CacheConfig {
            sets: 8,
            assoc: 2,
            line_bytes: 16,
            hit_latency: 1,
        }
    }

    /// Creates a config, validating the geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `line_bytes` is not a power of two, or if
    /// `assoc` is zero.
    #[must_use]
    pub fn new(sets: usize, assoc: usize, line_bytes: u32, hit_latency: u32) -> CacheConfig {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(assoc > 0, "associativity must be positive");
        CacheConfig {
            sets,
            assoc,
            line_bytes,
            hit_latency,
        }
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u32 {
        self.sets as u32 * self.assoc as u32 * self.line_bytes
    }

    /// The line-aligned tag of an address (line number across the whole
    /// address space).
    #[must_use]
    pub fn line_of(&self, addr: Addr) -> u32 {
        addr.0 / self.line_bytes
    }

    /// The set index an address maps to.
    #[must_use]
    pub fn set_of(&self, addr: Addr) -> usize {
        (self.line_of(addr) as usize) % self.sets
    }
}

/// Result of a concrete cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled.
    Miss,
}

/// A concrete set-associative LRU cache.
///
/// # Example
///
/// ```
/// use wcet_isa::cache::{AccessKind, CacheConfig, LruCache};
/// use wcet_isa::Addr;
///
/// let mut cache = LruCache::new(CacheConfig::small_icache());
/// assert_eq!(cache.access(Addr(0x100)), AccessKind::Miss);
/// assert_eq!(cache.access(Addr(0x104)), AccessKind::Hit); // same line
/// ```
#[derive(Debug, Clone)]
pub struct LruCache {
    config: CacheConfig,
    /// Per set: line tags in LRU order, most recently used first.
    sets: Vec<Vec<u32>>,
}

impl LruCache {
    /// Creates an empty (cold) cache.
    #[must_use]
    pub fn new(config: CacheConfig) -> LruCache {
        let sets = vec![Vec::with_capacity(config.assoc); config.sets];
        LruCache { config, sets }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accesses `addr`, updating LRU state, and reports hit or miss.
    pub fn access(&mut self, addr: Addr) -> AccessKind {
        let line = self.config.line_of(addr);
        let set = &mut self.sets[(line as usize) % self.config.sets];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            let tag = set.remove(pos);
            set.insert(0, tag);
            AccessKind::Hit
        } else {
            set.insert(0, line);
            set.truncate(self.config.assoc);
            AccessKind::Miss
        }
    }

    /// Returns true if `addr`'s line is currently cached (no LRU update).
    #[must_use]
    pub fn contains(&self, addr: Addr) -> bool {
        let line = self.config.line_of(addr);
        self.sets[(line as usize) % self.config.sets].contains(&line)
    }

    /// Invalidates the entire cache (cold restart).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_eviction_order() {
        // Direct-mapped-ish: 1 set, 2 ways, 4-byte lines.
        let mut c = LruCache::new(CacheConfig::new(1, 2, 4, 1));
        assert_eq!(c.access(Addr(0)), AccessKind::Miss);
        assert_eq!(c.access(Addr(4)), AccessKind::Miss);
        assert_eq!(c.access(Addr(0)), AccessKind::Hit); // 0 is now MRU
        assert_eq!(c.access(Addr(8)), AccessKind::Miss); // evicts 4 (LRU)
        assert_eq!(c.access(Addr(0)), AccessKind::Hit);
        assert_eq!(c.access(Addr(4)), AccessKind::Miss); // was evicted
    }

    #[test]
    fn set_mapping() {
        let cfg = CacheConfig::new(4, 1, 16, 1);
        assert_eq!(cfg.set_of(Addr(0)), 0);
        assert_eq!(cfg.set_of(Addr(16)), 1);
        assert_eq!(cfg.set_of(Addr(64)), 0); // wraps around the 4 sets
        assert_eq!(cfg.capacity(), 64);
    }

    #[test]
    fn flush_clears_everything() {
        let mut c = LruCache::new(CacheConfig::small_dcache());
        c.access(Addr(0x40));
        assert!(c.contains(Addr(0x40)));
        c.flush();
        assert!(!c.contains(Addr(0x40)));
        assert_eq!(c.access(Addr(0x40)), AccessKind::Miss);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = CacheConfig::new(3, 2, 16, 1);
    }
}
