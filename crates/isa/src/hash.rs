//! Stable content hashing for binary images.
//!
//! The incremental re-analysis engine keys its persistent artifact cache
//! by *content*: the bytes of a function, the initialized data the value
//! analysis reads at load time, and the analyzer/machine configuration.
//! Rust's `std::hash::Hasher` makes no stability promise across
//! processes, so the cache uses this explicit 64-bit FNV-1a hasher — the
//! same value for the same bytes on every run, platform, and thread
//! count.
//!
//! Nothing here is cryptographic. A collision costs a stale artifact
//! being trusted, so the cache layer additionally stores cheap structural
//! invariants (block counts, loop counts) and rejects entries that fail
//! them; FNV-1a over kilobyte-scale inputs is more than adequate for the
//! remaining risk.

use crate::image::{Image, Segment};

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A stable (process-independent) 64-bit FNV-1a hasher.
///
/// # Example
///
/// ```
/// use wcet_isa::hash::StableHasher;
///
/// let mut a = StableHasher::new();
/// a.write_str("main");
/// a.write_u32(0x1000);
/// let mut b = StableHasher::new();
/// b.write_str("main");
/// b.write_u32(0x1000);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> StableHasher {
        StableHasher { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `usize`, widened to `u64` so 32- and 64-bit hosts agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a string, length-prefixed so `("ab","c")` and `("a","bc")`
    /// differ.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// The current digest.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Hashes one byte slice directly.
#[must_use]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write(bytes);
    h.finish()
}

impl Segment {
    /// Absorbs the segment (base address + raw contents) into `h`.
    pub fn hash_into(&self, h: &mut StableHasher) {
        h.write_u32(self.base.0);
        h.write_usize(self.data.len());
        h.write(&self.data);
    }
}

impl Image {
    /// Stable hash of every *initialized data* segment plus the entry
    /// point. This is the part of the image the value analysis consumes
    /// besides a function's own code: load-time memory facts and jump
    /// tables. Function code is hashed separately, per function, by the
    /// cache layer.
    #[must_use]
    pub fn data_hash(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_u32(self.entry.0);
        h.write_usize(self.data.len());
        for seg in &self.data {
            seg.hash_into(&mut h);
        }
        h.finish()
    }

    /// Stable hash of the raw code words in `[start, end)`, as stored in
    /// the code segment. Used to fingerprint one function's bytes.
    /// Addresses outside the code segment contribute nothing (the decoder
    /// would have rejected them long before any cache lookup).
    #[must_use]
    pub fn code_range_hash(&self, start: crate::Addr, end: crate::Addr) -> u64 {
        let mut h = StableHasher::new();
        h.write_u32(start.0);
        let mut at = start;
        while at < end {
            if let Some(w) = self.code.word_at(at) {
                h.write_u32(w);
            }
            at = at.next();
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::Addr;

    #[test]
    fn known_vectors() {
        // FNV-1a 64 reference values.
        assert_eq!(hash_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash_bytes(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn field_separation() {
        // Length prefixes keep adjacent strings from gluing together.
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn data_hash_tracks_content_and_placement() {
        let base = assemble("main: halt").unwrap();
        let mut with_data = base.clone();
        with_data
            .data
            .push(Segment::from_words(Addr(0x5000), &[1, 2, 3]));
        assert_ne!(base.data_hash(), with_data.data_hash());

        let mut moved = base.clone();
        moved
            .data
            .push(Segment::from_words(Addr(0x6000), &[1, 2, 3]));
        assert_ne!(with_data.data_hash(), moved.data_hash());

        let mut same = base;
        same.data
            .push(Segment::from_words(Addr(0x5000), &[1, 2, 3]));
        assert_eq!(with_data.data_hash(), same.data_hash());
    }

    #[test]
    fn code_range_hash_sees_single_word_edits() {
        let a = assemble("main: li r1, 4\n halt").unwrap();
        let b = assemble("main: li r1, 5\n halt").unwrap();
        let end = a.code.end();
        assert_ne!(
            a.code_range_hash(a.entry, end),
            b.code_range_hash(b.entry, end)
        );
        assert_eq!(
            a.code_range_hash(a.entry, end),
            a.clone().code_range_hash(a.entry, end)
        );
    }
}
