//! Binary encoding of instructions into 32-bit words.
//!
//! ## Format
//!
//! Every instruction occupies one little-endian 32-bit word whose top six
//! bits `[31:26]` hold the opcode. Register fields are four bits wide;
//! immediates and branch displacements occupy the low sixteen bits.
//! Direct control-flow targets are stored as signed *word* displacements
//! relative to the instruction's own address: branches use a 16-bit field
//! (±128 KiB reach), jumps and calls a 26-bit field.
//!
//! | opcode | format |
//! |---|---|
//! | 0 `nop`, 1 `halt`, 8 `ret` | no operands |
//! | 2 `alu` | funct`[25:22]` rd`[21:18]` rs1`[17:14]` rs2`[13:10]` |
//! | 3 `lui` | rd`[25:22]` imm16`[15:0]` |
//! | 4 `j`, 5 `call` | disp26`[25:0]` |
//! | 6 `jr`, 7 `callr` | rs`[25:22]` |
//! | 9 `sel` | rd`[25:22]` rc`[21:18]` rt`[17:14]` rf`[13:10]` |
//! | 10 `falu` | funct`[25:22]` fd`[21:18]` fs1`[17:14]` fs2`[13:10]` |
//! | 11 `fmov`, 12 `fcvt` | fd`[25:22]` rs`[21:18]` |
//! | 13 `alloc` | rd`[25:22]` rs`[21:18]` |
//! | 16–27 `alui` | rd`[25:22]` rs1`[21:18]` imm16`[15:0]` |
//! | 28–30 load, 31–33 store | rd/rs`[25:22]` base`[21:18]` off16`[15:0]` |
//! | 34–39 branch | rs1`[25:22]` rs2`[21:18]` disp16`[15:0]` |
//! | 40–43 fbranch | fs1`[25:22]` fs2`[21:18]` disp16`[15:0]` |

use crate::error::IsaError;
use crate::inst::{Addr, AluOp, Cond, FAluOp, FCond, Inst, Width};

/// Opcode constants (bits `[31:26]` of the encoded word).
pub(crate) mod opcode {
    pub const NOP: u8 = 0;
    pub const HALT: u8 = 1;
    pub const ALU: u8 = 2;
    pub const LUI: u8 = 3;
    pub const JUMP: u8 = 4;
    pub const CALL: u8 = 5;
    pub const JUMP_IND: u8 = 6;
    pub const CALL_IND: u8 = 7;
    pub const RET: u8 = 8;
    pub const SELECT: u8 = 9;
    pub const FALU: u8 = 10;
    pub const FMOV: u8 = 11;
    pub const FCVT: u8 = 12;
    pub const ALLOC: u8 = 13;
    pub const ALU_IMM_BASE: u8 = 16; // 16..=27, one per AluOp in ALL order
    pub const LOAD_BASE: u8 = 28; // 28..=30: byte, half, word
    pub const STORE_BASE: u8 = 31; // 31..=33: byte, half, word
    pub const BRANCH_BASE: u8 = 34; // 34..=39, one per Cond in ALL order
    pub const FBRANCH_BASE: u8 = 40; // 40..=43, one per FCond in ALL order
}

pub(crate) fn alu_funct(op: AluOp) -> u32 {
    AluOp::ALL.iter().position(|&o| o == op).expect("op in ALL") as u32
}

pub(crate) fn falu_funct(op: FAluOp) -> u32 {
    FAluOp::ALL
        .iter()
        .position(|&o| o == op)
        .expect("op in ALL") as u32
}

pub(crate) fn width_index(width: Width) -> u8 {
    Width::ALL
        .iter()
        .position(|&w| w == width)
        .expect("width in ALL") as u8
}

pub(crate) fn cond_index(cond: Cond) -> u8 {
    Cond::ALL
        .iter()
        .position(|&c| c == cond)
        .expect("cond in ALL") as u8
}

pub(crate) fn fcond_index(cond: FCond) -> u8 {
    FCond::ALL
        .iter()
        .position(|&c| c == cond)
        .expect("cond in ALL") as u8
}

fn check_imm16(value: i32, at: Addr) -> Result<u32, IsaError> {
    if (-32768..=32767).contains(&value) {
        Ok((value as u32) & 0xffff)
    } else {
        Err(IsaError::ImmediateOutOfRange {
            value: i64::from(value),
            at: Some(at),
        })
    }
}

/// Logical immediates (`and`/`or`/`xor`) are zero-extended, MIPS-style, so
/// `lui` + `ori` can synthesize arbitrary 32-bit constants.
fn check_imm16_logical(value: i32, at: Addr) -> Result<u32, IsaError> {
    if (0..=0xffff).contains(&value) {
        Ok(value as u32)
    } else {
        Err(IsaError::ImmediateOutOfRange {
            value: i64::from(value),
            at: Some(at),
        })
    }
}

fn is_logical(op: AluOp) -> bool {
    matches!(op, AluOp::And | AluOp::Or | AluOp::Xor)
}

/// Computes the signed word displacement from `from` to `to`, checking
/// alignment and that it fits in `bits` bits.
fn word_disp(from: Addr, to: Addr, bits: u32) -> Result<u32, IsaError> {
    if !to.is_aligned() {
        return Err(IsaError::MisalignedTarget { target: to });
    }
    // Wrapping difference of the unsigned addresses, reinterpreted as
    // signed, so displacements work anywhere in the 32-bit space.
    let diff = (to.0.wrapping_sub(from.0)) as i32;
    if diff % 4 != 0 {
        return Err(IsaError::MisalignedTarget { target: to });
    }
    let words = i64::from(diff / 4);
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if words < min || words > max {
        return Err(IsaError::DisplacementOutOfRange { from, to });
    }
    Ok((words as u32) & ((1u32 << bits) - 1))
}

/// Encodes a single instruction located at address `at` into its 32-bit word.
///
/// # Errors
///
/// Returns an error if an immediate or a control-flow displacement does not
/// fit its encoding field, or if a target is misaligned.
///
/// # Example
///
/// ```
/// use wcet_isa::encode::encode;
/// use wcet_isa::decode::decode;
/// use wcet_isa::{Addr, Inst};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let inst = Inst::Jump { target: Addr(0x1010) };
/// let word = encode(&inst, Addr(0x1000))?;
/// assert_eq!(decode(word, Addr(0x1000))?, inst);
/// # Ok(())
/// # }
/// ```
pub fn encode(inst: &Inst, at: Addr) -> Result<u32, IsaError> {
    use opcode::*;
    let word = |op: u8, rest: u32| (u32::from(op) << 26) | (rest & 0x03ff_ffff);
    Ok(match *inst {
        Inst::Nop => word(NOP, 0),
        Inst::Halt => word(HALT, 0),
        Inst::Ret => word(RET, 0),
        Inst::Alu { op, rd, rs1, rs2 } => word(
            ALU,
            (alu_funct(op) << 22)
                | ((rd.index() as u32) << 18)
                | ((rs1.index() as u32) << 14)
                | ((rs2.index() as u32) << 10),
        ),
        Inst::AluImm { op, rd, rs1, imm } => {
            let raw = if is_logical(op) {
                check_imm16_logical(imm, at)?
            } else {
                check_imm16(imm, at)?
            };
            word(
                ALU_IMM_BASE + alu_funct(op) as u8,
                ((rd.index() as u32) << 22) | ((rs1.index() as u32) << 18) | raw,
            )
        }
        Inst::Lui { rd, imm } => {
            if imm > 0xffff {
                return Err(IsaError::ImmediateOutOfRange {
                    value: i64::from(imm),
                    at: Some(at),
                });
            }
            word(LUI, ((rd.index() as u32) << 22) | imm)
        }
        Inst::Load {
            width,
            rd,
            base,
            offset,
        } => word(
            LOAD_BASE + width_index(width),
            ((rd.index() as u32) << 22) | ((base.index() as u32) << 18) | check_imm16(offset, at)?,
        ),
        Inst::Store {
            width,
            rs,
            base,
            offset,
        } => word(
            STORE_BASE + width_index(width),
            ((rs.index() as u32) << 22) | ((base.index() as u32) << 18) | check_imm16(offset, at)?,
        ),
        Inst::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => word(
            BRANCH_BASE + cond_index(cond),
            ((rs1.index() as u32) << 22)
                | ((rs2.index() as u32) << 18)
                | word_disp(at, target, 16)?,
        ),
        Inst::FBranch {
            cond,
            fs1,
            fs2,
            target,
        } => word(
            FBRANCH_BASE + fcond_index(cond),
            ((fs1.index() as u32) << 22)
                | ((fs2.index() as u32) << 18)
                | word_disp(at, target, 16)?,
        ),
        Inst::Jump { target } => word(JUMP, word_disp(at, target, 26)?),
        Inst::Call { target } => word(CALL, word_disp(at, target, 26)?),
        Inst::JumpInd { rs } => word(JUMP_IND, (rs.index() as u32) << 22),
        Inst::CallInd { rs } => word(CALL_IND, (rs.index() as u32) << 22),
        Inst::Select { rd, rc, rt, rf } => word(
            SELECT,
            ((rd.index() as u32) << 22)
                | ((rc.index() as u32) << 18)
                | ((rt.index() as u32) << 14)
                | ((rf.index() as u32) << 10),
        ),
        Inst::FAlu { op, fd, fs1, fs2 } => word(
            FALU,
            (falu_funct(op) << 22)
                | ((fd.index() as u32) << 18)
                | ((fs1.index() as u32) << 14)
                | ((fs2.index() as u32) << 10),
        ),
        Inst::FMov { fd, rs } => word(
            FMOV,
            ((fd.index() as u32) << 22) | ((rs.index() as u32) << 18),
        ),
        Inst::FCvt { fd, rs } => word(
            FCVT,
            ((fd.index() as u32) << 22) | ((rs.index() as u32) << 18),
        ),
        Inst::Alloc { rd, rs } => word(
            ALLOC,
            ((rd.index() as u32) << 22) | ((rs.index() as u32) << 18),
        ),
    })
}

/// Encodes a whole instruction sequence starting at `base`, one word each.
///
/// # Errors
///
/// Propagates the first encoding failure, annotated with its address.
pub fn encode_all(insts: &[Inst], base: Addr) -> Result<Vec<u32>, IsaError> {
    insts
        .iter()
        .enumerate()
        .map(|(i, inst)| encode(inst, base.offset(4 * i as i64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Reg;

    #[test]
    fn imm_range_enforced() {
        let at = Addr(0x100);
        let ok = Inst::AluImm {
            op: AluOp::Add,
            rd: Reg::new(1),
            rs1: Reg::new(1),
            imm: 32767,
        };
        assert!(encode(&ok, at).is_ok());
        let bad = Inst::AluImm {
            op: AluOp::Add,
            rd: Reg::new(1),
            rs1: Reg::new(1),
            imm: 32768,
        };
        assert!(matches!(
            encode(&bad, at),
            Err(IsaError::ImmediateOutOfRange { .. })
        ));
    }

    #[test]
    fn branch_reach_enforced() {
        let at = Addr(0x0);
        let far = Inst::Branch {
            cond: Cond::Eq,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            target: Addr(0x0002_0000), // exactly out of the ±32768-word window? 0x20000/4 = 32768 words
        };
        assert!(matches!(
            encode(&far, at),
            Err(IsaError::DisplacementOutOfRange { .. })
        ));
        let near = Inst::Branch {
            cond: Cond::Eq,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            target: Addr(0x0001_fffc),
        };
        assert!(encode(&near, at).is_ok());
    }

    #[test]
    fn misaligned_target_rejected() {
        let j = Inst::Jump {
            target: Addr(0x1002),
        };
        assert!(matches!(
            encode(&j, Addr(0)),
            Err(IsaError::MisalignedTarget { .. })
        ));
    }

    #[test]
    fn backward_jump_encodes() {
        let j = Inst::Jump {
            target: Addr(0x1000),
        };
        assert!(encode(&j, Addr(0x2000)).is_ok());
    }

    #[test]
    fn lui_range_enforced() {
        assert!(encode(
            &Inst::Lui {
                rd: Reg::new(1),
                imm: 0xffff
            },
            Addr(0)
        )
        .is_ok());
        assert!(encode(
            &Inst::Lui {
                rd: Reg::new(1),
                imm: 0x1_0000
            },
            Addr(0)
        )
        .is_err());
    }
}
