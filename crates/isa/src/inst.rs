//! The instruction set at the semantic level.
//!
//! The machine is a 32-bit, byte-addressed, in-order RISC with sixteen
//! general-purpose integer registers (`r0`..`r15`, where `r0` is hard-wired
//! to zero and `r15` is the link register by calling convention) and eight
//! single-precision floating-point registers (`f0`..`f7`).
//!
//! Instructions are fixed-width 32-bit words aligned on 4-byte boundaries;
//! see [`crate::encode`] for the binary format.

use std::fmt;

/// A code or data address in the 32-bit address space.
///
/// Addresses are newtyped so they cannot be confused with immediate values
/// or register contents in analysis code.
///
/// # Example
///
/// ```
/// use wcet_isa::Addr;
/// let a = Addr(0x1000);
/// assert_eq!(a.offset(8), Addr(0x1008));
/// assert_eq!(format!("{a}"), "0x1000");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u32);

impl Addr {
    /// Returns the address advanced by `bytes` (wrapping on overflow, as the
    /// hardware program counter would).
    #[must_use]
    pub fn offset(self, bytes: i64) -> Addr {
        Addr((i64::from(self.0) + bytes) as u32)
    }

    /// Returns the address of the next instruction word.
    #[must_use]
    pub fn next(self) -> Addr {
        self.offset(4)
    }

    /// Returns true if the address is 4-byte aligned (a legal fetch address).
    #[must_use]
    pub fn is_aligned(self) -> bool {
        self.0.is_multiple_of(4)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u32> for Addr {
    fn from(v: u32) -> Self {
        Addr(v)
    }
}

/// One of the sixteen general-purpose integer registers.
///
/// `r0` always reads as zero; writes to it are ignored. `r15` is the link
/// register used by [`Inst::Call`] and [`Inst::CallInd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hard-wired zero register.
    pub const ZERO: Reg = Reg(0);
    /// The stack pointer by calling convention.
    pub const SP: Reg = Reg(14);
    /// The link register, written by call instructions.
    pub const LINK: Reg = Reg(15);
    /// Number of integer registers.
    pub const COUNT: usize = 16;

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 16`.
    #[must_use]
    pub fn new(idx: u8) -> Reg {
        assert!(idx < 16, "integer register index out of range: {idx}");
        Reg(idx)
    }

    /// The register index in `0..16`.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Iterates over all sixteen registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..16).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One of the eight single-precision floating-point registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

impl FReg {
    /// Number of floating-point registers.
    pub const COUNT: usize = 8;

    /// Creates a floating-point register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 8`.
    #[must_use]
    pub fn new(idx: u8) -> FReg {
        assert!(idx < 8, "float register index out of range: {idx}");
        FReg(idx)
    }

    /// The register index in `0..8`.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Iterates over all eight registers in index order.
    pub fn all() -> impl Iterator<Item = FReg> {
        (0..8).map(FReg)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Integer ALU operations.
///
/// There is deliberately *no* hardware divide: like the Freescale HCS12X
/// discussed in the paper's Section 4.3, division must be performed in
/// software (see the `wcet-arith` crate), which is exactly the situation
/// that produces the `lDivMod` predictability problem of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low 32 bits).
    Mul,
    /// High 32 bits of the unsigned 64-bit product.
    Mulhu,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (shift amount taken modulo 32).
    Shl,
    /// Logical shift right (shift amount taken modulo 32).
    Shr,
    /// Arithmetic shift right (shift amount taken modulo 32).
    Sra,
    /// Set to 1 if signed less-than, else 0.
    Slt,
    /// Set to 1 if unsigned less-than, else 0.
    Sltu,
}

impl AluOp {
    /// All ALU operations, for exhaustive enumeration in tests.
    pub const ALL: [AluOp; 12] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Mulhu,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
    ];

    /// Applies the operation to two 32-bit operands.
    #[must_use]
    pub fn apply(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Mulhu => ((u64::from(a) * u64::from(b)) >> 32) as u32,
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl(b & 31),
            AluOp::Shr => a.wrapping_shr(b & 31),
            AluOp::Sra => (a as i32).wrapping_shr(b & 31) as u32,
            AluOp::Slt => u32::from((a as i32) < (b as i32)),
            AluOp::Sltu => u32::from(a < b),
        }
    }

    /// Mnemonic used by the assembler and disassembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Mulhu => "mulhu",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Integer branch conditions comparing two registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl Cond {
    /// All branch conditions, for exhaustive enumeration in tests.
    pub const ALL: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu];

    /// Evaluates the condition on two 32-bit operands.
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i32) < (b as i32),
            Cond::Ge => (a as i32) >= (b as i32),
            Cond::Ltu => a < b,
            Cond::Geu => a >= b,
        }
    }

    /// The condition that holds exactly when `self` does not.
    #[must_use]
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Ltu => Cond::Geu,
            Cond::Geu => Cond::Ltu,
        }
    }

    /// Mnemonic suffix used by the assembler (`beq`, `bne`, ...).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Ge => "bge",
            Cond::Ltu => "bltu",
            Cond::Geu => "bgeu",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Floating-point ALU operations (single precision).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FAluOp {
    /// Addition.
    FAdd,
    /// Subtraction.
    FSub,
    /// Multiplication.
    FMul,
    /// Division.
    FDiv,
}

impl FAluOp {
    /// All floating-point ALU operations.
    pub const ALL: [FAluOp; 4] = [FAluOp::FAdd, FAluOp::FSub, FAluOp::FMul, FAluOp::FDiv];

    /// Applies the operation to two single-precision operands.
    #[must_use]
    pub fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            FAluOp::FAdd => a + b,
            FAluOp::FSub => a - b,
            FAluOp::FMul => a * b,
            FAluOp::FDiv => a / b,
        }
    }

    /// Mnemonic used by the assembler and disassembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            FAluOp::FAdd => "fadd",
            FAluOp::FSub => "fsub",
            FAluOp::FMul => "fmul",
            FAluOp::FDiv => "fdiv",
        }
    }
}

impl fmt::Display for FAluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Floating-point branch conditions comparing two floating-point registers.
///
/// A loop whose exit condition is one of these is exactly the construct
/// forbidden by MISRA-C:2004 rule 13.4 ("the controlling expression of a
/// `for` statement shall not contain any objects of floating type"): the
/// value analysis does not track floating-point values, so such loops can
/// never be bounded automatically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FCond {
    /// Ordered equal.
    FEq,
    /// Unordered or not equal.
    FNe,
    /// Ordered less-than.
    FLt,
    /// Ordered greater-or-equal.
    FGe,
}

impl FCond {
    /// All floating-point branch conditions.
    pub const ALL: [FCond; 4] = [FCond::FEq, FCond::FNe, FCond::FLt, FCond::FGe];

    /// Evaluates the condition on two single-precision operands.
    #[must_use]
    pub fn eval(self, a: f32, b: f32) -> bool {
        match self {
            FCond::FEq => a == b,
            FCond::FNe => a != b,
            FCond::FLt => a < b,
            FCond::FGe => a >= b,
        }
    }

    /// Mnemonic used by the assembler (`fbeq`, `fbne`, ...).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            FCond::FEq => "fbeq",
            FCond::FNe => "fbne",
            FCond::FLt => "fblt",
            FCond::FGe => "fbge",
        }
    }
}

impl fmt::Display for FCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Memory access widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 8-bit access.
    Byte,
    /// 16-bit access.
    Half,
    /// 32-bit access.
    Word,
}

impl Width {
    /// All access widths.
    pub const ALL: [Width; 3] = [Width::Byte, Width::Half, Width::Word];

    /// Size of the access in bytes.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            Width::Byte => 1,
            Width::Half => 2,
            Width::Word => 4,
        }
    }

    /// Mnemonic suffix used by the assembler (`lw`/`lb`/`lh`, `sw`/...).
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            Width::Byte => "b",
            Width::Half => "h",
            Width::Word => "w",
        }
    }
}

/// A machine instruction at the semantic level.
///
/// See the crate docs for the role each variant plays in the paper's
/// predictability discussion. All control-flow targets are absolute
/// addresses (the encoder stores them PC-relative, the decoder resolves
/// them back to absolute form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// Three-register ALU operation: `rd = rs1 op rs2`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// Register-immediate ALU operation: `rd = rs1 op imm` with a 16-bit
    /// signed immediate.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Sign-extended immediate in `-32768..=32767`.
        imm: i32,
    },
    /// Load upper immediate: `rd = imm << 16`.
    Lui {
        /// Destination register.
        rd: Reg,
        /// The upper 16 bits (stored in the low 16 bits of the field).
        imm: u32,
    },
    /// Memory load: `rd = mem[rs1 + offset]` (zero-extended for sub-word).
    Load {
        /// Access width.
        width: Width,
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed 16-bit byte offset.
        offset: i32,
    },
    /// Memory store: `mem[rs1 + offset] = rs` (truncated for sub-word).
    Store {
        /// Access width.
        width: Width,
        /// Source register whose value is stored.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Signed 16-bit byte offset.
        offset: i32,
    },
    /// Conditional branch comparing two integer registers.
    Branch {
        /// Condition.
        cond: Cond,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
        /// Absolute branch target.
        target: Addr,
    },
    /// Unconditional direct jump — the binary-level image of a `goto`.
    Jump {
        /// Absolute target.
        target: Addr,
    },
    /// Direct call: saves the return address in `r15` and jumps.
    Call {
        /// Absolute entry address of the callee.
        target: Addr,
    },
    /// Indirect jump through a register (computed `goto`, `switch` jump
    /// tables, `longjmp`-like non-local transfers).
    JumpInd {
        /// Register holding the target address.
        rs: Reg,
    },
    /// Indirect call through a register — a function pointer call, the
    /// canonical tier-one challenge of Section 3.2.
    CallInd {
        /// Register holding the callee entry address.
        rs: Reg,
    },
    /// Return: jumps to the address in the link register `r15`.
    Ret,
    /// Predicated select: `rd = if rc != 0 { rt } else { rf }`.
    ///
    /// This is the predicated operation required by the single-path
    /// programming paradigm of Puschner and Kirner that the paper's
    /// Section 2 critiques; most embedded ISAs (e.g. PowerPC) lack it.
    Select {
        /// Destination register.
        rd: Reg,
        /// Condition register (true iff non-zero).
        rc: Reg,
        /// Value if the condition is non-zero.
        rt: Reg,
        /// Value if the condition is zero.
        rf: Reg,
    },
    /// Floating-point ALU operation: `fd = fs1 op fs2`.
    FAlu {
        /// Operation.
        op: FAluOp,
        /// Destination register.
        fd: FReg,
        /// First source register.
        fs1: FReg,
        /// Second source register.
        fs2: FReg,
    },
    /// Conditional branch comparing two floating-point registers
    /// (the rule 13.4 construct).
    FBranch {
        /// Condition.
        cond: FCond,
        /// First operand.
        fs1: FReg,
        /// Second operand.
        fs2: FReg,
        /// Absolute branch target.
        target: Addr,
    },
    /// Moves the bit pattern of an integer register into a floating-point
    /// register (`fd = bits(rs)`).
    FMov {
        /// Destination floating-point register.
        fd: FReg,
        /// Source integer register.
        rs: Reg,
    },
    /// Converts an integer register value to floating point (`fd = rs as f32`).
    FCvt {
        /// Destination floating-point register.
        fd: FReg,
        /// Source integer register (signed value).
        rs: Reg,
    },
    /// Heap allocation: `rd = alloc(rs)` bytes.
    ///
    /// Models a `malloc` library call (MISRA-C:2004 rule 20.4). The returned
    /// address is *statically unknown*, which is precisely why the paper
    /// says dynamic allocation "leads to statically unknown memory
    /// addresses" and hence cache over-estimation.
    Alloc {
        /// Destination register receiving the block address.
        rd: Reg,
        /// Register holding the requested size in bytes.
        rs: Reg,
    },
    /// No operation.
    Nop,
    /// Stops the machine (end of task).
    Halt,
}

impl Inst {
    /// Returns true if the instruction ends a basic block (any control
    /// transfer or machine stop).
    #[must_use]
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::Branch { .. }
                | Inst::Jump { .. }
                | Inst::Call { .. }
                | Inst::JumpInd { .. }
                | Inst::CallInd { .. }
                | Inst::Ret
                | Inst::FBranch { .. }
                | Inst::Halt
        )
    }

    /// Returns true if the instruction accesses data memory.
    #[must_use]
    pub fn is_memory_access(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. })
    }

    /// The direct control-flow target, if the instruction has one.
    #[must_use]
    pub fn direct_target(&self) -> Option<Addr> {
        match self {
            Inst::Branch { target, .. }
            | Inst::Jump { target }
            | Inst::Call { target }
            | Inst::FBranch { target, .. } => Some(*target),
            _ => None,
        }
    }

    /// The integer register written by this instruction, if any.
    #[must_use]
    pub fn def_reg(&self) -> Option<Reg> {
        let rd = match self {
            Inst::Alu { rd, .. }
            | Inst::AluImm { rd, .. }
            | Inst::Lui { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::Select { rd, .. }
            | Inst::Alloc { rd, .. } => *rd,
            Inst::Call { .. } | Inst::CallInd { .. } => Reg::LINK,
            _ => return None,
        };
        if rd == Reg::ZERO {
            None
        } else {
            Some(rd)
        }
    }

    /// The integer registers read by this instruction.
    #[must_use]
    pub fn use_regs(&self) -> Vec<Reg> {
        match self {
            Inst::Alu { rs1, rs2, .. } => vec![*rs1, *rs2],
            Inst::AluImm { rs1, .. } => vec![*rs1],
            Inst::Lui { .. } => vec![],
            Inst::Load { base, .. } => vec![*base],
            Inst::Store { rs, base, .. } => vec![*rs, *base],
            Inst::Branch { rs1, rs2, .. } => vec![*rs1, *rs2],
            Inst::Jump { .. } | Inst::Call { .. } => vec![],
            Inst::JumpInd { rs } | Inst::CallInd { rs } => vec![*rs],
            Inst::Ret => vec![Reg::LINK],
            Inst::Select { rc, rt, rf, .. } => vec![*rc, *rt, *rf],
            Inst::FAlu { .. } | Inst::FBranch { .. } => vec![],
            Inst::FMov { rs, .. } | Inst::FCvt { rs, .. } => vec![*rs],
            Inst::Alloc { rs, .. } => vec![*rs],
            Inst::Nop | Inst::Halt => vec![],
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Alu { op, rd, rs1, rs2 } => write!(f, "{op} {rd}, {rs1}, {rs2}"),
            Inst::AluImm { op, rd, rs1, imm } => write!(f, "{op}i {rd}, {rs1}, {imm}"),
            Inst::Lui { rd, imm } => write!(f, "lui {rd}, 0x{imm:x}"),
            Inst::Load {
                width,
                rd,
                base,
                offset,
            } => write!(f, "l{} {rd}, {offset}({base})", width.suffix()),
            Inst::Store {
                width,
                rs,
                base,
                offset,
            } => write!(f, "s{} {rs}, {offset}({base})", width.suffix()),
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => write!(f, "{cond} {rs1}, {rs2}, {target}"),
            Inst::Jump { target } => write!(f, "j {target}"),
            Inst::Call { target } => write!(f, "call {target}"),
            Inst::JumpInd { rs } => write!(f, "jr {rs}"),
            Inst::CallInd { rs } => write!(f, "callr {rs}"),
            Inst::Ret => f.write_str("ret"),
            Inst::Select { rd, rc, rt, rf } => write!(f, "sel {rd}, {rc}, {rt}, {rf}"),
            Inst::FAlu { op, fd, fs1, fs2 } => write!(f, "{op} {fd}, {fs1}, {fs2}"),
            Inst::FBranch {
                cond,
                fs1,
                fs2,
                target,
            } => write!(f, "{cond} {fs1}, {fs2}, {target}"),
            Inst::FMov { fd, rs } => write!(f, "fmov {fd}, {rs}"),
            Inst::FCvt { fd, rs } => write!(f, "fcvt {fd}, {rs}"),
            Inst::Alloc { rd, rs } => write!(f, "alloc {rd}, {rs}"),
            Inst::Nop => f.write_str("nop"),
            Inst::Halt => f.write_str("halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_arithmetic() {
        assert_eq!(Addr(0x1000).next(), Addr(0x1004));
        assert_eq!(Addr(4).offset(-4), Addr(0));
        assert_eq!(Addr(u32::MAX - 3).offset(4), Addr(0)); // wraps
        assert!(Addr(8).is_aligned());
        assert!(!Addr(6).is_aligned());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_new_rejects_out_of_range() {
        let _ = Reg::new(16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn freg_new_rejects_out_of_range() {
        let _ = FReg::new(8);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(u32::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u32::MAX);
        assert_eq!(AluOp::Mul.apply(0x1_0000, 0x1_0000), 0);
        assert_eq!(AluOp::Mulhu.apply(0x1_0000, 0x1_0000), 1);
        assert_eq!(AluOp::Shl.apply(1, 33), 2); // shift modulo 32
        assert_eq!(AluOp::Sra.apply(0x8000_0000, 31), u32::MAX);
        assert_eq!(AluOp::Slt.apply(u32::MAX, 0), 1); // -1 < 0 signed
        assert_eq!(AluOp::Sltu.apply(u32::MAX, 0), 0);
    }

    #[test]
    fn cond_negation_is_involutive_and_complementary() {
        for cond in Cond::ALL {
            assert_eq!(cond.negate().negate(), cond);
            for (a, b) in [(0u32, 0u32), (1, 2), (u32::MAX, 0), (5, 5)] {
                assert_ne!(cond.eval(a, b), cond.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn fcond_nan_behaviour() {
        // FNe is the unordered condition: true on NaN.
        assert!(FCond::FNe.eval(f32::NAN, 0.0));
        assert!(!FCond::FEq.eval(f32::NAN, f32::NAN));
        assert!(!FCond::FLt.eval(f32::NAN, 1.0));
        assert!(!FCond::FGe.eval(f32::NAN, 1.0));
    }

    #[test]
    fn def_use_sets() {
        let i = Inst::Alu {
            op: AluOp::Add,
            rd: Reg::new(1),
            rs1: Reg::new(2),
            rs2: Reg::new(3),
        };
        assert_eq!(i.def_reg(), Some(Reg::new(1)));
        assert_eq!(i.use_regs(), vec![Reg::new(2), Reg::new(3)]);

        // Writing r0 defines nothing.
        let z = Inst::AluImm {
            op: AluOp::Add,
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            imm: 1,
        };
        assert_eq!(z.def_reg(), None);

        // Calls define the link register.
        assert_eq!(Inst::Call { target: Addr(0) }.def_reg(), Some(Reg::LINK));
        assert_eq!(Inst::Ret.use_regs(), vec![Reg::LINK]);
    }

    #[test]
    fn terminator_classification() {
        assert!(Inst::Halt.is_terminator());
        assert!(Inst::Ret.is_terminator());
        assert!(Inst::Jump { target: Addr(0) }.is_terminator());
        assert!(!Inst::Nop.is_terminator());
        assert!(!Inst::Alloc {
            rd: Reg::new(1),
            rs: Reg::new(2)
        }
        .is_terminator());
    }

    #[test]
    fn display_formats() {
        let i = Inst::Load {
            width: Width::Word,
            rd: Reg::new(3),
            base: Reg::new(4),
            offset: -8,
        };
        assert_eq!(format!("{i}"), "lw r3, -8(r4)");
        let b = Inst::Branch {
            cond: Cond::Ne,
            rs1: Reg::new(1),
            rs2: Reg::ZERO,
            target: Addr(0x1000),
        };
        assert_eq!(format!("{b}"), "bne r1, r0, 0x1000");
    }
}
