//! # wcet-isa — binary program substrate for the WCET predictability study
//!
//! This crate defines a small 32-bit RISC instruction set together with
//! everything a *binary-level* static WCET analyzer needs to consume and a
//! cycle-accurate interpreter to validate analysis results against:
//!
//! * [`inst`] — the instruction set (semantic level),
//! * [`arch`] — the ISA boundary: the [`arch::IsaKind`] tag + the
//!   [`arch::IsaSpec`] trait behind which backends register their
//!   encoding, timing, and memory-map defaults,
//! * [`encode`]/[`decode`] — the in-house 32-bit binary encoding and its
//!   decoder (the "Decoding Phase" input of the paper's Figure 1),
//! * [`rv32`] — the RISC-V RV32I subset backend's encoding and decoder,
//! * [`asm`] — a two-pass text assembler,
//! * [`builder`] — a programmatic program builder with labels,
//! * [`image`] — linked binary images (code + data segments + entry point),
//! * [`memmap`] — memory maps with per-region access latencies
//!   (SRAM / flash / MMIO / heap), the substrate for the paper's
//!   "imprecise memory accesses" discussion,
//! * [`timing`] — the base instruction cost model shared by the
//!   interpreter and the static pipeline analysis,
//! * [`interp`] — a concrete interpreter that counts cycles, used to check
//!   the soundness invariant (observed cycles ≤ WCET bound),
//! * [`hash`] — stable (process-independent) content hashing, the key
//!   substrate of the incremental analysis artifact cache.
//!
//! The ISA is deliberately expressive enough to encode every software
//! structure the paper discusses: indirect jumps and calls (function
//! pointers, `setjmp`/`longjmp`-like control flow), raw unconditional
//! branches (`goto`, irreducible loops), predicated selects (single-path
//! code), floating-point compare-and-branch (MISRA rule 13.4), and a heap
//! allocation primitive modelling `malloc` (MISRA rule 20.4).
//!
//! # Example
//!
//! ```
//! use wcet_isa::asm::assemble;
//! use wcet_isa::interp::{Interpreter, StopReason};
//! use wcet_isa::memmap::MemoryMap;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let image = assemble(
//!     r#"
//!     .org 0x1000
//!     main:
//!         li   r1, 5
//!     loop:
//!         subi r1, r1, 1
//!         bne  r1, r0, loop
//!         halt
//!     "#,
//! )?;
//! let mut interp = Interpreter::new(&image, MemoryMap::default_embedded());
//! let outcome = interp.run(10_000)?;
//! assert_eq!(outcome.stop, StopReason::Halt);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod arch;
pub mod asm;
pub mod builder;
pub mod cache;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod hash;
pub mod image;
pub mod inst;
pub mod interp;
pub mod memmap;
pub mod rv32;
pub mod timing;

mod error;

pub use arch::{HouseIsa, IsaKind, IsaSpec, Rv32iIsa};
pub use error::IsaError;
pub use image::Image;
pub use inst::{Addr, AluOp, Cond, FAluOp, FCond, FReg, Inst, Reg, Width};
