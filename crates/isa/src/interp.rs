//! A cycle-accurate concrete interpreter.
//!
//! The interpreter executes a binary [`Image`] on the machine defined by a
//! [`MachineConfig`] (memory map, base timing, optional caches) and counts
//! cycles with exactly the same cost rules the static pipeline analysis in
//! `wcet-micro` uses for its upper bounds. Every integration test that
//! checks the soundness invariant — *observed cycles never exceed the WCET
//! bound* — runs through this module.
//!
//! Execution of the entry task ends at a [`Inst::Halt`] or when the entry
//! function returns (the link register is initialised to a sentinel).

use std::collections::HashMap;

use crate::cache::{AccessKind, CacheConfig, LruCache};
use crate::error::IsaError;
use crate::image::Image;
use crate::inst::{Addr, Inst, Reg, Width};
use crate::memmap::MemoryMap;
use crate::timing::TimingModel;

/// Sentinel return address marking "returned from the entry function".
pub const RETURN_SENTINEL: Addr = Addr(0xffff_fffc);

/// The full hardware configuration the interpreter (and static analyses)
/// run against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Physical memory regions and latencies.
    pub memmap: MemoryMap,
    /// Base instruction costs.
    pub timing: TimingModel,
    /// Instruction cache, if present.
    pub icache: Option<CacheConfig>,
    /// Data cache, if present.
    pub dcache: Option<CacheConfig>,
    /// In-order pipeline timing mode: overlap successive instructions
    /// through a fetch/execute/memory/writeback pipe and charge BTFNT
    /// branch mispredictions, instead of summing per-instruction costs.
    pub pipeline: bool,
}

impl MachineConfig {
    /// Cacheless machine over the default embedded memory map, with the
    /// house ISA's timing.
    #[must_use]
    pub fn simple() -> MachineConfig {
        MachineConfig::simple_for(crate::arch::IsaKind::House)
    }

    /// Cacheless machine with `isa`'s base timing model (the memory map is
    /// shared across backends).
    #[must_use]
    pub fn simple_for(isa: crate::arch::IsaKind) -> MachineConfig {
        MachineConfig {
            memmap: isa.memory_map(),
            timing: isa.timing(),
            icache: None,
            dcache: None,
            pipeline: false,
        }
    }

    /// Machine with small instruction and data caches (house ISA timing).
    #[must_use]
    pub fn with_caches() -> MachineConfig {
        MachineConfig::with_caches_for(crate::arch::IsaKind::House)
    }

    /// Machine with small instruction and data caches and `isa`'s timing.
    #[must_use]
    pub fn with_caches_for(isa: crate::arch::IsaKind) -> MachineConfig {
        MachineConfig {
            icache: Some(CacheConfig::small_icache()),
            dcache: Some(CacheConfig::small_dcache()),
            ..MachineConfig::simple_for(isa)
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::simple()
    }
}

/// Why execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A [`Inst::Halt`] was executed.
    Halt,
    /// The entry function returned through the link-register sentinel.
    ReturnedFromEntry,
}

/// The result of a completed execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Why the machine stopped.
    pub stop: StopReason,
    /// Total cycles consumed.
    pub cycles: u64,
    /// Number of instructions retired.
    pub instructions: u64,
    /// Per-address execution counts (the measured execution profile).
    pub profile: HashMap<Addr, u64>,
}

/// The concrete machine.
#[derive(Debug)]
pub struct Interpreter {
    config: MachineConfig,
    /// Pre-decoded code (fetch = lookup).
    code: HashMap<Addr, Inst>,
    regs: [u32; Reg::COUNT],
    fregs: [f32; crate::inst::FReg::COUNT],
    pc: Addr,
    mem: HashMap<u32, u8>,
    icache: Option<LruCache>,
    dcache: Option<LruCache>,
    heap_next: u32,
    heap_end: u32,
    cycles: u64,
    instructions: u64,
    profile: HashMap<Addr, u64>,
    /// How long before its retirement the previous instruction entered
    /// the execute, memory, and writeback stages; used only in pipeline
    /// timing mode. Invariantly nonnegative and nonincreasing;
    /// `(0, 0, 0)` is a drained pipe.
    pipe: (i64, i64, i64),
}

impl Interpreter {
    /// Creates an interpreter over `image` with the given memory map, no
    /// caches, and default timing.
    ///
    /// # Panics
    ///
    /// Panics if the image's code fails to decode — a malformed image is a
    /// construction bug, not a runtime condition.
    #[must_use]
    pub fn new(image: &Image, memmap: MemoryMap) -> Interpreter {
        let config = MachineConfig {
            memmap,
            ..MachineConfig::simple()
        };
        Interpreter::with_config(image, config)
    }

    /// Creates an interpreter with a full machine configuration.
    ///
    /// # Panics
    ///
    /// Panics if the image's code fails to decode.
    #[must_use]
    pub fn with_config(image: &Image, config: MachineConfig) -> Interpreter {
        let code: HashMap<Addr, Inst> = image
            .decode_code()
            .expect("image code must decode")
            .into_iter()
            .collect();
        let mut mem = HashMap::new();
        for seg in &image.data {
            for (i, &b) in seg.data.iter().enumerate() {
                mem.insert(seg.base.0 + i as u32, b);
            }
        }
        let (heap_next, heap_end) = config
            .memmap
            .heap()
            .map_or((0, 0), |r| (r.start.0, r.end.0));
        let mut regs = [0u32; Reg::COUNT];
        regs[Reg::LINK.index()] = RETURN_SENTINEL.0;
        if let Some(stack) = config
            .memmap
            .regions()
            .iter()
            .find(|r| r.kind == crate::memmap::RegionKind::Stack)
        {
            // Stack grows downward from the top of the stack region.
            regs[Reg::SP.index()] = stack.end.0;
        }
        let icache = config.icache.clone().map(LruCache::new);
        let dcache = config.dcache.clone().map(LruCache::new);
        Interpreter {
            config,
            code,
            regs,
            fregs: [0.0; crate::inst::FReg::COUNT],
            pc: image.entry,
            mem,
            icache,
            dcache,
            heap_next,
            heap_end,
            cycles: 0,
            instructions: 0,
            profile: HashMap::new(),
            pipe: (0, 0, 0),
        }
    }

    /// Reads an integer register.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        if r == Reg::ZERO {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes an integer register (writes to `r0` are ignored).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if r != Reg::ZERO {
            self.regs[r.index()] = value;
        }
    }

    /// Reads a float register.
    #[must_use]
    pub fn freg(&self, f: crate::inst::FReg) -> f32 {
        self.fregs[f.index()]
    }

    /// Writes a float register.
    pub fn set_freg(&mut self, f: crate::inst::FReg, value: f32) {
        self.fregs[f.index()] = value;
    }

    /// The current program counter.
    #[must_use]
    pub fn pc(&self) -> Addr {
        self.pc
    }

    /// Cycles consumed so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Reads a 32-bit little-endian word from data memory without charging
    /// cycles (for tests and result inspection).
    #[must_use]
    pub fn peek_word(&self, addr: Addr) -> u32 {
        let b = |i: u32| u32::from(*self.mem.get(&(addr.0.wrapping_add(i))).unwrap_or(&0));
        b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24)
    }

    /// Writes a 32-bit little-endian word to data memory without charging
    /// cycles (for test setup).
    pub fn poke_word(&mut self, addr: Addr, value: u32) {
        for (i, byte) in value.to_le_bytes().iter().enumerate() {
            self.mem.insert(addr.0.wrapping_add(i as u32), *byte);
        }
    }

    /// Runs until halt/return or until `fuel` instructions have retired.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::FuelExhausted`] on timeout, [`IsaError::BadFetch`]
    /// on fetches outside the code, [`IsaError::MemoryFault`] on unmapped
    /// data accesses, and [`IsaError::OutOfHeap`] when `alloc` fails.
    pub fn run(&mut self, fuel: u64) -> Result<Outcome, IsaError> {
        for _ in 0..fuel {
            match self.step()? {
                Some(stop) => {
                    return Ok(Outcome {
                        stop,
                        cycles: self.cycles,
                        instructions: self.instructions,
                        profile: std::mem::take(&mut self.profile),
                    })
                }
                None => continue,
            }
        }
        Err(IsaError::FuelExhausted { budget: fuel })
    }

    /// Executes one instruction; returns `Some(reason)` when the machine
    /// stops.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Interpreter::run`], minus fuel.
    pub fn step(&mut self) -> Result<Option<StopReason>, IsaError> {
        let pc = self.pc;
        if pc == RETURN_SENTINEL {
            return Ok(Some(StopReason::ReturnedFromEntry));
        }
        let inst = *self.code.get(&pc).ok_or(IsaError::BadFetch { pc })?;
        self.instructions += 1;
        *self.profile.entry(pc).or_insert(0) += 1;

        // Stage latencies, charged after the semantic match: fetch,
        // execute (base cost plus the taken surcharge where relevant),
        // and memory. The flat model sums them; the pipeline model
        // overlaps them against the previous instruction's stages.
        let fetch = self.fetch_cost(pc);
        let mut exec = self.config.timing.base_cost(&inst);
        let mut mem = 0u32;
        // `(taken, target)` of a conditional branch, for the BTFNT
        // mispredict check after the charge.
        let mut cond_branch: Option<(bool, Addr)> = None;
        let mut stop = None;

        let mut next = pc.next();
        match inst {
            Inst::Nop => {}
            Inst::Halt => {
                self.pc = pc; // halted machines stay halted
                stop = Some(StopReason::Halt);
            }
            Inst::Alu { op, rd, rs1, rs2 } => {
                let v = op.apply(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                let v = op.apply(self.reg(rs1), imm as u32);
                self.set_reg(rd, v);
            }
            Inst::Lui { rd, imm } => self.set_reg(rd, imm << 16),
            Inst::Load {
                width,
                rd,
                base,
                offset,
            } => {
                let addr = Addr(self.reg(base).wrapping_add(offset as u32));
                let (v, latency) = self.load(addr, width, pc)?;
                mem = latency;
                self.set_reg(rd, v);
            }
            Inst::Store {
                width,
                rs,
                base,
                offset,
            } => {
                let addr = Addr(self.reg(base).wrapping_add(offset as u32));
                let v = self.reg(rs);
                mem = self.store(addr, width, v, pc)?;
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let taken = cond.eval(self.reg(rs1), self.reg(rs2));
                if taken {
                    exec += self.config.timing.taken_surcharge();
                    next = target;
                }
                cond_branch = Some((taken, target));
            }
            Inst::FBranch {
                cond,
                fs1,
                fs2,
                target,
            } => {
                let taken = cond.eval(self.freg(fs1), self.freg(fs2));
                if taken {
                    exec += self.config.timing.taken_surcharge();
                    next = target;
                }
                cond_branch = Some((taken, target));
            }
            Inst::Jump { target } => next = target,
            Inst::Call { target } => {
                self.set_reg(Reg::LINK, next.0);
                next = target;
            }
            Inst::JumpInd { rs } => next = Addr(self.reg(rs)),
            Inst::CallInd { rs } => {
                let target = Addr(self.reg(rs));
                self.set_reg(Reg::LINK, next.0);
                next = target;
            }
            Inst::Ret => next = Addr(self.reg(Reg::LINK)),
            Inst::Select { rd, rc, rt, rf } => {
                let v = if self.reg(rc) != 0 {
                    self.reg(rt)
                } else {
                    self.reg(rf)
                };
                self.set_reg(rd, v);
            }
            Inst::FAlu { op, fd, fs1, fs2 } => {
                let v = op.apply(self.freg(fs1), self.freg(fs2));
                self.set_freg(fd, v);
            }
            Inst::FMov { fd, rs } => self.set_freg(fd, f32::from_bits(self.reg(rs))),
            Inst::FCvt { fd, rs } => self.set_freg(fd, self.reg(rs) as i32 as f32),
            Inst::Alloc { rd, rs } => {
                let size = self.reg(rs).max(1);
                // Bump allocator over the heap region, 8-byte aligned.
                let aligned = (size + 7) & !7;
                if self.heap_next + aligned > self.heap_end {
                    return Err(IsaError::OutOfHeap {
                        requested: size,
                        pc,
                    });
                }
                let block = self.heap_next;
                self.heap_next += aligned;
                self.set_reg(rd, block);
            }
        }

        if self.config.pipeline {
            self.charge_pipelined(fetch, exec, mem);
            if let Some((taken, target)) = cond_branch {
                if taken != TimingModel::btfnt_predicts_taken(pc, target) {
                    // Mispredicted: refill penalty, and the pipe drains —
                    // the next instruction starts against empty stages.
                    self.cycles += u64::from(self.config.timing.mispredict_penalty);
                    self.pipe = (0, 0, 0);
                }
            }
        } else {
            self.cycles += u64::from(fetch) + u64::from(exec) + u64::from(mem);
        }

        if stop.is_some() {
            return Ok(stop);
        }
        self.pc = next;
        Ok(None)
    }

    /// Charges one instruction's cycles in pipeline mode: the retirement
    /// delta of a latched 4-stage in-order pipe (fetch / execute /
    /// memory / writeback). Each stage holds its instruction until the
    /// next stage accepts it, so stage `k` of this instruction starts at
    /// the later of its own stage `k-1` finishing and the previous
    /// instruction vacating stage `k` (= entering stage `k+1`). The
    /// latching bounds every residual by combinations of per-stage
    /// maxima, which is what keeps the abstract pipeline domain finite.
    /// `self.pipe` holds, relative to the previous instruction's
    /// retirement, how long ago it entered execute, memory, and
    /// writeback.
    fn charge_pipelined(&mut self, fetch: u32, exec: u32, mem: u32) {
        let (b1, b2, b3) = self.pipe;
        // Times relative to the previous instruction's retirement
        // (time 0); it entered stage k+1 at -b_k.
        let u1 = i64::from(fetch) - b1; // fetch completes
        let v2 = u1.max(-b2); // execute starts
        let d2 = v2 + i64::from(exec);
        let v3 = d2.max(-b3); // memory starts
        let d3 = v3 + i64::from(mem);
        let v4 = d3.max(0); // writeback starts
        let d4 = v4 + i64::from(self.config.timing.writeback);
        self.cycles += d4.unsigned_abs();
        self.pipe = (d4 - v2, d4 - v3, d4 - v4);
    }

    fn fetch_cost(&mut self, pc: Addr) -> u32 {
        let region_latency = self
            .config
            .memmap
            .region_at(pc)
            .map_or(1, |r| r.read_latency);
        let cacheable = self
            .config
            .memmap
            .region_at(pc)
            .is_some_and(|r| r.cacheable);
        match (&mut self.icache, cacheable) {
            (Some(cache), true) => match cache.access(pc) {
                AccessKind::Hit => cache.config().hit_latency,
                AccessKind::Miss => cache.config().hit_latency + region_latency,
            },
            _ => region_latency,
        }
    }

    fn data_cost(&mut self, addr: Addr, is_read: bool, pc: Addr) -> Result<u32, IsaError> {
        let region = self
            .config
            .memmap
            .region_at(addr)
            .ok_or(IsaError::MemoryFault { addr, pc })?;
        let latency = if is_read {
            region.read_latency
        } else {
            region.write_latency
        };
        Ok(match (&mut self.dcache, region.cacheable) {
            (Some(cache), true) => match cache.access(addr) {
                AccessKind::Hit => cache.config().hit_latency,
                AccessKind::Miss => cache.config().hit_latency + latency,
            },
            _ => latency,
        })
    }

    /// Performs a load and returns `(value, memory latency)`; the caller
    /// charges the latency (flat sum or pipelined).
    fn load(&mut self, addr: Addr, width: Width, pc: Addr) -> Result<(u32, u32), IsaError> {
        let latency = self.data_cost(addr, true, pc)?;
        let b = |mem: &HashMap<u32, u8>, i: u32| {
            u32::from(*mem.get(&(addr.0.wrapping_add(i))).unwrap_or(&0))
        };
        let value = match width {
            Width::Byte => b(&self.mem, 0),
            Width::Half => b(&self.mem, 0) | (b(&self.mem, 1) << 8),
            Width::Word => {
                b(&self.mem, 0)
                    | (b(&self.mem, 1) << 8)
                    | (b(&self.mem, 2) << 16)
                    | (b(&self.mem, 3) << 24)
            }
        };
        Ok((value, latency))
    }

    /// Performs a store and returns the memory latency for the caller to
    /// charge.
    fn store(&mut self, addr: Addr, width: Width, value: u32, pc: Addr) -> Result<u32, IsaError> {
        let latency = self.data_cost(addr, false, pc)?;
        let bytes = value.to_le_bytes();
        for i in 0..width.bytes() {
            self.mem.insert(addr.0.wrapping_add(i), bytes[i as usize]);
        }
        Ok(latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_src(src: &str) -> (Interpreter, Outcome) {
        let image = assemble(src).expect("assembles");
        let mut interp = Interpreter::new(&image, MemoryMap::default_embedded());
        let outcome = interp.run(1_000_000).expect("runs");
        (interp, outcome)
    }

    #[test]
    fn counter_loop_runs_to_completion() {
        let (interp, outcome) = run_src(
            "main: li r1, 5\n li r2, 0\nloop: addi r2, r2, 1\n subi r1, r1, 1\n bne r1, r0, loop\n halt",
        );
        assert_eq!(outcome.stop, StopReason::Halt);
        assert_eq!(interp.reg(Reg::new(2)), 5);
        // 5 iterations of 3 instructions plus 2 setup plus halt.
        assert_eq!(outcome.instructions, 2 + 5 * 3 + 1);
    }

    #[test]
    fn memory_round_trip_and_fault() {
        let (interp, _) =
            run_src("main: li r1, 0x100\n li r2, 0xabcd\n sw r2, 0(r1)\n lw r3, 0(r1)\n halt");
        assert_eq!(interp.reg(Reg::new(3)), 0xabcd);

        let image = assemble("main: li r1, 0x60000000\n lw r2, 0(r1)\n halt").unwrap();
        let mut interp = Interpreter::new(&image, MemoryMap::default_embedded());
        assert!(matches!(interp.run(100), Err(IsaError::MemoryFault { .. })));
    }

    #[test]
    fn call_and_return() {
        let (interp, outcome) =
            run_src("main: li r1, 1\n call f\n addi r1, r1, 10\n halt\nf: addi r1, r1, 100\n ret");
        assert_eq!(outcome.stop, StopReason::Halt);
        assert_eq!(interp.reg(Reg::new(1)), 111);
    }

    #[test]
    fn entry_return_sentinel_stops() {
        let (_, outcome) = run_src("main: li r1, 2\n ret");
        assert_eq!(outcome.stop, StopReason::ReturnedFromEntry);
    }

    #[test]
    fn select_is_branchless() {
        let (interp, outcome) = run_src(
            "main: li r1, 1\n li r2, 10\n li r3, 20\n sel r4, r1, r2, r3\n li r1, 0\n sel r5, r1, r2, r3\n halt",
        );
        assert_eq!(interp.reg(Reg::new(4)), 10);
        assert_eq!(interp.reg(Reg::new(5)), 20);
        assert_eq!(outcome.stop, StopReason::Halt);
    }

    #[test]
    fn float_loop_terminates_on_fblt() {
        // x = 0.0; while (x < 3.0) x += 1.0  — three iterations.
        let (_, outcome) = run_src(
            r#"
            main:
                li   r1, 0x3f800000       # 1.0f
                fmov f1, r1
                li   r1, 0x40400000       # 3.0f
                fmov f2, r1
                li   r1, 0
                fmov f0, r1               # x = 0.0
            loop:
                fadd f0, f0, f1
                fblt f0, f2, loop
                halt
            "#,
        );
        assert_eq!(outcome.stop, StopReason::Halt);
    }

    #[test]
    fn alloc_bumps_heap() {
        let (interp, _) = run_src("main: li r1, 16\n alloc r2, r1\n alloc r3, r1\n halt");
        let heap_base = MemoryMap::default_embedded().heap().unwrap().start.0;
        assert_eq!(interp.reg(Reg::new(2)), heap_base);
        assert_eq!(interp.reg(Reg::new(3)), heap_base + 16);
    }

    #[test]
    fn fuel_exhaustion_detected() {
        let image = assemble("main: j main").unwrap();
        let mut interp = Interpreter::new(&image, MemoryMap::default_embedded());
        assert!(matches!(
            interp.run(1000),
            Err(IsaError::FuelExhausted { budget: 1000 })
        ));
    }

    #[test]
    fn subword_loads_zero_extend() {
        let (interp, _) = run_src(
            r#"
            main: li r1, 0x100
                  li r2, 0xffffffff
                  sw r2, 0(r1)
                  lb r3, 0(r1)
                  lh r4, 0(r1)
                  lw r5, 0(r1)
                  halt
            "#,
        );
        assert_eq!(interp.reg(Reg::new(3)), 0xff, "byte load zero-extends");
        assert_eq!(interp.reg(Reg::new(4)), 0xffff, "half load zero-extends");
        assert_eq!(interp.reg(Reg::new(5)), 0xffff_ffff);
    }

    #[test]
    fn subword_stores_truncate() {
        let (interp, _) = run_src(
            r#"
            main: li r1, 0x100
                  li r2, 0x11223344
                  sw r2, 0(r1)
                  li r3, 0xaabb
                  sb r3, 0(r1)          # only 0xbb lands
                  lw r4, 0(r1)
                  sh r3, 0(r1)          # 0xaabb lands in the low half
                  lw r5, 0(r1)
                  halt
            "#,
        );
        assert_eq!(interp.reg(Reg::new(4)), 0x1122_33bb);
        assert_eq!(interp.reg(Reg::new(5)), 0x1122_aabb);
    }

    #[test]
    fn little_endian_byte_order() {
        let (interp, _) = run_src(
            "main: li r1, 0x100
 li r2, 0x11223344
 sw r2, 0(r1)
 lb r3, 0(r1)
 lb r4, 3(r1)
 halt",
        );
        assert_eq!(interp.reg(Reg::new(3)), 0x44, "LSB first");
        assert_eq!(interp.reg(Reg::new(4)), 0x11);
    }

    #[test]
    fn mmio_access_is_slow() {
        // Same program, one store to SRAM vs one to MMIO: MMIO costs more.
        let sram = run_src("main: li r1, 0x100\n sw r0, 0(r1)\n halt").1.cycles;
        let mmio = run_src("main: li r1, 0xf0000000\n sw r0, 0(r1)\n halt")
            .1
            .cycles;
        assert!(mmio > sram, "mmio {mmio} should exceed sram {sram}");
    }

    #[test]
    fn icache_speeds_up_loops() {
        // Code in flash: with an icache the loop body hits after iteration 1.
        let src = "
            .org 0x100000
            main: li r1, 50
            loop: subi r1, r1, 1
                  bne r1, r0, loop
                  halt";
        let image = assemble(src).unwrap();
        let mut plain = Interpreter::with_config(&image, MachineConfig::simple());
        let slow = plain.run(10_000).unwrap().cycles;
        let mut cached = Interpreter::with_config(&image, MachineConfig::with_caches());
        let fast = cached.run(10_000).unwrap().cycles;
        assert!(fast < slow, "cached {fast} should beat uncached {slow}");
    }

    fn run_with(src: &str, config: MachineConfig) -> Outcome {
        let image = assemble(src).expect("assembles");
        let mut interp = Interpreter::with_config(&image, config);
        interp.run(1_000_000).expect("runs")
    }

    #[test]
    fn pipeline_overlaps_but_respects_stage_occupancy() {
        // A dependent fdiv chain: the execute stage is serially occupied,
        // so the pipelined total is bounded below by the summed execute
        // costs, and above by the flat sum (overlap only ever helps when
        // nothing mispredicts).
        let src = "main: fdiv f1, f1, f1\n fdiv f1, f1, f1\n fdiv f1, f1, f1\n \
                   fdiv f1, f1, f1\n fdiv f1, f1, f1\n fdiv f1, f1, f1\n \
                   fdiv f1, f1, f1\n fdiv f1, f1, f1\n halt";
        let flat = run_with(src, MachineConfig::simple()).cycles;
        let piped = run_with(
            src,
            MachineConfig {
                pipeline: true,
                ..MachineConfig::simple()
            },
        )
        .cycles;
        let timing = TimingModel::new();
        let exec_sum = u64::from(timing.fdiv) * 8 + u64::from(timing.nop);
        assert!(piped >= exec_sum, "piped {piped} < execute sum {exec_sum}");
        assert!(piped < flat, "piped {piped} should beat flat {flat}");
    }

    #[test]
    fn mispredict_penalty_charged_per_mispredict() {
        // Backward loop branch: predicted taken, mispredicts exactly once
        // (the final fall-through). Zeroing the penalty changes nothing
        // else — the drain happens either way — so the cycle difference
        // is exactly one penalty.
        let src = "main: li r1, 5\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt";
        let base = MachineConfig {
            pipeline: true,
            ..MachineConfig::simple()
        };
        let mut free = base.clone();
        free.timing.mispredict_penalty = 0;
        let with_penalty = run_with(src, base.clone()).cycles;
        let without = run_with(src, free).cycles;
        assert_eq!(
            with_penalty - without,
            u64::from(base.timing.mispredict_penalty),
            "exactly one mispredict on loop exit"
        );

        // Forward branch that is taken: predicted not-taken, mispredicts.
        let fwd = "main: li r1, 1\n bne r1, r0, skip\n nop\nskip: halt";
        let mut free = base.clone();
        free.timing.mispredict_penalty = 0;
        let with_penalty = run_with(fwd, base.clone()).cycles;
        let without = run_with(fwd, free).cycles;
        assert_eq!(
            with_penalty - without,
            u64::from(base.timing.mispredict_penalty),
            "taken forward branch mispredicts under BTFNT"
        );
    }

    #[test]
    fn pipeline_flag_off_is_the_flat_model() {
        let src = "main: li r1, 3\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt";
        let a = run_with(src, MachineConfig::simple()).cycles;
        let b = run_with(
            src,
            MachineConfig {
                pipeline: false,
                ..MachineConfig::simple()
            },
        )
        .cycles;
        assert_eq!(a, b);
    }

    #[test]
    fn profile_counts_visits() {
        let (_, outcome) =
            run_src("main: li r1, 3\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt");
        let loop_addr = outcome
            .profile
            .iter()
            .find(|(_, &count)| count == 3)
            .map(|(a, _)| *a);
        assert!(loop_addr.is_some(), "loop body should execute 3 times");
    }
}
