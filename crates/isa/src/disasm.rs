//! Disassembly: binary images back to readable listings.
//!
//! Used by the CLI (`wcet --disasm`) and by reports that show the
//! worst-case path; symbol names from the image's table are interleaved
//! as labels.

use std::fmt::Write as _;

use crate::error::IsaError;
use crate::image::Image;
use crate::inst::Inst;

/// Renders the full code segment as an assembly-like listing with
/// addresses, raw words, symbols, and decoded instructions.
///
/// # Errors
///
/// Propagates decode failures (malformed words in the code segment).
///
/// # Example
///
/// ```
/// use wcet_isa::asm::assemble;
/// use wcet_isa::disasm::disassemble;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let image = assemble("main: li r1, 3\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt")?;
/// let listing = disassemble(&image)?;
/// assert!(listing.contains("loop:"));
/// assert!(listing.contains("bne"));
/// # Ok(())
/// # }
/// ```
pub fn disassemble(image: &Image) -> Result<String, IsaError> {
    let mut out = String::new();
    for (addr, inst) in image.decode_code()? {
        if let Some(name) = image.symbol_at(addr) {
            let _ = writeln!(out, "{name}:");
        }
        let word = image.code.word_at(addr).unwrap_or(0);
        let target_note = inst
            .direct_target()
            .and_then(|t| image.symbol_at(t))
            .map(|s| format!("   ; -> {s}"))
            .unwrap_or_default();
        let _ = writeln!(out, "  {addr}:  {word:08x}  {inst}{target_note}");
    }
    Ok(out)
}

/// Renders a single instruction with its symbolized target, for report
/// lines.
#[must_use]
pub fn render_inst(image: &Image, inst: &Inst) -> String {
    match inst.direct_target().and_then(|t| image.symbol_at(t)) {
        Some(name) => format!("{inst}   ; -> {name}"),
        None => inst.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn listing_contains_every_instruction() {
        let image = assemble(
            "main: li r1, 2\nloop: subi r1, r1, 1\n bne r1, r0, loop\n call f\n halt\nf: ret",
        )
        .unwrap();
        let listing = disassemble(&image).unwrap();
        assert_eq!(listing.lines().filter(|l| l.contains(":  ")).count(), 6);
        assert!(listing.contains("main:"));
        assert!(listing.contains("f:"));
        assert!(listing.contains("; -> loop"));
        assert!(listing.contains("; -> f"));
    }

    #[test]
    fn round_trip_reassembles() {
        // The disassembly of a label-free straight-line program can be
        // fed back (addresses stripped) — spot check the mnemonics.
        let image = assemble("main: addi r1, r0, 5\n mul r2, r1, r1\n halt").unwrap();
        let listing = disassemble(&image).unwrap();
        assert!(listing.contains("addi r1, r0, 5"));
        assert!(listing.contains("mul r2, r1, r1"));
        assert!(listing.contains("halt"));
    }
}
