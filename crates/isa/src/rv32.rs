//! RISC-V RV32I(+M subset) binary encoding of the semantic instruction set.
//!
//! This is the second backend behind the [`crate::arch`] boundary: the
//! *semantic* instruction set ([`crate::inst::Inst`]) stays shared, and this
//! module maps the encodable subset of it onto standard fixed-width RV32
//! words (opcode `[6:0]`, rd `[11:7]`, funct3 `[14:12]`, rs1 `[19:15]`,
//! rs2 `[24:20]`, funct7 `[31:25]`).
//!
//! ## Subset and mapping
//!
//! | semantic | RV32 encoding |
//! |---|---|
//! | `alu` Add/Sub/And/Or/Xor/Shl/Shr/Sra/Slt/Sltu | OP (`0x33`), standard funct3/funct7 |
//! | `alu` Mul/Mulhu | OP with funct7 `0000001` (RV32M `mul`/`mulhu`) |
//! | `alui` Add/And/Or/Xor/Slt/Sltu | OP-IMM (`0x13`), 12-bit signed immediate |
//! | `alui` Shl/Shr/Sra | OP-IMM shifts, 5-bit shamt |
//! | `lui` (semantic `rd = imm << 16`) | LUI with imm20 = `imm << 4` |
//! | `lb`/`lh`/`lw` (zero-extending) | LOAD `lbu`/`lhu`/`lw` |
//! | `sb`/`sh`/`sw` | STORE |
//! | branches | BRANCH (`beq`/`bne`/`blt`/`bge`/`bltu`/`bgeu`), ±4 KiB |
//! | `j` / `call` | JAL with rd = `x0` / rd = `x15` (the link register), ±1 MiB |
//! | `jr rs` / `callr rs` / `ret` | JALR offset 0 with rd = `x0`/`x15`/`x0`+rs1=`x15` |
//! | `nop` | canonical `addi x0, x0, 0` (`0x00000013`) |
//! | `halt` | `ebreak` (`0x00100073`) |
//!
//! Semantic registers `r0`–`r15` map to `x0`–`x15`; register fields ≥ 16
//! are decode errors. `alui` Sub/Mul/Mulhu, `sel`, all floating point, and
//! `alloc` have no RV32I encoding and return [`IsaError::Unencodable`]
//! (the program builder normalizes `subi` away; the others are simply
//! outside the subset). `jr lr` is rejected at encode time because its
//! word is exactly the `ret` encoding.
//!
//! Two deliberate asymmetries versus full RISC-V: loads decode only to the
//! zero-extending forms (`lb`/`lh` words are invalid fields — the semantic
//! ISA has no sign-extending loads), and LUI immediates must have their low
//! four bits clear so the 20-bit field reduces losslessly to the semantic
//! 16-bit-shift `lui`.

use crate::error::IsaError;
use crate::inst::{Addr, AluOp, Cond, Inst, Reg, Width};

/// The ISA name used in error messages.
pub(crate) const NAME: &str = "rv32i";

/// Canonical `nop` word: `addi x0, x0, 0`.
pub const NOP_WORD: u32 = 0x0000_0013;
/// `ebreak`, used as the machine stop.
pub const HALT_WORD: u32 = 0x0010_0073;

mod opcode {
    pub const OP: u32 = 0x33;
    pub const OP_IMM: u32 = 0x13;
    pub const LUI: u32 = 0x37;
    pub const LOAD: u32 = 0x03;
    pub const STORE: u32 = 0x23;
    pub const BRANCH: u32 = 0x63;
    pub const JAL: u32 = 0x6f;
    pub const JALR: u32 = 0x67;
    pub const SYSTEM: u32 = 0x73;
}

fn unencodable(what: &'static str, at: Addr) -> IsaError {
    IsaError::Unencodable {
        isa: NAME,
        what,
        at: Some(at),
    }
}

/// funct3/funct7 for register-register ALU ops (RV32I + RV32M subset).
fn alu_functs(op: AluOp) -> (u32, u32) {
    match op {
        AluOp::Add => (0b000, 0x00),
        AluOp::Sub => (0b000, 0x20),
        AluOp::Mul => (0b000, 0x01),
        AluOp::Mulhu => (0b011, 0x01),
        AluOp::And => (0b111, 0x00),
        AluOp::Or => (0b110, 0x00),
        AluOp::Xor => (0b100, 0x00),
        AluOp::Shl => (0b001, 0x00),
        AluOp::Shr => (0b101, 0x00),
        AluOp::Sra => (0b101, 0x20),
        AluOp::Slt => (0b010, 0x00),
        AluOp::Sltu => (0b011, 0x00),
    }
}

fn cond_funct3(cond: Cond) -> u32 {
    match cond {
        Cond::Eq => 0b000,
        Cond::Ne => 0b001,
        Cond::Lt => 0b100,
        Cond::Ge => 0b101,
        Cond::Ltu => 0b110,
        Cond::Geu => 0b111,
    }
}

fn check_imm12(value: i32, at: Addr) -> Result<u32, IsaError> {
    if (-2048..=2047).contains(&value) {
        Ok((value as u32) & 0xfff)
    } else {
        Err(IsaError::ImmediateOutOfRange {
            value: i64::from(value),
            at: Some(at),
        })
    }
}

fn check_shamt(value: i32, at: Addr) -> Result<u32, IsaError> {
    if (0..=31).contains(&value) {
        Ok(value as u32)
    } else {
        Err(IsaError::ImmediateOutOfRange {
            value: i64::from(value),
            at: Some(at),
        })
    }
}

/// Byte displacement from `from` to `to`, checked for 4-byte alignment and
/// signed range `[-(1 << (bits - 1)), (1 << (bits - 1)) - 1]` bytes.
fn byte_disp(from: Addr, to: Addr, bits: u32) -> Result<i32, IsaError> {
    if !to.is_aligned() {
        return Err(IsaError::MisalignedTarget { target: to });
    }
    let diff = (to.0.wrapping_sub(from.0)) as i32;
    if diff % 4 != 0 {
        return Err(IsaError::MisalignedTarget { target: to });
    }
    let wide = i64::from(diff);
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if wide < min || wide > max {
        return Err(IsaError::DisplacementOutOfRange { from, to });
    }
    Ok(diff)
}

fn r_type(f7: u32, rs2: u32, rs1: u32, f3: u32, rd: u32, opc: u32) -> u32 {
    (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | opc
}

fn i_type(imm12: u32, rs1: u32, f3: u32, rd: u32, opc: u32) -> u32 {
    (imm12 << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | opc
}

fn s_type(imm12: u32, rs2: u32, rs1: u32, f3: u32) -> u32 {
    ((imm12 >> 5) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (f3 << 12)
        | ((imm12 & 0x1f) << 7)
        | opcode::STORE
}

/// B-type: imm[12|10:5] in [31:25], imm[4:1|11] in [11:7].
fn b_type(disp: i32, rs2: u32, rs1: u32, f3: u32) -> u32 {
    let imm = disp as u32;
    (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3f) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (f3 << 12)
        | (((imm >> 1) & 0xf) << 8)
        | (((imm >> 11) & 1) << 7)
        | opcode::BRANCH
}

/// J-type: imm[20|10:1|11|19:12] in [31:12].
fn j_type(disp: i32, rd: u32) -> u32 {
    let imm = disp as u32;
    (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xff) << 12)
        | (rd << 7)
        | opcode::JAL
}

fn r(reg: Reg) -> u32 {
    reg.index() as u32
}

/// Encodes a single instruction located at `at` into its RV32 word.
///
/// # Errors
///
/// [`IsaError::Unencodable`] for semantic shapes outside the RV32I subset
/// (`sel`, floating point, `alloc`, `subi`/`muli` forms, `jr lr`), plus the
/// usual immediate-range, displacement-range, and alignment failures.
pub fn encode(inst: &Inst, at: Addr) -> Result<u32, IsaError> {
    Ok(match *inst {
        Inst::Nop => NOP_WORD,
        Inst::Halt => HALT_WORD,
        Inst::Ret => i_type(0, r(Reg::LINK), 0b000, 0, opcode::JALR),
        Inst::Alu { op, rd, rs1, rs2 } => {
            let (f3, f7) = alu_functs(op);
            r_type(f7, r(rs2), r(rs1), f3, r(rd), opcode::OP)
        }
        Inst::AluImm { op, rd, rs1, imm } => {
            let f3 = match op {
                AluOp::Add => 0b000,
                AluOp::Slt => 0b010,
                AluOp::Sltu => 0b011,
                AluOp::Xor => 0b100,
                AluOp::Or => 0b110,
                AluOp::And => 0b111,
                AluOp::Shl | AluOp::Shr | AluOp::Sra => {
                    let shamt = check_shamt(imm, at)?;
                    let (f3, f7) = match op {
                        AluOp::Shl => (0b001, 0x00),
                        AluOp::Shr => (0b101, 0x00),
                        _ => (0b101, 0x20),
                    };
                    return Ok(i_type((f7 << 5) | shamt, r(rs1), f3, r(rd), opcode::OP_IMM));
                }
                AluOp::Sub => return Err(unencodable("immediate subtract", at)),
                AluOp::Mul => return Err(unencodable("immediate multiply", at)),
                AluOp::Mulhu => return Err(unencodable("immediate multiply-high", at)),
            };
            i_type(check_imm12(imm, at)?, r(rs1), f3, r(rd), opcode::OP_IMM)
        }
        Inst::Lui { rd, imm } => {
            if imm > 0xffff {
                return Err(IsaError::ImmediateOutOfRange {
                    value: i64::from(imm),
                    at: Some(at),
                });
            }
            // Semantic `lui` shifts by 16; RV32 LUI shifts by 12, so the
            // 20-bit field carries `imm << 4` (low four bits clear).
            ((imm << 4) << 12) | (r(rd) << 7) | opcode::LUI
        }
        Inst::Load {
            width,
            rd,
            base,
            offset,
        } => {
            // Zero-extending loads only (the semantic ISA has no others).
            let f3 = match width {
                Width::Byte => 0b100, // lbu
                Width::Half => 0b101, // lhu
                Width::Word => 0b010, // lw
            };
            i_type(check_imm12(offset, at)?, r(base), f3, r(rd), opcode::LOAD)
        }
        Inst::Store {
            width,
            rs,
            base,
            offset,
        } => {
            let f3 = match width {
                Width::Byte => 0b000,
                Width::Half => 0b001,
                Width::Word => 0b010,
            };
            s_type(check_imm12(offset, at)?, r(rs), r(base), f3)
        }
        Inst::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => b_type(
            byte_disp(at, target, 13)?,
            r(rs2),
            r(rs1),
            cond_funct3(cond),
        ),
        Inst::Jump { target } => j_type(byte_disp(at, target, 21)?, 0),
        Inst::Call { target } => j_type(byte_disp(at, target, 21)?, r(Reg::LINK)),
        Inst::JumpInd { rs } => {
            if rs == Reg::LINK {
                // `jalr x0, 0(x15)` is exactly the `ret` word.
                return Err(unencodable("indirect jump through the link register", at));
            }
            i_type(0, r(rs), 0b000, 0, opcode::JALR)
        }
        Inst::CallInd { rs } => i_type(0, r(rs), 0b000, r(Reg::LINK), opcode::JALR),
        Inst::FBranch { .. } => return Err(unencodable("floating-point branch", at)),
        Inst::Select { .. } => return Err(unencodable("predicated select", at)),
        Inst::FAlu { .. } => return Err(unencodable("floating-point arithmetic", at)),
        Inst::FMov { .. } => return Err(unencodable("floating-point move", at)),
        Inst::FCvt { .. } => return Err(unencodable("floating-point convert", at)),
        Inst::Alloc { .. } => return Err(unencodable("heap allocation", at)),
    })
}

/// Encodes a whole instruction sequence starting at `base`, one word each.
///
/// # Errors
///
/// Propagates the first encoding failure, annotated with its address.
pub fn encode_all(insts: &[Inst], base: Addr) -> Result<Vec<u32>, IsaError> {
    insts
        .iter()
        .enumerate()
        .map(|(i, inst)| encode(inst, base.offset(4 * i as i64)))
        .collect()
}

fn field(word: u32, hi: u32, lo: u32) -> u32 {
    (word >> lo) & ((1u32 << (hi - lo + 1)) - 1)
}

fn reg_field(word: u32, hi: u32, lo: u32, at: Addr) -> Result<Reg, IsaError> {
    let value = field(word, hi, lo);
    if value < Reg::COUNT as u32 {
        Ok(Reg::new(value as u8))
    } else {
        Err(IsaError::InvalidField {
            field: "register",
            value,
            at,
        })
    }
}

fn sext(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

fn imm_i(word: u32) -> i32 {
    sext(field(word, 31, 20), 12)
}

fn invalid(field: &'static str, value: u32, at: Addr) -> IsaError {
    IsaError::InvalidField { field, value, at }
}

/// Decodes the RV32 word at address `at`.
///
/// # Errors
///
/// [`IsaError::UnknownOpcode`] for opcodes outside the subset and
/// [`IsaError::InvalidField`] for malformed sub-fields (registers ≥ 16,
/// unknown funct codes, sign-extending loads, nonzero `jalr` offsets,
/// LUI immediates below the 16-bit granularity).
pub fn decode(word: u32, at: Addr) -> Result<Inst, IsaError> {
    match word & 0x7f {
        _ if word == NOP_WORD => Ok(Inst::Nop),
        opcode::SYSTEM => {
            if word == HALT_WORD {
                Ok(Inst::Halt)
            } else {
                Err(invalid("system function", word >> 7, at))
            }
        }
        opcode::OP => {
            let (f3, f7) = (field(word, 14, 12), field(word, 31, 25));
            let op = AluOp::ALL
                .iter()
                .copied()
                .find(|&op| alu_functs(op) == (f3, f7))
                .ok_or_else(|| invalid("alu function", (f7 << 3) | f3, at))?;
            Ok(Inst::Alu {
                op,
                rd: reg_field(word, 11, 7, at)?,
                rs1: reg_field(word, 19, 15, at)?,
                rs2: reg_field(word, 24, 20, at)?,
            })
        }
        opcode::OP_IMM => {
            let rd = reg_field(word, 11, 7, at)?;
            let rs1 = reg_field(word, 19, 15, at)?;
            let (op, imm) = match field(word, 14, 12) {
                0b000 => (AluOp::Add, imm_i(word)),
                0b010 => (AluOp::Slt, imm_i(word)),
                0b011 => (AluOp::Sltu, imm_i(word)),
                0b100 => (AluOp::Xor, imm_i(word)),
                0b110 => (AluOp::Or, imm_i(word)),
                0b111 => (AluOp::And, imm_i(word)),
                0b001 => {
                    let f7 = field(word, 31, 25);
                    if f7 != 0 {
                        return Err(invalid("shift function", f7, at));
                    }
                    (AluOp::Shl, field(word, 24, 20) as i32)
                }
                0b101 => {
                    let op = match field(word, 31, 25) {
                        0x00 => AluOp::Shr,
                        0x20 => AluOp::Sra,
                        f7 => return Err(invalid("shift function", f7, at)),
                    };
                    (op, field(word, 24, 20) as i32)
                }
                _ => unreachable!("funct3 is 3 bits"),
            };
            Ok(Inst::AluImm { op, rd, rs1, imm })
        }
        opcode::LUI => {
            let imm20 = field(word, 31, 12);
            if imm20 & 0xf != 0 {
                return Err(invalid("lui immediate", imm20, at));
            }
            Ok(Inst::Lui {
                rd: reg_field(word, 11, 7, at)?,
                imm: imm20 >> 4,
            })
        }
        opcode::LOAD => {
            let width = match field(word, 14, 12) {
                0b010 => Width::Word,
                0b100 => Width::Byte,
                0b101 => Width::Half,
                f3 => return Err(invalid("load width", f3, at)),
            };
            Ok(Inst::Load {
                width,
                rd: reg_field(word, 11, 7, at)?,
                base: reg_field(word, 19, 15, at)?,
                offset: imm_i(word),
            })
        }
        opcode::STORE => {
            let width = match field(word, 14, 12) {
                0b000 => Width::Byte,
                0b001 => Width::Half,
                0b010 => Width::Word,
                f3 => return Err(invalid("store width", f3, at)),
            };
            let imm = sext((field(word, 31, 25) << 5) | field(word, 11, 7), 12);
            Ok(Inst::Store {
                width,
                rs: reg_field(word, 24, 20, at)?,
                base: reg_field(word, 19, 15, at)?,
                offset: imm,
            })
        }
        opcode::BRANCH => {
            let f3 = field(word, 14, 12);
            let cond = Cond::ALL
                .iter()
                .copied()
                .find(|&c| cond_funct3(c) == f3)
                .ok_or_else(|| invalid("branch condition", f3, at))?;
            let imm = (field(word, 31, 31) << 12)
                | (field(word, 7, 7) << 11)
                | (field(word, 30, 25) << 5)
                | (field(word, 11, 8) << 1);
            Ok(Inst::Branch {
                cond,
                rs1: reg_field(word, 19, 15, at)?,
                rs2: reg_field(word, 24, 20, at)?,
                target: at.offset(i64::from(sext(imm, 13))),
            })
        }
        opcode::JAL => {
            let imm = (field(word, 31, 31) << 20)
                | (field(word, 19, 12) << 12)
                | (field(word, 20, 20) << 11)
                | (field(word, 30, 21) << 1);
            let target = at.offset(i64::from(sext(imm, 21)));
            match field(word, 11, 7) {
                0 => Ok(Inst::Jump { target }),
                x if x == Reg::LINK.index() as u32 => Ok(Inst::Call { target }),
                rd => Err(invalid("jal link register", rd, at)),
            }
        }
        opcode::JALR => {
            if field(word, 14, 12) != 0 {
                return Err(invalid("jalr function", field(word, 14, 12), at));
            }
            if imm_i(word) != 0 {
                return Err(invalid("jalr offset", field(word, 31, 20), at));
            }
            let rs1 = reg_field(word, 19, 15, at)?;
            match field(word, 11, 7) {
                0 if rs1 == Reg::LINK => Ok(Inst::Ret),
                0 => Ok(Inst::JumpInd { rs: rs1 }),
                x if x == Reg::LINK.index() as u32 => Ok(Inst::CallInd { rs: rs1 }),
                rd => Err(invalid("jalr link register", rd, at)),
            }
        }
        opc => Err(IsaError::UnknownOpcode {
            opcode: opc as u8,
            at,
        }),
    }
}

/// Decodes a contiguous region of words starting at `base`.
///
/// # Errors
///
/// Propagates the first decode failure.
pub fn decode_region(words: &[u32], base: Addr) -> Result<Vec<(Addr, Inst)>, IsaError> {
    words
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let at = base.offset(4 * i as i64);
            decode(w, at).map(|inst| (at, inst))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::FReg;

    fn round_trip(inst: Inst, at: Addr) {
        let word = encode(&inst, at).unwrap_or_else(|e| panic!("{inst} encodes: {e}"));
        let back =
            decode(word, at).unwrap_or_else(|e| panic!("{inst} (0x{word:08x}) decodes: {e}"));
        assert_eq!(back, inst, "word 0x{word:08x}");
    }

    #[test]
    fn canonical_words() {
        assert_eq!(encode(&Inst::Nop, Addr(0)).unwrap(), 0x0000_0013);
        assert_eq!(encode(&Inst::Halt, Addr(0)).unwrap(), 0x0010_0073);
        assert_eq!(decode(0x0000_0013, Addr(0)).unwrap(), Inst::Nop);
        assert_eq!(decode(0x0010_0073, Addr(0)).unwrap(), Inst::Halt);
    }

    #[test]
    fn alu_round_trips() {
        let at = Addr(0x1000);
        for &op in AluOp::ALL.iter() {
            round_trip(
                Inst::Alu {
                    op,
                    rd: Reg::new(3),
                    rs1: Reg::new(14),
                    rs2: Reg::new(7),
                },
                at,
            );
        }
    }

    #[test]
    fn alui_round_trips_and_rejections() {
        let at = Addr(0x1000);
        for (op, imm) in [
            (AluOp::Add, -2048),
            (AluOp::Add, 2047),
            (AluOp::And, -1),
            (AluOp::Or, 0x7ff),
            (AluOp::Xor, -7),
            (AluOp::Slt, 5),
            (AluOp::Sltu, 9),
            (AluOp::Shl, 31),
            (AluOp::Shr, 0),
            (AluOp::Sra, 11),
        ] {
            round_trip(
                Inst::AluImm {
                    op,
                    rd: Reg::new(1),
                    rs1: Reg::new(2),
                    imm,
                },
                at,
            );
        }
        for op in [AluOp::Sub, AluOp::Mul, AluOp::Mulhu] {
            let inst = Inst::AluImm {
                op,
                rd: Reg::new(1),
                rs1: Reg::new(2),
                imm: 1,
            };
            assert!(matches!(
                encode(&inst, at),
                Err(IsaError::Unencodable { isa: "rv32i", .. })
            ));
        }
        let wide = Inst::AluImm {
            op: AluOp::Add,
            rd: Reg::new(1),
            rs1: Reg::new(2),
            imm: 2048,
        };
        assert!(matches!(
            encode(&wide, at),
            Err(IsaError::ImmediateOutOfRange { .. })
        ));
        let shamt = Inst::AluImm {
            op: AluOp::Shl,
            rd: Reg::new(1),
            rs1: Reg::new(2),
            imm: 32,
        };
        assert!(matches!(
            encode(&shamt, at),
            Err(IsaError::ImmediateOutOfRange { .. })
        ));
    }

    #[test]
    fn memory_and_lui_round_trips() {
        let at = Addr(0x1000);
        for width in Width::ALL {
            round_trip(
                Inst::Load {
                    width,
                    rd: Reg::new(4),
                    base: Reg::SP,
                    offset: -8,
                },
                at,
            );
            round_trip(
                Inst::Store {
                    width,
                    rs: Reg::new(4),
                    base: Reg::SP,
                    offset: 2047,
                },
                at,
            );
        }
        round_trip(
            Inst::Lui {
                rd: Reg::new(9),
                imm: 0xffff,
            },
            at,
        );
        assert!(matches!(
            encode(
                &Inst::Lui {
                    rd: Reg::new(9),
                    imm: 0x1_0000
                },
                at
            ),
            Err(IsaError::ImmediateOutOfRange { .. })
        ));
        // A raw RV32 `lui` whose imm20 is not 16-bit-granular cannot be
        // represented semantically.
        let fine_grained = (0x12345u32 << 12) | (1 << 7) | 0x37;
        assert!(matches!(
            decode(fine_grained, at),
            Err(IsaError::InvalidField {
                field: "lui immediate",
                ..
            })
        ));
    }

    #[test]
    fn sign_extending_loads_rejected() {
        // lb r1, 0(r2) would be funct3 000 under LOAD.
        let lb = (2u32 << 15) | (1 << 7) | 0x03;
        assert!(matches!(
            decode(lb, Addr(0)),
            Err(IsaError::InvalidField {
                field: "load width",
                ..
            })
        ));
    }

    #[test]
    fn control_flow_round_trips() {
        let at = Addr(0x1000);
        for &cond in Cond::ALL.iter() {
            round_trip(
                Inst::Branch {
                    cond,
                    rs1: Reg::new(1),
                    rs2: Reg::new(2),
                    target: Addr(0x1ffc),
                },
                at,
            );
        }
        round_trip(
            Inst::Jump {
                target: Addr(0x800),
            },
            at,
        );
        round_trip(
            Inst::Call {
                target: Addr(0x10_0ffc),
            },
            at,
        );
        round_trip(Inst::JumpInd { rs: Reg::new(3) }, at);
        round_trip(Inst::CallInd { rs: Reg::new(3) }, at);
        round_trip(Inst::CallInd { rs: Reg::LINK }, at);
        round_trip(Inst::Ret, at);
    }

    #[test]
    fn branch_reach_is_4k() {
        let at = Addr(0x10000);
        let near = Inst::Branch {
            cond: Cond::Eq,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            target: Addr(0x10000 + 4092),
        };
        assert!(encode(&near, at).is_ok());
        let far = Inst::Branch {
            cond: Cond::Eq,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            target: Addr(0x10000 + 4096),
        };
        assert!(matches!(
            encode(&far, at),
            Err(IsaError::DisplacementOutOfRange { .. })
        ));
        let misaligned = Inst::Jump {
            target: Addr(0x10002),
        };
        assert!(matches!(
            encode(&misaligned, at),
            Err(IsaError::MisalignedTarget { .. })
        ));
    }

    #[test]
    fn jr_through_link_register_rejected() {
        // Its encoding would be byte-identical to `ret`.
        assert!(matches!(
            encode(&Inst::JumpInd { rs: Reg::LINK }, Addr(0)),
            Err(IsaError::Unencodable { .. })
        ));
    }

    #[test]
    fn unencodable_shapes() {
        let at = Addr(0);
        for inst in [
            Inst::Select {
                rd: Reg::new(1),
                rc: Reg::new(2),
                rt: Reg::new(3),
                rf: Reg::new(4),
            },
            Inst::FMov {
                fd: FReg::new(0),
                rs: Reg::new(1),
            },
            Inst::Alloc {
                rd: Reg::new(1),
                rs: Reg::new(2),
            },
        ] {
            assert!(matches!(
                encode(&inst, at),
                Err(IsaError::Unencodable { isa: "rv32i", .. })
            ));
        }
    }

    #[test]
    fn malformed_words_rejected() {
        let at = Addr(0);
        // Unknown major opcode.
        assert!(matches!(
            decode(0x0000_007f, at),
            Err(IsaError::UnknownOpcode { .. })
        ));
        // Register field ≥ 16 (x17 as rd of an add).
        let x17_rd = r_type(0, 1, 2, 0, 17, opcode::OP);
        assert!(matches!(
            decode(x17_rd, at),
            Err(IsaError::InvalidField {
                field: "register",
                ..
            })
        ));
        // jalr with a nonzero offset.
        let jalr_off = i_type(8, 1, 0, 0, opcode::JALR);
        assert!(matches!(
            decode(jalr_off, at),
            Err(IsaError::InvalidField {
                field: "jalr offset",
                ..
            })
        ));
        // Unknown ALU funct7.
        let bad_funct = r_type(0x11, 1, 2, 0, 3, opcode::OP);
        assert!(matches!(
            decode(bad_funct, at),
            Err(IsaError::InvalidField {
                field: "alu function",
                ..
            })
        ));
    }

    #[test]
    fn decode_region_addresses() {
        let insts = [
            Inst::Nop,
            Inst::Jump {
                target: Addr(0x1000),
            },
            Inst::Halt,
        ];
        let words = encode_all(&insts, Addr(0x1000)).unwrap();
        let decoded = decode_region(&words, Addr(0x1000)).unwrap();
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[1], (Addr(0x1004), insts[1]));
    }
}
