//! The base instruction cost model.
//!
//! Static pipeline analysis (in `wcet-micro`) and the concrete interpreter
//! ([`crate::interp`]) share this model, which is what makes the soundness
//! invariant — observed cycles ≤ computed WCET bound — checkable: both
//! sides charge identical base costs and differ only in how memory access
//! latencies are resolved (concrete cache simulation vs. abstract cache
//! classification).
//!
//! Costs are *execution* cycles excluding memory: instruction fetch and
//! load/store latencies are added on top from the [`crate::memmap`] region
//! latencies and the cache model.

use crate::inst::{AluOp, FAluOp, Inst};

/// Base cycle costs per instruction class for an in-order single-issue
/// pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingModel {
    /// Simple integer ALU operation.
    pub alu: u32,
    /// Integer multiply (both low and high word).
    pub mul: u32,
    /// Floating-point add/sub/mul.
    pub falu: u32,
    /// Floating-point divide.
    pub fdiv: u32,
    /// Conditional branch when taken (includes the pipeline refill).
    pub branch_taken: u32,
    /// Conditional branch when it falls through.
    pub branch_not_taken: u32,
    /// Direct unconditional jump.
    pub jump: u32,
    /// Direct call (link-register write + refill).
    pub call: u32,
    /// Indirect jump/call and return (target known late → longer refill).
    pub indirect: u32,
    /// Address-generation part of a load/store (memory latency separate).
    pub mem_issue: u32,
    /// Heap allocation (models the allocator library routine).
    pub alloc: u32,
    /// Predicated select.
    pub select: u32,
    /// Nop / halt.
    pub nop: u32,
    /// Cycles a mispredicted conditional branch costs under the static
    /// BTFNT (backward-taken / forward-not-taken) predictor, on top of
    /// the branch's base cost. Charged only in pipeline timing mode.
    pub mispredict_penalty: u32,
    /// Writeback stage occupancy per instruction (pipeline timing mode
    /// only; the flat model folds retirement into the base cost).
    pub writeback: u32,
}

impl TimingModel {
    /// The default model used across examples, tests, and benches.
    #[must_use]
    pub fn new() -> TimingModel {
        TimingModel {
            alu: 1,
            mul: 3,
            falu: 4,
            fdiv: 16,
            branch_taken: 3,
            branch_not_taken: 1,
            jump: 2,
            call: 2,
            indirect: 4,
            mem_issue: 1,
            alloc: 24,
            select: 1,
            nop: 1,
            mispredict_penalty: 8,
            writeback: 1,
        }
    }

    /// The RV32I backend's model: cheaper control flow (short pipeline,
    /// target known early for direct jumps) but a dearer multiplier and
    /// a software-modelled allocator. Distinct from [`TimingModel::new`]
    /// on purpose — cross-ISA cycle counts must differ for the cross-ISA
    /// goldens to pin anything interesting.
    #[must_use]
    pub fn rv32i() -> TimingModel {
        TimingModel {
            alu: 1,
            mul: 4,
            falu: 6,
            fdiv: 20,
            branch_taken: 2,
            branch_not_taken: 1,
            jump: 1,
            call: 1,
            indirect: 3,
            mem_issue: 1,
            alloc: 30,
            select: 1,
            nop: 1,
            mispredict_penalty: 5,
            writeback: 1,
        }
    }

    /// Base cost of `inst`, excluding memory latency; for conditional
    /// branches this is the *not-taken* cost (the taken surcharge is
    /// [`TimingModel::taken_surcharge`]).
    #[must_use]
    pub fn base_cost(&self, inst: &Inst) -> u32 {
        match inst {
            Inst::Alu { op, .. } | Inst::AluImm { op, .. } => match op {
                AluOp::Mul | AluOp::Mulhu => self.mul,
                _ => self.alu,
            },
            Inst::Lui { .. } => self.alu,
            Inst::Load { .. } | Inst::Store { .. } => self.mem_issue,
            Inst::Branch { .. } | Inst::FBranch { .. } => self.branch_not_taken,
            Inst::Jump { .. } => self.jump,
            Inst::Call { .. } => self.call,
            Inst::JumpInd { .. } | Inst::CallInd { .. } | Inst::Ret => self.indirect,
            Inst::Select { .. } => self.select,
            Inst::FAlu { op, .. } => match op {
                FAluOp::FDiv => self.fdiv,
                _ => self.falu,
            },
            Inst::FMov { .. } | Inst::FCvt { .. } => self.falu,
            Inst::Alloc { .. } => self.alloc,
            Inst::Nop | Inst::Halt => self.nop,
        }
    }

    /// Extra cycles a conditional branch costs when taken rather than
    /// falling through.
    #[must_use]
    pub fn taken_surcharge(&self) -> u32 {
        self.branch_taken.saturating_sub(self.branch_not_taken)
    }

    /// Worst-case base cost: like [`TimingModel::base_cost`] but charging
    /// conditional branches their taken cost. This is what a per-block
    /// upper bound must use when the successor is unknown.
    #[must_use]
    pub fn worst_base_cost(&self, inst: &Inst) -> u32 {
        match inst {
            Inst::Branch { .. } | Inst::FBranch { .. } => self.branch_taken,
            _ => self.base_cost(inst),
        }
    }

    /// The static BTFNT predictor's decision for a conditional branch at
    /// `pc` targeting `target`: backward branches (loop latches) predict
    /// taken, forward branches predict not-taken. Purely a function of
    /// the two addresses, so the interpreter and the static analysis
    /// cannot disagree.
    #[must_use]
    pub fn btfnt_predicts_taken(pc: crate::inst::Addr, target: crate::inst::Addr) -> bool {
        target <= pc
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Addr, Cond, Reg};

    #[test]
    fn branch_costs_ordered() {
        let t = TimingModel::new();
        let b = Inst::Branch {
            cond: Cond::Eq,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            target: Addr(0),
        };
        assert!(t.worst_base_cost(&b) >= t.base_cost(&b));
        assert_eq!(t.worst_base_cost(&b) - t.base_cost(&b), t.taken_surcharge());
    }

    #[test]
    fn multiply_dearer_than_add() {
        let t = TimingModel::new();
        let add = Inst::Alu {
            op: AluOp::Add,
            rd: Reg::new(1),
            rs1: Reg::new(1),
            rs2: Reg::new(1),
        };
        let mul = Inst::Alu {
            op: AluOp::Mul,
            rd: Reg::new(1),
            rs1: Reg::new(1),
            rs2: Reg::new(1),
        };
        assert!(t.base_cost(&mul) > t.base_cost(&add));
    }

    #[test]
    fn worst_equals_base_for_non_branches() {
        let t = TimingModel::new();
        for inst in [
            Inst::Nop,
            Inst::Halt,
            Inst::Ret,
            Inst::Jump { target: Addr(0) },
        ] {
            assert_eq!(t.base_cost(&inst), t.worst_base_cost(&inst));
        }
    }
}
