//! Memory maps with per-region access latencies.
//!
//! The paper's Section 4.3 ("Imprecise Memory Accesses") explains that when
//! a memory access address cannot be determined statically, the pipeline
//! analysis "has to assume that any memory module might be the target … the
//! slowest memory module will thus contribute the most to the overall WCET
//! bound". The [`MemoryMap`] is the ground truth those analyses (and the
//! concrete interpreter) share: a set of disjoint [`Region`]s, each with a
//! kind, read/write latency, and cacheability.

use std::fmt;

use crate::inst::Addr;

/// The kind of a memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// On-chip scratchpad / SRAM: fast, cacheable.
    Sram,
    /// Program flash: slow reads, typically where code lives.
    Flash,
    /// Memory-mapped I/O (CAN/FlexRay controllers in the paper): slow and
    /// never cacheable, with read side effects.
    Mmio,
    /// The dynamic heap backing [`crate::inst::Inst::Alloc`].
    Heap,
    /// Stack memory.
    Stack,
}

impl fmt::Display for RegionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RegionKind::Sram => "sram",
            RegionKind::Flash => "flash",
            RegionKind::Mmio => "mmio",
            RegionKind::Heap => "heap",
            RegionKind::Stack => "stack",
        };
        f.write_str(s)
    }
}

/// One contiguous region of the physical address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Human-readable name (used in analysis reports).
    pub name: String,
    /// First byte address.
    pub start: Addr,
    /// One past the last byte address.
    pub end: Addr,
    /// Region kind.
    pub kind: RegionKind,
    /// Cycles for a read that misses every cache (or is uncacheable).
    pub read_latency: u32,
    /// Cycles for a write that misses every cache (or is uncacheable).
    pub write_latency: u32,
    /// Whether accesses to this region may be cached.
    pub cacheable: bool,
}

impl Region {
    /// Returns true if `addr` lies inside the region.
    #[must_use]
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Size of the region in bytes.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.end.0 - self.start.0
    }

    /// Returns true if the region is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A full memory map: a list of disjoint regions.
///
/// # Example
///
/// ```
/// use wcet_isa::memmap::{MemoryMap, RegionKind};
/// use wcet_isa::Addr;
///
/// let map = MemoryMap::default_embedded();
/// let sram = map.region_at(Addr(0x0000_1000)).expect("sram mapped");
/// assert_eq!(sram.kind, RegionKind::Sram);
/// // An unknown access must be charged the slowest latency in the map:
/// assert!(map.worst_read_latency() >= sram.read_latency);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryMap {
    regions: Vec<Region>,
}

impl MemoryMap {
    /// Creates a map from regions.
    ///
    /// # Panics
    ///
    /// Panics if any two regions overlap, since that would make latency
    /// lookup ambiguous.
    #[must_use]
    pub fn new(mut regions: Vec<Region>) -> MemoryMap {
        regions.sort_by_key(|r| r.start);
        for pair in regions.windows(2) {
            assert!(
                pair[0].end <= pair[1].start,
                "memory regions `{}` and `{}` overlap",
                pair[0].name,
                pair[1].name
            );
        }
        MemoryMap { regions }
    }

    /// The default embedded memory map used across examples and tests:
    ///
    /// | region | range | read/write latency | cacheable |
    /// |---|---|---|---|
    /// | sram  | `0x0000_0000..0x0010_0000` | 1/1 | yes |
    /// | flash | `0x0010_0000..0x0080_0000` | 10/20 | yes |
    /// | heap  | `0x2000_0000..0x2010_0000` | 4/4 | yes |
    /// | stack | `0x3000_0000..0x3001_0000` | 1/1 | yes |
    /// | mmio  | `0xf000_0000..0xf001_0000` | 30/30 | no |
    #[must_use]
    pub fn default_embedded() -> MemoryMap {
        MemoryMap::new(vec![
            Region {
                name: "sram".to_owned(),
                start: Addr(0x0000_0000),
                end: Addr(0x0010_0000),
                kind: RegionKind::Sram,
                read_latency: 1,
                write_latency: 1,
                cacheable: true,
            },
            Region {
                name: "flash".to_owned(),
                start: Addr(0x0010_0000),
                end: Addr(0x0080_0000),
                kind: RegionKind::Flash,
                read_latency: 10,
                write_latency: 20,
                cacheable: true,
            },
            Region {
                name: "heap".to_owned(),
                start: Addr(0x2000_0000),
                end: Addr(0x2010_0000),
                kind: RegionKind::Heap,
                read_latency: 4,
                write_latency: 4,
                cacheable: true,
            },
            Region {
                name: "stack".to_owned(),
                start: Addr(0x3000_0000),
                end: Addr(0x3001_0000),
                kind: RegionKind::Stack,
                read_latency: 1,
                write_latency: 1,
                cacheable: true,
            },
            Region {
                name: "mmio".to_owned(),
                start: Addr(0xf000_0000),
                end: Addr(0xf001_0000),
                kind: RegionKind::Mmio,
                read_latency: 30,
                write_latency: 30,
                cacheable: false,
            },
        ])
    }

    /// All regions in ascending address order.
    #[must_use]
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The region containing `addr`, if any.
    #[must_use]
    pub fn region_at(&self, addr: Addr) -> Option<&Region> {
        self.regions.iter().find(|r| r.contains(addr))
    }

    /// The region with the given name, if any.
    #[must_use]
    pub fn region_named(&self, name: &str) -> Option<&Region> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// All regions intersecting the *inclusive* address interval
    /// `[lo, hi]` — what an imprecise access "might touch".
    #[must_use]
    pub fn regions_overlapping(&self, lo: Addr, hi: Addr) -> Vec<&Region> {
        self.regions
            .iter()
            .filter(|r| r.start.0 <= hi.0 && lo.0 < r.end.0)
            .collect()
    }

    /// Worst read latency over the whole map — what an access with an
    /// *unknown* address must be charged.
    #[must_use]
    pub fn worst_read_latency(&self) -> u32 {
        self.regions
            .iter()
            .map(|r| r.read_latency)
            .max()
            .unwrap_or(1)
    }

    /// Worst write latency over the whole map.
    #[must_use]
    pub fn worst_write_latency(&self) -> u32 {
        self.regions
            .iter()
            .map(|r| r.write_latency)
            .max()
            .unwrap_or(1)
    }

    /// Best read latency over the whole map — what a BCET bound may
    /// charge an access whose region cannot be pinned down (charging the
    /// worst there would *raise* the lower bound above reality).
    #[must_use]
    pub fn best_read_latency(&self) -> u32 {
        self.regions
            .iter()
            .map(|r| r.read_latency)
            .min()
            .unwrap_or(1)
    }

    /// Best write latency over the whole map.
    #[must_use]
    pub fn best_write_latency(&self) -> u32 {
        self.regions
            .iter()
            .map(|r| r.write_latency)
            .min()
            .unwrap_or(1)
    }

    /// The heap region, if the map has one.
    #[must_use]
    pub fn heap(&self) -> Option<&Region> {
        self.regions.iter().find(|r| r.kind == RegionKind::Heap)
    }
}

impl Default for MemoryMap {
    fn default() -> Self {
        MemoryMap::default_embedded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_map_lookup() {
        let map = MemoryMap::default_embedded();
        assert_eq!(map.region_at(Addr(0x0)).unwrap().kind, RegionKind::Sram);
        assert_eq!(
            map.region_at(Addr(0x20_0000)).unwrap().kind,
            RegionKind::Flash
        );
        assert_eq!(
            map.region_at(Addr(0xf000_0004)).unwrap().kind,
            RegionKind::Mmio
        );
        assert!(map.region_at(Addr(0x9000_0000)).is_none());
    }

    #[test]
    fn worst_latency_is_mmio() {
        let map = MemoryMap::default_embedded();
        assert_eq!(map.worst_read_latency(), 30);
        assert_eq!(map.worst_write_latency(), 30);
    }

    #[test]
    fn overlapping_query() {
        let map = MemoryMap::default_embedded();
        // An interval spanning the sram/flash boundary touches both.
        let touched = map.regions_overlapping(Addr(0x000f_fff0), Addr(0x0010_0010));
        let names: Vec<&str> = touched.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["sram", "flash"]);
        // A fully-unknown interval touches everything.
        let all = map.regions_overlapping(Addr(0), Addr(u32::MAX));
        assert_eq!(all.len(), map.regions().len());
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_regions_rejected() {
        let r = |name: &str, s, e| Region {
            name: name.to_owned(),
            start: Addr(s),
            end: Addr(e),
            kind: RegionKind::Sram,
            read_latency: 1,
            write_latency: 1,
            cacheable: true,
        };
        let _ = MemoryMap::new(vec![r("a", 0, 0x100), r("b", 0x80, 0x200)]);
    }
}
