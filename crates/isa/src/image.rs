//! Linked binary images: what the WCET analyzer actually consumes.
//!
//! As the paper stresses, aiT-style analysis is *binary-level*: "the input
//! binary executable has to undergo several analysis phases". An [`Image`]
//! is our equivalent of that executable — raw code bytes at a base address,
//! zero or more initialized data segments, an entry point, and an optional
//! symbol table carried over from the assembler for diagnostics.

use std::collections::BTreeMap;

use crate::arch::IsaKind;
use crate::error::IsaError;
use crate::inst::{Addr, Inst};

/// A contiguous chunk of initialized memory.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Segment {
    /// First byte address of the segment.
    pub base: Addr,
    /// Raw contents.
    pub data: Vec<u8>,
}

impl Segment {
    /// Creates a segment from 32-bit words, stored little-endian.
    #[must_use]
    pub fn from_words(base: Addr, words: &[u32]) -> Segment {
        let mut data = Vec::with_capacity(words.len() * 4);
        for w in words {
            data.extend_from_slice(&w.to_le_bytes());
        }
        Segment { base, data }
    }

    /// Address one past the last byte.
    #[must_use]
    pub fn end(&self) -> Addr {
        self.base.offset(self.data.len() as i64)
    }

    /// Returns true if `addr` lies inside the segment.
    #[must_use]
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Reads the little-endian 32-bit word at `addr`, if fully contained.
    #[must_use]
    pub fn word_at(&self, addr: Addr) -> Option<u32> {
        if !self.contains(addr) || !addr.is_aligned() {
            return None;
        }
        let off = (addr.0 - self.base.0) as usize;
        let bytes = self.data.get(off..off + 4)?;
        Some(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }
}

/// A linked binary image: code, data, entry point, and symbols.
///
/// # Example
///
/// ```
/// use wcet_isa::asm::assemble;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let image = assemble(".org 0x1000\nmain: halt\n")?;
/// assert_eq!(image.entry.0, 0x1000);
/// assert_eq!(image.decode_code()?.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Image {
    /// Task entry point (the "specific entry point of the analyzed binary
    /// executable" that defines a task in the paper's Section 3.1).
    pub entry: Addr,
    /// The code segment.
    pub code: Segment,
    /// Initialized data segments (e.g. jump tables, message buffers).
    pub data: Vec<Segment>,
    /// Symbol table: label name → address. Kept for diagnostics only; the
    /// analyses never rely on it (they are binary-level).
    pub symbols: BTreeMap<String, Addr>,
    /// Which backend's encoding the code segment uses. Every decode of
    /// this image — CFG reconstruction, the interpreter's pre-decode, the
    /// disassembler — dispatches on this tag, so downstream phases are
    /// ISA-generic without carrying a type parameter.
    pub isa: IsaKind,
}

impl Image {
    /// Creates an image from pre-encoded in-house code words.
    #[must_use]
    pub fn from_code_words(entry: Addr, code_base: Addr, words: &[u32]) -> Image {
        Image::from_code_words_for(IsaKind::House, entry, code_base, words)
    }

    /// Creates an image from code words pre-encoded for `isa`.
    #[must_use]
    pub fn from_code_words_for(isa: IsaKind, entry: Addr, code_base: Addr, words: &[u32]) -> Image {
        Image {
            entry,
            code: Segment::from_words(code_base, words),
            data: Vec::new(),
            symbols: BTreeMap::new(),
            isa,
        }
    }

    /// Number of instruction words in the code segment.
    #[must_use]
    pub fn code_len(&self) -> usize {
        self.code.data.len() / 4
    }

    /// Decodes the entire code segment.
    ///
    /// # Errors
    ///
    /// Propagates decode failures (unknown opcodes, invalid fields).
    pub fn decode_code(&self) -> Result<Vec<(Addr, Inst)>, IsaError> {
        let words: Vec<u32> = self
            .code
            .data
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        self.isa.decode_region(&words, self.code.base)
    }

    /// Decodes the single instruction at `addr`, if it lies in the code
    /// segment.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BadFetch`] outside the code segment, and decode
    /// errors for malformed words.
    pub fn inst_at(&self, addr: Addr) -> Result<Inst, IsaError> {
        let word = self
            .code
            .word_at(addr)
            .ok_or(IsaError::BadFetch { pc: addr })?;
        self.isa.decode(word, addr)
    }

    /// Looks up the name of a symbol at exactly `addr`, if any.
    #[must_use]
    pub fn symbol_at(&self, addr: Addr) -> Option<&str> {
        self.symbols
            .iter()
            .find(|(_, &a)| a == addr)
            .map(|(name, _)| name.as_str())
    }

    /// Looks up a symbol's address by name.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<Addr> {
        self.symbols.get(name).copied()
    }

    /// Reads an initialized data word (searches all data segments).
    #[must_use]
    pub fn data_word_at(&self, addr: Addr) -> Option<u32> {
        self.data.iter().find_map(|seg| seg.word_at(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_all;

    #[test]
    fn segment_bounds() {
        let seg = Segment::from_words(Addr(0x100), &[1, 2, 3]);
        assert_eq!(seg.end(), Addr(0x10c));
        assert!(seg.contains(Addr(0x100)));
        assert!(seg.contains(Addr(0x10b)));
        assert!(!seg.contains(Addr(0x10c)));
        assert_eq!(seg.word_at(Addr(0x104)), Some(2));
        assert_eq!(seg.word_at(Addr(0x102)), None); // misaligned
        assert_eq!(seg.word_at(Addr(0x10c)), None); // out of range
    }

    #[test]
    fn image_decode_round_trip() {
        let insts = [Inst::Nop, Inst::Halt];
        let words = encode_all(&insts, Addr(0x1000)).unwrap();
        let image = Image::from_code_words(Addr(0x1000), Addr(0x1000), &words);
        let decoded = image.decode_code().unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0], (Addr(0x1000), Inst::Nop));
        assert_eq!(decoded[1], (Addr(0x1004), Inst::Halt));
        assert_eq!(image.inst_at(Addr(0x1004)).unwrap(), Inst::Halt);
        assert!(matches!(
            image.inst_at(Addr(0x2000)),
            Err(IsaError::BadFetch { .. })
        ));
    }

    #[test]
    fn image_dispatches_decode_on_isa_tag() {
        let insts = [Inst::Nop, Inst::Halt];
        let words = crate::rv32::encode_all(&insts, Addr(0x1000)).unwrap();
        let image = Image::from_code_words_for(IsaKind::Rv32i, Addr(0x1000), Addr(0x1000), &words);
        assert_eq!(image.isa, IsaKind::Rv32i);
        let decoded = image.decode_code().unwrap();
        assert_eq!(decoded[0].1, Inst::Nop);
        assert_eq!(decoded[1], (Addr(0x1004), Inst::Halt));
        // The same bytes under the default (house) tag mean something else:
        // 0x00000013 is not a house `nop`.
        let house = Image::from_code_words(Addr(0x1000), Addr(0x1000), &words);
        assert_eq!(house.isa, IsaKind::House);
        assert_ne!(house.decode_code().ok(), Some(decoded));
    }
}
