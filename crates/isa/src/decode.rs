//! Binary decoding — the "Decoding Phase" of the paper's Figure 1.
//!
//! The decoder is the inverse of [`crate::encode`]: it turns raw 32-bit
//! words back into [`Inst`] values, resolving PC-relative displacements to
//! absolute addresses. Decoding a whole [`crate::image::Image`] is the
//! first step of the analysis pipeline; everything downstream (control-flow
//! reconstruction, loop analysis, ...) works on its output.

use crate::error::IsaError;
use crate::inst::{Addr, AluOp, Cond, FAluOp, FCond, FReg, Inst, Reg, Width};

use crate::encode::opcode;

fn field(word: u32, hi: u32, lo: u32) -> u32 {
    (word >> lo) & ((1 << (hi - lo + 1)) - 1)
}

fn reg(word: u32, hi: u32, lo: u32) -> Reg {
    // Four-bit fields cover exactly the sixteen registers: always valid.
    Reg::new(field(word, hi, lo) as u8)
}

fn freg(word: u32, hi: u32, lo: u32, at: Addr) -> Result<FReg, IsaError> {
    let v = field(word, hi, lo);
    if v < FReg::COUNT as u32 {
        Ok(FReg::new(v as u8))
    } else {
        Err(IsaError::InvalidField {
            field: "floating-point register",
            value: v,
            at,
        })
    }
}

fn imm16(word: u32) -> i32 {
    i32::from(word as u16 as i16)
}

fn disp_target(at: Addr, raw: u32, bits: u32) -> Addr {
    // Sign-extend the `bits`-wide word displacement.
    let shift = 32 - bits;
    let words = ((raw << shift) as i32) >> shift;
    at.offset(i64::from(words) * 4)
}

/// Decodes one 32-bit word fetched from address `at`.
///
/// # Errors
///
/// Returns [`IsaError::UnknownOpcode`] for unassigned opcodes and
/// [`IsaError::InvalidField`] for out-of-range function or register fields —
/// this is how the decoder reports data words mistakenly reached by
/// control-flow reconstruction.
///
/// # Example
///
/// ```
/// use wcet_isa::decode::decode;
/// use wcet_isa::encode::encode;
/// use wcet_isa::{Addr, Inst};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let word = encode(&Inst::Halt, Addr(0))?;
/// assert_eq!(decode(word, Addr(0))?, Inst::Halt);
/// # Ok(())
/// # }
/// ```
pub fn decode(word: u32, at: Addr) -> Result<Inst, IsaError> {
    let op = (word >> 26) as u8;
    Ok(match op {
        opcode::NOP => Inst::Nop,
        opcode::HALT => Inst::Halt,
        opcode::RET => Inst::Ret,
        opcode::ALU => {
            let funct = field(word, 25, 22);
            let alu_op = *AluOp::ALL
                .get(funct as usize)
                .ok_or(IsaError::InvalidField {
                    field: "alu function",
                    value: funct,
                    at,
                })?;
            Inst::Alu {
                op: alu_op,
                rd: reg(word, 21, 18),
                rs1: reg(word, 17, 14),
                rs2: reg(word, 13, 10),
            }
        }
        opcode::LUI => Inst::Lui {
            rd: reg(word, 25, 22),
            imm: field(word, 15, 0),
        },
        opcode::JUMP => Inst::Jump {
            target: disp_target(at, field(word, 25, 0), 26),
        },
        opcode::CALL => Inst::Call {
            target: disp_target(at, field(word, 25, 0), 26),
        },
        opcode::JUMP_IND => Inst::JumpInd {
            rs: reg(word, 25, 22),
        },
        opcode::CALL_IND => Inst::CallInd {
            rs: reg(word, 25, 22),
        },
        opcode::SELECT => Inst::Select {
            rd: reg(word, 25, 22),
            rc: reg(word, 21, 18),
            rt: reg(word, 17, 14),
            rf: reg(word, 13, 10),
        },
        opcode::FALU => {
            let funct = field(word, 25, 22);
            let falu_op = *FAluOp::ALL
                .get(funct as usize)
                .ok_or(IsaError::InvalidField {
                    field: "falu function",
                    value: funct,
                    at,
                })?;
            Inst::FAlu {
                op: falu_op,
                fd: freg(word, 21, 18, at)?,
                fs1: freg(word, 17, 14, at)?,
                fs2: freg(word, 13, 10, at)?,
            }
        }
        opcode::FMOV => Inst::FMov {
            fd: freg(word, 25, 22, at)?,
            rs: reg(word, 21, 18),
        },
        opcode::FCVT => Inst::FCvt {
            fd: freg(word, 25, 22, at)?,
            rs: reg(word, 21, 18),
        },
        opcode::ALLOC => Inst::Alloc {
            rd: reg(word, 25, 22),
            rs: reg(word, 21, 18),
        },
        _ if (opcode::ALU_IMM_BASE..opcode::ALU_IMM_BASE + 12).contains(&op) => {
            let alu_op = AluOp::ALL[usize::from(op - opcode::ALU_IMM_BASE)];
            // Logical immediates are zero-extended (see `encode`), all
            // others sign-extended.
            let imm = if matches!(alu_op, AluOp::And | AluOp::Or | AluOp::Xor) {
                (word & 0xffff) as i32
            } else {
                imm16(word)
            };
            Inst::AluImm {
                op: alu_op,
                rd: reg(word, 25, 22),
                rs1: reg(word, 21, 18),
                imm,
            }
        }
        _ if (opcode::LOAD_BASE..opcode::LOAD_BASE + 3).contains(&op) => Inst::Load {
            width: Width::ALL[usize::from(op - opcode::LOAD_BASE)],
            rd: reg(word, 25, 22),
            base: reg(word, 21, 18),
            offset: imm16(word),
        },
        _ if (opcode::STORE_BASE..opcode::STORE_BASE + 3).contains(&op) => Inst::Store {
            width: Width::ALL[usize::from(op - opcode::STORE_BASE)],
            rs: reg(word, 25, 22),
            base: reg(word, 21, 18),
            offset: imm16(word),
        },
        _ if (opcode::BRANCH_BASE..opcode::BRANCH_BASE + 6).contains(&op) => Inst::Branch {
            cond: Cond::ALL[usize::from(op - opcode::BRANCH_BASE)],
            rs1: reg(word, 25, 22),
            rs2: reg(word, 21, 18),
            target: disp_target(at, field(word, 15, 0), 16),
        },
        _ if (opcode::FBRANCH_BASE..opcode::FBRANCH_BASE + 4).contains(&op) => Inst::FBranch {
            cond: FCond::ALL[usize::from(op - opcode::FBRANCH_BASE)],
            fs1: freg(word, 25, 22, at)?,
            fs2: freg(word, 21, 18, at)?,
            target: disp_target(at, field(word, 15, 0), 16),
        },
        _ => return Err(IsaError::UnknownOpcode { opcode: op, at }),
    })
}

/// Decodes a contiguous code region starting at `base`.
///
/// Returns `(address, instruction)` pairs, one per word.
///
/// # Errors
///
/// Propagates the first decode failure.
pub fn decode_region(words: &[u32], base: Addr) -> Result<Vec<(Addr, Inst)>, IsaError> {
    words
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let at = base.offset(4 * i as i64);
            decode(w, at).map(|inst| (at, inst))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    #[test]
    fn unknown_opcode_reported() {
        let word = 63u32 << 26;
        assert!(matches!(
            decode(word, Addr(0x40)),
            Err(IsaError::UnknownOpcode {
                opcode: 63,
                at: Addr(0x40)
            })
        ));
    }

    #[test]
    fn bad_alu_funct_reported() {
        let word = (u32::from(opcode::ALU) << 26) | (15 << 22);
        assert!(matches!(
            decode(word, Addr(0)),
            Err(IsaError::InvalidField {
                field: "alu function",
                ..
            })
        ));
    }

    #[test]
    fn bad_freg_reported() {
        // FMOV with fd field = 12 (>= 8) is invalid.
        let word = (u32::from(opcode::FMOV) << 26) | (12 << 22);
        assert!(matches!(
            decode(word, Addr(0)),
            Err(IsaError::InvalidField {
                field: "floating-point register",
                ..
            })
        ));
    }

    #[test]
    fn relative_targets_resolve_absolutely() {
        let at = Addr(0x2000);
        let inst = Inst::Jump {
            target: Addr(0x1000),
        };
        let word = encode(&inst, at).unwrap();
        assert_eq!(decode(word, at).unwrap(), inst);
    }

    #[test]
    fn negative_immediates_round_trip() {
        let at = Addr(0x100);
        let inst = Inst::AluImm {
            op: AluOp::Add,
            rd: Reg::new(2),
            rs1: Reg::new(3),
            imm: -1,
        };
        let word = encode(&inst, at).unwrap();
        assert_eq!(decode(word, at).unwrap(), inst);
    }
}
