//! A two-pass text assembler for the ISA.
//!
//! The assembler exists so examples and tests can state programs readably;
//! it lowers to the same [`crate::builder::ProgramBuilder`] used by the
//! programmatic API and produces a linked [`Image`].
//!
//! ## Syntax
//!
//! ```text
//! # comment                      ; also a comment
//! .org  0x1000                   # code base address (once, first)
//! .entry main                    # entry label (default: `main`)
//! .equ  BUF 0x5000               # named constant
//! .data 0x5000 1, 2, 3           # initialized data words at 0x5000
//!
//! main:                          # label
//!     li   r1, 10                # pseudo: load 32-bit constant
//!     la   r2, table             # pseudo: load label address
//!     mov  r3, r1                # pseudo: register move
//! loop:
//!     subi r1, r1, 1
//!     bne  r1, r0, loop
//!     lw   r4, 8(r2)
//!     sw   r4, 0(r2)
//!     halt
//! ```
//!
//! Integer registers are `r0`–`r15` (aliases `sp` = `r14`, `lr` = `r15`);
//! float registers are `f0`–`f7`. Immediates are decimal or `0x` hex,
//! optionally negated, or a `.equ` name.

use std::collections::BTreeMap;

use crate::arch::IsaKind;
use crate::builder::ProgramBuilder;
use crate::error::IsaError;
use crate::image::Image;
use crate::inst::{AluOp, Cond, FAluOp, FCond, FReg, Inst, Reg, Width};

/// Assembles source text into a linked binary image.
///
/// # Errors
///
/// Returns [`IsaError::Parse`] with the offending line for syntax errors,
/// [`IsaError::DuplicateLabel`]/[`IsaError::UndefinedLabel`] for label
/// problems, and propagates encoding failures.
///
/// # Example
///
/// ```
/// use wcet_isa::asm::assemble;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let image = assemble(".org 0x1000\nmain: li r1, 3\n halt\n")?;
/// assert_eq!(image.code_len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn assemble(source: &str) -> Result<Image, IsaError> {
    assemble_for(IsaKind::House, source)
}

/// Assembles source text for a specific ISA backend.
///
/// The surface syntax is identical for every backend — same mnemonics,
/// registers, and directives — because the assembler lowers to the
/// semantic instruction set; only the [`crate::builder::ProgramBuilder`]'s
/// constant synthesis, `subi` normalization, and final encoding differ.
/// Per-backend immediate and displacement limits surface as encode errors.
///
/// # Errors
///
/// Same conditions as [`assemble`], plus [`IsaError::Unencodable`] when the
/// source uses shapes outside the backend's subset (e.g. `sel` on RV32I).
pub fn assemble_for(isa: IsaKind, source: &str) -> Result<Image, IsaError> {
    Assembler::new(isa).assemble(source)
}

struct Assembler {
    isa: IsaKind,
    equs: BTreeMap<String, u32>,
    labels_seen: BTreeMap<String, usize>,
    entry: Option<String>,
    org: Option<u32>,
    first_label: Option<String>,
    data: Vec<(u32, Vec<u32>)>,
    /// (line, mnemonic, operands) gathered before the builder exists.
    items: Vec<(usize, Item)>,
}

enum Item {
    Label(String),
    Op(String, Vec<String>),
}

impl Assembler {
    fn new(isa: IsaKind) -> Assembler {
        Assembler {
            isa,
            equs: BTreeMap::new(),
            labels_seen: BTreeMap::new(),
            entry: None,
            org: None,
            first_label: None,
            data: Vec::new(),
            items: Vec::new(),
        }
    }

    fn assemble(mut self, source: &str) -> Result<Image, IsaError> {
        for (idx, raw_line) in source.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }
            self.parse_line(line, line_no)?;
        }

        let base = self.org.unwrap_or(0x1000);
        let mut builder = ProgramBuilder::new_for(self.isa, base);
        for (line, item) in &self.items {
            match item {
                Item::Label(name) => {
                    builder.label(name);
                    let _ = line;
                }
                Item::Op(mnemonic, operands) => {
                    self.emit(&mut builder, mnemonic, operands, *line)?;
                }
            }
        }
        for (addr, words) in &self.data {
            builder.data_words(*addr, words);
        }

        let entry = self
            .entry
            .clone()
            .or_else(|| {
                if self.labels_seen.contains_key("main") {
                    Some("main".to_owned())
                } else {
                    self.first_label.clone()
                }
            })
            .ok_or_else(|| IsaError::Parse {
                line: 0,
                message: "program defines no labels, so no entry point".to_owned(),
            })?;
        builder.build(&entry)
    }

    fn parse_line(&mut self, line: &str, line_no: usize) -> Result<(), IsaError> {
        if let Some(rest) = line.strip_prefix('.') {
            return self.parse_directive(rest, line_no);
        }

        let mut rest = line;
        // Leading `label:` (possibly followed by an instruction).
        if let Some(colon) = rest.find(':') {
            let (name, tail) = rest.split_at(colon);
            let name = name.trim();
            if !is_ident(name) {
                return Err(parse_err(line_no, format!("invalid label name `{name}`")));
            }
            if self.labels_seen.insert(name.to_owned(), line_no).is_some() {
                return Err(IsaError::DuplicateLabel {
                    name: name.to_owned(),
                    line: line_no,
                });
            }
            if self.first_label.is_none() {
                self.first_label = Some(name.to_owned());
            }
            self.items.push((line_no, Item::Label(name.to_owned())));
            rest = tail[1..].trim();
            if rest.is_empty() {
                return Ok(());
            }
        }

        let (mnemonic, operands) = split_operands(rest);
        self.items
            .push((line_no, Item::Op(mnemonic.to_lowercase(), operands)));
        Ok(())
    }

    fn parse_directive(&mut self, rest: &str, line_no: usize) -> Result<(), IsaError> {
        let mut parts = rest.splitn(2, char::is_whitespace);
        let name = parts.next().unwrap_or("");
        let args = parts.next().unwrap_or("").trim();
        match name {
            "org" => {
                if self.org.is_some() {
                    return Err(parse_err(line_no, ".org may appear only once".to_owned()));
                }
                if !self.items.is_empty() {
                    return Err(parse_err(
                        line_no,
                        ".org must precede all instructions".to_owned(),
                    ));
                }
                self.org = Some(self.number(args, line_no)? as u32);
            }
            "entry" => {
                if !is_ident(args) {
                    return Err(parse_err(line_no, format!("invalid entry label `{args}`")));
                }
                self.entry = Some(args.to_owned());
            }
            "equ" => {
                let mut p = args.splitn(2, char::is_whitespace);
                let name = p.next().unwrap_or("");
                let value = p.next().unwrap_or("").trim();
                if !is_ident(name) {
                    return Err(parse_err(line_no, format!("invalid .equ name `{name}`")));
                }
                let v = self.number(value, line_no)? as u32;
                self.equs.insert(name.to_owned(), v);
            }
            "data" => {
                let mut p = args.splitn(2, char::is_whitespace);
                let addr = self.number(p.next().unwrap_or(""), line_no)? as u32;
                let rest = p.next().unwrap_or("");
                let words = rest
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(|s| self.number(s, line_no).map(|v| v as u32))
                    .collect::<Result<Vec<u32>, IsaError>>()?;
                self.data.push((addr, words));
            }
            other => {
                return Err(parse_err(line_no, format!("unknown directive `.{other}`")));
            }
        }
        Ok(())
    }

    fn emit(
        &self,
        b: &mut ProgramBuilder,
        mnemonic: &str,
        ops: &[String],
        line: usize,
    ) -> Result<(), IsaError> {
        let argc = |n: usize| -> Result<(), IsaError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(parse_err(
                    line,
                    format!("`{mnemonic}` expects {n} operand(s), got {}", ops.len()),
                ))
            }
        };

        // Register-register ALU ops.
        if let Some(op) = alu_by_name(mnemonic) {
            argc(3)?;
            b.alu(
                op,
                self.reg(&ops[0], line)?,
                self.reg(&ops[1], line)?,
                self.reg(&ops[2], line)?,
            );
            return Ok(());
        }
        // Immediate ALU ops (`addi`, `subi`, ...).
        if let Some(base) = mnemonic.strip_suffix('i') {
            if let Some(op) = alu_by_name(base) {
                argc(3)?;
                b.alui(
                    op,
                    self.reg(&ops[0], line)?,
                    self.reg(&ops[1], line)?,
                    self.number(&ops[2], line)? as i32,
                );
                return Ok(());
            }
        }
        // Branches.
        if let Some(cond) = Cond::ALL.iter().find(|c| c.mnemonic() == mnemonic) {
            argc(3)?;
            b.branch(
                *cond,
                self.reg(&ops[0], line)?,
                self.reg(&ops[1], line)?,
                self.ident(&ops[2], line)?,
            );
            return Ok(());
        }
        if let Some(cond) = FCond::ALL.iter().find(|c| c.mnemonic() == mnemonic) {
            argc(3)?;
            b.fbranch(
                *cond,
                self.freg(&ops[0], line)?,
                self.freg(&ops[1], line)?,
                self.ident(&ops[2], line)?,
            );
            return Ok(());
        }
        if let Some(op) = FAluOp::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
            argc(3)?;
            b.inst(Inst::FAlu {
                op: *op,
                fd: self.freg(&ops[0], line)?,
                fs1: self.freg(&ops[1], line)?,
                fs2: self.freg(&ops[2], line)?,
            });
            return Ok(());
        }
        // Loads/stores: `lw rd, off(base)`.
        if let Some(width) = mem_width(mnemonic, 'l') {
            argc(2)?;
            let (off, base) = self.mem_operand(&ops[1], line)?;
            b.inst(Inst::Load {
                width,
                rd: self.reg(&ops[0], line)?,
                base,
                offset: off,
            });
            return Ok(());
        }
        if let Some(width) = mem_width(mnemonic, 's') {
            argc(2)?;
            let (off, base) = self.mem_operand(&ops[1], line)?;
            b.inst(Inst::Store {
                width,
                rs: self.reg(&ops[0], line)?,
                base,
                offset: off,
            });
            return Ok(());
        }

        match mnemonic {
            "li" => {
                argc(2)?;
                b.li(self.reg(&ops[0], line)?, self.number(&ops[1], line)? as u32);
            }
            "la" => {
                argc(2)?;
                b.la(self.reg(&ops[0], line)?, self.ident(&ops[1], line)?);
            }
            "mov" => {
                argc(2)?;
                b.mov(self.reg(&ops[0], line)?, self.reg(&ops[1], line)?);
            }
            "lui" => {
                argc(2)?;
                b.inst(Inst::Lui {
                    rd: self.reg(&ops[0], line)?,
                    imm: self.number(&ops[1], line)? as u32,
                });
            }
            "j" => {
                argc(1)?;
                b.jump(self.ident(&ops[0], line)?);
            }
            "call" => {
                argc(1)?;
                b.call(self.ident(&ops[0], line)?);
            }
            "jr" => {
                argc(1)?;
                b.jr(self.reg(&ops[0], line)?);
            }
            "callr" => {
                argc(1)?;
                b.callr(self.reg(&ops[0], line)?);
            }
            "ret" => {
                argc(0)?;
                b.ret();
            }
            "sel" => {
                argc(4)?;
                b.sel(
                    self.reg(&ops[0], line)?,
                    self.reg(&ops[1], line)?,
                    self.reg(&ops[2], line)?,
                    self.reg(&ops[3], line)?,
                );
            }
            "fmov" => {
                argc(2)?;
                b.inst(Inst::FMov {
                    fd: self.freg(&ops[0], line)?,
                    rs: self.reg(&ops[1], line)?,
                });
            }
            "fcvt" => {
                argc(2)?;
                b.inst(Inst::FCvt {
                    fd: self.freg(&ops[0], line)?,
                    rs: self.reg(&ops[1], line)?,
                });
            }
            "alloc" => {
                argc(2)?;
                b.alloc(self.reg(&ops[0], line)?, self.reg(&ops[1], line)?);
            }
            "nop" => {
                argc(0)?;
                b.nop();
            }
            "halt" => {
                argc(0)?;
                b.halt();
            }
            other => {
                return Err(parse_err(line, format!("unknown mnemonic `{other}`")));
            }
        }
        Ok(())
    }

    fn reg(&self, s: &str, line: usize) -> Result<Reg, IsaError> {
        match s {
            "sp" => return Ok(Reg::SP),
            "lr" => return Ok(Reg::LINK),
            _ => {}
        }
        s.strip_prefix('r')
            .and_then(|n| n.parse::<u8>().ok())
            .filter(|&n| n < 16)
            .map(Reg::new)
            .ok_or_else(|| parse_err(line, format!("invalid register `{s}`")))
    }

    fn freg(&self, s: &str, line: usize) -> Result<FReg, IsaError> {
        s.strip_prefix('f')
            .and_then(|n| n.parse::<u8>().ok())
            .filter(|&n| n < 8)
            .map(FReg::new)
            .ok_or_else(|| parse_err(line, format!("invalid float register `{s}`")))
    }

    fn number(&self, s: &str, line: usize) -> Result<i64, IsaError> {
        let s = s.trim();
        if let Some(&v) = self.equs.get(s) {
            return Ok(i64::from(v));
        }
        let (neg, body) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s),
        };
        let parsed = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X"))
        {
            i64::from_str_radix(&hex.replace('_', ""), 16)
        } else {
            body.replace('_', "").parse::<i64>()
        };
        parsed
            .map(|v| if neg { -v } else { v })
            .map_err(|_| parse_err(line, format!("invalid number `{s}`")))
    }

    fn ident<'a>(&self, s: &'a str, line: usize) -> Result<&'a str, IsaError> {
        if is_ident(s) {
            Ok(s)
        } else {
            Err(parse_err(line, format!("invalid label reference `{s}`")))
        }
    }

    /// Parses `off(base)` memory operands.
    fn mem_operand(&self, s: &str, line: usize) -> Result<(i32, Reg), IsaError> {
        let open = s
            .find('(')
            .ok_or_else(|| parse_err(line, format!("expected `off(base)`, got `{s}`")))?;
        let close = s
            .rfind(')')
            .ok_or_else(|| parse_err(line, format!("unclosed parenthesis in `{s}`")))?;
        let off_str = s[..open].trim();
        let off = if off_str.is_empty() {
            0
        } else {
            self.number(off_str, line)? as i32
        };
        let base = self.reg(s[open + 1..close].trim(), line)?;
        Ok((off, base))
    }
}

fn strip_comment(line: &str) -> &str {
    let end = line
        .find('#')
        .into_iter()
        .chain(line.find(';'))
        .min()
        .unwrap_or(line.len());
    &line[..end]
}

fn split_operands(rest: &str) -> (&str, Vec<String>) {
    let mut parts = rest.splitn(2, char::is_whitespace);
    let mnemonic = parts.next().unwrap_or("");
    let operands = parts
        .next()
        .map(|s| {
            s.split(',')
                .map(|o| o.trim().to_owned())
                .filter(|o| !o.is_empty())
                .collect()
        })
        .unwrap_or_default();
    (mnemonic, operands)
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn alu_by_name(name: &str) -> Option<AluOp> {
    AluOp::ALL.iter().copied().find(|op| op.mnemonic() == name)
}

fn mem_width(mnemonic: &str, prefix: char) -> Option<Width> {
    let rest = mnemonic.strip_prefix(prefix)?;
    match rest {
        "b" => Some(Width::Byte),
        "h" => Some(Width::Half),
        "w" => Some(Width::Word),
        _ => None,
    }
}

fn parse_err(line: usize, message: String) -> IsaError {
    IsaError::Parse { line, message }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Addr;

    #[test]
    fn full_program_assembles() {
        let image = assemble(
            r#"
            .org 0x1000
            .equ N 5
            main:
                li   r1, N
            loop:
                subi r1, r1, 1
                bne  r1, r0, loop
                halt
            "#,
        )
        .unwrap();
        assert_eq!(image.entry, Addr(0x1000));
        assert_eq!(image.code_len(), 4);
        let code = image.decode_code().unwrap();
        assert_eq!(
            code[2].1,
            Inst::Branch {
                cond: Cond::Ne,
                rs1: Reg::new(1),
                rs2: Reg::ZERO,
                target: Addr(0x1004),
            }
        );
    }

    #[test]
    fn memory_operands() {
        let image = assemble("main: lw r1, 8(r2)\n sb r3, -4(sp)\n halt").unwrap();
        let code = image.decode_code().unwrap();
        assert_eq!(
            code[0].1,
            Inst::Load {
                width: Width::Word,
                rd: Reg::new(1),
                base: Reg::new(2),
                offset: 8
            }
        );
        assert_eq!(
            code[1].1,
            Inst::Store {
                width: Width::Byte,
                rs: Reg::new(3),
                base: Reg::SP,
                offset: -4
            }
        );
    }

    #[test]
    fn data_directive() {
        let image = assemble(".data 0x5000 1, 2, 0x30\nmain: halt").unwrap();
        assert_eq!(image.data_word_at(Addr(0x5008)), Some(0x30));
    }

    #[test]
    fn duplicate_label_is_error_not_panic() {
        let err = assemble("main: nop\nmain: halt").unwrap_err();
        assert!(matches!(err, IsaError::DuplicateLabel { line: 2, .. }));
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let err = assemble("main: nop\n frobnicate r1\n halt").unwrap_err();
        assert!(matches!(err, IsaError::Parse { line: 2, .. }));
    }

    #[test]
    fn comments_and_aliases() {
        let image =
            assemble("# header comment\nmain: mov r1, lr ; trailing\n nop # another\n halt")
                .unwrap();
        assert_eq!(image.code_len(), 3);
    }

    #[test]
    fn entry_defaults() {
        // Explicit .entry wins.
        let image = assemble(".entry other\nmain: nop\nother: halt").unwrap();
        assert_eq!(image.entry, image.symbol("other").unwrap());
        // `main` preferred over first label.
        let image = assemble("first: nop\nmain: halt").unwrap();
        assert_eq!(image.entry, image.symbol("main").unwrap());
        // Otherwise the first label.
        let image = assemble("start: halt").unwrap();
        assert_eq!(image.entry, image.symbol("start").unwrap());
    }

    #[test]
    fn same_source_assembles_for_both_isas() {
        use crate::interp::{Interpreter, MachineConfig};
        let src = r#"
            .org 0x1000
            .equ N 5
            main:
                li   r1, N
                li   r2, 0
            loop:
                addi r2, r2, 7
                subi r1, r1, 1
                bne  r1, r0, loop
                halt
        "#;
        let house = assemble(src).unwrap();
        let rv32 = assemble_for(IsaKind::Rv32i, src).unwrap();
        assert_eq!(house.isa, IsaKind::House);
        assert_eq!(rv32.isa, IsaKind::Rv32i);
        assert_ne!(house.code.data, rv32.code.data);
        for (image, isa) in [(&house, IsaKind::House), (&rv32, IsaKind::Rv32i)] {
            let mut interp = Interpreter::with_config(image, MachineConfig::simple_for(isa));
            interp.run(10_000).unwrap();
            assert_eq!(interp.reg(Reg::new(2)), 35, "{isa}");
        }
    }

    #[test]
    fn rv32_rejects_out_of_subset_shapes() {
        let err = assemble_for(IsaKind::Rv32i, "main: sel r1, r2, r3, r4\n halt").unwrap_err();
        assert!(
            matches!(err, IsaError::Unencodable { isa: "rv32i", .. }),
            "{err}"
        );
    }

    #[test]
    fn float_instructions() {
        let image = assemble(
            "main: li r1, 0x3f800000\n fmov f1, r1\n fadd f2, f1, f1\n fblt f2, f1, main\n halt",
        )
        .unwrap();
        assert_eq!(image.code_len(), 5); // li of 0x3f800000 is a single lui
    }
}
