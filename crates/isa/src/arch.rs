//! The ISA boundary: everything downstream phases consume about a backend.
//!
//! The analysis pipeline (CFG reconstruction → value analysis → cache and
//! pipeline analysis → IPET) is ISA-parametric: each phase consumes the
//! *semantic* instruction set ([`crate::inst::Inst`]) and a handful of
//! backend facts. This module names those facts explicitly:
//!
//! * binary **decoding** (and its inverse, encoding, used by the builder,
//!   the round-trip tests, and the artifact-cache content hashes),
//! * the base **timing model** the static pipeline analysis and the
//!   concrete interpreter both charge,
//! * the default **memory map** (shared across backends so workload
//!   sources port unchanged — latency comes from the map, not the ISA).
//!
//! Instruction classification and concrete stepping need no per-backend
//! code: both operate on the decoded semantic [`Inst`], which is the whole
//! point of decoding into a shared semantic level first.
//!
//! Two dispatch surfaces are provided over the same facts:
//!
//! * [`IsaSpec`], a trait with one zero-sized implementor per backend
//!   ([`HouseIsa`], [`Rv32iIsa`]) for code that is generic at compile time;
//! * [`IsaKind`], a tiny `Copy` enum carried by every [`crate::Image`], for
//!   the pipeline itself — images are runtime inputs (CLI `--isa`, serve
//!   requests), so the crates dispatch on the tag. Both routes call the
//!   same per-backend functions; there is exactly one encoder and one
//!   decoder per ISA.
//!
//! The default is [`IsaKind::House`], and every pre-existing constructor
//! (`ProgramBuilder::new`, `asm::assemble`, `MachineConfig::simple`, …)
//! keeps producing it, so existing programs, reports, and cache artifacts
//! are byte-for-byte unaffected by the boundary.

use std::fmt;

use crate::error::IsaError;
use crate::inst::{Addr, Inst};
use crate::memmap::MemoryMap;
use crate::timing::TimingModel;
use crate::{decode as house, encode as house_enc, rv32};

/// Identifies an instruction-set backend. Carried by [`crate::Image`] so
/// every downstream consumer decodes with the right backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IsaKind {
    /// The in-house RISC this reproduction started from (opcode in the top
    /// six bits, 16-bit immediates, word displacements).
    #[default]
    House,
    /// The RISC-V RV32I subset backend (plus `mul`/`mulhu` from M).
    Rv32i,
}

impl IsaKind {
    /// Every supported backend, in stable order.
    pub const ALL: [IsaKind; 2] = [IsaKind::House, IsaKind::Rv32i];

    /// The canonical name used by `--isa`, manifests, and cache keys.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            IsaKind::House => "house",
            IsaKind::Rv32i => "rv32i",
        }
    }

    /// Parses a canonical name (as accepted by `--isa`).
    #[must_use]
    pub fn parse(name: &str) -> Option<IsaKind> {
        IsaKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Encodes one instruction at `at` with this backend's encoder.
    ///
    /// # Errors
    ///
    /// Backend encode failures: range/alignment errors on both, plus
    /// [`IsaError::Unencodable`] for shapes outside the RV32I subset.
    pub fn encode(self, inst: &Inst, at: Addr) -> Result<u32, IsaError> {
        match self {
            IsaKind::House => house_enc::encode(inst, at),
            IsaKind::Rv32i => rv32::encode(inst, at),
        }
    }

    /// Encodes a whole sequence starting at `base`.
    ///
    /// # Errors
    ///
    /// Propagates the first encode failure.
    pub fn encode_all(self, insts: &[Inst], base: Addr) -> Result<Vec<u32>, IsaError> {
        match self {
            IsaKind::House => house_enc::encode_all(insts, base),
            IsaKind::Rv32i => rv32::encode_all(insts, base),
        }
    }

    /// Decodes one word at `at` with this backend's decoder.
    ///
    /// # Errors
    ///
    /// Backend decode failures (unknown opcodes, invalid fields).
    pub fn decode(self, word: u32, at: Addr) -> Result<Inst, IsaError> {
        match self {
            IsaKind::House => house::decode(word, at),
            IsaKind::Rv32i => rv32::decode(word, at),
        }
    }

    /// Decodes a contiguous region of words starting at `base`.
    ///
    /// # Errors
    ///
    /// Propagates the first decode failure.
    pub fn decode_region(self, words: &[u32], base: Addr) -> Result<Vec<(Addr, Inst)>, IsaError> {
        match self {
            IsaKind::House => house::decode_region(words, base),
            IsaKind::Rv32i => rv32::decode_region(words, base),
        }
    }

    /// The backend's base instruction cost model.
    #[must_use]
    pub fn timing(self) -> TimingModel {
        match self {
            IsaKind::House => TimingModel::new(),
            IsaKind::Rv32i => TimingModel::rv32i(),
        }
    }

    /// The backend's default memory map. Both backends share the embedded
    /// layout — latency is a property of the platform regions, not of the
    /// instruction encoding — which is what lets corpus workload sources
    /// port across ISAs without relocation.
    #[must_use]
    pub fn memory_map(self) -> MemoryMap {
        MemoryMap::default_embedded()
    }
}

impl fmt::Display for IsaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Compile-time form of the boundary: one zero-sized implementor per
/// backend, for code generic over the ISA. Every method agrees with the
/// [`IsaKind`] dispatch by construction (both call the same backend
/// functions).
pub trait IsaSpec {
    /// The runtime tag for this backend.
    const KIND: IsaKind;

    /// Canonical backend name.
    #[must_use]
    fn name() -> &'static str {
        Self::KIND.name()
    }

    /// Encodes one instruction at `at`.
    ///
    /// # Errors
    ///
    /// Backend encode failures.
    fn encode(inst: &Inst, at: Addr) -> Result<u32, IsaError> {
        Self::KIND.encode(inst, at)
    }

    /// Decodes one word at `at`.
    ///
    /// # Errors
    ///
    /// Backend decode failures.
    fn decode(word: u32, at: Addr) -> Result<Inst, IsaError> {
        Self::KIND.decode(word, at)
    }

    /// The backend's base instruction cost model.
    #[must_use]
    fn timing() -> TimingModel {
        Self::KIND.timing()
    }

    /// The backend's default memory map.
    #[must_use]
    fn memory_map() -> MemoryMap {
        Self::KIND.memory_map()
    }
}

/// The in-house RISC backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct HouseIsa;

impl IsaSpec for HouseIsa {
    const KIND: IsaKind = IsaKind::House;
}

/// The RISC-V RV32I subset backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rv32iIsa;

impl IsaSpec for Rv32iIsa {
    const KIND: IsaKind = IsaKind::Rv32i;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_parse_and_roundtrip() {
        for kind in IsaKind::ALL {
            assert_eq!(IsaKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(IsaKind::parse("x86"), None);
        assert_eq!(IsaKind::default(), IsaKind::House);
        assert_eq!(IsaKind::Rv32i.to_string(), "rv32i");
    }

    #[test]
    fn trait_and_enum_dispatch_agree() {
        let inst = Inst::Jump { target: Addr(0x20) };
        let at = Addr(0x10);
        assert_eq!(
            HouseIsa::encode(&inst, at).unwrap(),
            IsaKind::House.encode(&inst, at).unwrap()
        );
        assert_eq!(
            Rv32iIsa::encode(&inst, at).unwrap(),
            IsaKind::Rv32i.encode(&inst, at).unwrap()
        );
        assert_ne!(
            HouseIsa::encode(&inst, at).unwrap(),
            Rv32iIsa::encode(&inst, at).unwrap()
        );
        assert_eq!(HouseIsa::timing(), TimingModel::new());
        assert_eq!(Rv32iIsa::timing(), TimingModel::rv32i());
        assert_ne!(HouseIsa::timing(), Rv32iIsa::timing());
    }

    #[test]
    fn backends_decode_their_own_words() {
        let inst = Inst::Ret;
        for kind in IsaKind::ALL {
            let word = kind.encode(&inst, Addr(0)).unwrap();
            assert_eq!(kind.decode(word, Addr(0)).unwrap(), inst);
        }
    }
}
