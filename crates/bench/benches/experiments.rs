//! The experiment bench harness: regenerates every paper table/figure
//! (printed once at startup), then benchmarks each pipeline phase and
//! arithmetic routine under Criterion.
//!
//! Bench ids match the DESIGN.md experiment index:
//! `table1_ldivmod` (E1), `fig1_pipeline` (E2), `rule_13_4_float_loop`
//! (E3), …, `cache_predictability` (E16), plus phase micro-benches.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use wcet_analysis::analyze_function;
use wcet_arith::histogram::sample_input;
use wcet_arith::ldivmod::ldivmod;
use wcet_arith::restoring::restoring_div;
use wcet_cfg::graph::{reconstruct, TargetResolver};
use wcet_core::analyzer::{AnalyzerConfig, WcetAnalyzer};
use wcet_core::{experiments, workload};
use wcet_isa::interp::{Interpreter, MachineConfig};
use wcet_micro::blocktime::BlockTimes;
use wcet_path::ipet;

/// Regenerate and print every table/figure once, then benchmark the
/// drivers that are cheap enough to repeat.
fn experiment_tables(c: &mut Criterion) {
    // Print the full reproduction (E1 with 10^6 samples here; the table1
    // example accepts the paper's 10^8).
    let all = experiments::run_all(1_000_000);
    wcet_bench::print_all(&all);

    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("table1_ldivmod_1e5", |b| {
        b.iter(|| experiments::e1_table1(black_box(100_000)));
    });
    group.bench_function("fig1_pipeline", |b| b.iter(experiments::e2_pipeline));
    group.bench_function("rule_13_4_float_loop", |b| {
        b.iter(experiments::e3_rule_13_4);
    });
    group.bench_function("rule_13_6_counter_mod", |b| {
        b.iter(experiments::e4_rule_13_6);
    });
    group.bench_function("rule_14_1_unreachable", |b| {
        b.iter(experiments::e5_rule_14_1);
    });
    group.bench_function("rule_14_4_goto_irreducible", |b| {
        b.iter(experiments::e6_rule_14_4);
    });
    group.bench_function("rule_16_2_recursion", |b| b.iter(experiments::e7_rule_16_2));
    group.bench_function("rule_20_4_dynamic_alloc", |b| {
        b.iter(experiments::e8_rule_20_4);
    });
    group.bench_function("modes_flight_control", |b| b.iter(experiments::e9_modes));
    group.bench_function("data_dependent_messages", |b| {
        b.iter(experiments::e10_messages);
    });
    group.bench_function("imprecise_memory", |b| b.iter(experiments::e11_memory));
    group.bench_function("error_handling", |b| {
        b.iter(|| experiments::e12_errors(black_box(6), black_box(1)));
    });
    group.bench_function("single_path_transform", |b| {
        b.iter(experiments::e13_single_path);
    });
    group.bench_function("software_arithmetic", |b| {
        b.iter(experiments::e14_arithmetic);
    });
    group.bench_function("function_pointers", |b| {
        b.iter(experiments::e15_function_pointers);
    });
    group.bench_function("cache_predictability", |b| {
        b.iter(experiments::e16_cache_layout);
    });
    group.finish();
}

/// Phase-level micro-benches of the analyzer on a representative task.
fn pipeline_phases(c: &mut Criterion) {
    let w = workload::message_handler(16);
    let machine = MachineConfig::with_caches();

    let mut group = c.benchmark_group("phases");
    group.bench_function("decode", |b| {
        b.iter(|| black_box(&w.image).decode_code().expect("decodes"));
    });
    group.bench_function("cfg_reconstruction", |b| {
        b.iter(|| reconstruct(black_box(&w.image), &TargetResolver::empty()).expect("builds"));
    });
    let program = reconstruct(&w.image, &TargetResolver::empty()).expect("builds");
    group.bench_function("value_analysis", |b| {
        b.iter(|| analyze_function(black_box(&program), program.entry, &w.image));
    });
    let fa = analyze_function(&program, program.entry, &w.image);
    group.bench_function("cache_pipeline_analysis", |b| {
        b.iter(|| BlockTimes::compute(black_box(&fa), &machine));
    });
    let times = BlockTimes::compute(&fa, &machine);
    let mut bounds = fa.loop_bounds();
    w.annotations
        .apply_loop_bounds(fa.cfg(), fa.forest(), &mut bounds, None);
    let facts = w.annotations.flow_facts(fa.cfg(), None);
    group.bench_function("path_analysis_ilp", |b| {
        b.iter(|| {
            ipet::wcet(
                black_box(fa.cfg()),
                fa.forest(),
                &times,
                &bounds,
                &facts,
                &Default::default(),
            )
            .expect("solves")
        });
    });
    group.bench_function("full_analyzer", |b| {
        let config = AnalyzerConfig {
            machine: machine.clone(),
            annotations: w.annotations.clone(),
            ..AnalyzerConfig::new()
        };
        let analyzer = WcetAnalyzer::with_config(config);
        b.iter(|| analyzer.analyze(black_box(&w.image)).expect("analyzes"));
    });
    group.finish();
}

/// The wavefront scheduler: the full analyzer at one worker vs one per
/// core, on a single-function task (`flight_control`, where parallelism
/// can only break even) and on a wide call graph (`call_fanout`, where
/// one level fans 32 function analyses out).
fn scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(20);
    for (w, tag) in [
        (workload::flight_control(), "flight_control"),
        (workload::call_fanout(32), "call_fanout_32"),
    ] {
        for (threads, label) in [(Some(1), "1_thread"), (None, "n_threads")] {
            let config = AnalyzerConfig {
                annotations: w.annotations.clone(),
                parallelism: threads,
                ..AnalyzerConfig::new()
            };
            let analyzer = WcetAnalyzer::with_config(config);
            group.bench_function(format!("{tag}/{label}"), |b| {
                b.iter(|| analyzer.analyze(black_box(&w.image)).expect("analyzes"));
            });
        }
    }
    group.finish();
}

/// Context expansion: the full analyzer on the context workloads at
/// depth 0 (merged) vs depth 1 (per call-string unit) — the cost of the
/// precision the `context` tests pin.
fn context_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("context");
    group.sample_size(20);
    for (w, tag) in [
        (workload::context_killer(), "context_killer"),
        (workload::call_tree_heavy(4, 4, &[]), "call_tree_4x4"),
    ] {
        for depth in [0usize, 1] {
            let config = AnalyzerConfig {
                annotations: w.annotations.clone(),
                context_depth: depth,
                ..AnalyzerConfig::new()
            };
            let analyzer = WcetAnalyzer::with_config(config);
            group.bench_function(format!("{tag}/depth_{depth}"), |b| {
                b.iter(|| analyzer.analyze(black_box(&w.image)).expect("analyzes"));
            });
        }
    }
    group.finish();
}

/// Cache persistence: the context-depth-1 analyzer on the cached machine
/// with the clobbering call transfer (PR-4 behavior) vs footprint
/// summaries + first-miss classification — the cost of the precision the
/// `persistence` tests pin.
fn persistence(c: &mut Criterion) {
    let mut group = c.benchmark_group("persistence");
    group.sample_size(20);
    for (w, tag) in [
        (workload::persistence_killer(), "persistence_killer"),
        (workload::call_tree_heavy(2, 3, &[]), "call_tree_2x3"),
    ] {
        for (persistence, label) in [(false, "clobber"), (true, "persist")] {
            let config = AnalyzerConfig {
                machine: MachineConfig::with_caches(),
                annotations: w.annotations.clone(),
                context_depth: 1,
                persistence,
                ..AnalyzerConfig::new()
            };
            let analyzer = WcetAnalyzer::with_config(config);
            group.bench_function(format!("{tag}/{label}"), |b| {
                b.iter(|| analyzer.analyze(black_box(&w.image)).expect("analyzes"));
            });
        }
    }
    group.finish();
}

/// The abstract pipeline: the full analyzer on the pipeline workloads
/// with flat block times vs the residual-vector fixpoint + BTFNT edge
/// penalties — the cost of the precision the `cpu_pipeline` tests pin.
fn cpu_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    for (w, tag) in [
        (workload::pipeline_killer(), "pipeline_killer"),
        (workload::branch_heavy(), "branch_heavy"),
    ] {
        for (pipeline, label) in [(false, "flat"), (true, "pipelined")] {
            let mut machine = MachineConfig::simple();
            machine.pipeline = pipeline;
            let config = AnalyzerConfig {
                machine,
                annotations: w.annotations.clone(),
                pipeline,
                ..AnalyzerConfig::new()
            };
            let analyzer = WcetAnalyzer::with_config(config);
            group.bench_function(format!("{tag}/{label}"), |b| {
                b.iter(|| analyzer.analyze(black_box(&w.image)).expect("analyzes"));
            });
        }
    }
    group.finish();
}

/// The incremental re-analysis engine: cold full analysis vs warm-cache
/// re-analysis of a one-function mutation on the largest workload
/// (`call_tree_heavy(8, 8)`: 73 functions, 146 IPET systems). The headline
/// speedup prints once before the Criterion groups; the acceptance bar is
/// warm ≥ 3× faster than cold, with byte-identical reports (the report
/// equality itself is pinned by `tests/incremental.rs`).
fn incremental(c: &mut Criterion) {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Instant;
    use wcet_core::incr::ArtifactCache;

    let base = workload::call_tree_heavy(8, 8, &[]);
    let mutated = workload::call_tree_heavy(8, 8, &[(13, 31)]);
    let analyzer = WcetAnalyzer::new();

    // Prime a cache with the unmutated image.
    let root = std::env::temp_dir().join(format!("wcet-bench-incr-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let primed = root.join("primed");
    let mut cache = ArtifactCache::open(&primed).expect("cache opens");
    analyzer
        .analyze_incremental(&base.image, &mut cache)
        .expect("base analyzes");
    drop(cache);

    // Each warm measurement gets a pristine copy of the primed cache, so
    // it really measures the one-mutation case — not the all-hit steady
    // state its own first run would create.
    static COPY: AtomicUsize = AtomicUsize::new(0);
    let fresh_copy = || {
        let dst = root.join(format!("copy-{}", COPY.fetch_add(1, Ordering::Relaxed)));
        for sub in ["fn", "ipet"] {
            std::fs::create_dir_all(dst.join(sub)).expect("copy dir");
            for entry in std::fs::read_dir(primed.join(sub)).expect("primed dir") {
                let entry = entry.expect("entry");
                std::fs::copy(entry.path(), dst.join(sub).join(entry.file_name()))
                    .expect("copy artifact");
            }
        }
        ArtifactCache::open(&dst).expect("copy opens")
    };

    // Headline: minimum of a few runs each (the number the acceptance
    // criterion is stated over).
    let cold_time = (0..5)
        .map(|_| {
            let t = Instant::now();
            analyzer
                .analyze(black_box(&mutated.image))
                .expect("cold analyzes");
            t.elapsed()
        })
        .min()
        .expect("nonempty");
    let warm_time = (0..5)
        .map(|_| {
            let mut cache = fresh_copy();
            let t = Instant::now();
            let report = analyzer
                .analyze_incremental(black_box(&mutated.image), &mut cache)
                .expect("warm analyzes");
            let elapsed = t.elapsed();
            let stats = report.incr.expect("stats present");
            assert_eq!(stats.fn_misses, 1, "exactly the mutated leaf recomputes");
            elapsed
        })
        .min()
        .expect("nonempty");
    let speedup = cold_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-9);
    println!(
        "incremental: one-function mutation on call_tree_heavy(8, 8): \
         cold {cold_time:?} vs warm {warm_time:?} → {speedup:.1}x speedup"
    );

    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    group.bench_function("cold_full_analysis_tree8x8", |b| {
        b.iter(|| {
            analyzer
                .analyze(black_box(&mutated.image))
                .expect("analyzes")
        });
    });
    group.bench_function("warm_one_mutation_tree8x8", |b| {
        b.iter_batched(
            fresh_copy,
            |mut cache| {
                analyzer
                    .analyze_incremental(black_box(&mutated.image), &mut cache)
                    .expect("analyzes")
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("warm_steady_state_tree8x8", |b| {
        // The batch-service case: the request was seen before; every
        // artifact and IPET solution replays.
        let mut cache = fresh_copy();
        analyzer
            .analyze_incremental(&mutated.image, &mut cache)
            .expect("warms up");
        b.iter(|| {
            analyzer
                .analyze_incremental(black_box(&mutated.image), &mut cache)
                .expect("analyzes")
        });
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&root);
}

/// The serve daemon's engine on a synthetic 100-request stream: one
/// [`AnalysisService`] fed a hundred distinct `call_tree_heavy` variants
/// through [`serve_connection`], cold (empty artifact cache) vs warm
/// (every request replays from the store the cold pass left behind).
/// The headline speedup prints before the Criterion group; the
/// acceptance bar is warm ≥ 3.5x cold.
///
/// [`AnalysisService`]: wcet_core::serve::AnalysisService
/// [`serve_connection`]: wcet_core::serve::serve_connection
fn serve_stream(c: &mut Criterion) {
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Instant;
    use wcet_core::incr::ArtifactCache;
    use wcet_core::parallel::WorkerPool;
    use wcet_core::serve::{serve_connection, AnalysisService};
    use wcet_isa::asm::assemble;

    let root = std::env::temp_dir().join(format!("wcet-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // One request program per variant: a two-group call tree whose six
    // leaves each run several sequential loop nests with a data-dependent
    // branch in the body. Every loop bound varies per variant, so no two
    // requests share a single function artifact — the cold pass really
    // computes 100 analyses, and the warm pass replays all 100 from the
    // store. The many-block leaves are deliberate: value/cache/IPET cost
    // grows with the CFG while the stored summary does not, which is the
    // asymmetry a warm daemon exploits.
    let stream_program = |variant: u32| -> String {
        const LEAVES: u32 = 6;
        const SEGMENTS: u32 = 12;
        let mut src = String::from("        .org 0x1000\nmain:\n");
        for g in 0..2 {
            src.push_str(&format!("            call g{g}\n"));
        }
        src.push_str("            halt\n");
        for g in 0..2u32 {
            src.push_str(&format!(
                "g{g}:\n\
                 \x20            subi sp, sp, 4\n\
                 \x20            sw   lr, 0(sp)\n"
            ));
            for l in 0..LEAVES / 2 {
                src.push_str(&format!("            call f{}\n", g * (LEAVES / 2) + l));
            }
            src.push_str(
                "            lw   lr, 0(sp)\n\
                 \x20            addi sp, sp, 4\n\
                 \x20            ret\n",
            );
        }
        for i in 0..LEAVES {
            src.push_str(&format!("f{i}:\n"));
            for k in 0..SEGMENTS {
                let bound = 2 + (variant * 7 + i * 11 + k * 5) % 29;
                let scratch = 0x8000 + 64 * i + 8 * k;
                src.push_str(&format!(
                    "f{i}_s{k}:\n\
                     \x20            li   r1, {bound}\n\
                     f{i}_s{k}_outer:\n\
                     \x20            li   r2, 4\n\
                     f{i}_s{k}_inner:\n\
                     \x20            mul  r3, r2, r2\n\
                     \x20            add  r4, r4, r3\n\
                     \x20            li   r7, {scratch:#x}\n\
                     \x20            sw   r4, 0(r7)\n\
                     \x20            lw   r5, 0(r7)\n\
                     \x20            xor  r4, r4, r5\n\
                     \x20            beq  r5, r0, f{i}_s{k}_skip\n\
                     \x20            addi r8, r8, 3\n\
                     \x20            j    f{i}_s{k}_join\n\
                     f{i}_s{k}_skip:\n\
                     \x20            shri r8, r8, 1\n\
                     f{i}_s{k}_join:\n\
                     \x20            subi r2, r2, 1\n\
                     \x20            bne  r2, r0, f{i}_s{k}_inner\n\
                     \x20            subi r1, r1, 1\n\
                     \x20            bne  r1, r0, f{i}_s{k}_outer\n"
                ));
            }
            src.push_str("            ret\n");
        }
        src
    };
    let mut requests = String::new();
    for i in 0..100u32 {
        let path = root.join(format!("req{i}.s"));
        std::fs::create_dir_all(&root).expect("bench dir");
        std::fs::write(&path, stream_program(i)).expect("write request program");
        requests.push_str(&format!("{}\n", path.display()));
    }

    // The daemon's handler, minus the CLI rendering: assemble the
    // requested file and run the incremental analyzer against the shared
    // store — the same per-request cache-open discipline `wcet serve`
    // uses.
    let make_service = |cache_dir: PathBuf| -> AnalysisService {
        let pool = Arc::new(WorkerPool::new(1));
        AnalysisService::new(
            0,
            Box::new(move |program: &Path, _, _| {
                let source = std::fs::read_to_string(program).map_err(|e| e.to_string())?;
                let image = assemble(&source).map_err(|e| e.to_string())?;
                let mut cache = ArtifactCache::open(&cache_dir).map_err(|e| e.to_string())?;
                // Cached-machine configuration: must-analysis dominates
                // the per-unit work and every phase of it replays from
                // the artifact store on a warm hit — exactly the shape
                // the daemon amortizes across the stream. (The deeper
                // context/persistence modes recompute their interference
                // pass even on warm hits, which measures the analyzer,
                // not the store.)
                let config = AnalyzerConfig {
                    machine: MachineConfig::with_caches(),
                    ..AnalyzerConfig::new()
                };
                let analyzer = WcetAnalyzer::with_config(config).with_pool(Arc::clone(&pool));
                let report = analyzer
                    .analyze_incremental(&image, &mut cache)
                    .map_err(|e| e.to_string())?;
                Ok(format!(
                    "wcet {} bcet {}\n",
                    report.wcet_cycles, report.bcet_cycles
                ))
            }),
        )
    };
    static STREAM: AtomicUsize = AtomicUsize::new(0);
    let fresh_dir = || root.join(format!("cache-{}", STREAM.fetch_add(1, Ordering::Relaxed)));
    let run_stream = |service: &AnalysisService| {
        let mut sink = Vec::new();
        let stats =
            serve_connection(service, black_box(requests.as_bytes()), &mut sink).expect("stream");
        assert_eq!(stats.requests, 100, "every request answered");
        assert_eq!(stats.failures, 0, "no failures in the synthetic stream");
        sink
    };

    // Headline: best-of-2 each (the acceptance criterion's number).
    let cold_time = (0..2)
        .map(|_| {
            let service = make_service(fresh_dir());
            let t = Instant::now();
            run_stream(&service);
            t.elapsed()
        })
        .min()
        .expect("nonempty");
    let warm_dir = fresh_dir();
    let primed = make_service(warm_dir.clone());
    let cold_frames = run_stream(&primed);
    let warm_time = (0..2)
        .map(|_| {
            let t = Instant::now();
            let warm_frames = run_stream(&primed);
            assert_eq!(warm_frames, cold_frames, "warm stream is byte-identical");
            t.elapsed()
        })
        .min()
        .expect("nonempty");
    let speedup = cold_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-9);
    println!(
        "serve: 100-request stream: cold {cold_time:?} vs warm {warm_time:?} \
         → {speedup:.1}x throughput"
    );

    let mut group = c.benchmark_group("serve");
    group.sample_size(3);
    group.bench_function("cold_stream_100", |b| {
        b.iter_batched(
            || make_service(fresh_dir()),
            |service| run_stream(&service),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("warm_stream_100", |b| b.iter(|| run_stream(&primed)));
    group.finish();
    let _ = std::fs::remove_dir_all(&root);
}

/// The ILP backends head to head on an IPET-shaped LP: a chain of `k`
/// blocks with flow conservation, a loop bound, and upper-bounded
/// variables (which the dense solver materializes as rows and the sparse
/// solver keeps implicit in the ratio test).
fn ilp_solvers(c: &mut Criterion) {
    use wcet_ilp::{Model, Sense};

    fn flow_chain(k: usize) -> Model {
        let mut m = Model::new(Sense::Maximize);
        let entry = m.add_var("entry", 1.0, Some(1.0));
        let blocks: Vec<_> = (0..k)
            .map(|i| m.add_var(&format!("b{i}"), 0.0, Some(64.0)))
            .collect();
        let edges: Vec<_> = (0..k.saturating_sub(1))
            .map(|i| m.add_var(&format!("e{i}"), 0.0, Some(64.0)))
            .collect();
        // Flow conservation down the chain; the head is fed by `entry`.
        m.add_eq(&[(blocks[0], -1.0), (entry, 1.0)], 0.0);
        for i in 1..k {
            m.add_eq(&[(blocks[i], -1.0), (edges[i - 1], 1.0)], 0.0);
            m.add_le(&[(edges[i - 1], 1.0), (blocks[i - 1], -1.0)], 0.0);
        }
        // A loop-bound-style coupling constraint on the tail.
        m.add_le(&[(blocks[k - 1], 1.0), (entry, -32.0)], 0.0);
        let objective: Vec<_> = blocks
            .iter()
            .enumerate()
            .map(|(i, &b)| (b, 3.0 + (i % 5) as f64))
            .collect();
        m.set_objective(&objective);
        m
    }

    let model = flow_chain(64);
    // Both backends must agree before we time them.
    let dense = wcet_ilp::simplex::solve_lp_dense(&model).expect("dense solves");
    let sparse = wcet_ilp::sparse::solve_lp(&model).expect("sparse solves");
    assert!(
        (dense.objective - sparse.objective).abs() < 1e-6,
        "solver mismatch: {} vs {}",
        dense.objective,
        sparse.objective
    );

    let mut group = c.benchmark_group("ilp");
    group.sample_size(30);
    group.bench_function("dense_chain_64", |b| {
        b.iter(|| wcet_ilp::simplex::solve_lp_dense(black_box(&model)).expect("solves"));
    });
    group.bench_function("sparse_chain_64", |b| {
        b.iter(|| wcet_ilp::sparse::solve_lp(black_box(&model)).expect("solves"));
    });
    group.finish();
}

/// The LP engine end to end on IPET-shaped systems at three sizes:
/// cold factorize-and-solve, warm re-solve from a recorded basis (the
/// incremental-replay path — factorize once, no Gauss–Jordan), and
/// branch-and-bound with a fractionality-forcing flow fact. The warm
/// case at the largest size carries the tentpole acceptance bar
/// (warm ≥ 3x over the pre-LU dense-inverse baseline); the headline
/// ratio of this build's own cold/warm prints before the group.
fn ipet_lp(c: &mut Criterion) {
    use wcet_ilp::{Model, Sense, VarId};

    // A chain of `segments` loop segments in the shape ipet.rs emits:
    // per segment a taken/fallthrough split of the incoming flow, a
    // rejoin, and a loop-bound row `body ≤ bound · taken`; the entry is
    // pinned to one execution. Every row has 2-3 nonzeros — the
    // sparsity the LU factorization exploits and a dense inverse
    // squanders.
    fn ipet_model(segments: usize, integer: bool) -> Model {
        let mut m = Model::new(Sense::Maximize);
        let entry = if integer {
            m.add_int_var("entry", 1, Some(1))
        } else {
            m.add_var("entry", 1.0, Some(1.0))
        };
        let mut prev = entry;
        let mut objective: Vec<(VarId, f64)> = Vec::new();
        for i in 0..segments {
            let mut var = |name: String| {
                if integer {
                    m.add_int_var(&name, 0, None)
                } else {
                    m.add_var(&name, 0.0, None)
                }
            };
            let t = var(format!("t{i}"));
            let e = var(format!("f{i}"));
            let b = var(format!("b{i}"));
            let j = var(format!("j{i}"));
            let bound = 4.0 + (i % 7) as f64;
            m.add_eq(&[(t, 1.0), (e, 1.0), (prev, -1.0)], 0.0);
            m.add_eq(&[(j, 1.0), (t, -1.0), (e, -1.0)], 0.0);
            m.add_le(&[(b, 1.0), (t, -bound)], 0.0);
            if integer && i % 8 == 0 {
                // A flow-fact-style capacity row binding at a half-
                // integral body count: the relaxation lands on
                // `b = bound - 0.5`, so branch-and-bound really
                // branches instead of accepting the root relaxation.
                m.add_le(&[(b, 2.0)], 2.0 * bound - 1.0);
            }
            objective.push((t, 5.0 + (i % 3) as f64));
            objective.push((e, 2.0));
            objective.push((b, 7.0 + (i % 5) as f64));
            objective.push((j, 1.0));
            prev = j;
        }
        m.set_objective(&objective);
        m
    }

    // Sizes land at m = 66/129/258 constraint rows (~the issue's
    // 64/128/256 ladder).
    let sizes = [(22usize, "m66"), (43, "m129"), (86, "m258")];

    // The dense simplex is the oracle: both backends must agree on
    // every size before anything is timed.
    for (segments, tag) in sizes {
        let model = ipet_model(segments, false);
        let dense = wcet_ilp::simplex::solve_lp_dense(&model).expect("dense solves");
        let sparse = wcet_ilp::sparse::solve_lp(&model).expect("sparse solves");
        assert!(
            (dense.objective - sparse.objective).abs() < 1e-6,
            "{tag}: solver mismatch: {} vs {}",
            dense.objective,
            sparse.objective
        );
    }

    let mut group = c.benchmark_group("ipet");
    group.sample_size(20);
    for (segments, tag) in sizes {
        let model = ipet_model(segments, false);
        group.bench_function(format!("cold/{tag}"), |b| {
            b.iter(|| wcet_ilp::sparse::solve_lp_from(black_box(&model), None).expect("solves"));
        });
        let (cold_sol, snap) = wcet_ilp::sparse::solve_lp_from(&model, None).expect("cold solves");
        group.bench_function(format!("warm/{tag}"), |b| {
            b.iter(|| {
                let (sol, _) = wcet_ilp::sparse::solve_lp_from(black_box(&model), Some(&snap))
                    .expect("warm solves");
                assert!((sol.objective - cold_sol.objective).abs() < 1e-6);
                sol
            });
        });
        let ilp = ipet_model(segments, true);
        group.bench_function(format!("bnb/{tag}"), |b| {
            b.iter(|| ilp.solve().expect("branches and bounds"));
        });
    }
    group.finish();
}

/// Software-arithmetic throughput: the average-case-optimized routine vs
/// the constant-time one (the paper's trade-off, measured).
fn arithmetic(c: &mut Criterion) {
    use rand::SeedableRng;
    let mut group = c.benchmark_group("arith");
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    group.bench_function("ldivmod_random", |b| {
        b.iter_batched(
            || sample_input(&mut rng),
            |(n, d)| ldivmod(black_box(n), black_box(d)).expect("nonzero"),
            BatchSize::SmallInput,
        );
    });
    let mut rng2 = rand::rngs::StdRng::seed_from_u64(8);
    group.bench_function("restoring_random", |b| {
        b.iter_batched(
            || sample_input(&mut rng2),
            |(n, d)| restoring_div(black_box(n), black_box(d)).expect("nonzero"),
            BatchSize::SmallInput,
        );
    });
    // The pathological input: worst observed vs typical.
    group.bench_function("ldivmod_pathological", |b| {
        b.iter(|| ldivmod(black_box(0xffff_ffff), black_box(0x0010_0001)));
    });
    group.finish();
}

/// Interpreter throughput (the measurement substrate itself).
fn interpreter(c: &mut Criterion) {
    let w = workload::matrix_kernel(8);
    let mut group = c.benchmark_group("interp");
    group.bench_function("matrix_kernel_8x8", |b| {
        b.iter_batched(
            || Interpreter::with_config(&w.image, MachineConfig::simple()),
            |mut i| i.run(10_000_000).expect("halts"),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    experiment_tables,
    pipeline_phases,
    scaling,
    context_depth,
    persistence,
    cpu_pipeline,
    incremental,
    serve_stream,
    ilp_solvers,
    ipet_lp,
    arithmetic,
    interpreter
);
criterion_main!(benches);
