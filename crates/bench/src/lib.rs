//! # wcet-bench — experiment regeneration and performance benches
//!
//! The Criterion harness lives in `benches/experiments.rs`. Running
//! `cargo bench` first **prints every reproduced table and figure**
//! (E1–E16; see DESIGN.md's experiment index and EXPERIMENTS.md for the
//! paper-vs-measured record), then benchmarks the analyzer's phases and
//! the software-arithmetic routines.
//!
//! This library crate only hosts shared helpers for the harness.

#![forbid(unsafe_code)]

use wcet_core::experiments::Experiment;

/// Prints one experiment table in the bench log format.
pub fn print_experiment(e: &Experiment) {
    println!("{e}");
}

/// Prints all experiments with a header.
pub fn print_all(experiments: &[Experiment]) {
    println!("================================================================");
    println!(" Reproduced paper artifacts (see EXPERIMENTS.md for discussion)");
    println!("================================================================");
    for e in experiments {
        print_experiment(e);
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printing_does_not_panic() {
        let e = wcet_core::experiments::e3_rule_13_4();
        print_experiment(&e);
        print_all(&[e]);
    }
}
