//! Cross-validation of the simplex + branch-and-bound solver against
//! exhaustive enumeration on small random integer programs — the solver
//! is the foundation under every WCET number the workspace produces.

use proptest::prelude::*;

use wcet_ilp::model::Op;
use wcet_ilp::{Model, Sense, SolveError};

#[derive(Debug, Clone)]
struct SmallIlp {
    n_vars: usize,
    upper: Vec<i64>,
    /// (coefficients, op, rhs)
    constraints: Vec<(Vec<i64>, Op, i64)>,
    objective: Vec<i64>,
    sense: Sense,
}

fn arb_ilp() -> impl Strategy<Value = SmallIlp> {
    (2usize..=4)
        .prop_flat_map(|n| {
            let upper = proptest::collection::vec(1i64..6, n);
            let constraint = (
                proptest::collection::vec(-3i64..=3, n),
                prop_oneof![Just(Op::Le), Just(Op::Ge)],
                -5i64..15,
            );
            let constraints = proptest::collection::vec(constraint, 1..4);
            let objective = proptest::collection::vec(-4i64..=4, n);
            let sense = prop_oneof![Just(Sense::Maximize), Just(Sense::Minimize)];
            (Just(n), upper, constraints, objective, sense)
        })
        .prop_map(|(n_vars, upper, constraints, objective, sense)| SmallIlp {
            n_vars,
            upper,
            constraints,
            objective,
            sense,
        })
}

/// Exhaustive optimum over the integer box.
fn brute_force(ilp: &SmallIlp) -> Option<i64> {
    fn recurse(ilp: &SmallIlp, assignment: &mut Vec<i64>, best: &mut Option<i64>) {
        if assignment.len() == ilp.n_vars {
            for (coeffs, op, rhs) in &ilp.constraints {
                let lhs: i64 = coeffs
                    .iter()
                    .zip(assignment.iter())
                    .map(|(c, x)| c * x)
                    .sum();
                let ok = match op {
                    Op::Le => lhs <= *rhs,
                    Op::Ge => lhs >= *rhs,
                    Op::Eq => lhs == *rhs,
                };
                if !ok {
                    return;
                }
            }
            let value: i64 = ilp
                .objective
                .iter()
                .zip(assignment.iter())
                .map(|(c, x)| c * x)
                .sum();
            let better = match (ilp.sense, *best) {
                (_, None) => true,
                (Sense::Maximize, Some(b)) => value > b,
                (Sense::Minimize, Some(b)) => value < b,
            };
            if better {
                *best = Some(value);
            }
            return;
        }
        let i = assignment.len();
        for v in 0..=ilp.upper[i] {
            assignment.push(v);
            recurse(ilp, assignment, best);
            assignment.pop();
        }
    }
    let mut best = None;
    recurse(ilp, &mut Vec::new(), &mut best);
    best
}

fn solve_with_library(ilp: &SmallIlp) -> Result<i64, SolveError> {
    let mut m = Model::new(ilp.sense);
    let vars: Vec<_> = (0..ilp.n_vars)
        .map(|i| m.add_int_var(&format!("x{i}"), 0, Some(ilp.upper[i])))
        .collect();
    for (coeffs, op, rhs) in &ilp.constraints {
        let terms: Vec<_> = vars
            .iter()
            .zip(coeffs)
            .map(|(&v, &c)| (v, c as f64))
            .collect();
        m.add_constraint(&terms, *op, *rhs as f64);
    }
    let obj: Vec<_> = vars
        .iter()
        .zip(&ilp.objective)
        .map(|(&v, &c)| (v, c as f64))
        .collect();
    m.set_objective(&obj);
    m.solve().map(|s| s.objective.round() as i64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// The solver and exhaustive enumeration agree on feasibility and on
    /// the optimal objective value.
    #[test]
    fn prop_matches_brute_force(ilp in arb_ilp()) {
        let expected = brute_force(&ilp);
        let got = solve_with_library(&ilp);
        match (expected, got) {
            (Some(opt), Ok(value)) => prop_assert_eq!(value, opt, "wrong optimum for {:?}", ilp),
            (None, Err(SolveError::Infeasible)) => {}
            (None, Err(_)) => {} // other failures on infeasible inputs are acceptable
            (Some(opt), Err(e)) => {
                return Err(TestCaseError::fail(format!(
                    "solver failed ({e}) but optimum {opt} exists: {ilp:?}"
                )));
            }
            (None, Ok(v)) => {
                return Err(TestCaseError::fail(format!(
                    "solver returned {v} for infeasible problem: {ilp:?}"
                )));
            }
        }
    }
}
