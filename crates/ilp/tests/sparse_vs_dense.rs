//! Cross-validation of the sparse bounded revised simplex against the
//! dense reference tableau on random LPs: same feasibility classification
//! and, when solvable, the same optimal objective value. The two solvers
//! share no code beyond the `Model` type, so agreement is strong evidence
//! for both.

use proptest::prelude::*;

use wcet_ilp::model::Op;
use wcet_ilp::simplex::solve_lp_dense;
use wcet_ilp::sparse::{solve_lp, solve_lp_from};
use wcet_ilp::{Model, Sense};

#[derive(Debug, Clone)]
struct SmallLp {
    /// Per variable: (lower, optional span above lower).
    bounds: Vec<(i64, Option<i64>)>,
    /// (coefficients, op, rhs)
    constraints: Vec<(Vec<i64>, Op, i64)>,
    objective: Vec<i64>,
    sense: Sense,
}

fn arb_lp() -> impl Strategy<Value = SmallLp> {
    (1usize..=4)
        .prop_flat_map(|n| {
            // Spans down to -2 cover inverted (upper < lower) boxes, which
            // both solvers must classify as infeasible.
            let bound = (-3i64..=3).prop_flat_map(|lo| {
                prop_oneof![
                    Just((lo, None)),
                    (-2i64..=6).prop_map(move |s| (lo, Some(s))),
                ]
            });
            let bounds = proptest::collection::vec(bound, n);
            let constraint = (
                proptest::collection::vec(-3i64..=3, n),
                prop_oneof![Just(Op::Le), Just(Op::Ge), Just(Op::Eq)],
                -10i64..=15,
            );
            let constraints = proptest::collection::vec(constraint, 0..4);
            let objective = proptest::collection::vec(-4i64..=4, n);
            let sense = prop_oneof![Just(Sense::Maximize), Just(Sense::Minimize)];
            (bounds, constraints, objective, sense)
        })
        .prop_map(|(bounds, constraints, objective, sense)| SmallLp {
            bounds,
            constraints,
            objective,
            sense,
        })
}

fn build(lp: &SmallLp) -> Model {
    let mut m = Model::new(lp.sense);
    let vars: Vec<_> = lp
        .bounds
        .iter()
        .enumerate()
        .map(|(i, &(lo, span))| {
            m.add_var(&format!("x{i}"), lo as f64, span.map(|s| (lo + s) as f64))
        })
        .collect();
    for (coeffs, op, rhs) in &lp.constraints {
        let terms: Vec<_> = vars
            .iter()
            .zip(coeffs)
            .map(|(&v, &c)| (v, c as f64))
            .collect();
        m.add_constraint(&terms, *op, *rhs as f64);
    }
    let obj: Vec<_> = vars
        .iter()
        .zip(&lp.objective)
        .map(|(&v, &c)| (v, c as f64))
        .collect();
    m.set_objective(&obj);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(600))]

    /// Feasible, infeasible, and unbounded instances are classified
    /// identically, and objective values agree to tolerance.
    #[test]
    fn prop_sparse_matches_dense(lp in arb_lp()) {
        let m = build(&lp);
        let dense = solve_lp_dense(&m);
        let sparse = solve_lp(&m);
        match (dense, sparse) {
            (Ok(d), Ok(s)) => {
                let scale = 1.0 + d.objective.abs();
                prop_assert!(
                    (d.objective - s.objective).abs() / scale < 1e-6,
                    "objective mismatch: dense {} vs sparse {} on {:?}",
                    d.objective, s.objective, lp
                );
                // Both solutions must satisfy every constraint and bound.
                for sol in [&d, &s] {
                    for (i, &(lo, span)) in lp.bounds.iter().enumerate() {
                        let x = sol.values[i];
                        prop_assert!(x >= lo as f64 - 1e-6, "{x} below lower {lo}: {lp:?}");
                        if let Some(s) = span {
                            prop_assert!(x <= (lo + s) as f64 + 1e-6, "{x} above upper: {lp:?}");
                        }
                    }
                    for (coeffs, op, rhs) in &lp.constraints {
                        let lhs: f64 = coeffs
                            .iter()
                            .zip(&sol.values)
                            .map(|(&c, &x)| c as f64 * x)
                            .sum();
                        let ok = match op {
                            Op::Le => lhs <= *rhs as f64 + 1e-6,
                            Op::Ge => lhs >= *rhs as f64 - 1e-6,
                            Op::Eq => (lhs - *rhs as f64).abs() <= 1e-6,
                        };
                        prop_assert!(ok, "violated {coeffs:?} {op:?} {rhs}: lhs {lhs} in {lp:?}");
                    }
                }
            }
            (Err(d), Err(s)) => prop_assert_eq!(d, s, "error class mismatch on {:?}", lp),
            (d, s) => {
                return Err(TestCaseError::fail(format!(
                    "solvers disagree: dense {d:?} vs sparse {s:?} on {lp:?}"
                )));
            }
        }
    }

    /// Warm-starting a solve from its own final basis is a no-op: the
    /// restored vertex is already optimal, and the result matches the
    /// cold solve (the incremental engine's byte-identity relies on the
    /// solver being a pure function of `(model, start)`).
    #[test]
    fn prop_warm_start_from_own_basis_is_identity(lp in arb_lp()) {
        let m = build(&lp);
        if let Ok((cold, basis)) = solve_lp_from(&m, None) {
            let (warm, basis2) = solve_lp_from(&m, Some(&basis))
                .expect("feasible model stays feasible under its own basis");
            let scale = 1.0 + cold.objective.abs();
            prop_assert!(
                (cold.objective - warm.objective).abs() / scale < 1e-6,
                "warm restart drifted: {} vs {} on {:?}",
                cold.objective, warm.objective, lp
            );
            prop_assert_eq!(&basis, &basis2, "optimal basis must be stable: {:?}", lp);
        }
    }

    /// The branch-and-bound pattern: tighten one variable's bounds, then
    /// warm-start from the parent basis. Classification and objective
    /// must match a cold solve of the tightened model exactly — the warm
    /// start is an accelerator, never an oracle.
    #[test]
    fn prop_warm_start_survives_bound_tightening(
        lp in arb_lp(),
        var_pick in 0usize..4,
        cut in 0i64..4,
    ) {
        let parent = build(&lp);
        let Ok((psol, pbasis)) = solve_lp_from(&parent, None) else {
            return Ok(());
        };
        // Tighten: clamp one variable below the floor of its parent value
        // (an empty box is fine — both paths must agree it is infeasible).
        let mut tightened = lp.clone();
        let i = var_pick % lp.bounds.len();
        let (lo, old_span) = lp.bounds[i];
        let new_span = (psol.values[i].floor() as i64 - cut).saturating_sub(lo);
        let new_span = match old_span {
            Some(s) => s.min(new_span),
            None => new_span,
        };
        tightened.bounds[i].1 = Some(new_span);
        let child = build(&tightened);

        let cold = solve_lp(&child);
        let warm = solve_lp_from(&child, Some(&pbasis)).map(|(s, _)| s);
        match (cold, warm) {
            (Ok(c), Ok(w)) => {
                let scale = 1.0 + c.objective.abs();
                prop_assert!(
                    (c.objective - w.objective).abs() / scale < 1e-6,
                    "warm vs cold after tightening: {} vs {} on {:?}",
                    c.objective, w.objective, lp
                );
            }
            (Err(c), Err(w)) => prop_assert_eq!(c, w),
            (c, w) => {
                return Err(TestCaseError::fail(format!(
                    "warm start changed the outcome: cold {c:?} vs warm {w:?} on {lp:?}"
                )));
            }
        }
    }

    /// Duplicate `(var, coeff)` entries sum — on random instances, a
    /// constraint split into two half-coefficient copies of each term is
    /// equivalent to the merged row, in both solvers.
    #[test]
    fn prop_duplicate_terms_equal_merged(lp in arb_lp()) {
        let merged = build(&lp);
        let mut split = Model::new(lp.sense);
        let vars: Vec<_> = lp
            .bounds
            .iter()
            .enumerate()
            .map(|(i, &(lo, span))| {
                split.add_var(&format!("x{i}"), lo as f64, span.map(|s| (lo + s) as f64))
            })
            .collect();
        for (coeffs, op, rhs) in &lp.constraints {
            // Each term twice at half weight: Σ (c/2 + c/2) x = Σ c x.
            let terms: Vec<_> = vars
                .iter()
                .zip(coeffs)
                .flat_map(|(&v, &c)| [(v, c as f64 / 2.0), (v, c as f64 / 2.0)])
                .collect();
            split.add_constraint(&terms, *op, *rhs as f64);
        }
        let obj: Vec<_> = vars
            .iter()
            .zip(&lp.objective)
            .map(|(&v, &c)| (v, c as f64))
            .collect();
        split.set_objective(&obj);

        for solver in [solve_lp, solve_lp_dense] {
            let a = solver(&merged);
            let b = solver(&split);
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    let scale = 1.0 + a.objective.abs();
                    prop_assert!(
                        (a.objective - b.objective).abs() / scale < 1e-6,
                        "split-duplicate mismatch: {} vs {} on {:?}",
                        a.objective, b.objective, lp
                    );
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => {
                    return Err(TestCaseError::fail(format!(
                        "duplicate split changed the outcome: {a:?} vs {b:?} on {lp:?}"
                    )));
                }
            }
        }
    }
}
