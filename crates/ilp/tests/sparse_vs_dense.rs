//! Cross-validation of the sparse bounded revised simplex against the
//! dense reference tableau on random LPs: same feasibility classification
//! and, when solvable, the same optimal objective value. The two solvers
//! share no code beyond the `Model` type, so agreement is strong evidence
//! for both.

use proptest::prelude::*;

use wcet_ilp::model::Op;
use wcet_ilp::simplex::solve_lp_dense;
use wcet_ilp::sparse::{solve_lp, solve_lp_from, solve_lp_with_stats};
use wcet_ilp::{LpStats, Model, Sense};

#[derive(Debug, Clone)]
struct SmallLp {
    /// Per variable: (lower, optional span above lower).
    bounds: Vec<(i64, Option<i64>)>,
    /// (coefficients, op, rhs)
    constraints: Vec<(Vec<i64>, Op, i64)>,
    objective: Vec<i64>,
    sense: Sense,
}

fn arb_lp() -> impl Strategy<Value = SmallLp> {
    (1usize..=4)
        .prop_flat_map(|n| {
            // Spans down to -2 cover inverted (upper < lower) boxes, which
            // both solvers must classify as infeasible.
            let bound = (-3i64..=3).prop_flat_map(|lo| {
                prop_oneof![
                    Just((lo, None)),
                    (-2i64..=6).prop_map(move |s| (lo, Some(s))),
                ]
            });
            let bounds = proptest::collection::vec(bound, n);
            let constraint = (
                proptest::collection::vec(-3i64..=3, n),
                prop_oneof![Just(Op::Le), Just(Op::Ge), Just(Op::Eq)],
                -10i64..=15,
            );
            let constraints = proptest::collection::vec(constraint, 0..4);
            let objective = proptest::collection::vec(-4i64..=4, n);
            let sense = prop_oneof![Just(Sense::Maximize), Just(Sense::Minimize)];
            (bounds, constraints, objective, sense)
        })
        .prop_map(|(bounds, constraints, objective, sense)| SmallLp {
            bounds,
            constraints,
            objective,
            sense,
        })
}

fn build(lp: &SmallLp) -> Model {
    let mut m = Model::new(lp.sense);
    let vars: Vec<_> = lp
        .bounds
        .iter()
        .enumerate()
        .map(|(i, &(lo, span))| {
            m.add_var(&format!("x{i}"), lo as f64, span.map(|s| (lo + s) as f64))
        })
        .collect();
    for (coeffs, op, rhs) in &lp.constraints {
        let terms: Vec<_> = vars
            .iter()
            .zip(coeffs)
            .map(|(&v, &c)| (v, c as f64))
            .collect();
        m.add_constraint(&terms, *op, *rhs as f64);
    }
    let obj: Vec<_> = vars
        .iter()
        .zip(&lp.objective)
        .map(|(&v, &c)| (v, c as f64))
        .collect();
    m.set_objective(&obj);
    m
}

/// A flow-conservation chain long enough that the solve pivots far past
/// the eta-file limit: the basis must refactorize mid-solve (several
/// times), and the answer still matches the dense oracle. This is the
/// case where a bug in the LU-refresh path (stale etas, wrong basis
/// columns) cannot hide — every pivot after a refresh runs on the new
/// factors.
#[test]
fn refactorization_forced_chain_matches_dense() {
    let k = 96;
    let mut m = Model::new(Sense::Maximize);
    let entry = m.add_var("entry", 1.0, Some(1.0));
    // No upper boxes: a boxed variable can satisfy the ratio test with a
    // bound flip, which never touches the eta file. Every step of this
    // chain must be a genuine basis change.
    let blocks: Vec<_> = (0..k)
        .map(|i| m.add_var(&format!("b{i}"), 0.0, None))
        .collect();
    m.add_eq(&[(blocks[0], 1.0), (entry, -1.0)], 0.0);
    for i in 1..k {
        m.add_le(&[(blocks[i], 1.0), (blocks[i - 1], -2.0)], 0.0);
    }
    let objective: Vec<_> = blocks
        .iter()
        .enumerate()
        .map(|(i, &b)| (b, 1.0 + (i % 4) as f64))
        .collect();
    m.set_objective(&objective);

    let mut stats = LpStats::default();
    let sparse = solve_lp_with_stats(&m, &mut stats).expect("sparse solves");
    let dense = solve_lp_dense(&m).expect("dense solves");
    assert!(
        (sparse.objective - dense.objective).abs() < 1e-6 * (1.0 + dense.objective.abs()),
        "objective mismatch: sparse {} vs dense {}",
        sparse.objective,
        dense.objective
    );
    assert!(
        stats.refactorizations >= 1,
        "a {k}-block chain must outgrow the eta file (got {} refactorizations \
         over {} pivots)",
        stats.refactorizations,
        stats.pivots
    );
}

/// Warm restore against a basis that is singular (or numerically
/// near-singular) in the *new* model: the factorization must fail
/// cleanly and the solver fall back to a cold start, matching the cold
/// answer — never solving with garbage factors.
#[test]
fn near_singular_restored_basis_falls_back_to_cold() {
    // Parent: distinct columns, optimal basis = {x, y}.
    let mut parent = Model::new(Sense::Maximize);
    let x = parent.add_var("x", 0.0, None);
    let y = parent.add_var("y", 0.0, None);
    parent.add_le(&[(x, 1.0), (y, 2.0)], 10.0);
    parent.add_le(&[(x, 2.0), (y, 1.0)], 10.0);
    parent.set_objective(&[(x, 1.0), (y, 1.0)]);
    let (psol, snap) = solve_lp_from(&parent, None).expect("parent solves");
    assert!((psol.objective - 20.0 / 3.0).abs() < 1e-6);

    // Same shape, but x's and y's columns are exact duplicates: the
    // recorded basis is singular here.
    let mut dup = Model::new(Sense::Maximize);
    let x2 = dup.add_var("x", 0.0, None);
    let y2 = dup.add_var("y", 0.0, None);
    dup.add_le(&[(x2, 1.0), (y2, 1.0)], 10.0);
    dup.add_le(&[(x2, 1.0), (y2, 1.0)], 8.0);
    dup.set_objective(&[(x2, 1.0), (y2, 1.0)]);
    let cold = solve_lp(&dup).expect("cold solves");
    let (warm, _) = solve_lp_from(&dup, Some(&snap)).expect("fallback solves");
    assert!(
        (warm.objective - cold.objective).abs() < 1e-6,
        "singular restore must fall back: warm {} vs cold {}",
        warm.objective,
        cold.objective
    );
    assert!((cold.objective - 8.0).abs() < 1e-6);

    // Near-singular: the columns differ by less than the pivot
    // tolerance, which must be treated exactly like singular.
    let mut near = Model::new(Sense::Maximize);
    let x3 = near.add_var("x", 0.0, None);
    let y3 = near.add_var("y", 0.0, None);
    near.add_le(&[(x3, 1.0), (y3, 1.0)], 10.0);
    near.add_le(&[(x3, 1.0), (y3, 1.0 + 1e-13)], 8.0);
    near.set_objective(&[(x3, 1.0), (y3, 1.0)]);
    let cold = solve_lp(&near).expect("cold solves");
    let (warm, _) = solve_lp_from(&near, Some(&snap)).expect("fallback solves");
    assert!(
        (warm.objective - cold.objective).abs() < 1e-6,
        "near-singular restore must fall back: warm {} vs cold {}",
        warm.objective,
        cold.objective
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(600))]

    /// Feasible, infeasible, and unbounded instances are classified
    /// identically, and objective values agree to tolerance.
    #[test]
    fn prop_sparse_matches_dense(lp in arb_lp()) {
        let m = build(&lp);
        let dense = solve_lp_dense(&m);
        let sparse = solve_lp(&m);
        match (dense, sparse) {
            (Ok(d), Ok(s)) => {
                let scale = 1.0 + d.objective.abs();
                prop_assert!(
                    (d.objective - s.objective).abs() / scale < 1e-6,
                    "objective mismatch: dense {} vs sparse {} on {:?}",
                    d.objective, s.objective, lp
                );
                // Both solutions must satisfy every constraint and bound.
                for sol in [&d, &s] {
                    for (i, &(lo, span)) in lp.bounds.iter().enumerate() {
                        let x = sol.values[i];
                        prop_assert!(x >= lo as f64 - 1e-6, "{x} below lower {lo}: {lp:?}");
                        if let Some(s) = span {
                            prop_assert!(x <= (lo + s) as f64 + 1e-6, "{x} above upper: {lp:?}");
                        }
                    }
                    for (coeffs, op, rhs) in &lp.constraints {
                        let lhs: f64 = coeffs
                            .iter()
                            .zip(&sol.values)
                            .map(|(&c, &x)| c as f64 * x)
                            .sum();
                        let ok = match op {
                            Op::Le => lhs <= *rhs as f64 + 1e-6,
                            Op::Ge => lhs >= *rhs as f64 - 1e-6,
                            Op::Eq => (lhs - *rhs as f64).abs() <= 1e-6,
                        };
                        prop_assert!(ok, "violated {coeffs:?} {op:?} {rhs}: lhs {lhs} in {lp:?}");
                    }
                }
            }
            (Err(d), Err(s)) => prop_assert_eq!(d, s, "error class mismatch on {:?}", lp),
            (d, s) => {
                return Err(TestCaseError::fail(format!(
                    "solvers disagree: dense {d:?} vs sparse {s:?} on {lp:?}"
                )));
            }
        }
    }

    /// Warm-starting a solve from its own final basis is a no-op: the
    /// restored vertex is already optimal, and the result matches the
    /// cold solve (the incremental engine's byte-identity relies on the
    /// solver being a pure function of `(model, start)`).
    #[test]
    fn prop_warm_start_from_own_basis_is_identity(lp in arb_lp()) {
        let m = build(&lp);
        if let Ok((cold, basis)) = solve_lp_from(&m, None) {
            let (warm, basis2) = solve_lp_from(&m, Some(&basis))
                .expect("feasible model stays feasible under its own basis");
            let scale = 1.0 + cold.objective.abs();
            prop_assert!(
                (cold.objective - warm.objective).abs() / scale < 1e-6,
                "warm restart drifted: {} vs {} on {:?}",
                cold.objective, warm.objective, lp
            );
            prop_assert_eq!(&basis, &basis2, "optimal basis must be stable: {:?}", lp);
        }
    }

    /// The branch-and-bound pattern: tighten one variable's bounds, then
    /// warm-start from the parent basis. Classification and objective
    /// must match a cold solve of the tightened model exactly — the warm
    /// start is an accelerator, never an oracle.
    #[test]
    fn prop_warm_start_survives_bound_tightening(
        lp in arb_lp(),
        var_pick in 0usize..4,
        cut in 0i64..4,
    ) {
        let parent = build(&lp);
        let Ok((psol, pbasis)) = solve_lp_from(&parent, None) else {
            return Ok(());
        };
        // Tighten: clamp one variable below the floor of its parent value
        // (an empty box is fine — both paths must agree it is infeasible).
        let mut tightened = lp.clone();
        let i = var_pick % lp.bounds.len();
        let (lo, old_span) = lp.bounds[i];
        let new_span = (psol.values[i].floor() as i64 - cut).saturating_sub(lo);
        let new_span = match old_span {
            Some(s) => s.min(new_span),
            None => new_span,
        };
        tightened.bounds[i].1 = Some(new_span);
        let child = build(&tightened);

        let cold = solve_lp(&child);
        let warm = solve_lp_from(&child, Some(&pbasis)).map(|(s, _)| s);
        match (cold, warm) {
            (Ok(c), Ok(w)) => {
                let scale = 1.0 + c.objective.abs();
                prop_assert!(
                    (c.objective - w.objective).abs() / scale < 1e-6,
                    "warm vs cold after tightening: {} vs {} on {:?}",
                    c.objective, w.objective, lp
                );
            }
            (Err(c), Err(w)) => prop_assert_eq!(c, w),
            (c, w) => {
                return Err(TestCaseError::fail(format!(
                    "warm start changed the outcome: cold {c:?} vs warm {w:?} on {lp:?}"
                )));
            }
        }
    }

    /// Presolve/postsolve round trip: `solve_lp` (which presolves the
    /// model and maps the solution back) must classify identically to
    /// the presolve-free path and return a full-length value vector
    /// that is feasible for the *original* model — eliminated variables
    /// included.
    #[test]
    fn prop_presolve_postsolve_roundtrip(lp in arb_lp()) {
        let m = build(&lp);
        let presolved = solve_lp(&m);
        let raw = solve_lp_from(&m, None).map(|(s, _)| s);
        match (presolved, raw) {
            (Ok(p), Ok(r)) => {
                let scale = 1.0 + r.objective.abs();
                prop_assert!(
                    (p.objective - r.objective).abs() / scale < 1e-6,
                    "presolve changed the optimum: {} vs {} on {:?}",
                    p.objective, r.objective, lp
                );
                prop_assert_eq!(
                    p.values.len(), lp.bounds.len(),
                    "postsolve must restore the original variable count"
                );
                for (i, &(lo, span)) in lp.bounds.iter().enumerate() {
                    let x = p.values[i];
                    prop_assert!(x >= lo as f64 - 1e-6, "postsolved {x} below lower: {lp:?}");
                    if let Some(s) = span {
                        prop_assert!(x <= (lo + s) as f64 + 1e-6, "postsolved {x} above upper: {lp:?}");
                    }
                }
                for (coeffs, op, rhs) in &lp.constraints {
                    let lhs: f64 = coeffs
                        .iter()
                        .zip(&p.values)
                        .map(|(&c, &x)| c as f64 * x)
                        .sum();
                    let ok = match op {
                        Op::Le => lhs <= *rhs as f64 + 1e-6,
                        Op::Ge => lhs >= *rhs as f64 - 1e-6,
                        Op::Eq => (lhs - *rhs as f64).abs() <= 1e-6,
                    };
                    prop_assert!(
                        ok,
                        "postsolved solution violates {coeffs:?} {op:?} {rhs}: lhs {lhs} in {lp:?}"
                    );
                }
            }
            (Err(p), Err(r)) => prop_assert_eq!(p, r, "error class mismatch on {:?}", lp),
            (p, r) => {
                return Err(TestCaseError::fail(format!(
                    "presolve changed the outcome: {p:?} vs raw {r:?} on {lp:?}"
                )));
            }
        }
    }

    /// Duplicate `(var, coeff)` entries sum — on random instances, a
    /// constraint split into two half-coefficient copies of each term is
    /// equivalent to the merged row, in both solvers.
    #[test]
    fn prop_duplicate_terms_equal_merged(lp in arb_lp()) {
        let merged = build(&lp);
        let mut split = Model::new(lp.sense);
        let vars: Vec<_> = lp
            .bounds
            .iter()
            .enumerate()
            .map(|(i, &(lo, span))| {
                split.add_var(&format!("x{i}"), lo as f64, span.map(|s| (lo + s) as f64))
            })
            .collect();
        for (coeffs, op, rhs) in &lp.constraints {
            // Each term twice at half weight: Σ (c/2 + c/2) x = Σ c x.
            let terms: Vec<_> = vars
                .iter()
                .zip(coeffs)
                .flat_map(|(&v, &c)| [(v, c as f64 / 2.0), (v, c as f64 / 2.0)])
                .collect();
            split.add_constraint(&terms, *op, *rhs as f64);
        }
        let obj: Vec<_> = vars
            .iter()
            .zip(&lp.objective)
            .map(|(&v, &c)| (v, c as f64))
            .collect();
        split.set_objective(&obj);

        for solver in [solve_lp, solve_lp_dense] {
            let a = solver(&merged);
            let b = solver(&split);
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    let scale = 1.0 + a.objective.abs();
                    prop_assert!(
                        (a.objective - b.objective).abs() / scale < 1e-6,
                        "split-duplicate mismatch: {} vs {} on {:?}",
                        a.objective, b.objective, lp
                    );
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => {
                    return Err(TestCaseError::fail(format!(
                        "duplicate split changed the outcome: {a:?} vs {b:?} on {lp:?}"
                    )));
                }
            }
        }
    }
}
