//! # wcet-ilp — exact linear and integer-linear programming
//!
//! The path analysis of an aiT-style WCET analyzer ("Path Analysis" in the
//! paper's Figure 1) encodes the worst-case path search as an integer
//! linear program — the *implicit path enumeration technique* (IPET). The
//! commercial tool delegates to an industrial LP solver; this crate is the
//! from-scratch substitute: a **sparse, bound-aware revised simplex**
//! ([`sparse`]) with Bland's anti-cycling rule plus depth-first
//! branch-and-bound for integrality. Variable bounds stay implicit in the
//! ratio test (they never materialize as constraint rows), and columns are
//! stored as `(row, coeff)` pairs — IPET systems are network-flow-like and
//! extremely sparse. The original dense two-phase tableau survives in
//! [`simplex`] as the independently-written oracle the property suite
//! cross-validates against.
//!
//! # Example
//!
//! ```
//! use wcet_ilp::model::{Model, Sense};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // maximize 3x + 2y  s.t.  x + y ≤ 4, x ≤ 2, integer
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_int_var("x", 0, Some(2));
//! let y = m.add_int_var("y", 0, None);
//! m.add_le(&[(x, 1.0), (y, 1.0)], 4.0);
//! m.set_objective(&[(x, 3.0), (y, 2.0)]);
//! let sol = m.solve()?;
//! assert_eq!(sol.objective.round() as i64, 10); // x=2, y=2
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod branch;
pub mod fuzz;
mod lu;
pub mod model;
mod presolve;
pub mod simplex;
pub mod sparse;

pub use model::{LpStats, Model, Sense, Solution, SolveError, VarId};
