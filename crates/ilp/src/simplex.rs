//! Dense two-phase primal simplex — the cross-validation reference.
//!
//! Standard-form conversion: every variable is shifted to `x' = x − lo ≥ 0`
//! (finite upper bounds become row constraints), `≥`/`=` rows get
//! artificial variables, and phase 1 minimizes their sum. Bland's rule
//! guarantees termination; a pivot cap guards against pathological inputs.
//!
//! The production path is the sparse bounded revised simplex in
//! [`crate::sparse`]; this tableau implementation is kept as the simple,
//! independently-written oracle the property tests compare against (see
//! `tests/sparse_vs_dense.rs`).

#![allow(clippy::needless_range_loop)] // index-parallel arrays

use crate::model::{Model, Op, Sense, Solution, SolveError};

const EPS: f64 = 1e-9;

/// Solves the LP relaxation of `model` with the dense reference tableau.
///
/// # Errors
///
/// [`SolveError::Infeasible`] when phase 1 cannot zero the artificials,
/// [`SolveError::Unbounded`] when an improving column has no blocking row,
/// [`SolveError::IterationLimit`] past `model.max_pivots` pivots.
pub fn solve_lp_dense(model: &Model) -> Result<Solution, SolveError> {
    let n = model.vars.len();

    // Shift variables to x' = x - lo.
    let shift: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();

    // Gather rows: model constraints (rhs adjusted by shifts) + upper
    // bound rows.
    struct Row {
        coeffs: Vec<f64>, // dense over structural vars
        op: Op,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::new();
    for c in &model.constraints {
        let mut coeffs = vec![0.0; n];
        let mut rhs = c.rhs;
        for &(v, a) in &c.coeffs {
            coeffs[v.0] += a;
            rhs -= a * shift[v.0];
        }
        rows.push(Row {
            coeffs,
            op: c.op,
            rhs,
        });
    }
    for (i, v) in model.vars.iter().enumerate() {
        if let Some(u) = v.upper {
            let mut coeffs = vec![0.0; n];
            coeffs[i] = 1.0;
            rows.push(Row {
                coeffs,
                op: Op::Le,
                rhs: u - v.lower,
            });
        }
    }

    // Normalize to non-negative rhs.
    for r in &mut rows {
        if r.rhs < 0.0 {
            for a in &mut r.coeffs {
                *a = -*a;
            }
            r.rhs = -r.rhs;
            r.op = match r.op {
                Op::Le => Op::Ge,
                Op::Ge => Op::Le,
                Op::Eq => Op::Eq,
            };
        }
    }

    let m = rows.len();
    // Column layout: structural (n) | slacks/surplus | artificials | rhs.
    let mut n_slack = 0usize;
    let mut n_art = 0usize;
    for r in &rows {
        match r.op {
            Op::Le => n_slack += 1,
            Op::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            Op::Eq => n_art += 1,
        }
    }
    let total = n + n_slack + n_art;
    let rhs_col = total;

    let mut t = vec![vec![0.0f64; total + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut slack_idx = n;
    let mut art_idx = n + n_slack;
    let mut artificials = Vec::new();

    for (i, r) in rows.iter().enumerate() {
        t[i][..n].copy_from_slice(&r.coeffs);
        t[i][rhs_col] = r.rhs;
        match r.op {
            Op::Le => {
                t[i][slack_idx] = 1.0;
                basis[i] = slack_idx;
                slack_idx += 1;
            }
            Op::Ge => {
                t[i][slack_idx] = -1.0;
                slack_idx += 1;
                t[i][art_idx] = 1.0;
                basis[i] = art_idx;
                artificials.push(art_idx);
                art_idx += 1;
            }
            Op::Eq => {
                t[i][art_idx] = 1.0;
                basis[i] = art_idx;
                artificials.push(art_idx);
                art_idx += 1;
            }
        }
    }

    let mut pivots_left = model.max_pivots;

    // Phase 1: minimize sum of artificials (maximize the negation).
    if !artificials.is_empty() {
        let mut obj = vec![0.0; total];
        for &a in &artificials {
            obj[a] = -1.0;
        }
        let value = run_simplex(&mut t, &mut basis, &obj, total, &mut pivots_left)?;
        if value < -1e-6 {
            return Err(SolveError::Infeasible);
        }
        // Pivot remaining basic artificials out where possible.
        for i in 0..m {
            if artificials.contains(&basis[i]) {
                if let Some(j) = (0..n + n_slack).find(|&j| t[i][j].abs() > EPS) {
                    pivot(&mut t, &mut basis, i, j);
                } // else: redundant row, harmless.
            }
        }
        // Forbid artificials from re-entering by zapping their columns.
        for &a in &artificials {
            for row in t.iter_mut() {
                row[a] = 0.0;
            }
        }
    }

    // Phase 2: the real objective over structural variables.
    let dir = match model.sense {
        Sense::Maximize => 1.0,
        Sense::Minimize => -1.0,
    };
    let mut obj = vec![0.0; total];
    for (i, &c) in model.objective.iter().enumerate() {
        obj[i] = dir * c;
    }
    run_simplex(&mut t, &mut basis, &obj, total, &mut pivots_left)?;

    // Extract.
    let mut values = shift;
    for (i, &b) in basis.iter().enumerate() {
        if b < n {
            values[b] += t[i][rhs_col];
        }
    }
    let objective = model
        .objective
        .iter()
        .zip(&values)
        .map(|(c, v)| c * v)
        .sum();
    Ok(Solution { objective, values })
}

/// Maximizes `obj` over the current tableau; returns the optimal value of
/// the phase objective (in the maximization direction used internally).
fn run_simplex(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    obj: &[f64],
    total: usize,
    pivots_left: &mut usize,
) -> Result<f64, SolveError> {
    let m = t.len();
    let rhs_col = total;
    loop {
        // Reduced costs: c_j - c_B B^-1 A_j, computed directly from the
        // tableau (which stores B^-1 A).
        let mut entering = None;
        for j in 0..total {
            let mut red = obj[j];
            for i in 0..m {
                red -= obj[basis[i]] * t[i][j];
            }
            if red > EPS {
                entering = Some(j); // Bland: first improving index
                break;
            }
        }
        let Some(j) = entering else {
            // Optimal; compute the objective value.
            let mut value = 0.0;
            for i in 0..m {
                value += obj[basis[i]] * t[i][rhs_col];
            }
            return Ok(value);
        };

        // Ratio test (Bland: smallest basis index breaks ties).
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for i in 0..m {
            if t[i][j] > EPS {
                let ratio = t[i][rhs_col] / t[i][j];
                if ratio < best - EPS
                    || ((ratio - best).abs() <= EPS && leave.is_some_and(|l| basis[i] < basis[l]))
                {
                    best = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(i) = leave else {
            return Err(SolveError::Unbounded);
        };

        if *pivots_left == 0 {
            return Err(SolveError::IterationLimit);
        }
        *pivots_left -= 1;
        pivot(t, basis, i, j);
    }
}

fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize) {
    let m = t.len();
    let width = t[row].len();
    let p = t[row][col];
    for v in t[row].iter_mut() {
        *v /= p;
    }
    for i in 0..m {
        if i != row && t[i][col].abs() > EPS {
            let f = t[i][col];
            for j in 0..width {
                t[i][j] -= f * t[row][j];
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → 36 at (2, 6).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, None);
        let y = m.add_var("y", 0.0, None);
        m.add_le(&[(x, 1.0)], 4.0);
        m.add_le(&[(y, 2.0)], 12.0);
        m.add_le(&[(x, 3.0), (y, 2.0)], 18.0);
        m.set_objective(&[(x, 3.0), (y, 5.0)]);
        let sol = solve_lp_dense(&m).unwrap();
        assert_close(sol.objective, 36.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 6.0);
    }

    #[test]
    fn minimization_with_ge() {
        // min 2x + 3y s.t. x + y ≥ 10, x ≥ 2 → 23 at (2, 8)?
        // 2·2+3·8 = 28; better: push y down → x=10-y... coefficient of x
        // is smaller, so x big: x=10,y=0 within x≥2 → cost 20.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 2.0, None);
        let y = m.add_var("y", 0.0, None);
        m.add_ge(&[(x, 1.0), (y, 1.0)], 10.0);
        m.set_objective(&[(x, 2.0), (y, 3.0)]);
        let sol = solve_lp_dense(&m).unwrap();
        assert_close(sol.objective, 20.0);
        assert_close(sol.value(x), 10.0);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 7, x - y = 1 → x=4, y=3.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, None);
        let y = m.add_var("y", 0.0, None);
        m.add_eq(&[(x, 1.0), (y, 1.0)], 7.0);
        m.add_eq(&[(x, 1.0), (y, -1.0)], 1.0);
        m.set_objective(&[(x, 1.0), (y, 1.0)]);
        let sol = solve_lp_dense(&m).unwrap();
        assert_close(sol.value(x), 4.0);
        assert_close(sol.value(y), 3.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, None);
        m.add_le(&[(x, 1.0)], 1.0);
        m.add_ge(&[(x, 1.0)], 2.0);
        m.set_objective(&[(x, 1.0)]);
        assert_eq!(solve_lp_dense(&m), Err(SolveError::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, None);
        m.set_objective(&[(x, 1.0)]);
        assert_eq!(solve_lp_dense(&m), Err(SolveError::Unbounded));
    }

    #[test]
    fn variable_bounds_respected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 1.5, Some(3.5));
        m.set_objective(&[(x, 2.0)]);
        let sol = solve_lp_dense(&m).unwrap();
        assert_close(sol.value(x), 3.5);
        assert_close(sol.objective, 7.0);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x with x ≥ -5 → -5.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", -5.0, Some(10.0));
        m.set_objective(&[(x, 1.0)]);
        let sol = solve_lp_dense(&m).unwrap();
        assert_close(sol.value(x), -5.0);
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // Classic degenerate LP; Bland's rule must terminate.
        let mut m = Model::new(Sense::Maximize);
        let x1 = m.add_var("x1", 0.0, None);
        let x2 = m.add_var("x2", 0.0, None);
        let x3 = m.add_var("x3", 0.0, None);
        m.add_le(&[(x1, 0.5), (x2, -5.5), (x3, -2.5)], 0.0);
        m.add_le(&[(x1, 0.5), (x2, -1.5), (x3, -0.5)], 0.0);
        m.add_le(&[(x1, 1.0)], 1.0);
        m.set_objective(&[(x1, 10.0), (x2, -57.0), (x3, -9.0)]);
        let sol = solve_lp_dense(&m).unwrap();
        assert!(sol.objective.is_finite());
    }
}
