//! The LP/ILP model-building API.

use std::fmt;

/// A variable handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) usize);

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Maximize the objective (the WCET direction).
    Maximize,
    /// Minimize the objective (the BCET direction).
    Minimize,
}

/// Constraint comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `≤ rhs`
    Le,
    /// `≥ rhs`
    Ge,
    /// `= rhs`
    Eq,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub(crate) coeffs: Vec<(VarId, f64)>,
    pub(crate) op: Op,
    pub(crate) rhs: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Var {
    pub(crate) name: String,
    pub(crate) lower: f64,
    pub(crate) upper: Option<f64>,
    pub(crate) integer: bool,
}

/// Why a model could not be solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The constraints admit no solution.
    Infeasible,
    /// The objective is unbounded — for IPET this means some execution
    /// count is unconstrained (a loop without a bound).
    Unbounded,
    /// The pivot or node limit was exceeded.
    IterationLimit,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SolveError::Infeasible => "model is infeasible",
            SolveError::Unbounded => "objective is unbounded",
            SolveError::IterationLimit => "iteration limit exceeded",
        };
        f.write_str(s)
    }
}

impl std::error::Error for SolveError {}

/// Solver effort counters, accumulated across one LP solve or a whole
/// branch-and-bound tree. Deterministic for a fixed model and start —
/// they count algorithmic events, not wall-clock artifacts — so they can
/// be cached and replayed alongside results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LpStats {
    /// Simplex iterations (basis pivots *and* bound flips — everything
    /// the pivot cap counts).
    pub pivots: u64,
    /// Basis refactorizations triggered by the eta-file length or a
    /// small pivot element (initial factorizations are not counted).
    pub refactorizations: u64,
    /// Variables plus rows eliminated by presolve.
    pub presolve_removed: u64,
}

impl LpStats {
    /// Adds `other`'s counters into `self`.
    pub fn absorb(&mut self, other: &LpStats) {
        self.pivots += other.pivots;
        self.refactorizations += other.refactorizations;
        self.presolve_removed += other.presolve_removed;
    }

    /// Whether every counter is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == LpStats::default()
    }
}

/// An optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal objective value.
    pub objective: f64,
    /// Value of each variable, indexed by [`VarId`].
    pub values: Vec<f64>,
}

impl Solution {
    /// The value of `var`.
    #[must_use]
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.0]
    }

    /// The value of `var` rounded to the nearest integer (valid for
    /// integer variables of an ILP solution).
    #[must_use]
    pub fn int_value(&self, var: VarId) -> i64 {
        self.values[var.0].round() as i64
    }
}

/// A linear (or mixed-integer) program.
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<Var>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: Vec<f64>,
    /// Pivot limit for each simplex run.
    pub max_pivots: usize,
    /// Node limit for branch and bound.
    pub max_nodes: usize,
}

impl Model {
    /// Creates an empty model.
    #[must_use]
    pub fn new(sense: Sense) -> Model {
        Model {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
            objective: Vec::new(),
            max_pivots: 100_000,
            max_nodes: 50_000,
        }
    }

    /// Adds a continuous variable with bounds `lower ≤ x (≤ upper)`.
    pub fn add_var(&mut self, name: &str, lower: f64, upper: Option<f64>) -> VarId {
        self.vars.push(Var {
            name: name.to_owned(),
            lower,
            upper,
            integer: false,
        });
        self.objective.push(0.0);
        VarId(self.vars.len() - 1)
    }

    /// Adds an integer variable with bounds `lower ≤ x (≤ upper)`.
    pub fn add_int_var(&mut self, name: &str, lower: i64, upper: Option<i64>) -> VarId {
        let id = self.add_var(name, lower as f64, upper.map(|u| u as f64));
        self.vars[id.0].integer = true;
        id
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    #[must_use]
    pub fn var_name(&self, var: VarId) -> &str {
        &self.vars[var.0].name
    }

    /// Adds `Σ coeffs ≤ rhs`.
    pub fn add_le(&mut self, coeffs: &[(VarId, f64)], rhs: f64) {
        self.add_constraint(coeffs, Op::Le, rhs);
    }

    /// Adds `Σ coeffs ≥ rhs`.
    pub fn add_ge(&mut self, coeffs: &[(VarId, f64)], rhs: f64) {
        self.add_constraint(coeffs, Op::Ge, rhs);
    }

    /// Adds `Σ coeffs = rhs`.
    pub fn add_eq(&mut self, coeffs: &[(VarId, f64)], rhs: f64) {
        self.add_constraint(coeffs, Op::Eq, rhs);
    }

    /// Adds a constraint with an explicit operator.
    pub fn add_constraint(&mut self, coeffs: &[(VarId, f64)], op: Op, rhs: f64) {
        self.constraints.push(Constraint {
            coeffs: coeffs.to_vec(),
            op,
            rhs,
        });
    }

    /// Sets the objective coefficients (unmentioned variables get 0).
    pub fn set_objective(&mut self, coeffs: &[(VarId, f64)]) {
        self.objective = vec![0.0; self.vars.len()];
        for &(v, c) in coeffs {
            self.objective[v.0] = c;
        }
    }

    /// Solves the model: LP via the sparse revised simplex, then
    /// branch-and-bound if any variable is integral.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`], [`SolveError::Unbounded`], or
    /// [`SolveError::IterationLimit`].
    pub fn solve(&self) -> Result<Solution, SolveError> {
        self.solve_with_stats(&mut LpStats::default())
    }

    /// [`Model::solve`], accumulating solver effort counters into
    /// `stats`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::solve`].
    pub fn solve_with_stats(&self, stats: &mut LpStats) -> Result<Solution, SolveError> {
        if self.vars.iter().any(|v| v.integer) {
            crate::branch::solve_ilp_with_stats(self, stats)
        } else {
            crate::sparse::solve_lp_with_stats(self, stats)
        }
    }

    /// Solves only the LP relaxation (integrality dropped).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::solve`].
    pub fn solve_relaxation(&self) -> Result<Solution, SolveError> {
        crate::sparse::solve_lp(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_construction() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, Some(5.0));
        let y = m.add_int_var("y", 1, None);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.var_name(x), "x");
        assert_eq!(m.var_name(y), "y");
        m.add_le(&[(x, 1.0), (y, 2.0)], 10.0);
        assert_eq!(m.num_constraints(), 1);
    }
}
