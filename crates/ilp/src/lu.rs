//! Sparse LU factorization of a simplex basis with Markowitz pivoting.
//!
//! Factors the `m × m` basis matrix `B` (columns taken from the sparse
//! standard form) as `P B Q = L U` where `P`/`Q` are row/column
//! permutations chosen during elimination. Pivots are selected by the
//! Markowitz rule — minimize `(r_i − 1)(c_j − 1)` over the active
//! submatrix, the classic fill-in heuristic — subject to threshold
//! partial pivoting (a pivot must be at least [`PIVOT_THRESHOLD`] of the
//! largest entry in its column) for numerical stability. Ties break on
//! the smallest `(column, row)` pair, so the factorization is a pure
//! function of the input and every solve is bit-reproducible.
//!
//! The factors support the two simplex kernels:
//!
//! * [`LuFactors::ftran`] — solve `B x = b` (forward transformation),
//! * [`LuFactors::btran`] — solve `Bᵀ y = c` (backward transformation),
//!
//! both as sparse triangular solves in *elimination-step space*: input
//! and output vectors are dense, but work is proportional to the stored
//! nonzeros.

use std::collections::{BTreeMap, BTreeSet};

/// Relative threshold for partial pivoting: a Markowitz candidate is
/// admissible only if its magnitude is at least this fraction of the
/// largest magnitude in its column of the active submatrix.
const PIVOT_THRESHOLD: f64 = 0.1;

/// Absolute floor below which a pivot counts as structurally zero.
const PIVOT_EPS: f64 = 1e-9;

/// Entries produced by elimination whose magnitude falls below this are
/// dropped from the working pattern (exact cancellation plus noise).
const DROP_EPS: f64 = 1e-12;

/// A sparse LU factorization `P B Q = L U` of a basis matrix.
///
/// Index spaces: *original rows* `0..m` (tableau rows), *basis
/// positions* `0..m` (which basic column), and *elimination steps*
/// `0..m` (the order pivots were chosen). `L` is unit lower triangular
/// over steps, stored column-wise by original row; `U` is upper
/// triangular over steps, stored row-wise with a separate diagonal.
pub(crate) struct LuFactors {
    m: usize,
    /// Original row pivoted at each elimination step.
    row_of: Vec<usize>,
    /// Basis position pivoted at each elimination step.
    col_of: Vec<usize>,
    /// Below-diagonal column `k` of `L`: `(original row, multiplier)`
    /// pairs; every listed row pivots at a later step.
    lcols: Vec<Vec<(usize, f64)>>,
    /// Off-diagonal row `k` of `U`: `(step, value)` pairs with
    /// `step > k`.
    urows: Vec<Vec<(usize, f64)>>,
    /// Diagonal of `U` per step.
    udiag: Vec<f64>,
}

impl LuFactors {
    /// Factorizes the matrix whose `p`-th column is `cols[p]`, given
    /// sparse as `(row, value)` pairs. Returns `None` when the matrix is
    /// numerically singular (no admissible pivot at some step).
    pub(crate) fn factorize(m: usize, cols: &[&[(usize, f64)]]) -> Option<LuFactors> {
        debug_assert_eq!(cols.len(), m);
        if let Some(fast) = Self::factorize_permutation(m, cols) {
            return Some(fast);
        }
        // Working matrix, row-major over original rows; keys are basis
        // positions. BTree containers make every iteration order — and
        // therefore every tie-break — deterministic.
        let mut rows: Vec<BTreeMap<usize, f64>> = vec![BTreeMap::new(); m];
        let mut col_rows: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); m];
        for (p, col) in cols.iter().enumerate() {
            for &(r, a) in *col {
                if a != 0.0 {
                    rows[r].insert(p, a);
                    col_rows[p].insert(r);
                }
            }
        }

        let mut col_active = vec![true; m];
        let mut row_of = Vec::with_capacity(m);
        let mut col_of = Vec::with_capacity(m);
        let mut step_of_col = vec![usize::MAX; m];
        let mut lcols = Vec::with_capacity(m);
        let mut urows_pos: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut udiag = Vec::with_capacity(m);

        for step in 0..m {
            // Markowitz candidate search over the active submatrix:
            // minimize (row count − 1)(col count − 1), admit only
            // entries within PIVOT_THRESHOLD of their column's largest
            // magnitude, break ties on the smallest (col, row).
            let mut best: Option<(usize, usize, usize)> = None; // (score, col, row)
            for c in 0..m {
                if !col_active[c] || col_rows[c].is_empty() {
                    continue;
                }
                let col_max = col_rows[c]
                    .iter()
                    .map(|&i| rows[i].get(&c).copied().unwrap_or(0.0).abs())
                    .fold(0.0_f64, f64::max);
                if col_max <= PIVOT_EPS {
                    continue;
                }
                let ccount = col_rows[c].len();
                for &i in &col_rows[c] {
                    let v = rows[i][&c];
                    if v.abs() < PIVOT_THRESHOLD * col_max || v.abs() <= PIVOT_EPS {
                        continue;
                    }
                    let score = (rows[i].len() - 1) * (ccount - 1);
                    let key = (score, c, i);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
            }
            let (_, pc, pr) = best?;
            let pivot = rows[pr][&pc];

            // Eliminate: subtract multiples of the pivot row from every
            // other active row with a nonzero in the pivot column.
            let prow: Vec<(usize, f64)> = rows[pr]
                .iter()
                .filter(|&(&c, _)| c != pc)
                .map(|(&c, &v)| (c, v))
                .collect();
            let victims: Vec<usize> = col_rows[pc].iter().copied().filter(|&i| i != pr).collect();
            let mut lcol = Vec::new();
            for i in victims {
                let a = rows[i].remove(&pc).expect("tracked nonzero");
                col_rows[pc].remove(&i);
                let l = a / pivot;
                lcol.push((i, l));
                for &(c, v) in &prow {
                    let slot = rows[i].entry(c).or_insert(0.0);
                    *slot -= l * v;
                    if slot.abs() <= DROP_EPS {
                        rows[i].remove(&c);
                        col_rows[c].remove(&i);
                    } else {
                        col_rows[c].insert(i);
                    }
                }
            }

            // Retire the pivot row and column from the active pattern.
            for &(c, _) in &prow {
                col_rows[c].remove(&pr);
            }
            col_rows[pc].remove(&pr);
            col_active[pc] = false;
            step_of_col[pc] = step;
            row_of.push(pr);
            col_of.push(pc);
            lcols.push(lcol);
            urows_pos.push(prow);
            udiag.push(pivot);
        }

        // Re-key U's off-diagonal entries from basis positions to
        // elimination steps; every surviving position pivots later.
        let urows = urows_pos
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|(p, v)| (step_of_col[p], v))
                    .collect::<Vec<_>>()
            })
            .collect();

        Some(LuFactors {
            m,
            row_of,
            col_of,
            lcols,
            urows,
            udiag,
        })
    }

    /// Fast path for permutation-diagonal bases: every column holds
    /// exactly one nonzero and the rows are distinct. This is every
    /// cold-start artificial basis and most slack-heavy IPET bases, and
    /// it skips the Markowitz machinery entirely. The factors are the
    /// ones the general path would produce — with all Markowitz scores
    /// zero, its tie-break picks columns in ascending order, and a
    /// one-entry column yields no `L`/`U` off-diagonals — so solves are
    /// bit-identical either way. `None` falls through to the general
    /// algorithm (not singularity).
    fn factorize_permutation(m: usize, cols: &[&[(usize, f64)]]) -> Option<LuFactors> {
        let mut row_of = Vec::with_capacity(m);
        let mut udiag = Vec::with_capacity(m);
        let mut row_used = vec![false; m];
        for col in cols {
            let &[(r, a)] = *col else {
                return None;
            };
            if a.abs() <= PIVOT_EPS || row_used[r] {
                return None;
            }
            row_used[r] = true;
            row_of.push(r);
            udiag.push(a);
        }
        Some(LuFactors {
            m,
            row_of,
            col_of: (0..m).collect(),
            lcols: vec![Vec::new(); m],
            urows: vec![Vec::new(); m],
            udiag,
        })
    }

    /// Solves `B x = b` in place: `v` enters as `b` indexed by original
    /// row and leaves as `x` indexed by basis position.
    pub(crate) fn ftran(&self, v: &mut [f64]) {
        let m = self.m;
        debug_assert_eq!(v.len(), m);
        // Forward substitution through L, permuting rows into step space.
        let mut y = vec![0.0; m];
        for k in 0..m {
            let t = v[self.row_of[k]];
            if t != 0.0 {
                for &(i, l) in &self.lcols[k] {
                    v[i] -= l * t;
                }
            }
            y[k] = t;
        }
        // Back substitution through U in step space.
        for k in (0..m).rev() {
            let mut s = y[k];
            for &(kk, u) in &self.urows[k] {
                s -= u * y[kk];
            }
            y[k] = s / self.udiag[k];
        }
        // Scatter steps back to basis positions.
        for k in 0..m {
            v[self.col_of[k]] = y[k];
        }
    }

    /// Solves `Bᵀ y = c` in place: `v` enters as `c` indexed by basis
    /// position and leaves as `y` indexed by original row.
    pub(crate) fn btran(&self, v: &mut [f64]) {
        let m = self.m;
        debug_assert_eq!(v.len(), m);
        // Gather basis positions into step space, then solve Uᵀ z = c
        // (lower triangular over steps) by scatter.
        let mut z = vec![0.0; m];
        for k in 0..m {
            z[k] = v[self.col_of[k]];
        }
        for k in 0..m {
            let t = z[k] / self.udiag[k];
            z[k] = t;
            if t != 0.0 {
                for &(kk, u) in &self.urows[k] {
                    z[kk] -= u * t;
                }
            }
        }
        // Solve Lᵀ w = z (upper triangular over steps, unit diagonal),
        // writing straight into original-row space.
        for k in (0..m).rev() {
            let mut s = z[k];
            for &(i, l) in &self.lcols[k] {
                s -= l * v[i];
            }
            v[self.row_of[k]] = s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_mul(m: usize, cols: &[Vec<(usize, f64)>], x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; m];
        for (p, col) in cols.iter().enumerate() {
            for &(r, a) in col {
                out[r] += a * x[p];
            }
        }
        out
    }

    fn check_roundtrip(m: usize, cols: Vec<Vec<(usize, f64)>>) {
        let refs: Vec<&[(usize, f64)]> = cols.iter().map(Vec::as_slice).collect();
        let lu = LuFactors::factorize(m, &refs).expect("nonsingular");
        // FTRAN: pick x, form b = Bx, solve, compare.
        let x: Vec<f64> = (0..m).map(|i| 1.0 + (i as f64) * 0.5).collect();
        let mut b = dense_mul(m, &cols, &x);
        lu.ftran(&mut b);
        for i in 0..m {
            assert!(
                (b[i] - x[i]).abs() < 1e-9,
                "ftran[{i}]: {} vs {}",
                b[i],
                x[i]
            );
        }
        // BTRAN: pick y, form c = Bᵀy (c[p] = col_p · y), solve, compare.
        let y: Vec<f64> = (0..m).map(|i| 2.0 - (i as f64) * 0.25).collect();
        let mut c = vec![0.0; m];
        for (p, col) in cols.iter().enumerate() {
            c[p] = col.iter().map(|&(r, a)| a * y[r]).sum();
        }
        lu.btran(&mut c);
        for i in 0..m {
            assert!(
                (c[i] - y[i]).abs() < 1e-9,
                "btran[{i}]: {} vs {}",
                c[i],
                y[i]
            );
        }
    }

    #[test]
    fn identity_roundtrip() {
        let cols: Vec<Vec<(usize, f64)>> = (0..5).map(|i| vec![(i, 1.0)]).collect();
        check_roundtrip(5, cols);
    }

    #[test]
    fn permuted_scaled_roundtrip() {
        // A permutation with scaling: column p hits row (p * 3) % 7.
        let cols: Vec<Vec<(usize, f64)>> = (0..7)
            .map(|p| vec![((p * 3) % 7, 1.0 + p as f64)])
            .collect();
        check_roundtrip(7, cols);
    }

    #[test]
    fn banded_roundtrip() {
        // Diagonally dominant tridiagonal system.
        let m = 9;
        let cols: Vec<Vec<(usize, f64)>> = (0..m)
            .map(|p| {
                let mut col = vec![(p, 4.0)];
                if p > 0 {
                    col.push((p - 1, -1.0));
                }
                if p + 1 < m {
                    col.push((p + 1, -1.5));
                }
                col
            })
            .collect();
        check_roundtrip(m, cols);
    }

    #[test]
    fn dense_block_roundtrip() {
        // A full 4×4 block embedded in an identity tail — exercises
        // fill-in and the threshold pivoting path.
        let m = 6;
        let mut cols: Vec<Vec<(usize, f64)>> = Vec::new();
        for p in 0..4 {
            let col = (0..4)
                .map(|r| (r, ((r * 4 + p * 7) % 11) as f64 - 3.0))
                .filter(|&(_, a)| a != 0.0)
                .collect();
            cols.push(col);
        }
        cols.push(vec![(4, 2.0)]);
        cols.push(vec![(5, -3.0)]);
        check_roundtrip(m, cols);
    }

    #[test]
    fn singular_detected() {
        // Two identical columns.
        let cols: Vec<Vec<(usize, f64)>> = vec![vec![(0, 1.0), (1, 2.0)], vec![(0, 1.0), (1, 2.0)]];
        let refs: Vec<&[(usize, f64)]> = cols.iter().map(Vec::as_slice).collect();
        assert!(LuFactors::factorize(2, &refs).is_none());
        // An outright zero column.
        let cols2: Vec<Vec<(usize, f64)>> = vec![vec![(0, 1.0), (1, 1.0)], vec![]];
        let refs2: Vec<&[(usize, f64)]> = cols2.iter().map(Vec::as_slice).collect();
        assert!(LuFactors::factorize(2, &refs2).is_none());
    }
}
