//! Model presolve: shrink an LP/ILP before the simplex sees it.
//!
//! IPET systems are full of trivially-determined structure — the entry
//! variable is fixed to 1, flow-conservation chains propagate that
//! constant, and loop-bound rows collapse to plain variable bounds once
//! their other term is fixed. The presolver applies a small, safe set of
//! reductions to a fixpoint:
//!
//! 1. **Fixed variables** (`upper == lower`) are substituted into every
//!    row and the objective, then removed.
//! 2. **Empty rows** are checked for feasibility (`0 op rhs`) and
//!    dropped.
//! 3. **Singleton rows** (`a·x op rhs`) become variable bounds and are
//!    dropped; in integral mode the derived bounds round inward for
//!    integer variables.
//! 4. **Implied-free singleton columns**: a *continuous* variable that
//!    appears in exactly one row, an equality whose activity bounds keep
//!    the variable strictly inside its own bounds, is substituted out
//!    together with the row.
//!
//! Every reduction records a postsolve action; [`Presolved::postsolve`]
//! replays them in reverse to reconstruct a full solution vector in the
//! *original* variable order. The reduced model's objective may differ
//! from the original by a constant (dropped by substitution), so callers
//! recompute the final objective from the original coefficients — which
//! is exactly what the solver's extraction step does anyway.
//!
//! Determinism: reductions scan variables and rows in index order and
//! the fixpoint loop has a hard round cap, so the reduced model is a
//! pure function of the input.

use std::collections::BTreeMap;

use crate::model::{Model, Op, SolveError};

/// Feasibility tolerance, matching the solver's bound checks.
const TOL: f64 = 1e-6;

/// Tolerance under which a variable's bound box counts as a single
/// point. Tighter than [`TOL`]: fixing is an equality substitution, not
/// a feasibility question.
const FIX_TOL: f64 = 1e-9;

/// One recorded reduction, replayed in reverse by postsolve.
enum Action {
    /// `var` was removed at a known value.
    Fix { var: usize, value: f64 },
    /// `var` was substituted out of an equality row:
    /// `var = (rhs − Σ terms) / coeff`, terms over original indices.
    Subst {
        var: usize,
        coeff: f64,
        rhs: f64,
        terms: Vec<(usize, f64)>,
    },
}

/// The output of [`presolve`]: a reduced model plus the recipe to map a
/// reduced solution back onto the original variable space.
pub(crate) struct Presolved {
    /// The reduced model (original variable order preserved among
    /// survivors, original row order among surviving rows).
    pub(crate) reduced: Model,
    /// Variables plus rows eliminated — the `lp_presolve_removed` stat.
    pub(crate) removed: usize,
    /// Original variable count.
    n_orig: usize,
    /// Original index → reduced index for surviving variables.
    map: Vec<Option<usize>>,
    actions: Vec<Action>,
}

impl Presolved {
    /// Reconstructs a full original-order solution vector from a
    /// solution of [`Presolved::reduced`].
    pub(crate) fn postsolve(&self, reduced_values: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n_orig];
        for (orig, slot) in self.map.iter().enumerate() {
            if let Some(r) = slot {
                out[orig] = reduced_values[*r];
            }
        }
        for action in self.actions.iter().rev() {
            match action {
                Action::Fix { var, value } => out[*var] = *value,
                Action::Subst {
                    var,
                    coeff,
                    rhs,
                    terms,
                } => {
                    let acc: f64 = terms.iter().map(|&(k, a)| a * out[k]).sum();
                    out[*var] = (rhs - acc) / coeff;
                }
            }
        }
        out
    }
}

struct Row {
    terms: BTreeMap<usize, f64>,
    op: Op,
    rhs: f64,
}

/// Presolves `model`. With `integral`, integer variables get their
/// derived bounds rounded inward (valid for the ILP, *not* for its LP
/// relaxation) and a fixed integer variable with a fractional value is
/// infeasible; without it every variable is treated as continuous.
///
/// # Errors
///
/// [`SolveError::Infeasible`] when a reduction proves the model empty.
pub(crate) fn presolve(model: &Model, integral: bool) -> Result<Presolved, SolveError> {
    let n = model.vars.len();
    let mut lower: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();
    let mut upper: Vec<Option<f64>> = model.vars.iter().map(|v| v.upper).collect();
    let integer: Vec<bool> = model.vars.iter().map(|v| v.integer && integral).collect();
    let mut alive = vec![true; n];
    let mut obj: Vec<f64> = model.objective.clone();
    let mut actions: Vec<Action> = Vec::new();

    // Normalize rows the way the standard-form builders do: duplicate
    // terms sum, exact-zero coefficients drop.
    let mut rows: Vec<Option<Row>> = model
        .constraints
        .iter()
        .map(|c| {
            let mut terms: BTreeMap<usize, f64> = BTreeMap::new();
            for &(v, a) in &c.coeffs {
                *terms.entry(v.0).or_insert(0.0) += a;
            }
            terms.retain(|_, a| *a != 0.0);
            Some(Row {
                terms,
                op: c.op,
                rhs: c.rhs,
            })
        })
        .collect();
    // How many *alive* rows each variable appears in (for the singleton
    // column rule).
    let mut col_count = vec![0usize; n];
    for row in rows.iter().flatten() {
        for &j in row.terms.keys() {
            col_count[j] += 1;
        }
    }

    // An inverted bound box admits no solution (same tolerance as the
    // solver's up-front check).
    for j in 0..n {
        if upper[j].is_some_and(|u| u - lower[j] < -TOL) {
            return Err(SolveError::Infeasible);
        }
    }

    const MAX_ROUNDS: usize = 16;
    for _ in 0..MAX_ROUNDS {
        let mut changed = false;

        // --- Rule 1: fixed variables ------------------------------------
        for j in 0..n {
            if !alive[j] || !upper[j].is_some_and(|u| u - lower[j] <= FIX_TOL) {
                continue;
            }
            let value = lower[j];
            if integer[j] && (value - value.round()).abs() > TOL {
                return Err(SolveError::Infeasible);
            }
            alive[j] = false;
            col_count[j] = 0;
            actions.push(Action::Fix { var: j, value });
            for row in rows.iter_mut().flatten() {
                if let Some(a) = row.terms.remove(&j) {
                    row.rhs -= a * value;
                }
            }
            changed = true;
        }

        // --- Rules 2 + 3: empty and singleton rows ----------------------
        for slot in &mut rows {
            let Some(row) = slot.as_ref() else { continue };
            match row.terms.len() {
                0 => {
                    let ok = match row.op {
                        Op::Le => 0.0 <= row.rhs + TOL,
                        Op::Ge => 0.0 >= row.rhs - TOL,
                        Op::Eq => row.rhs.abs() <= TOL,
                    };
                    if !ok {
                        return Err(SolveError::Infeasible);
                    }
                    *slot = None;
                    changed = true;
                }
                1 => {
                    let (&j, &a) = row.terms.iter().next().expect("one term");
                    let (op, rhs) = (row.op, row.rhs);
                    let bound = rhs / a;
                    // a·x op rhs ⇒ x op' bound, with op' flipped when
                    // a < 0.
                    let (mut new_lower, mut new_upper) = match (op, a > 0.0) {
                        (Op::Le, true) | (Op::Ge, false) => (None, Some(bound)),
                        (Op::Le, false) | (Op::Ge, true) => (Some(bound), None),
                        (Op::Eq, _) => (Some(bound), Some(bound)),
                    };
                    if integer[j] {
                        if op == Op::Eq && (bound - bound.round()).abs() > TOL {
                            return Err(SolveError::Infeasible);
                        }
                        new_lower = new_lower.map(|b| (b - TOL).ceil());
                        new_upper = new_upper.map(|b| (b + TOL).floor());
                    }
                    if let Some(b) = new_lower {
                        if b > lower[j] {
                            lower[j] = b;
                        }
                    }
                    if let Some(b) = new_upper {
                        if upper[j].is_none_or(|u| b < u) {
                            upper[j] = Some(b);
                        }
                    }
                    if upper[j].is_some_and(|u| u - lower[j] < -TOL) {
                        return Err(SolveError::Infeasible);
                    }
                    *slot = None;
                    col_count[j] -= 1;
                    changed = true;
                }
                _ => {}
            }
        }

        // --- Rule 4: implied-free singleton columns ---------------------
        for j in 0..n {
            if !alive[j] || integer[j] || col_count[j] != 1 {
                continue;
            }
            // Integral mode keeps integer variables out above; in pure
            // LP mode every variable is fair game.
            let Some(ri) = rows
                .iter()
                .position(|r| r.as_ref().is_some_and(|r| r.terms.contains_key(&j)))
            else {
                continue;
            };
            let row = rows[ri].as_ref().expect("found above");
            if row.op != Op::Eq {
                continue;
            }
            let aj = row.terms[&j];
            if aj.abs() <= FIX_TOL {
                continue;
            }
            // x_j = (rhs − Σ a_k x_k) / a_j: bound the right-hand side
            // by the other variables' boxes. Unbounded partners push the
            // implied interval to ±∞.
            let mut lo = row.rhs;
            let mut hi = row.rhs;
            for (&k, &ak) in &row.terms {
                if k == j {
                    continue;
                }
                let (k_lo, k_hi) = (lower[k], upper[k].unwrap_or(f64::INFINITY));
                if ak > 0.0 {
                    hi -= ak * k_lo;
                    lo -= ak * k_hi;
                } else {
                    hi -= ak * k_hi;
                    lo -= ak * k_lo;
                }
            }
            let (imp_lo, imp_hi) = if aj > 0.0 {
                (lo / aj, hi / aj)
            } else {
                (hi / aj, lo / aj)
            };
            let free_below = imp_lo >= lower[j] - FIX_TOL;
            let free_above = upper[j].is_none_or(|u| imp_hi <= u + FIX_TOL);
            if !(free_below && free_above && imp_lo.is_finite() && imp_hi.is_finite()) {
                continue;
            }
            // Substitute out of the objective (the constant term drops;
            // the caller recomputes the objective from the original
            // model after postsolve).
            let terms: Vec<(usize, f64)> = row
                .terms
                .iter()
                .filter(|&(&k, _)| k != j)
                .map(|(&k, &a)| (k, a))
                .collect();
            let rhs = row.rhs;
            if obj[j] != 0.0 {
                let cj = obj[j];
                for &(k, ak) in &terms {
                    obj[k] -= cj * ak / aj;
                }
                obj[j] = 0.0;
            }
            for &(k, _) in &terms {
                col_count[k] -= 1;
            }
            rows[ri] = None;
            alive[j] = false;
            col_count[j] = 0;
            actions.push(Action::Subst {
                var: j,
                coeff: aj,
                rhs,
                terms,
            });
            changed = true;
        }

        if !changed {
            break;
        }
    }

    // --- Assemble the reduced model -------------------------------------
    let mut map = vec![None; n];
    let mut reduced = Model::new(model.sense);
    reduced.max_pivots = model.max_pivots;
    reduced.max_nodes = model.max_nodes;
    for j in 0..n {
        if alive[j] {
            let id = reduced.add_var(&model.vars[j].name, lower[j], upper[j]);
            if model.vars[j].integer {
                reduced.vars[id.0].integer = true;
            }
            map[j] = Some(id.0);
        }
    }
    let mut objective = Vec::new();
    for j in 0..n {
        if let Some(r) = map[j] {
            if obj[j] != 0.0 {
                objective.push((crate::model::VarId(r), obj[j]));
            }
        }
    }
    reduced.set_objective(&objective);
    let mut kept_rows = 0usize;
    for row in rows.iter().flatten() {
        let coeffs: Vec<(crate::model::VarId, f64)> = row
            .terms
            .iter()
            .map(|(&j, &a)| (crate::model::VarId(map[j].expect("alive var")), a))
            .collect();
        reduced.add_constraint(&coeffs, row.op, row.rhs);
        kept_rows += 1;
    }

    let removed_vars = alive.iter().filter(|a| !**a).count();
    let removed_rows = model.constraints.len() - kept_rows;
    Ok(Presolved {
        reduced,
        removed: removed_vars + removed_rows,
        n_orig: n,
        map,
        actions,
    })
}
