//! Sparse, bound-aware revised primal simplex — the production LP path.
//!
//! Differences from the dense reference in [`crate::simplex`]:
//!
//! * **Sparse columns.** The constraint matrix is stored column-wise as
//!   `(row, coeff)` pairs; the only dense state is the `m × m` basis
//!   inverse (`m` = number of *constraints*, not constraints + bounds).
//! * **Implicit variable bounds.** A variable's upper bound never becomes
//!   a tableau row. Nonbasic variables rest at either bound, the ratio
//!   test caps the entering step by the entering variable's own span, and
//!   a step that ends at the opposite bound is a *bound flip* — no pivot,
//!   no basis change. IPET models from branch-and-bound nodes are full of
//!   tightened bounds, so this removes the dense solver's `O(n)` extra
//!   rows (and their `O(n)`-wide tableau copies).
//! * **Revised iteration.** Reduced costs are priced as
//!   `c_j − c_B B⁻¹ A_j` against the maintained basis inverse; a pivot is
//!   a rank-one update of `B⁻¹` instead of a full-tableau elimination.
//!
//! Kept from the dense reference: the two-phase artificial-variable
//! start, Bland's anti-cycling rule (first eligible entering index,
//! smallest basis index on ratio ties), and the shared pivot cap.

#![allow(clippy::needless_range_loop)] // index-parallel arrays

use std::collections::BTreeMap;

use crate::model::{Model, Op, Sense, Solution, SolveError};

const EPS: f64 = 1e-9;

/// Where a nonbasic variable currently rests.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Bound {
    Lower,
    Upper,
}

/// The sparse standard form: `A x = b` over shifted variables
/// `x ∈ [0, span]`, columns stored sparse.
struct SparseForm {
    /// Number of rows (constraints only — never bounds).
    m: usize,
    /// Sparse column per variable: structural, then slack/surplus, then
    /// artificial.
    cols: Vec<Vec<(usize, f64)>>,
    /// Bound span per variable (`upper − lower` after shifting; infinite
    /// when unbounded above, `0` for fixed variables).
    span: Vec<f64>,
    /// Right-hand side, normalized nonnegative.
    rhs: Vec<f64>,
    /// Artificial variable indices (phase-1 objective).
    artificials: Vec<usize>,
}

/// Mutable solver state: the basis, its inverse, and variable rest
/// positions.
struct Basis {
    /// Dense row-major `m × m` basis inverse.
    binv: Vec<f64>,
    /// Basic variable of each row.
    basic: Vec<usize>,
    /// Value of each basic variable (`x_B = B⁻¹ b` kept incrementally).
    xb: Vec<f64>,
    /// Rest bound of every nonbasic variable (ignored while basic).
    rest: Vec<Bound>,
    /// Whether a variable is currently basic.
    in_basis: Vec<bool>,
}

impl Basis {
    /// `B⁻¹ A_j` for a sparse column.
    fn ftran(&self, m: usize, col: &[(usize, f64)]) -> Vec<f64> {
        let mut w = vec![0.0; m];
        for i in 0..m {
            let row = &self.binv[i * m..(i + 1) * m];
            let mut acc = 0.0;
            for &(r, a) in col {
                acc += row[r] * a;
            }
            w[i] = acc;
        }
        w
    }

    /// Row `i` of `B⁻¹` dotted with a sparse column.
    fn row_dot(&self, m: usize, i: usize, col: &[(usize, f64)]) -> f64 {
        let row = &self.binv[i * m..(i + 1) * m];
        col.iter().map(|&(r, a)| row[r] * a).sum()
    }

    /// Rank-one update of `B⁻¹` after `w = B⁻¹ A_j` enters on `row`.
    fn pivot(&mut self, m: usize, w: &[f64], row: usize) {
        let p = w[row];
        for k in 0..m {
            self.binv[row * m + k] /= p;
        }
        for i in 0..m {
            if i != row && w[i].abs() > EPS {
                let f = w[i];
                for k in 0..m {
                    self.binv[i * m + k] -= f * self.binv[row * m + k];
                }
            }
        }
    }
}

/// A restartable snapshot of the simplex end state: which column is basic
/// in each row, and at which bound every nonbasic column rests.
///
/// Taken from a finished solve and handed to [`solve_lp_from`] on a model
/// with the *same constraint structure* — typically a branch-and-bound
/// child node, which differs from its parent by one variable bound only.
/// The solver validates the snapshot against the new model (shape, basis
/// invertibility, primal feasibility under the new bounds) and silently
/// falls back to a cold two-phase start when anything fails, so a stale
/// snapshot can cost time but never correctness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasisSnapshot {
    /// Basic column of each row, in row order (structural, slack/surplus,
    /// and artificial columns share one index space).
    basic: Vec<usize>,
    /// For every column: whether it rests at its upper bound while
    /// nonbasic (ignored for basic columns).
    at_upper: Vec<bool>,
}

/// Solves the LP relaxation of `model` with the sparse revised simplex.
///
/// # Errors
///
/// [`SolveError::Infeasible`] when phase 1 cannot zero the artificials,
/// [`SolveError::Unbounded`] when an improving direction is blocked by no
/// basic variable and no bound, [`SolveError::IterationLimit`] past
/// `model.max_pivots` pivots (bound flips count).
pub fn solve_lp(model: &Model) -> Result<Solution, SolveError> {
    solve_lp_from(model, None).map(|(solution, _)| solution)
}

/// [`solve_lp`], optionally warm-started from a previous solve's
/// [`BasisSnapshot`], and returning the snapshot of this solve.
///
/// A usable snapshot skips phase 1 entirely and starts phase 2 at the old
/// vertex; when only bounds changed between the two models (the
/// branch-and-bound case) that vertex is usually optimal or one pivot
/// away. The result is **identical** to a cold solve of the same model in
/// objective value; the chosen vertex may differ between warm and cold
/// starts when the optimum is degenerate, which is why callers that
/// require bit-stable *solutions* (not just objectives) must use the same
/// start deterministically — `solve_lp_from` is a pure function of
/// `(model, start)`.
///
/// # Errors
///
/// Same conditions as [`solve_lp`].
pub fn solve_lp_from(
    model: &Model,
    start: Option<&BasisSnapshot>,
) -> Result<(Solution, BasisSnapshot), SolveError> {
    let n = model.vars.len();

    // An inverted bound box (upper < lower) admits no solution. The dense
    // oracle discovers this through its explicit bound rows; here bounds
    // are implicit, so reject up front (same 1e-6 feasibility tolerance).
    for v in &model.vars {
        if v.upper.is_some_and(|u| u - v.lower < -1e-6) {
            return Err(SolveError::Infeasible);
        }
    }

    let shift: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();

    // --- Standard form: shift, sum duplicates, normalize rhs signs ----
    struct RowSpec {
        terms: Vec<(usize, f64)>,
        op: Op,
        rhs: f64,
    }
    let mut rows: Vec<RowSpec> = Vec::with_capacity(model.constraints.len());
    for c in &model.constraints {
        // Duplicate `(var, coeff)` entries sum — the same semantics the
        // dense builder pins (coefficient accumulation and shift
        // adjustment are both linear in the terms).
        let mut acc: BTreeMap<usize, f64> = BTreeMap::new();
        let mut rhs = c.rhs;
        for &(v, a) in &c.coeffs {
            *acc.entry(v.0).or_insert(0.0) += a;
            rhs -= a * shift[v.0];
        }
        let mut terms: Vec<(usize, f64)> = acc.into_iter().filter(|&(_, a)| a != 0.0).collect();
        let mut op = c.op;
        if rhs < 0.0 {
            for t in &mut terms {
                t.1 = -t.1;
            }
            rhs = -rhs;
            op = match op {
                Op::Le => Op::Ge,
                Op::Ge => Op::Le,
                Op::Eq => Op::Eq,
            };
        }
        rows.push(RowSpec { terms, op, rhs });
    }
    let m = rows.len();

    // --- Columns: structural | slack/surplus | artificial -------------
    let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (i, r) in rows.iter().enumerate() {
        for &(j, a) in &r.terms {
            cols[j].push((i, a));
        }
    }
    let mut span: Vec<f64> = model
        .vars
        .iter()
        .map(|v| v.upper.map_or(f64::INFINITY, |u| (u - v.lower).max(0.0)))
        .collect();
    let mut basic = vec![usize::MAX; m];
    let mut artificials = Vec::new();
    for (i, r) in rows.iter().enumerate() {
        match r.op {
            Op::Le => {
                cols.push(vec![(i, 1.0)]);
                span.push(f64::INFINITY);
                basic[i] = cols.len() - 1;
            }
            Op::Ge => {
                cols.push(vec![(i, -1.0)]); // surplus, nonbasic at 0
                span.push(f64::INFINITY);
                cols.push(vec![(i, 1.0)]); // artificial, basic
                span.push(f64::INFINITY);
                basic[i] = cols.len() - 1;
                artificials.push(cols.len() - 1);
            }
            Op::Eq => {
                cols.push(vec![(i, 1.0)]); // artificial, basic
                span.push(f64::INFINITY);
                basic[i] = cols.len() - 1;
                artificials.push(cols.len() - 1);
            }
        }
    }
    let total = cols.len();

    let mut form = SparseForm {
        m,
        cols,
        span,
        rhs: rows.iter().map(|r| r.rhs).collect(),
        artificials,
    };
    let mut pivots_left = model.max_pivots;

    // --- Start: restore the warm basis, or run phase 1 cold -----------
    let mut state = match start.and_then(|snap| restore_basis(&form, snap)) {
        Some(warm_state) => {
            // The restored vertex already satisfies `A x = b` within its
            // bounds, so phase 1 is unnecessary. Artificials are fixed at
            // zero exactly as the cold path does after phase 1.
            for &a in &form.artificials {
                form.span[a] = 0.0;
            }
            warm_state
        }
        None => {
            let mut binv = vec![0.0; m * m];
            for i in 0..m {
                binv[i * m + i] = 1.0;
            }
            let mut cold = Basis {
                binv,
                xb: form.rhs.clone(),
                in_basis: {
                    let mut b = vec![false; total];
                    for &v in &basic {
                        b[v] = true;
                    }
                    b
                },
                basic,
                rest: vec![Bound::Lower; total],
            };
            // Phase 1: drive the artificials to zero. When every
            // artificial row's rhs is already zero — the IPET shape: flow
            // conservation is homogeneous — the all-slack start *is*
            // phase-1 optimal, and running the simplex would only churn
            // through ~m degenerate pivots to relabel the basis. Skip
            // straight to the relabeling.
            if !form.artificials.is_empty() {
                let mut is_artificial = vec![false; total];
                for &a in &form.artificials {
                    is_artificial[a] = true;
                }
                let already_feasible =
                    (0..m).all(|i| !is_artificial[cold.basic[i]] || cold.xb[i] <= EPS);
                if !already_feasible {
                    let mut obj = vec![0.0; total];
                    for &a in &form.artificials {
                        obj[a] = -1.0;
                    }
                    let value = optimize(&form, &mut cold, &obj, &mut pivots_left)?;
                    if value < -1e-6 {
                        return Err(SolveError::Infeasible);
                    }
                }
                evict_basic_artificials(&form, &mut cold);
                // Fix artificials at zero: a fixed variable is never
                // eligible to enter, which is the bound-form equivalent of
                // zapping their columns in the dense tableau.
                for &a in &form.artificials {
                    form.span[a] = 0.0;
                }
            }
            cold
        }
    };

    // --- Phase 2: the real objective ----------------------------------
    let dir = match model.sense {
        Sense::Maximize => 1.0,
        Sense::Minimize => -1.0,
    };
    let mut obj = vec![0.0; total];
    for (j, &c) in model.objective.iter().enumerate() {
        obj[j] = dir * c;
    }
    optimize(&form, &mut state, &obj, &mut pivots_left)?;

    // --- Extraction ----------------------------------------------------
    let mut values = shift;
    for (j, value) in values.iter_mut().enumerate() {
        if !state.in_basis[j] && state.rest[j] == Bound::Upper {
            *value += form.span[j];
        }
    }
    for (i, &b) in state.basic.iter().enumerate() {
        if b < n {
            values[b] += state.xb[i];
        }
    }
    let objective = model
        .objective
        .iter()
        .zip(&values)
        .map(|(c, v)| c * v)
        .sum();
    // Canonicalized: a basic column's rest flag is meaningless (and may
    // hold a stale value from before it entered), so it is recorded as
    // `false` — snapshots of the same vertex always compare equal.
    let snapshot = BasisSnapshot {
        basic: state.basic.clone(),
        at_upper: state
            .rest
            .iter()
            .enumerate()
            .map(|(j, r)| !state.in_basis[j] && *r == Bound::Upper)
            .collect(),
    };
    Ok((Solution { objective, values }, snapshot))
}

/// Rebuilds a [`Basis`] from a snapshot against a (possibly re-bounded)
/// standard form. Returns `None` — cold start — when the snapshot does
/// not fit: wrong shape, artificial columns in the basis, a singular
/// basis matrix, or a restored vertex that violates the new bounds.
fn restore_basis(form: &SparseForm, snap: &BasisSnapshot) -> Option<Basis> {
    let m = form.m;
    let total = form.cols.len();
    if snap.basic.len() != m || snap.at_upper.len() != total {
        return None;
    }
    let mut is_artificial = vec![false; total];
    for &a in &form.artificials {
        is_artificial[a] = true;
    }
    let mut in_basis = vec![false; total];
    for &j in &snap.basic {
        if j >= total || is_artificial[j] || in_basis[j] {
            return None; // out of range, artificial, or duplicated
        }
        in_basis[j] = true;
    }
    // Nonbasic columns resting at an upper bound need a finite span under
    // the *new* bounds; artificials always rest at zero (their span is
    // fixed after restoration).
    for j in 0..total {
        if !in_basis[j] && snap.at_upper[j] && !is_artificial[j] && !form.span[j].is_finite() {
            return None;
        }
    }

    // Invert the basis matrix by Gauss–Jordan with partial pivoting.
    let mut aug = vec![0.0; m * 2 * m]; // [B | I], row-major
    for (i, &j) in snap.basic.iter().enumerate() {
        for &(r, a) in &form.cols[j] {
            aug[r * 2 * m + i] = a;
        }
    }
    for i in 0..m {
        aug[i * 2 * m + m + i] = 1.0;
    }
    for col in 0..m {
        let pivot_row = (col..m)
            .max_by(|&a, &b| {
                aug[a * 2 * m + col]
                    .abs()
                    .total_cmp(&aug[b * 2 * m + col].abs())
            })
            .expect("nonempty range");
        if aug[pivot_row * 2 * m + col].abs() <= EPS {
            return None; // singular basis
        }
        if pivot_row != col {
            for k in 0..2 * m {
                aug.swap(col * 2 * m + k, pivot_row * 2 * m + k);
            }
        }
        let p = aug[col * 2 * m + col];
        for k in 0..2 * m {
            aug[col * 2 * m + k] /= p;
        }
        for r in 0..m {
            if r != col {
                let f = aug[r * 2 * m + col];
                if f.abs() > EPS {
                    for k in 0..2 * m {
                        aug[r * 2 * m + k] -= f * aug[col * 2 * m + k];
                    }
                }
            }
        }
    }
    let mut binv = vec![0.0; m * m];
    for i in 0..m {
        binv[i * m..(i + 1) * m].copy_from_slice(&aug[i * 2 * m + m..i * 2 * m + 2 * m]);
    }

    // x_B = B⁻¹ (b − N x_N): only upper-resting nonbasics contribute.
    let mut rhs = form.rhs.clone();
    for j in 0..total {
        if !in_basis[j] && snap.at_upper[j] && !is_artificial[j] {
            for &(r, a) in &form.cols[j] {
                rhs[r] -= a * form.span[j];
            }
        }
    }
    let mut xb = vec![0.0; m];
    for i in 0..m {
        let row = &binv[i * m..(i + 1) * m];
        xb[i] = row.iter().zip(&rhs).map(|(b, r)| b * r).sum();
    }
    // Primal feasibility under the new bounds (same tolerance as the
    // inverted-box check).
    for (i, &j) in snap.basic.iter().enumerate() {
        if xb[i] < -1e-6 || xb[i] > form.span[j] + 1e-6 {
            return None;
        }
    }

    let rest = (0..total)
        .map(|j| {
            if !in_basis[j] && snap.at_upper[j] && !is_artificial[j] {
                Bound::Upper
            } else {
                Bound::Lower
            }
        })
        .collect();
    Some(Basis {
        binv,
        basic: snap.basic.clone(),
        xb,
        rest,
        in_basis,
    })
}

/// Maximizes `obj` from the current basis; returns the optimal phase
/// objective value (in the internal maximization direction).
fn optimize(
    form: &SparseForm,
    state: &mut Basis,
    obj: &[f64],
    pivots_left: &mut usize,
) -> Result<f64, SolveError> {
    let m = form.m;
    let total = form.cols.len();
    // Pricing vector y = c_B B⁻¹, recomputed only after a pivot — a bound
    // flip changes neither the basis nor the objective, so the reduced
    // costs survive flips unchanged.
    let mut y = vec![0.0; m];
    let mut y_valid = false;
    loop {
        if !y_valid {
            y.fill(0.0);
            for i in 0..m {
                let cb = obj[state.basic[i]];
                if cb != 0.0 {
                    let row = &state.binv[i * m..(i + 1) * m];
                    for (yk, &bk) in y.iter_mut().zip(row) {
                        *yk += cb * bk;
                    }
                }
            }
            y_valid = true;
        }

        // Bland: first nonbasic, non-fixed column whose reduced cost
        // improves in its feasible direction.
        let mut entering = None;
        for j in 0..total {
            if state.in_basis[j] || form.span[j] <= EPS {
                continue;
            }
            let d = obj[j] - form.cols[j].iter().map(|&(r, a)| y[r] * a).sum::<f64>();
            let eligible = match state.rest[j] {
                Bound::Lower => d > EPS,
                Bound::Upper => d < -EPS,
            };
            if eligible {
                entering = Some(j);
                break;
            }
        }
        let Some(j) = entering else {
            // Optimal: objective at the current point.
            let mut value = 0.0;
            for i in 0..m {
                value += obj[state.basic[i]] * state.xb[i];
            }
            for (jj, col_obj) in obj.iter().enumerate() {
                if !state.in_basis[jj] && state.rest[jj] == Bound::Upper && *col_obj != 0.0 {
                    value += col_obj * form.span[jj];
                }
            }
            return Ok(value);
        };

        // Direction: entering increases from its lower bound or decreases
        // from its upper bound.
        let sign = match state.rest[j] {
            Bound::Lower => 1.0,
            Bound::Upper => -1.0,
        };
        let w = state.ftran(m, &form.cols[j]);

        // Ratio test: basic variables block at their own bounds; the
        // entering variable blocks at its opposite bound (a flip). Bland:
        // smallest basis index breaks ties, and a blocking row always
        // beats a tying flip.
        let mut best = form.span[j];
        let mut leave: Option<(usize, Bound)> = None;
        for i in 0..m {
            let rate = sign * w[i]; // xb[i] shrinks at `rate` per unit step
            if rate > EPS {
                let ratio = state.xb[i] / rate;
                let tie = (ratio - best).abs() <= EPS;
                if ratio < best - EPS
                    || (tie && leave.is_none_or(|(l, _)| state.basic[i] < state.basic[l]))
                {
                    best = ratio;
                    leave = Some((i, Bound::Lower));
                }
            } else if rate < -EPS {
                let ub = form.span[state.basic[i]];
                if ub.is_finite() {
                    let ratio = (ub - state.xb[i]) / (-rate);
                    let tie = (ratio - best).abs() <= EPS;
                    if ratio < best - EPS
                        || (tie && leave.is_none_or(|(l, _)| state.basic[i] < state.basic[l]))
                    {
                        best = ratio;
                        leave = Some((i, Bound::Upper));
                    }
                }
            }
        }
        if best.is_infinite() {
            return Err(SolveError::Unbounded);
        }
        if *pivots_left == 0 {
            return Err(SolveError::IterationLimit);
        }
        *pivots_left -= 1;
        let delta = best.max(0.0);

        match leave {
            None => {
                // Bound flip: the entering variable runs to its opposite
                // bound; the basis is untouched.
                for i in 0..m {
                    state.xb[i] -= sign * delta * w[i];
                }
                state.rest[j] = match state.rest[j] {
                    Bound::Lower => Bound::Upper,
                    Bound::Upper => Bound::Lower,
                };
            }
            Some((r, leaves_to)) => {
                for i in 0..m {
                    if i != r {
                        state.xb[i] -= sign * delta * w[i];
                    }
                }
                let entering_value = match state.rest[j] {
                    Bound::Lower => delta,
                    Bound::Upper => form.span[j] - delta,
                };
                let leaving = state.basic[r];
                state.in_basis[leaving] = false;
                state.rest[leaving] = leaves_to;
                state.basic[r] = j;
                state.in_basis[j] = true;
                state.xb[r] = entering_value;
                state.pivot(m, &w, r);
                y_valid = false;
            }
        }
    }
}

/// After phase 1, swaps basic artificials (all at value 0) out for any
/// non-artificial column with a nonzero pivot element — a degenerate
/// basis relabeling at an unchanged solution point. Rows where no such
/// column exists are redundant; their artificial stays basic at 0.
fn evict_basic_artificials(form: &SparseForm, state: &mut Basis) {
    let m = form.m;
    let is_artificial = {
        let mut flags = vec![false; form.cols.len()];
        for &a in &form.artificials {
            flags[a] = true;
        }
        flags
    };
    for i in 0..m {
        if !is_artificial[state.basic[i]] {
            continue;
        }
        let candidate = (0..form.cols.len()).find(|&j| {
            !is_artificial[j]
                && !state.in_basis[j]
                && state.row_dot(m, i, &form.cols[j]).abs() > EPS
        });
        if let Some(j) = candidate {
            let w = state.ftran(m, &form.cols[j]);
            let entering_value = match state.rest[j] {
                Bound::Lower => 0.0,
                Bound::Upper => form.span[j],
            };
            let leaving = state.basic[i];
            state.in_basis[leaving] = false;
            state.rest[leaving] = Bound::Lower;
            state.basic[i] = j;
            state.in_basis[j] = true;
            state.xb[i] = entering_value;
            state.pivot(m, &w, i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use crate::simplex::solve_lp_dense;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → 36 at (2, 6).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, None);
        let y = m.add_var("y", 0.0, None);
        m.add_le(&[(x, 1.0)], 4.0);
        m.add_le(&[(y, 2.0)], 12.0);
        m.add_le(&[(x, 3.0), (y, 2.0)], 18.0);
        m.set_objective(&[(x, 3.0), (y, 5.0)]);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.objective, 36.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 6.0);
    }

    #[test]
    fn upper_bounds_stay_implicit() {
        // Bounds never become rows: a pure box problem has zero rows.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 1.5, Some(3.5));
        let y = m.add_var("y", -2.0, Some(2.0));
        m.set_objective(&[(x, 2.0), (y, -1.0)]);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.value(x), 3.5);
        assert_close(sol.value(y), -2.0);
        assert_close(sol.objective, 9.0);
    }

    #[test]
    fn bounded_vars_inside_constraints() {
        // max x + y s.t. x + y ≤ 5, x ∈ [0, 3], y ∈ [0, 3] → 5, and the
        // vertex splits across the bounds.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, Some(3.0));
        let y = m.add_var("y", 0.0, Some(3.0));
        m.add_le(&[(x, 1.0), (y, 1.0)], 5.0);
        m.set_objective(&[(x, 1.0), (y, 1.0)]);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.objective, 5.0);
    }

    #[test]
    fn infeasible_and_unbounded_detected() {
        let mut inf = Model::new(Sense::Maximize);
        let x = inf.add_var("x", 0.0, None);
        inf.add_le(&[(x, 1.0)], 1.0);
        inf.add_ge(&[(x, 1.0)], 2.0);
        inf.set_objective(&[(x, 1.0)]);
        assert_eq!(solve_lp(&inf), Err(SolveError::Infeasible));

        let mut unb = Model::new(Sense::Maximize);
        let y = unb.add_var("y", 0.0, None);
        unb.set_objective(&[(y, 1.0)]);
        assert_eq!(solve_lp(&unb), Err(SolveError::Unbounded));
    }

    #[test]
    fn equality_system() {
        // max x + y s.t. x + y = 7, x - y = 1 → x=4, y=3.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, None);
        let y = m.add_var("y", 0.0, None);
        m.add_eq(&[(x, 1.0), (y, 1.0)], 7.0);
        m.add_eq(&[(x, 1.0), (y, -1.0)], 1.0);
        m.set_objective(&[(x, 1.0), (y, 1.0)]);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.value(x), 4.0);
        assert_close(sol.value(y), 3.0);
    }

    #[test]
    fn duplicate_coefficients_sum() {
        // `(x, 1) + (x, 2)` is the single term `3x`, with the lower-bound
        // shift applied to the summed coefficient: x ∈ [1, ∞),
        // 3x ≤ 6 → x ≤ 2. Pins the builder semantics for both solvers.
        for solver in [solve_lp, solve_lp_dense] {
            let mut m = Model::new(Sense::Maximize);
            let x = m.add_var("x", 1.0, None);
            m.add_constraint(&[(x, 1.0), (x, 2.0)], Op::Le, 6.0);
            m.set_objective(&[(x, 1.0)]);
            let sol = solver(&m).unwrap();
            assert_close(sol.value(x), 2.0);
            assert_close(sol.objective, 2.0);
        }
    }

    #[test]
    fn duplicate_coefficients_can_cancel() {
        // `(x, 2) + (x, -2)` vanishes entirely; the row degenerates to
        // `0 ≤ 1` and x is governed by its own bound.
        for solver in [solve_lp, solve_lp_dense] {
            let mut m = Model::new(Sense::Maximize);
            let x = m.add_var("x", 0.0, Some(9.0));
            m.add_constraint(&[(x, 2.0), (x, -2.0)], Op::Le, 1.0);
            m.set_objective(&[(x, 1.0)]);
            let sol = solver(&m).unwrap();
            assert_close(sol.objective, 9.0);
        }
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // The classic Beale-style degenerate LP; Bland's rule must
        // terminate on the bounded pivoting too.
        let mut m = Model::new(Sense::Maximize);
        let x1 = m.add_var("x1", 0.0, None);
        let x2 = m.add_var("x2", 0.0, None);
        let x3 = m.add_var("x3", 0.0, None);
        m.add_le(&[(x1, 0.5), (x2, -5.5), (x3, -2.5)], 0.0);
        m.add_le(&[(x1, 0.5), (x2, -1.5), (x3, -0.5)], 0.0);
        m.add_le(&[(x1, 1.0)], 1.0);
        m.set_objective(&[(x1, 10.0), (x2, -57.0), (x3, -9.0)]);
        let sol = solve_lp(&m).unwrap();
        assert!(sol.objective.is_finite());
        let dense = solve_lp_dense(&m).unwrap();
        assert_close(sol.objective, dense.objective);
    }

    #[test]
    fn pivot_cap_enforced() {
        // A `≥` row needs at least one phase-1 pivot; a zero cap must
        // surface as the iteration limit in both solvers.
        for solver in [solve_lp, solve_lp_dense] {
            let mut m = Model::new(Sense::Minimize);
            let x = m.add_var("x", 0.0, None);
            m.add_ge(&[(x, 1.0)], 3.0);
            m.set_objective(&[(x, 1.0)]);
            m.max_pivots = 0;
            assert_eq!(solver(&m), Err(SolveError::IterationLimit));
        }
    }

    #[test]
    fn fixed_variables_never_enter() {
        // entry-style variable fixed at 1 contributes through constraints
        // but is never pivoted on.
        let mut m = Model::new(Sense::Maximize);
        let e = m.add_var("entry", 1.0, Some(1.0));
        let x = m.add_var("x", 0.0, None);
        // x ≤ 4·entry
        m.add_le(&[(x, 1.0), (e, -4.0)], 0.0);
        m.set_objective(&[(x, 3.0)]);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.value(e), 1.0);
        assert_close(sol.value(x), 4.0);
        assert_close(sol.objective, 12.0);
    }

    #[test]
    fn inverted_bounds_are_infeasible() {
        // upper < lower is an empty box; both solvers must refuse rather
        // than return a bound-violating point.
        for solver in [solve_lp, solve_lp_dense] {
            let mut m = Model::new(Sense::Maximize);
            let x = m.add_var("x", 5.0, Some(3.0));
            m.set_objective(&[(x, 1.0)]);
            assert_eq!(solver(&m), Err(SolveError::Infeasible));
        }
    }

    #[test]
    fn warm_start_from_own_basis_skips_to_optimal() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, None);
        let y = m.add_var("y", 0.0, None);
        m.add_le(&[(x, 1.0)], 4.0);
        m.add_le(&[(y, 2.0)], 12.0);
        m.add_le(&[(x, 3.0), (y, 2.0)], 18.0);
        m.set_objective(&[(x, 3.0), (y, 5.0)]);
        let (cold, basis) = solve_lp_from(&m, None).unwrap();
        let (warm, basis2) = solve_lp_from(&m, Some(&basis)).unwrap();
        assert_close(warm.objective, cold.objective);
        assert_eq!(basis, basis2, "optimal basis is a fixpoint");
    }

    #[test]
    fn warm_start_after_objective_change() {
        // Same constraints, different objective: the old vertex is a valid
        // (feasible) start even when no longer optimal.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, Some(10.0));
        let y = m.add_var("y", 0.0, Some(10.0));
        m.add_le(&[(x, 1.0), (y, 1.0)], 12.0);
        m.set_objective(&[(x, 1.0), (y, 3.0)]);
        let (_, basis) = solve_lp_from(&m, None).unwrap();

        m.set_objective(&[(x, 3.0), (y, 1.0)]);
        let (warm, _) = solve_lp_from(&m, Some(&basis)).unwrap();
        let cold = solve_lp(&m).unwrap();
        assert_close(warm.objective, cold.objective);
        assert_close(warm.objective, 32.0); // x = 10, y = 2
    }

    #[test]
    fn mismatched_snapshot_falls_back_to_cold() {
        // A snapshot from a structurally different model must be rejected,
        // not trusted: the solve still succeeds via the cold path.
        let mut small = Model::new(Sense::Maximize);
        let a = small.add_var("a", 0.0, Some(1.0));
        small.set_objective(&[(a, 1.0)]);
        let (_, foreign) = solve_lp_from(&small, None).unwrap();

        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, None);
        m.add_le(&[(x, 1.0)], 7.0);
        m.set_objective(&[(x, 1.0)]);
        let (sol, _) = solve_lp_from(&m, Some(&foreign)).unwrap();
        assert_close(sol.objective, 7.0);
    }

    #[test]
    fn warm_start_infeasible_under_tightened_bounds_falls_back() {
        // Parent optimum x = 7; child fixes x ≤ 2. The parent basis is
        // primal-infeasible in the child, so restoration is refused and
        // the cold path must deliver the right answer anyway.
        let mut parent = Model::new(Sense::Maximize);
        let x = parent.add_var("x", 0.0, Some(7.0));
        let s = parent.add_var("s", 0.0, None);
        parent.add_eq(&[(x, 1.0), (s, 1.0)], 7.0);
        parent.set_objective(&[(x, 1.0)]);
        let (psol, pbasis) = solve_lp_from(&parent, None).unwrap();
        assert_close(psol.objective, 7.0);

        let mut child = Model::new(Sense::Maximize);
        let x = child.add_var("x", 0.0, Some(2.0));
        let s = child.add_var("s", 0.0, None);
        child.add_eq(&[(x, 1.0), (s, 1.0)], 7.0);
        child.set_objective(&[(x, 1.0)]);
        let (warm, _) = solve_lp_from(&child, Some(&pbasis)).unwrap();
        assert_close(warm.objective, 2.0);
    }

    #[test]
    fn negative_lower_bounds() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", -5.0, Some(10.0));
        m.set_objective(&[(x, 1.0)]);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.value(x), -5.0);
    }
}
