//! Sparse, bound-aware revised primal simplex — the production LP path.
//!
//! Differences from the dense reference in [`crate::simplex`]:
//!
//! * **Sparse columns.** The constraint matrix is stored column-wise as
//!   `(row, coeff)` pairs.
//! * **LU-factorized basis.** The basis is represented as a sparse LU
//!   factorization ([`crate::lu`], Markowitz pivoting) plus a
//!   product-form **eta file**: each simplex pivot appends one eta
//!   vector instead of updating an explicit inverse, and FTRAN/BTRAN are
//!   sparse triangular solves followed by eta applications. When the eta
//!   file grows past [`eta_limit`] — or a pivot element is small enough
//!   to threaten stability — the basis is refactorized from its columns.
//!   Warm restores ([`solve_lp_from`] / [`BasisSnapshot`]) factorize the
//!   snapshot basis once; branch-and-bound children inherit the parent's
//!   factorization outright and only recompute the basic values under
//!   their bound deltas.
//! * **Implicit variable bounds.** A variable's upper bound never becomes
//!   a tableau row. Nonbasic variables rest at either bound, the ratio
//!   test caps the entering step by the entering variable's own span, and
//!   a step that ends at the opposite bound is a *bound flip* — no pivot,
//!   no basis change. IPET models from branch-and-bound nodes are full of
//!   tightened bounds, so this removes the dense solver's `O(n)` extra
//!   rows (and their `O(n)`-wide tableau copies).
//! * **Revised iteration.** Reduced costs are priced as
//!   `c_j − c_B B⁻¹ A_j` with `y = c_B B⁻¹` from one BTRAN per pivot.
//!
//! Kept from the dense reference: the two-phase artificial-variable
//! start, Bland's anti-cycling rule (first eligible entering index,
//! smallest basis index on ratio ties), and the shared pivot cap. The
//! pivot sequence is a pure function of `(model, start)` — the LU engine
//! changes how `B⁻¹` is *applied*, not which pivots are chosen.

#![allow(clippy::needless_range_loop)] // index-parallel arrays

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::lu::LuFactors;
use crate::model::{LpStats, Model, Op, Sense, Solution, SolveError};

const EPS: f64 = 1e-9;

/// A pivot whose eta element is smaller than this triggers an immediate
/// refactorization after the update is recorded.
const STABILITY_EPS: f64 = 1e-7;

/// Eta-file length that triggers a refactorization: enough to amortize
/// the factorization cost, small enough to keep FTRAN/BTRAN cheap and
/// rounding error bounded.
fn eta_limit(m: usize) -> usize {
    (m / 2).max(64)
}

/// Where a nonbasic variable currently rests.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Bound {
    Lower,
    Upper,
}

/// The sparse standard form: `A x = b` over shifted variables
/// `x ∈ [0, span]`, columns stored sparse.
struct SparseForm {
    /// Number of rows (constraints only — never bounds).
    m: usize,
    /// Sparse column per variable: structural, then slack/surplus, then
    /// artificial.
    cols: Vec<Vec<(usize, f64)>>,
    /// Bound span per variable (`upper − lower` after shifting; infinite
    /// when unbounded above, `0` for fixed variables).
    span: Vec<f64>,
    /// Right-hand side, normalized nonnegative.
    rhs: Vec<f64>,
    /// Artificial variable indices (phase-1 objective).
    artificials: Vec<usize>,
}

/// One product-form update: after column `j` entered on row `r` with
/// pivot column `w = B⁻¹ A_j`, the new inverse is `E B⁻¹` where `E`
/// differs from the identity only in column `r`.
#[derive(Clone)]
struct Eta {
    r: usize,
    /// Off-pivot entries of `w` (position, value), excluding `r`.
    w: Vec<(usize, f64)>,
    /// The pivot element `w[r]`.
    pivot: f64,
}

/// The basis inverse as `E_t ⋯ E_1 (L U)⁻¹`: a shared LU factorization
/// plus this solve's private eta file. Cloning is cheap — the LU factors
/// are behind an [`Arc`] — which is how branch-and-bound children
/// inherit the parent's factorization.
#[derive(Clone)]
struct Factorization {
    lu: Arc<LuFactors>,
    etas: Vec<Eta>,
}

impl Factorization {
    /// `B⁻¹ v` in place; `v` enters in row space and leaves in basis
    /// position space.
    fn ftran(&self, v: &mut [f64]) {
        self.lu.ftran(v);
        for eta in &self.etas {
            let t = v[eta.r] / eta.pivot;
            if t != 0.0 {
                for &(i, wi) in &eta.w {
                    v[i] -= wi * t;
                }
            }
            v[eta.r] = t;
        }
    }

    /// `B⁻ᵀ v` in place; `v` enters in basis position space and leaves
    /// in row space.
    fn btran(&self, v: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let mut s = v[eta.r];
            for &(i, wi) in &eta.w {
                s -= wi * v[i];
            }
            v[eta.r] = s / eta.pivot;
        }
        self.lu.btran(v);
    }
}

/// Factorizes the columns currently basic in `basic`. `None` when the
/// basis matrix is numerically singular.
fn factorize_basis(form: &SparseForm, basic: &[usize]) -> Option<Factorization> {
    let cols: Vec<&[(usize, f64)]> = basic.iter().map(|&j| form.cols[j].as_slice()).collect();
    let lu = LuFactors::factorize(form.m, &cols)?;
    Some(Factorization {
        lu: Arc::new(lu),
        etas: Vec::new(),
    })
}

/// Mutable solver state: the basis factorization and variable rest
/// positions.
struct Basis {
    fact: Factorization,
    /// Basic variable of each row.
    basic: Vec<usize>,
    /// Value of each basic variable (`x_B = B⁻¹ b` kept incrementally).
    xb: Vec<f64>,
    /// Rest bound of every nonbasic variable (ignored while basic).
    rest: Vec<Bound>,
    /// Whether a variable is currently basic.
    in_basis: Vec<bool>,
}

impl Basis {
    /// `B⁻¹ A_j` for a sparse column.
    fn ftran(&self, m: usize, col: &[(usize, f64)]) -> Vec<f64> {
        let mut w = vec![0.0; m];
        for &(r, a) in col {
            w[r] += a;
        }
        self.fact.ftran(&mut w);
        w
    }

    /// Records the pivot `w = B⁻¹ A_j` entering on `row` as an eta
    /// update, refactorizing from the (already updated) `self.basic`
    /// columns when the eta file is long or the pivot element small. A
    /// failed refactorization is not fatal: the eta representation is
    /// still exact, so the solve continues on it.
    fn pivot(&mut self, form: &SparseForm, w: &[f64], row: usize, stats: &mut LpStats) {
        let pivot = w[row];
        let entries: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != row && v.abs() > EPS)
            .map(|(i, &v)| (i, v))
            .collect();
        self.fact.etas.push(Eta {
            r: row,
            w: entries,
            pivot,
        });
        if self.fact.etas.len() >= eta_limit(form.m) || pivot.abs() < STABILITY_EPS {
            if let Some(fresh) = factorize_basis(form, &self.basic) {
                self.fact = fresh;
                stats.refactorizations += 1;
            }
        }
    }
}

/// A restartable snapshot of the simplex end state: which column is basic
/// in each row, and at which bound every nonbasic column rests.
///
/// Taken from a finished solve and handed to [`solve_lp_from`] on a model
/// with the *same constraint structure* — typically a branch-and-bound
/// child node, which differs from its parent by one variable bound only.
/// The solver validates the snapshot against the new model (shape, basis
/// invertibility, primal feasibility under the new bounds) and silently
/// falls back to a cold two-phase start when anything fails, so a stale
/// snapshot can cost time but never correctness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasisSnapshot {
    /// Basic column of each row, in row order (structural, slack/surplus,
    /// and artificial columns share one index space).
    basic: Vec<usize>,
    /// For every column: whether it rests at its upper bound while
    /// nonbasic (`false` for basic columns — snapshots are canonical, and
    /// restoration rejects any snapshot claiming otherwise).
    at_upper: Vec<bool>,
}

/// A warm-start handle: the [`BasisSnapshot`] plus the factorization
/// that was current when it was taken and the basis columns it factors.
/// Branch-and-bound hands this from parent to child so the child solves
/// without refactorizing — the basis matrix depends only on the
/// constraint rows, which bound changes leave untouched. When a bound
/// change *does* alter the standard form (a row flips sign to keep its
/// right-hand side nonnegative), the recorded columns no longer match
/// and the restore falls back to a fresh factorization.
#[derive(Clone)]
pub(crate) struct WarmStart {
    pub(crate) snap: BasisSnapshot,
    fact: Factorization,
    basis_cols: Arc<Vec<Vec<(usize, f64)>>>,
}

/// How [`solve_lp_core`] starts.
pub(crate) enum Start<'a> {
    /// Two-phase cold start.
    Cold,
    /// Restore a bare snapshot (factorize its basis once).
    Snapshot(&'a BasisSnapshot),
    /// Restore a snapshot and reuse its factorization when the basis
    /// columns still match.
    Warm(&'a WarmStart),
}

/// Solves the LP relaxation of `model` with the sparse revised simplex,
/// after a presolve/postsolve round-trip ([`crate::presolve`]).
///
/// # Errors
///
/// [`SolveError::Infeasible`] when phase 1 cannot zero the artificials,
/// [`SolveError::Unbounded`] when an improving direction is blocked by no
/// basic variable and no bound, [`SolveError::IterationLimit`] past
/// `model.max_pivots` pivots (bound flips count).
pub fn solve_lp(model: &Model) -> Result<Solution, SolveError> {
    solve_lp_with_stats(model, &mut LpStats::default())
}

/// [`solve_lp`], accumulating solver effort counters into `stats`.
///
/// # Errors
///
/// Same conditions as [`solve_lp`].
pub fn solve_lp_with_stats(model: &Model, stats: &mut LpStats) -> Result<Solution, SolveError> {
    let pre = crate::presolve::presolve(model, false)?;
    stats.presolve_removed += pre.removed as u64;
    let (sol, _) = solve_lp_core(&pre.reduced, Start::Cold, stats)?;
    let values = pre.postsolve(&sol.values);
    let objective = model
        .objective
        .iter()
        .zip(&values)
        .map(|(c, v)| c * v)
        .sum();
    Ok(Solution { objective, values })
}

/// Solves `model` without presolve, optionally warm-started from a
/// previous solve's [`BasisSnapshot`], and returning the snapshot of
/// this solve.
///
/// A usable snapshot skips phase 1 entirely and starts phase 2 at the old
/// vertex; when only bounds changed between the two models (the
/// branch-and-bound case) that vertex is usually optimal or one pivot
/// away. The result is **identical** to a cold solve of the same model in
/// objective value; the chosen vertex may differ between warm and cold
/// starts when the optimum is degenerate, which is why callers that
/// require bit-stable *solutions* (not just objectives) must use the same
/// start deterministically — `solve_lp_from` is a pure function of
/// `(model, start)`.
///
/// # Errors
///
/// Same conditions as [`solve_lp`].
pub fn solve_lp_from(
    model: &Model,
    start: Option<&BasisSnapshot>,
) -> Result<(Solution, BasisSnapshot), SolveError> {
    let start = match start {
        Some(snap) => Start::Snapshot(snap),
        None => Start::Cold,
    };
    let (solution, warm) = solve_lp_core(model, start, &mut LpStats::default())?;
    Ok((solution, warm.snap))
}

/// The solver core: standard form, warm restore or two-phase cold start,
/// phase 2, extraction. No presolve — callers that presolve own the
/// postsolve mapping.
pub(crate) fn solve_lp_core(
    model: &Model,
    start: Start<'_>,
    stats: &mut LpStats,
) -> Result<(Solution, WarmStart), SolveError> {
    let n = model.vars.len();

    // An inverted bound box (upper < lower) admits no solution. The dense
    // oracle discovers this through its explicit bound rows; here bounds
    // are implicit, so reject up front (same 1e-6 feasibility tolerance).
    for v in &model.vars {
        if v.upper.is_some_and(|u| u - v.lower < -1e-6) {
            return Err(SolveError::Infeasible);
        }
    }

    let shift: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();

    // --- Standard form: shift, sum duplicates, normalize rhs signs ----
    struct RowSpec {
        terms: Vec<(usize, f64)>,
        op: Op,
        rhs: f64,
    }
    let mut rows: Vec<RowSpec> = Vec::with_capacity(model.constraints.len());
    for c in &model.constraints {
        // Duplicate `(var, coeff)` entries sum — the same semantics the
        // dense builder pins (coefficient accumulation and shift
        // adjustment are both linear in the terms).
        let mut acc: BTreeMap<usize, f64> = BTreeMap::new();
        let mut rhs = c.rhs;
        for &(v, a) in &c.coeffs {
            *acc.entry(v.0).or_insert(0.0) += a;
            rhs -= a * shift[v.0];
        }
        let mut terms: Vec<(usize, f64)> = acc.into_iter().filter(|&(_, a)| a != 0.0).collect();
        let mut op = c.op;
        if rhs < 0.0 {
            for t in &mut terms {
                t.1 = -t.1;
            }
            rhs = -rhs;
            op = match op {
                Op::Le => Op::Ge,
                Op::Ge => Op::Le,
                Op::Eq => Op::Eq,
            };
        }
        rows.push(RowSpec { terms, op, rhs });
    }
    let m = rows.len();

    // --- Columns: structural | slack/surplus | artificial -------------
    let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (i, r) in rows.iter().enumerate() {
        for &(j, a) in &r.terms {
            cols[j].push((i, a));
        }
    }
    let mut span: Vec<f64> = model
        .vars
        .iter()
        .map(|v| v.upper.map_or(f64::INFINITY, |u| (u - v.lower).max(0.0)))
        .collect();
    let mut basic = vec![usize::MAX; m];
    let mut artificials = Vec::new();
    for (i, r) in rows.iter().enumerate() {
        match r.op {
            Op::Le => {
                cols.push(vec![(i, 1.0)]);
                span.push(f64::INFINITY);
                basic[i] = cols.len() - 1;
            }
            Op::Ge => {
                cols.push(vec![(i, -1.0)]); // surplus, nonbasic at 0
                span.push(f64::INFINITY);
                cols.push(vec![(i, 1.0)]); // artificial, basic
                span.push(f64::INFINITY);
                basic[i] = cols.len() - 1;
                artificials.push(cols.len() - 1);
            }
            Op::Eq => {
                cols.push(vec![(i, 1.0)]); // artificial, basic
                span.push(f64::INFINITY);
                basic[i] = cols.len() - 1;
                artificials.push(cols.len() - 1);
            }
        }
    }
    let total = cols.len();

    let mut form = SparseForm {
        m,
        cols,
        span,
        rhs: rows.iter().map(|r| r.rhs).collect(),
        artificials,
    };
    let mut pivots_left = model.max_pivots;

    // --- Start: restore the warm basis, or run phase 1 cold -----------
    let restored = match &start {
        Start::Cold => None,
        Start::Snapshot(snap) => restore_basis(&form, snap, None),
        Start::Warm(warm) => restore_basis(&form, &warm.snap, Some(warm)),
    };
    let mut state = match restored {
        Some(warm_state) => {
            // The restored vertex already satisfies `A x = b` within its
            // bounds, so phase 1 is unnecessary. Artificials are fixed at
            // zero exactly as the cold path does after phase 1.
            for &a in &form.artificials {
                form.span[a] = 0.0;
            }
            warm_state
        }
        None => {
            // The all-slack/artificial basis is an identity matrix, but
            // building it through the factorization keeps one code path.
            let fact = factorize_basis(&form, &basic).expect("identity basis factorizes");
            let mut cold = Basis {
                fact,
                xb: form.rhs.clone(),
                in_basis: {
                    let mut b = vec![false; total];
                    for &v in &basic {
                        b[v] = true;
                    }
                    b
                },
                basic,
                rest: vec![Bound::Lower; total],
            };
            // Phase 1: drive the artificials to zero. When every
            // artificial row's rhs is already zero — the IPET shape: flow
            // conservation is homogeneous — the all-slack start *is*
            // phase-1 optimal, and running the simplex would only churn
            // through ~m degenerate pivots to relabel the basis. Skip
            // straight to the relabeling.
            if !form.artificials.is_empty() {
                let mut is_artificial = vec![false; total];
                for &a in &form.artificials {
                    is_artificial[a] = true;
                }
                let already_feasible =
                    (0..m).all(|i| !is_artificial[cold.basic[i]] || cold.xb[i] <= EPS);
                if !already_feasible {
                    let mut obj = vec![0.0; total];
                    for &a in &form.artificials {
                        obj[a] = -1.0;
                    }
                    let value = optimize(&form, &mut cold, &obj, &mut pivots_left, stats)?;
                    if value < -1e-6 {
                        return Err(SolveError::Infeasible);
                    }
                }
                evict_basic_artificials(&form, &mut cold, stats);
                // Fix artificials at zero: a fixed variable is never
                // eligible to enter, which is the bound-form equivalent of
                // zapping their columns in the dense tableau.
                for &a in &form.artificials {
                    form.span[a] = 0.0;
                }
            }
            cold
        }
    };

    // --- Phase 2: the real objective ----------------------------------
    let dir = match model.sense {
        Sense::Maximize => 1.0,
        Sense::Minimize => -1.0,
    };
    let mut obj = vec![0.0; total];
    for (j, &c) in model.objective.iter().enumerate() {
        obj[j] = dir * c;
    }
    optimize(&form, &mut state, &obj, &mut pivots_left, stats)?;

    // --- Extraction ----------------------------------------------------
    let mut values = shift;
    for (j, value) in values.iter_mut().enumerate() {
        if !state.in_basis[j] && state.rest[j] == Bound::Upper {
            *value += form.span[j];
        }
    }
    for (i, &b) in state.basic.iter().enumerate() {
        if b < n {
            values[b] += state.xb[i];
        }
    }
    let objective = model
        .objective
        .iter()
        .zip(&values)
        .map(|(c, v)| c * v)
        .sum();
    // Canonicalized: a basic column's rest flag is meaningless (and may
    // hold a stale value from before it entered), so it is recorded as
    // `false` — snapshots of the same vertex always compare equal.
    let snapshot = BasisSnapshot {
        basic: state.basic.clone(),
        at_upper: state
            .rest
            .iter()
            .enumerate()
            .map(|(j, r)| !state.in_basis[j] && *r == Bound::Upper)
            .collect(),
    };
    let basis_cols = Arc::new(
        snapshot
            .basic
            .iter()
            .map(|&j| form.cols[j].clone())
            .collect::<Vec<_>>(),
    );
    let warm = WarmStart {
        snap: snapshot,
        fact: state.fact,
        basis_cols,
    };
    Ok((Solution { objective, values }, warm))
}

/// Rebuilds a [`Basis`] from a snapshot against a (possibly re-bounded)
/// standard form. Returns `None` — cold start — when the snapshot does
/// not fit: wrong shape, artificial columns in the basis, an `at_upper`
/// flag set on a basic column (snapshots are canonical; a flagged basic
/// column means the snapshot was corrupted or hand-built), a singular
/// basis matrix, or a restored vertex that violates the new bounds.
///
/// With `reuse`, the caller's factorization is adopted instead of
/// refactorizing — provided it factors exactly the basis columns this
/// form produces (bound changes can flip a row's sign, which invalidates
/// the recorded columns; the comparison catches that).
fn restore_basis(
    form: &SparseForm,
    snap: &BasisSnapshot,
    reuse: Option<&WarmStart>,
) -> Option<Basis> {
    let m = form.m;
    let total = form.cols.len();
    if snap.basic.len() != m || snap.at_upper.len() != total {
        return None;
    }
    let mut is_artificial = vec![false; total];
    for &a in &form.artificials {
        is_artificial[a] = true;
    }
    let mut in_basis = vec![false; total];
    for &j in &snap.basic {
        if j >= total || is_artificial[j] || in_basis[j] || snap.at_upper[j] {
            return None; // out of range, artificial, duplicated, or a
                         // rest flag on a basic column
        }
        in_basis[j] = true;
    }
    // Nonbasic columns resting at an upper bound need a finite span under
    // the *new* bounds; artificials always rest at zero (their span is
    // fixed after restoration).
    for j in 0..total {
        if !in_basis[j] && snap.at_upper[j] && !is_artificial[j] && !form.span[j].is_finite() {
            return None;
        }
    }

    // Factorize the snapshot basis — or inherit the caller's
    // factorization when it matches these exact columns.
    let fact = match reuse {
        Some(warm)
            if warm.snap.basic == snap.basic
                && warm.basis_cols.len() == m
                && snap
                    .basic
                    .iter()
                    .zip(warm.basis_cols.iter())
                    .all(|(&j, recorded)| form.cols[j] == *recorded) =>
        {
            warm.fact.clone()
        }
        _ => factorize_basis(form, &snap.basic)?,
    };

    // x_B = B⁻¹ (b − N x_N): only upper-resting nonbasics contribute.
    let mut xb = form.rhs.clone();
    for j in 0..total {
        if !in_basis[j] && snap.at_upper[j] && !is_artificial[j] {
            for &(r, a) in &form.cols[j] {
                xb[r] -= a * form.span[j];
            }
        }
    }
    fact.ftran(&mut xb);
    // Primal feasibility under the new bounds (same tolerance as the
    // inverted-box check).
    for (i, &j) in snap.basic.iter().enumerate() {
        if xb[i] < -1e-6 || xb[i] > form.span[j] + 1e-6 {
            return None;
        }
    }

    let rest = (0..total)
        .map(|j| {
            if !in_basis[j] && snap.at_upper[j] && !is_artificial[j] {
                Bound::Upper
            } else {
                Bound::Lower
            }
        })
        .collect();
    Some(Basis {
        fact,
        basic: snap.basic.clone(),
        xb,
        rest,
        in_basis,
    })
}

/// Maximizes `obj` from the current basis; returns the optimal phase
/// objective value (in the internal maximization direction).
fn optimize(
    form: &SparseForm,
    state: &mut Basis,
    obj: &[f64],
    pivots_left: &mut usize,
    stats: &mut LpStats,
) -> Result<f64, SolveError> {
    let m = form.m;
    let total = form.cols.len();
    // Pricing vector y = c_B B⁻¹, recomputed only after a pivot — a bound
    // flip changes neither the basis nor the objective, so the reduced
    // costs survive flips unchanged.
    let mut y = vec![0.0; m];
    let mut y_valid = false;
    loop {
        if !y_valid {
            // One BTRAN prices the whole basis: gather c_B in position
            // space, solve Bᵀ y = c_B.
            for i in 0..m {
                y[i] = obj[state.basic[i]];
            }
            state.fact.btran(&mut y);
            y_valid = true;
        }

        // Bland: first nonbasic, non-fixed column whose reduced cost
        // improves in its feasible direction.
        let mut entering = None;
        for j in 0..total {
            if state.in_basis[j] || form.span[j] <= EPS {
                continue;
            }
            let d = obj[j] - form.cols[j].iter().map(|&(r, a)| y[r] * a).sum::<f64>();
            let eligible = match state.rest[j] {
                Bound::Lower => d > EPS,
                Bound::Upper => d < -EPS,
            };
            if eligible {
                entering = Some(j);
                break;
            }
        }
        let Some(j) = entering else {
            // Optimal: objective at the current point.
            let mut value = 0.0;
            for i in 0..m {
                value += obj[state.basic[i]] * state.xb[i];
            }
            for (jj, col_obj) in obj.iter().enumerate() {
                if !state.in_basis[jj] && state.rest[jj] == Bound::Upper && *col_obj != 0.0 {
                    value += col_obj * form.span[jj];
                }
            }
            return Ok(value);
        };

        // Direction: entering increases from its lower bound or decreases
        // from its upper bound.
        let sign = match state.rest[j] {
            Bound::Lower => 1.0,
            Bound::Upper => -1.0,
        };
        let w = state.ftran(m, &form.cols[j]);

        // Ratio test: basic variables block at their own bounds; the
        // entering variable blocks at its opposite bound (a flip). Bland:
        // smallest basis index breaks ties, and a blocking row always
        // beats a tying flip.
        let mut best = form.span[j];
        let mut leave: Option<(usize, Bound)> = None;
        for i in 0..m {
            let rate = sign * w[i]; // xb[i] shrinks at `rate` per unit step
            if rate > EPS {
                let ratio = state.xb[i] / rate;
                let tie = (ratio - best).abs() <= EPS;
                if ratio < best - EPS
                    || (tie && leave.is_none_or(|(l, _)| state.basic[i] < state.basic[l]))
                {
                    best = ratio;
                    leave = Some((i, Bound::Lower));
                }
            } else if rate < -EPS {
                let ub = form.span[state.basic[i]];
                if ub.is_finite() {
                    let ratio = (ub - state.xb[i]) / (-rate);
                    let tie = (ratio - best).abs() <= EPS;
                    if ratio < best - EPS
                        || (tie && leave.is_none_or(|(l, _)| state.basic[i] < state.basic[l]))
                    {
                        best = ratio;
                        leave = Some((i, Bound::Upper));
                    }
                }
            }
        }
        if best.is_infinite() {
            return Err(SolveError::Unbounded);
        }
        if *pivots_left == 0 {
            return Err(SolveError::IterationLimit);
        }
        *pivots_left -= 1;
        stats.pivots += 1;
        let delta = best.max(0.0);

        match leave {
            None => {
                // Bound flip: the entering variable runs to its opposite
                // bound; the basis is untouched.
                for i in 0..m {
                    state.xb[i] -= sign * delta * w[i];
                }
                state.rest[j] = match state.rest[j] {
                    Bound::Lower => Bound::Upper,
                    Bound::Upper => Bound::Lower,
                };
            }
            Some((r, leaves_to)) => {
                for i in 0..m {
                    if i != r {
                        state.xb[i] -= sign * delta * w[i];
                    }
                }
                let entering_value = match state.rest[j] {
                    Bound::Lower => delta,
                    Bound::Upper => form.span[j] - delta,
                };
                let leaving = state.basic[r];
                state.in_basis[leaving] = false;
                state.rest[leaving] = leaves_to;
                state.basic[r] = j;
                state.in_basis[j] = true;
                state.xb[r] = entering_value;
                state.pivot(form, &w, r, stats);
                y_valid = false;
            }
        }
    }
}

/// After phase 1, swaps basic artificials (all at value 0) out for any
/// non-artificial column with a nonzero pivot element — a degenerate
/// basis relabeling at an unchanged solution point. Rows where no such
/// column exists are redundant; their artificial stays basic at 0.
fn evict_basic_artificials(form: &SparseForm, state: &mut Basis, stats: &mut LpStats) {
    let m = form.m;
    let is_artificial = {
        let mut flags = vec![false; form.cols.len()];
        for &a in &form.artificials {
            flags[a] = true;
        }
        flags
    };
    for i in 0..m {
        if !is_artificial[state.basic[i]] {
            continue;
        }
        // Row i of B⁻¹ via one BTRAN of e_i; candidates are columns with
        // a nonzero dot against it.
        let mut rho = vec![0.0; m];
        rho[i] = 1.0;
        state.fact.btran(&mut rho);
        let candidate = (0..form.cols.len()).find(|&j| {
            !is_artificial[j]
                && !state.in_basis[j]
                && form.cols[j]
                    .iter()
                    .map(|&(r, a)| rho[r] * a)
                    .sum::<f64>()
                    .abs()
                    > EPS
        });
        if let Some(j) = candidate {
            let w = state.ftran(m, &form.cols[j]);
            let entering_value = match state.rest[j] {
                Bound::Lower => 0.0,
                Bound::Upper => form.span[j],
            };
            let leaving = state.basic[i];
            state.in_basis[leaving] = false;
            state.rest[leaving] = Bound::Lower;
            state.basic[i] = j;
            state.in_basis[j] = true;
            state.xb[i] = entering_value;
            state.pivot(form, &w, i, stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use crate::simplex::solve_lp_dense;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → 36 at (2, 6).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, None);
        let y = m.add_var("y", 0.0, None);
        m.add_le(&[(x, 1.0)], 4.0);
        m.add_le(&[(y, 2.0)], 12.0);
        m.add_le(&[(x, 3.0), (y, 2.0)], 18.0);
        m.set_objective(&[(x, 3.0), (y, 5.0)]);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.objective, 36.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 6.0);
    }

    #[test]
    fn upper_bounds_stay_implicit() {
        // Bounds never become rows: a pure box problem has zero rows.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 1.5, Some(3.5));
        let y = m.add_var("y", -2.0, Some(2.0));
        m.set_objective(&[(x, 2.0), (y, -1.0)]);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.value(x), 3.5);
        assert_close(sol.value(y), -2.0);
        assert_close(sol.objective, 9.0);
    }

    #[test]
    fn bounded_vars_inside_constraints() {
        // max x + y s.t. x + y ≤ 5, x ∈ [0, 3], y ∈ [0, 3] → 5, and the
        // vertex splits across the bounds.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, Some(3.0));
        let y = m.add_var("y", 0.0, Some(3.0));
        m.add_le(&[(x, 1.0), (y, 1.0)], 5.0);
        m.set_objective(&[(x, 1.0), (y, 1.0)]);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.objective, 5.0);
    }

    #[test]
    fn infeasible_and_unbounded_detected() {
        let mut inf = Model::new(Sense::Maximize);
        let x = inf.add_var("x", 0.0, None);
        inf.add_le(&[(x, 1.0)], 1.0);
        inf.add_ge(&[(x, 1.0)], 2.0);
        inf.set_objective(&[(x, 1.0)]);
        assert_eq!(solve_lp(&inf), Err(SolveError::Infeasible));

        let mut unb = Model::new(Sense::Maximize);
        let y = unb.add_var("y", 0.0, None);
        unb.set_objective(&[(y, 1.0)]);
        assert_eq!(solve_lp(&unb), Err(SolveError::Unbounded));
    }

    #[test]
    fn equality_system() {
        // max x + y s.t. x + y = 7, x - y = 1 → x=4, y=3.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, None);
        let y = m.add_var("y", 0.0, None);
        m.add_eq(&[(x, 1.0), (y, 1.0)], 7.0);
        m.add_eq(&[(x, 1.0), (y, -1.0)], 1.0);
        m.set_objective(&[(x, 1.0), (y, 1.0)]);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.value(x), 4.0);
        assert_close(sol.value(y), 3.0);
    }

    #[test]
    fn duplicate_coefficients_sum() {
        // `(x, 1) + (x, 2)` is the single term `3x`, with the lower-bound
        // shift applied to the summed coefficient: x ∈ [1, ∞),
        // 3x ≤ 6 → x ≤ 2. Pins the builder semantics for both solvers.
        for solver in [solve_lp, solve_lp_dense] {
            let mut m = Model::new(Sense::Maximize);
            let x = m.add_var("x", 1.0, None);
            m.add_constraint(&[(x, 1.0), (x, 2.0)], Op::Le, 6.0);
            m.set_objective(&[(x, 1.0)]);
            let sol = solver(&m).unwrap();
            assert_close(sol.value(x), 2.0);
            assert_close(sol.objective, 2.0);
        }
    }

    #[test]
    fn duplicate_coefficients_can_cancel() {
        // `(x, 2) + (x, -2)` vanishes entirely; the row degenerates to
        // `0 ≤ 1` and x is governed by its own bound.
        for solver in [solve_lp, solve_lp_dense] {
            let mut m = Model::new(Sense::Maximize);
            let x = m.add_var("x", 0.0, Some(9.0));
            m.add_constraint(&[(x, 2.0), (x, -2.0)], Op::Le, 1.0);
            m.set_objective(&[(x, 1.0)]);
            let sol = solver(&m).unwrap();
            assert_close(sol.objective, 9.0);
        }
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // The classic Beale-style degenerate LP; Bland's rule must
        // terminate on the bounded pivoting too.
        let mut m = Model::new(Sense::Maximize);
        let x1 = m.add_var("x1", 0.0, None);
        let x2 = m.add_var("x2", 0.0, None);
        let x3 = m.add_var("x3", 0.0, None);
        m.add_le(&[(x1, 0.5), (x2, -5.5), (x3, -2.5)], 0.0);
        m.add_le(&[(x1, 0.5), (x2, -1.5), (x3, -0.5)], 0.0);
        m.add_le(&[(x1, 1.0)], 1.0);
        m.set_objective(&[(x1, 10.0), (x2, -57.0), (x3, -9.0)]);
        let sol = solve_lp(&m).unwrap();
        assert!(sol.objective.is_finite());
        let dense = solve_lp_dense(&m).unwrap();
        assert_close(sol.objective, dense.objective);
    }

    #[test]
    fn pivot_cap_enforced() {
        // A two-term `≥` row survives presolve (it is neither empty nor a
        // singleton) and needs at least one phase-1 pivot; a zero cap
        // must surface as the iteration limit in both solvers.
        for solver in [solve_lp, solve_lp_dense] {
            let mut m = Model::new(Sense::Minimize);
            let x = m.add_var("x", 0.0, None);
            let y = m.add_var("y", 0.0, None);
            m.add_ge(&[(x, 1.0), (y, 1.0)], 3.0);
            m.set_objective(&[(x, 1.0), (y, 2.0)]);
            m.max_pivots = 0;
            assert_eq!(solver(&m), Err(SolveError::IterationLimit));
        }
    }

    #[test]
    fn fixed_variables_never_enter() {
        // entry-style variable fixed at 1 contributes through constraints
        // but is never pivoted on.
        let mut m = Model::new(Sense::Maximize);
        let e = m.add_var("entry", 1.0, Some(1.0));
        let x = m.add_var("x", 0.0, None);
        // x ≤ 4·entry
        m.add_le(&[(x, 1.0), (e, -4.0)], 0.0);
        m.set_objective(&[(x, 3.0)]);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.value(e), 1.0);
        assert_close(sol.value(x), 4.0);
        assert_close(sol.objective, 12.0);
    }

    #[test]
    fn inverted_bounds_are_infeasible() {
        // upper < lower is an empty box; both solvers must refuse rather
        // than return a bound-violating point.
        for solver in [solve_lp, solve_lp_dense] {
            let mut m = Model::new(Sense::Maximize);
            let x = m.add_var("x", 5.0, Some(3.0));
            m.set_objective(&[(x, 1.0)]);
            assert_eq!(solver(&m), Err(SolveError::Infeasible));
        }
    }

    #[test]
    fn warm_start_from_own_basis_skips_to_optimal() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, None);
        let y = m.add_var("y", 0.0, None);
        m.add_le(&[(x, 1.0)], 4.0);
        m.add_le(&[(y, 2.0)], 12.0);
        m.add_le(&[(x, 3.0), (y, 2.0)], 18.0);
        m.set_objective(&[(x, 3.0), (y, 5.0)]);
        let (cold, basis) = solve_lp_from(&m, None).unwrap();
        let (warm, basis2) = solve_lp_from(&m, Some(&basis)).unwrap();
        assert_close(warm.objective, cold.objective);
        assert_eq!(basis, basis2, "optimal basis is a fixpoint");
    }

    #[test]
    fn warm_start_after_objective_change() {
        // Same constraints, different objective: the old vertex is a valid
        // (feasible) start even when no longer optimal.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, Some(10.0));
        let y = m.add_var("y", 0.0, Some(10.0));
        m.add_le(&[(x, 1.0), (y, 1.0)], 12.0);
        m.set_objective(&[(x, 1.0), (y, 3.0)]);
        let (_, basis) = solve_lp_from(&m, None).unwrap();

        m.set_objective(&[(x, 3.0), (y, 1.0)]);
        let (warm, _) = solve_lp_from(&m, Some(&basis)).unwrap();
        let cold = solve_lp(&m).unwrap();
        assert_close(warm.objective, cold.objective);
        assert_close(warm.objective, 32.0); // x = 10, y = 2
    }

    #[test]
    fn mismatched_snapshot_falls_back_to_cold() {
        // A snapshot from a structurally different model must be rejected,
        // not trusted: the solve still succeeds via the cold path.
        let mut small = Model::new(Sense::Maximize);
        let a = small.add_var("a", 0.0, Some(1.0));
        small.set_objective(&[(a, 1.0)]);
        let (_, foreign) = solve_lp_from(&small, None).unwrap();

        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, None);
        m.add_le(&[(x, 1.0)], 7.0);
        m.set_objective(&[(x, 1.0)]);
        let (sol, _) = solve_lp_from(&m, Some(&foreign)).unwrap();
        assert_close(sol.objective, 7.0);
    }

    #[test]
    fn warm_start_infeasible_under_tightened_bounds_falls_back() {
        // Parent optimum x = 7; child fixes x ≤ 2. The parent basis is
        // primal-infeasible in the child, so restoration is refused and
        // the cold path must deliver the right answer anyway.
        let mut parent = Model::new(Sense::Maximize);
        let x = parent.add_var("x", 0.0, Some(7.0));
        let s = parent.add_var("s", 0.0, None);
        parent.add_eq(&[(x, 1.0), (s, 1.0)], 7.0);
        parent.set_objective(&[(x, 1.0)]);
        let (psol, pbasis) = solve_lp_from(&parent, None).unwrap();
        assert_close(psol.objective, 7.0);

        let mut child = Model::new(Sense::Maximize);
        let x = child.add_var("x", 0.0, Some(2.0));
        let s = child.add_var("s", 0.0, None);
        child.add_eq(&[(x, 1.0), (s, 1.0)], 7.0);
        child.set_objective(&[(x, 1.0)]);
        let (warm, _) = solve_lp_from(&child, Some(&pbasis)).unwrap();
        assert_close(warm.objective, 2.0);
    }

    #[test]
    fn negative_lower_bounds() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", -5.0, Some(10.0));
        m.set_objective(&[(x, 1.0)]);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.value(x), -5.0);
    }

    #[test]
    fn at_upper_flag_on_basic_column_is_rejected() {
        // Regression: `restore_basis` used to silently accept a snapshot
        // whose `at_upper` flags marked a *basic* column (the flag was
        // ignored during restoration but survived in the snapshot). Such
        // a snapshot is non-canonical — it can only come from corruption
        // or hand-construction — and must fall back to a cold start.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, Some(9.0));
        let y = m.add_var("y", 0.0, Some(9.0));
        m.add_le(&[(x, 1.0), (y, 1.0)], 6.0);
        m.set_objective(&[(x, 2.0), (y, 1.0)]);
        let (cold, snap) = solve_lp_from(&m, None).unwrap();

        let mut corrupted = snap.clone();
        let basic_col = corrupted.basic[0];
        assert!(
            !corrupted.at_upper[basic_col],
            "canonical snapshots never flag basic columns"
        );
        corrupted.at_upper[basic_col] = true;

        // The corrupted snapshot still solves (cold fallback) and the
        // returned snapshot is canonical again.
        let (sol, fresh) = solve_lp_from(&m, Some(&corrupted)).unwrap();
        assert_close(sol.objective, cold.objective);
        assert_eq!(fresh, snap, "fallback re-derives the canonical snapshot");

        // Directly at the restore layer: the canonical snapshot fits,
        // the corrupted one is refused.
        let mut stats = LpStats::default();
        let (ok_sol, warm) = solve_lp_core(&m, Start::Snapshot(&snap), &mut stats).unwrap();
        assert_close(ok_sol.objective, cold.objective);
        assert_eq!(warm.snap, snap);
        let before = stats.pivots;
        let (_, _) = solve_lp_core(&m, Start::Snapshot(&corrupted), &mut stats).unwrap();
        assert!(
            stats.pivots > before,
            "rejected snapshot falls back to a pivoting cold start"
        );
    }

    #[test]
    fn eta_file_refactorizes_past_the_limit() {
        // A dense-ish LP needing well over `eta_limit(m)` pivots: the
        // solve must record at least one refactorization and still agree
        // with the dense oracle.
        let mut m = Model::new(Sense::Maximize);
        let k = 96;
        let vars: Vec<_> = (0..k)
            .map(|i| m.add_var(&format!("x{i}"), 0.0, None))
            .collect();
        for i in 0..k {
            // Overlapping pair constraints chain every variable to the
            // next, forcing a long pivot sequence.
            let j = (i + 1) % k;
            m.add_le(&[(vars[i], 2.0), (vars[j], 1.0)], 10.0 + (i % 5) as f64);
        }
        let objective: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, 1.0 + (i % 3) as f64))
            .collect();
        m.set_objective(&objective);

        let mut stats = LpStats::default();
        let sol = solve_lp_with_stats(&m, &mut stats).unwrap();
        let dense = solve_lp_dense(&m).unwrap();
        assert_close(sol.objective, dense.objective);
        assert!(
            stats.pivots as usize >= eta_limit(k),
            "test needs a pivot count past the eta limit, got {}",
            stats.pivots
        );
        assert!(
            stats.refactorizations >= 1,
            "eta limit must have forced a refactorization"
        );
    }

    #[test]
    fn warm_start_reuses_parent_factorization() {
        // The branch-and-bound handshake: a child with one tightened
        // bound restores the parent's factorization and reaches the same
        // optimum a cold solve finds.
        let mut parent = Model::new(Sense::Maximize);
        let x = parent.add_var("x", 0.0, Some(10.0));
        let y = parent.add_var("y", 0.0, Some(10.0));
        let z = parent.add_var("z", 0.0, Some(10.0));
        parent.add_le(&[(x, 1.0), (y, 1.0), (z, 1.0)], 15.0);
        parent.add_le(&[(x, 2.0), (y, -1.0)], 8.0);
        parent.set_objective(&[(x, 3.0), (y, 2.0), (z, 1.0)]);
        let mut stats = LpStats::default();
        let (_, warm) = solve_lp_core(&parent, Start::Cold, &mut stats).unwrap();

        let mut child = parent.clone();
        child.vars[0].upper = Some(4.0); // tighten x
        let (warm_sol, _) = solve_lp_core(&child, Start::Warm(&warm), &mut stats).unwrap();
        let cold_sol = solve_lp(&child).unwrap();
        assert_close(warm_sol.objective, cold_sol.objective);
    }
}
