//! Sparse, bound-aware revised primal simplex — the production LP path.
//!
//! Differences from the dense reference in [`crate::simplex`]:
//!
//! * **Sparse columns.** The constraint matrix is stored column-wise as
//!   `(row, coeff)` pairs; the only dense state is the `m × m` basis
//!   inverse (`m` = number of *constraints*, not constraints + bounds).
//! * **Implicit variable bounds.** A variable's upper bound never becomes
//!   a tableau row. Nonbasic variables rest at either bound, the ratio
//!   test caps the entering step by the entering variable's own span, and
//!   a step that ends at the opposite bound is a *bound flip* — no pivot,
//!   no basis change. IPET models from branch-and-bound nodes are full of
//!   tightened bounds, so this removes the dense solver's `O(n)` extra
//!   rows (and their `O(n)`-wide tableau copies).
//! * **Revised iteration.** Reduced costs are priced as
//!   `c_j − c_B B⁻¹ A_j` against the maintained basis inverse; a pivot is
//!   a rank-one update of `B⁻¹` instead of a full-tableau elimination.
//!
//! Kept from the dense reference: the two-phase artificial-variable
//! start, Bland's anti-cycling rule (first eligible entering index,
//! smallest basis index on ratio ties), and the shared pivot cap.

#![allow(clippy::needless_range_loop)] // index-parallel arrays

use std::collections::BTreeMap;

use crate::model::{Model, Op, Sense, Solution, SolveError};

const EPS: f64 = 1e-9;

/// Where a nonbasic variable currently rests.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Bound {
    Lower,
    Upper,
}

/// The sparse standard form: `A x = b` over shifted variables
/// `x ∈ [0, span]`, columns stored sparse.
struct SparseForm {
    /// Number of rows (constraints only — never bounds).
    m: usize,
    /// Sparse column per variable: structural, then slack/surplus, then
    /// artificial.
    cols: Vec<Vec<(usize, f64)>>,
    /// Bound span per variable (`upper − lower` after shifting; infinite
    /// when unbounded above, `0` for fixed variables).
    span: Vec<f64>,
    /// Right-hand side, normalized nonnegative.
    rhs: Vec<f64>,
    /// Artificial variable indices (phase-1 objective).
    artificials: Vec<usize>,
}

/// Mutable solver state: the basis, its inverse, and variable rest
/// positions.
struct Basis {
    /// Dense row-major `m × m` basis inverse.
    binv: Vec<f64>,
    /// Basic variable of each row.
    basic: Vec<usize>,
    /// Value of each basic variable (`x_B = B⁻¹ b` kept incrementally).
    xb: Vec<f64>,
    /// Rest bound of every nonbasic variable (ignored while basic).
    rest: Vec<Bound>,
    /// Whether a variable is currently basic.
    in_basis: Vec<bool>,
}

impl Basis {
    /// `B⁻¹ A_j` for a sparse column.
    fn ftran(&self, m: usize, col: &[(usize, f64)]) -> Vec<f64> {
        let mut w = vec![0.0; m];
        for i in 0..m {
            let row = &self.binv[i * m..(i + 1) * m];
            let mut acc = 0.0;
            for &(r, a) in col {
                acc += row[r] * a;
            }
            w[i] = acc;
        }
        w
    }

    /// Row `i` of `B⁻¹` dotted with a sparse column.
    fn row_dot(&self, m: usize, i: usize, col: &[(usize, f64)]) -> f64 {
        let row = &self.binv[i * m..(i + 1) * m];
        col.iter().map(|&(r, a)| row[r] * a).sum()
    }

    /// Rank-one update of `B⁻¹` after `w = B⁻¹ A_j` enters on `row`.
    fn pivot(&mut self, m: usize, w: &[f64], row: usize) {
        let p = w[row];
        for k in 0..m {
            self.binv[row * m + k] /= p;
        }
        for i in 0..m {
            if i != row && w[i].abs() > EPS {
                let f = w[i];
                for k in 0..m {
                    self.binv[i * m + k] -= f * self.binv[row * m + k];
                }
            }
        }
    }
}

/// Solves the LP relaxation of `model` with the sparse revised simplex.
///
/// # Errors
///
/// [`SolveError::Infeasible`] when phase 1 cannot zero the artificials,
/// [`SolveError::Unbounded`] when an improving direction is blocked by no
/// basic variable and no bound, [`SolveError::IterationLimit`] past
/// `model.max_pivots` pivots (bound flips count).
pub fn solve_lp(model: &Model) -> Result<Solution, SolveError> {
    let n = model.vars.len();

    // An inverted bound box (upper < lower) admits no solution. The dense
    // oracle discovers this through its explicit bound rows; here bounds
    // are implicit, so reject up front (same 1e-6 feasibility tolerance).
    for v in &model.vars {
        if v.upper.is_some_and(|u| u - v.lower < -1e-6) {
            return Err(SolveError::Infeasible);
        }
    }

    let shift: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();

    // --- Standard form: shift, sum duplicates, normalize rhs signs ----
    struct RowSpec {
        terms: Vec<(usize, f64)>,
        op: Op,
        rhs: f64,
    }
    let mut rows: Vec<RowSpec> = Vec::with_capacity(model.constraints.len());
    for c in &model.constraints {
        // Duplicate `(var, coeff)` entries sum — the same semantics the
        // dense builder pins (coefficient accumulation and shift
        // adjustment are both linear in the terms).
        let mut acc: BTreeMap<usize, f64> = BTreeMap::new();
        let mut rhs = c.rhs;
        for &(v, a) in &c.coeffs {
            *acc.entry(v.0).or_insert(0.0) += a;
            rhs -= a * shift[v.0];
        }
        let mut terms: Vec<(usize, f64)> =
            acc.into_iter().filter(|&(_, a)| a != 0.0).collect();
        let mut op = c.op;
        if rhs < 0.0 {
            for t in &mut terms {
                t.1 = -t.1;
            }
            rhs = -rhs;
            op = match op {
                Op::Le => Op::Ge,
                Op::Ge => Op::Le,
                Op::Eq => Op::Eq,
            };
        }
        rows.push(RowSpec { terms, op, rhs });
    }
    let m = rows.len();

    // --- Columns: structural | slack/surplus | artificial -------------
    let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (i, r) in rows.iter().enumerate() {
        for &(j, a) in &r.terms {
            cols[j].push((i, a));
        }
    }
    let mut span: Vec<f64> = model
        .vars
        .iter()
        .map(|v| v.upper.map_or(f64::INFINITY, |u| (u - v.lower).max(0.0)))
        .collect();
    let mut basic = vec![usize::MAX; m];
    let mut artificials = Vec::new();
    for (i, r) in rows.iter().enumerate() {
        match r.op {
            Op::Le => {
                cols.push(vec![(i, 1.0)]);
                span.push(f64::INFINITY);
                basic[i] = cols.len() - 1;
            }
            Op::Ge => {
                cols.push(vec![(i, -1.0)]); // surplus, nonbasic at 0
                span.push(f64::INFINITY);
                cols.push(vec![(i, 1.0)]); // artificial, basic
                span.push(f64::INFINITY);
                basic[i] = cols.len() - 1;
                artificials.push(cols.len() - 1);
            }
            Op::Eq => {
                cols.push(vec![(i, 1.0)]); // artificial, basic
                span.push(f64::INFINITY);
                basic[i] = cols.len() - 1;
                artificials.push(cols.len() - 1);
            }
        }
    }
    let total = cols.len();

    let mut form = SparseForm {
        m,
        cols,
        span,
        rhs: rows.iter().map(|r| r.rhs).collect(),
        artificials,
    };
    let mut binv = vec![0.0; m * m];
    for i in 0..m {
        binv[i * m + i] = 1.0;
    }
    let mut state = Basis {
        binv,
        xb: form.rhs.clone(),
        in_basis: {
            let mut b = vec![false; total];
            for &v in &basic {
                b[v] = true;
            }
            b
        },
        basic,
        rest: vec![Bound::Lower; total],
    };
    let mut pivots_left = model.max_pivots;

    // --- Phase 1: drive the artificials to zero -----------------------
    if !form.artificials.is_empty() {
        let mut obj = vec![0.0; total];
        for &a in &form.artificials {
            obj[a] = -1.0;
        }
        let value = optimize(&form, &mut state, &obj, &mut pivots_left)?;
        if value < -1e-6 {
            return Err(SolveError::Infeasible);
        }
        evict_basic_artificials(&form, &mut state);
        // Fix artificials at zero: a fixed variable is never eligible to
        // enter, which is the bound-form equivalent of zapping their
        // columns in the dense tableau.
        for &a in &form.artificials {
            form.span[a] = 0.0;
        }
    }

    // --- Phase 2: the real objective ----------------------------------
    let dir = match model.sense {
        Sense::Maximize => 1.0,
        Sense::Minimize => -1.0,
    };
    let mut obj = vec![0.0; total];
    for (j, &c) in model.objective.iter().enumerate() {
        obj[j] = dir * c;
    }
    optimize(&form, &mut state, &obj, &mut pivots_left)?;

    // --- Extraction ----------------------------------------------------
    let mut values = shift;
    for (j, value) in values.iter_mut().enumerate() {
        if !state.in_basis[j] && state.rest[j] == Bound::Upper {
            *value += form.span[j];
        }
    }
    for (i, &b) in state.basic.iter().enumerate() {
        if b < n {
            values[b] += state.xb[i];
        }
    }
    let objective = model
        .objective
        .iter()
        .zip(&values)
        .map(|(c, v)| c * v)
        .sum();
    Ok(Solution { objective, values })
}

/// Maximizes `obj` from the current basis; returns the optimal phase
/// objective value (in the internal maximization direction).
fn optimize(
    form: &SparseForm,
    state: &mut Basis,
    obj: &[f64],
    pivots_left: &mut usize,
) -> Result<f64, SolveError> {
    let m = form.m;
    let total = form.cols.len();
    // Pricing vector y = c_B B⁻¹, recomputed only after a pivot — a bound
    // flip changes neither the basis nor the objective, so the reduced
    // costs survive flips unchanged.
    let mut y = vec![0.0; m];
    let mut y_valid = false;
    loop {
        if !y_valid {
            y.fill(0.0);
            for i in 0..m {
                let cb = obj[state.basic[i]];
                if cb != 0.0 {
                    let row = &state.binv[i * m..(i + 1) * m];
                    for (yk, &bk) in y.iter_mut().zip(row) {
                        *yk += cb * bk;
                    }
                }
            }
            y_valid = true;
        }

        // Bland: first nonbasic, non-fixed column whose reduced cost
        // improves in its feasible direction.
        let mut entering = None;
        for j in 0..total {
            if state.in_basis[j] || form.span[j] <= EPS {
                continue;
            }
            let d = obj[j]
                - form.cols[j]
                    .iter()
                    .map(|&(r, a)| y[r] * a)
                    .sum::<f64>();
            let eligible = match state.rest[j] {
                Bound::Lower => d > EPS,
                Bound::Upper => d < -EPS,
            };
            if eligible {
                entering = Some(j);
                break;
            }
        }
        let Some(j) = entering else {
            // Optimal: objective at the current point.
            let mut value = 0.0;
            for i in 0..m {
                value += obj[state.basic[i]] * state.xb[i];
            }
            for (jj, col_obj) in obj.iter().enumerate() {
                if !state.in_basis[jj]
                    && state.rest[jj] == Bound::Upper
                    && *col_obj != 0.0
                {
                    value += col_obj * form.span[jj];
                }
            }
            return Ok(value);
        };

        // Direction: entering increases from its lower bound or decreases
        // from its upper bound.
        let sign = match state.rest[j] {
            Bound::Lower => 1.0,
            Bound::Upper => -1.0,
        };
        let w = state.ftran(m, &form.cols[j]);

        // Ratio test: basic variables block at their own bounds; the
        // entering variable blocks at its opposite bound (a flip). Bland:
        // smallest basis index breaks ties, and a blocking row always
        // beats a tying flip.
        let mut best = form.span[j];
        let mut leave: Option<(usize, Bound)> = None;
        for i in 0..m {
            let rate = sign * w[i]; // xb[i] shrinks at `rate` per unit step
            if rate > EPS {
                let ratio = state.xb[i] / rate;
                let tie = (ratio - best).abs() <= EPS;
                if ratio < best - EPS
                    || (tie
                        && leave
                            .is_none_or(|(l, _)| state.basic[i] < state.basic[l]))
                {
                    best = ratio;
                    leave = Some((i, Bound::Lower));
                }
            } else if rate < -EPS {
                let ub = form.span[state.basic[i]];
                if ub.is_finite() {
                    let ratio = (ub - state.xb[i]) / (-rate);
                    let tie = (ratio - best).abs() <= EPS;
                    if ratio < best - EPS
                        || (tie
                            && leave
                                .is_none_or(|(l, _)| state.basic[i] < state.basic[l]))
                    {
                        best = ratio;
                        leave = Some((i, Bound::Upper));
                    }
                }
            }
        }
        if best.is_infinite() {
            return Err(SolveError::Unbounded);
        }
        if *pivots_left == 0 {
            return Err(SolveError::IterationLimit);
        }
        *pivots_left -= 1;
        let delta = best.max(0.0);

        match leave {
            None => {
                // Bound flip: the entering variable runs to its opposite
                // bound; the basis is untouched.
                for i in 0..m {
                    state.xb[i] -= sign * delta * w[i];
                }
                state.rest[j] = match state.rest[j] {
                    Bound::Lower => Bound::Upper,
                    Bound::Upper => Bound::Lower,
                };
            }
            Some((r, leaves_to)) => {
                for i in 0..m {
                    if i != r {
                        state.xb[i] -= sign * delta * w[i];
                    }
                }
                let entering_value = match state.rest[j] {
                    Bound::Lower => delta,
                    Bound::Upper => form.span[j] - delta,
                };
                let leaving = state.basic[r];
                state.in_basis[leaving] = false;
                state.rest[leaving] = leaves_to;
                state.basic[r] = j;
                state.in_basis[j] = true;
                state.xb[r] = entering_value;
                state.pivot(m, &w, r);
                y_valid = false;
            }
        }
    }
}

/// After phase 1, swaps basic artificials (all at value 0) out for any
/// non-artificial column with a nonzero pivot element — a degenerate
/// basis relabeling at an unchanged solution point. Rows where no such
/// column exists are redundant; their artificial stays basic at 0.
fn evict_basic_artificials(form: &SparseForm, state: &mut Basis) {
    let m = form.m;
    let is_artificial = {
        let mut flags = vec![false; form.cols.len()];
        for &a in &form.artificials {
            flags[a] = true;
        }
        flags
    };
    for i in 0..m {
        if !is_artificial[state.basic[i]] {
            continue;
        }
        let candidate = (0..form.cols.len()).find(|&j| {
            !is_artificial[j]
                && !state.in_basis[j]
                && state.row_dot(m, i, &form.cols[j]).abs() > EPS
        });
        if let Some(j) = candidate {
            let w = state.ftran(m, &form.cols[j]);
            let entering_value = match state.rest[j] {
                Bound::Lower => 0.0,
                Bound::Upper => form.span[j],
            };
            let leaving = state.basic[i];
            state.in_basis[leaving] = false;
            state.rest[leaving] = Bound::Lower;
            state.basic[i] = j;
            state.in_basis[j] = true;
            state.xb[i] = entering_value;
            state.pivot(m, &w, i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use crate::simplex::solve_lp_dense;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → 36 at (2, 6).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, None);
        let y = m.add_var("y", 0.0, None);
        m.add_le(&[(x, 1.0)], 4.0);
        m.add_le(&[(y, 2.0)], 12.0);
        m.add_le(&[(x, 3.0), (y, 2.0)], 18.0);
        m.set_objective(&[(x, 3.0), (y, 5.0)]);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.objective, 36.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 6.0);
    }

    #[test]
    fn upper_bounds_stay_implicit() {
        // Bounds never become rows: a pure box problem has zero rows.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 1.5, Some(3.5));
        let y = m.add_var("y", -2.0, Some(2.0));
        m.set_objective(&[(x, 2.0), (y, -1.0)]);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.value(x), 3.5);
        assert_close(sol.value(y), -2.0);
        assert_close(sol.objective, 9.0);
    }

    #[test]
    fn bounded_vars_inside_constraints() {
        // max x + y s.t. x + y ≤ 5, x ∈ [0, 3], y ∈ [0, 3] → 5, and the
        // vertex splits across the bounds.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, Some(3.0));
        let y = m.add_var("y", 0.0, Some(3.0));
        m.add_le(&[(x, 1.0), (y, 1.0)], 5.0);
        m.set_objective(&[(x, 1.0), (y, 1.0)]);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.objective, 5.0);
    }

    #[test]
    fn infeasible_and_unbounded_detected() {
        let mut inf = Model::new(Sense::Maximize);
        let x = inf.add_var("x", 0.0, None);
        inf.add_le(&[(x, 1.0)], 1.0);
        inf.add_ge(&[(x, 1.0)], 2.0);
        inf.set_objective(&[(x, 1.0)]);
        assert_eq!(solve_lp(&inf), Err(SolveError::Infeasible));

        let mut unb = Model::new(Sense::Maximize);
        let y = unb.add_var("y", 0.0, None);
        unb.set_objective(&[(y, 1.0)]);
        assert_eq!(solve_lp(&unb), Err(SolveError::Unbounded));
    }

    #[test]
    fn equality_system() {
        // max x + y s.t. x + y = 7, x - y = 1 → x=4, y=3.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, None);
        let y = m.add_var("y", 0.0, None);
        m.add_eq(&[(x, 1.0), (y, 1.0)], 7.0);
        m.add_eq(&[(x, 1.0), (y, -1.0)], 1.0);
        m.set_objective(&[(x, 1.0), (y, 1.0)]);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.value(x), 4.0);
        assert_close(sol.value(y), 3.0);
    }

    #[test]
    fn duplicate_coefficients_sum() {
        // `(x, 1) + (x, 2)` is the single term `3x`, with the lower-bound
        // shift applied to the summed coefficient: x ∈ [1, ∞),
        // 3x ≤ 6 → x ≤ 2. Pins the builder semantics for both solvers.
        for solver in [solve_lp, solve_lp_dense] {
            let mut m = Model::new(Sense::Maximize);
            let x = m.add_var("x", 1.0, None);
            m.add_constraint(&[(x, 1.0), (x, 2.0)], Op::Le, 6.0);
            m.set_objective(&[(x, 1.0)]);
            let sol = solver(&m).unwrap();
            assert_close(sol.value(x), 2.0);
            assert_close(sol.objective, 2.0);
        }
    }

    #[test]
    fn duplicate_coefficients_can_cancel() {
        // `(x, 2) + (x, -2)` vanishes entirely; the row degenerates to
        // `0 ≤ 1` and x is governed by its own bound.
        for solver in [solve_lp, solve_lp_dense] {
            let mut m = Model::new(Sense::Maximize);
            let x = m.add_var("x", 0.0, Some(9.0));
            m.add_constraint(&[(x, 2.0), (x, -2.0)], Op::Le, 1.0);
            m.set_objective(&[(x, 1.0)]);
            let sol = solver(&m).unwrap();
            assert_close(sol.objective, 9.0);
        }
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // The classic Beale-style degenerate LP; Bland's rule must
        // terminate on the bounded pivoting too.
        let mut m = Model::new(Sense::Maximize);
        let x1 = m.add_var("x1", 0.0, None);
        let x2 = m.add_var("x2", 0.0, None);
        let x3 = m.add_var("x3", 0.0, None);
        m.add_le(&[(x1, 0.5), (x2, -5.5), (x3, -2.5)], 0.0);
        m.add_le(&[(x1, 0.5), (x2, -1.5), (x3, -0.5)], 0.0);
        m.add_le(&[(x1, 1.0)], 1.0);
        m.set_objective(&[(x1, 10.0), (x2, -57.0), (x3, -9.0)]);
        let sol = solve_lp(&m).unwrap();
        assert!(sol.objective.is_finite());
        let dense = solve_lp_dense(&m).unwrap();
        assert_close(sol.objective, dense.objective);
    }

    #[test]
    fn pivot_cap_enforced() {
        // A `≥` row needs at least one phase-1 pivot; a zero cap must
        // surface as the iteration limit in both solvers.
        for solver in [solve_lp, solve_lp_dense] {
            let mut m = Model::new(Sense::Minimize);
            let x = m.add_var("x", 0.0, None);
            m.add_ge(&[(x, 1.0)], 3.0);
            m.set_objective(&[(x, 1.0)]);
            m.max_pivots = 0;
            assert_eq!(solver(&m), Err(SolveError::IterationLimit));
        }
    }

    #[test]
    fn fixed_variables_never_enter() {
        // entry-style variable fixed at 1 contributes through constraints
        // but is never pivoted on.
        let mut m = Model::new(Sense::Maximize);
        let e = m.add_var("entry", 1.0, Some(1.0));
        let x = m.add_var("x", 0.0, None);
        // x ≤ 4·entry
        m.add_le(&[(x, 1.0), (e, -4.0)], 0.0);
        m.set_objective(&[(x, 3.0)]);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.value(e), 1.0);
        assert_close(sol.value(x), 4.0);
        assert_close(sol.objective, 12.0);
    }

    #[test]
    fn inverted_bounds_are_infeasible() {
        // upper < lower is an empty box; both solvers must refuse rather
        // than return a bound-violating point.
        for solver in [solve_lp, solve_lp_dense] {
            let mut m = Model::new(Sense::Maximize);
            let x = m.add_var("x", 5.0, Some(3.0));
            m.set_objective(&[(x, 1.0)]);
            assert_eq!(solver(&m), Err(SolveError::Infeasible));
        }
    }

    #[test]
    fn negative_lower_bounds() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", -5.0, Some(10.0));
        m.set_objective(&[(x, 1.0)]);
        let sol = solve_lp(&m).unwrap();
        assert_close(sol.value(x), -5.0);
    }
}
