//! Differential fuzzing for the LP backends.
//!
//! The sparse LU/eta engine ([`crate::sparse`]) and the dense tableau
//! simplex ([`crate::simplex`]) implement the same mathematics through
//! entirely different linear algebra, which makes each the other's
//! oracle: on any model they must agree on status (optimal, infeasible,
//! unbounded) and, when optimal, on the objective value. The campaign
//! here generates small random models from a seeded generator and checks
//! that agreement three ways per model:
//!
//! 1. dense vs sparse *with* presolve (the [`crate::model::Model::solve`]
//!    path);
//! 2. dense vs sparse *without* presolve
//!    ([`crate::sparse::solve_lp_from`] cold), so a presolve bug cannot
//!    mask a solver bug or vice versa;
//! 3. warm vs cold: re-solving from the cold solve's own basis snapshot
//!    must reproduce the objective exactly and return the same snapshot
//!    (the fixpoint the incremental replay path depends on).
//!
//! Everything is deterministic from the seed — a CI failure reproduces
//! locally verbatim from the model index it prints.

use crate::model::{Model, Sense, SolveError};

/// Campaign knobs.
#[derive(Debug, Clone)]
pub struct LpFuzzOptions {
    /// Number of random models to generate and check.
    pub models: u64,
    /// Campaign seed; each model derives its own seed from it.
    pub seed: u64,
    /// Progress line cadence on stderr (0 = silent).
    pub progress_every: u64,
}

impl Default for LpFuzzOptions {
    fn default() -> Self {
        Self {
            models: 500,
            seed: 1,
            progress_every: 0,
        }
    }
}

/// Campaign outcome.
#[derive(Debug)]
pub struct LpFuzzReport {
    /// Models generated and checked.
    pub models_checked: u64,
    /// First disagreement found, rendered with the model index and seed
    /// needed to reproduce it; `None` on a clean run.
    pub failure: Option<String>,
}

/// Splitmix64 — the same tiny deterministic generator the program fuzzer
/// uses; no external RNG dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Small signed integer coefficient in `[-4, 4]`, never zero.
    fn coeff(&mut self) -> f64 {
        let mag = 1 + self.below(4) as i64;
        if self.below(2) == 0 {
            mag as f64
        } else {
            -mag as f64
        }
    }
}

/// The per-model seed: mixes the campaign seed with the model index the
/// same way each run, so a printed index reproduces one model alone.
#[must_use]
pub fn model_seed(campaign_seed: u64, index: u64) -> u64 {
    campaign_seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0xd134_2543_de82_ef95))
        | 1
}

/// Generates one random LP. Shapes skew toward the feasible/bounded
/// region (integer coefficients, mostly boxed variables, small rhs) so
/// most models exercise full solves, but infeasible and unbounded models
/// still occur and pin the status agreement.
#[must_use]
pub fn generate(seed: u64) -> Model {
    let mut rng = Rng(seed);
    let sense = if rng.below(2) == 0 {
        Sense::Maximize
    } else {
        Sense::Minimize
    };
    let mut m = Model::new(sense);
    let nvars = 2 + rng.below(10) as usize;
    let nrows = 1 + rng.below(12) as usize;

    let vars: Vec<_> = (0..nvars)
        .map(|i| {
            let lower = rng.below(3) as f64;
            // Mostly boxed: unbounded-above variables make unbounded
            // models too common to be interesting.
            let upper = if rng.below(5) == 0 {
                None
            } else {
                Some(lower + rng.below(9) as f64)
            };
            m.add_var(&format!("x{i}"), lower, upper)
        })
        .collect();

    for _ in 0..nrows {
        let mut terms = Vec::new();
        for &v in &vars {
            if rng.below(3) < 2 {
                terms.push((v, rng.coeff()));
            }
        }
        if terms.is_empty() {
            continue;
        }
        let rhs = rng.below(25) as f64 - 4.0;
        match rng.below(4) {
            0 => m.add_ge(&terms, rhs),
            1 => m.add_eq(&terms, rhs),
            _ => m.add_le(&terms, rhs),
        };
    }

    let objective: Vec<_> = vars.iter().map(|&v| (v, rng.coeff())).collect();
    m.set_objective(&objective);
    m
}

/// `|a - b|` within a relative-absolute mixed tolerance.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()))
}

/// Checks one model against every oracle; returns the first
/// disagreement rendered for humans.
fn check_model(model: &Model) -> Result<(), String> {
    let dense = crate::simplex::solve_lp_dense(model);
    let presolved = crate::sparse::solve_lp(model);
    let raw = crate::sparse::solve_lp_from(model, None);

    // Status agreement across all three paths. Objective agreement when
    // everyone solved.
    match (&dense, &presolved, &raw) {
        (Ok(d), Ok(p), Ok((r, snap))) => {
            if !close(d.objective, p.objective) {
                return Err(format!(
                    "dense {} vs sparse+presolve {}",
                    d.objective, p.objective
                ));
            }
            if !close(d.objective, r.objective) {
                return Err(format!(
                    "dense {} vs sparse raw {}",
                    d.objective, r.objective
                ));
            }
            // Warm restore from the cold snapshot: same objective, and
            // the returned snapshot reaches a fixpoint immediately.
            let (warm, warm_snap) = crate::sparse::solve_lp_from(model, Some(snap))
                .map_err(|e| format!("warm re-solve failed: {e}"))?;
            if !close(warm.objective, r.objective) {
                return Err(format!("cold {} vs warm {}", r.objective, warm.objective));
            }
            if &warm_snap != snap {
                return Err("warm snapshot is not a fixpoint of the cold snapshot".into());
            }
        }
        (Err(de), Err(pe), Err(re)) => {
            if de != pe || de != re {
                return Err(format!(
                    "status disagreement: dense {de}, sparse+presolve {pe}, sparse raw {re}"
                ));
            }
        }
        _ => {
            fn status<T>(r: &Result<T, SolveError>) -> String {
                match r {
                    Ok(_) => "optimal".to_owned(),
                    Err(e) => format!("{e}"),
                }
            }
            return Err(format!(
                "status disagreement: dense {}, sparse+presolve {}, sparse raw {}",
                status(&dense),
                status(&presolved),
                status(&raw),
            ));
        }
    }
    Ok(())
}

/// Runs the campaign; stops at the first disagreement.
#[must_use]
pub fn run_campaign(opts: &LpFuzzOptions) -> LpFuzzReport {
    let mut checked = 0u64;
    for index in 0..opts.models {
        let seed = model_seed(opts.seed, index);
        let model = generate(seed);
        if let Err(reason) = check_model(&model) {
            return LpFuzzReport {
                models_checked: checked,
                failure: Some(format!(
                    "model {index} (seed {seed:#x}, {} var(s), {} row(s)): {reason}",
                    model.num_vars(),
                    model.num_constraints()
                )),
            };
        }
        checked += 1;
        if opts.progress_every > 0 && checked.is_multiple_of(opts.progress_every) {
            eprintln!("wcet fuzz-lp: {checked}/{} model(s) checked", opts.models);
        }
    }
    LpFuzzReport {
        models_checked: checked,
        failure: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_clean() {
        let report = run_campaign(&LpFuzzOptions {
            models: 64,
            seed: 7,
            progress_every: 0,
        });
        assert_eq!(report.failure, None);
        assert_eq!(report.models_checked, 64);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(model_seed(1, 3));
        let b = generate(model_seed(1, 3));
        assert_eq!(a.num_vars(), b.num_vars());
        assert_eq!(a.num_constraints(), b.num_constraints());
        let sa = crate::sparse::solve_lp(&a);
        let sb = crate::sparse::solve_lp(&b);
        match (sa, sb) {
            (Ok(x), Ok(y)) => assert!((x.objective - y.objective).abs() < 1e-12),
            (Err(x), Err(y)) => assert_eq!(x, y),
            other => panic!("diverged: {other:?}"),
        }
    }

    #[test]
    fn generator_covers_statuses() {
        // The skew keeps most models solvable, but the campaign is only
        // a differential test if the error paths occur too.
        let mut optimal = 0;
        let mut errors = 0;
        for index in 0..256 {
            match crate::sparse::solve_lp(&generate(model_seed(11, index))) {
                Ok(_) => optimal += 1,
                Err(_) => errors += 1,
            }
        }
        assert!(optimal > 0, "no model solved");
        assert!(errors > 0, "no infeasible/unbounded model generated");
    }
}
