//! Depth-first branch-and-bound on top of the simplex.
//!
//! IPET relaxations are usually integral already (the constraint matrices
//! are network-like), so branch-and-bound rarely branches — but it must
//! exist for the flow-fact constraints that break total unimodularity
//! (mutual exclusions, relative capacity constraints).
//!
//! The model is presolved **once at the root** ([`crate::presolve`], in
//! integral mode): the whole tree then runs on the reduced model, and the
//! incumbent is postsolved back to the original variable order at the
//! end. Every node carries a [`WarmStart`] handle from its parent — the
//! parent's optimal basis *and* its LU factorization. A child differs
//! from its parent by one variable bound, which leaves the basis matrix
//! untouched, so the child's solve reuses the factorization outright and
//! starts phase 2 at the parent's vertex; the solver falls back to a
//! fresh factorization or a cold two-phase start when the snapshot does
//! not fit. Search order, pruning, and the incumbent are untouched — the
//! tree is identical, only node solves get cheaper.

use crate::model::{LpStats, Model, Sense, Solution, SolveError};
use crate::sparse::{solve_lp_core, Start, WarmStart};

const INT_TOL: f64 = 1e-6;

/// Solves a mixed-integer program by LP-based branch-and-bound.
///
/// # Errors
///
/// [`SolveError::Infeasible`] if no integral solution exists,
/// [`SolveError::Unbounded`] if the relaxation is unbounded,
/// [`SolveError::IterationLimit`] past `model.max_nodes` nodes.
pub fn solve_ilp(model: &Model) -> Result<Solution, SolveError> {
    solve_ilp_with_stats(model, &mut LpStats::default())
}

/// [`solve_ilp`], accumulating solver effort counters (summed over every
/// node relaxation) into `stats`.
///
/// # Errors
///
/// Same conditions as [`solve_ilp`].
pub fn solve_ilp_with_stats(model: &Model, stats: &mut LpStats) -> Result<Solution, SolveError> {
    let pre = crate::presolve::presolve(model, true)?;
    stats.presolve_removed += pre.removed as u64;
    let reduced = &pre.reduced;

    // Each stack entry is a set of tightened bounds overlaying the reduced
    // model, plus the parent relaxation's warm-start handle.
    struct Node {
        lower: Vec<f64>,
        upper: Vec<Option<f64>>,
        warm: Option<WarmStart>,
    }

    let root = Node {
        lower: reduced.vars.iter().map(|v| v.lower).collect(),
        upper: reduced.vars.iter().map(|v| v.upper).collect(),
        warm: None,
    };

    let mut stack = vec![root];
    let mut incumbent: Option<Solution> = None;
    let mut nodes = 0usize;

    // Pruning compares *reduced* objectives: substitution may have
    // dropped a constant term, but a constant shift cancels in every
    // comparison, so the tree is the same one the unpresolved model
    // would produce.
    let better = |candidate: f64, best: f64| match reduced.sense {
        Sense::Maximize => candidate > best + INT_TOL,
        Sense::Minimize => candidate < best - INT_TOL,
    };

    while let Some(node) = stack.pop() {
        nodes += 1;
        if nodes > model.max_nodes {
            return Err(SolveError::IterationLimit);
        }

        // Solve the relaxation with the node's bounds. The root (and any
        // node whose bound set matches the reduced model — the common,
        // non-branching IPET case) borrows the reduced model outright
        // instead of cloning it per node.
        if node
            .lower
            .iter()
            .zip(&node.upper)
            .any(|(&l, u)| u.is_some_and(|u| u < l))
        {
            continue;
        }
        let unchanged = reduced
            .vars
            .iter()
            .enumerate()
            .all(|(i, v)| v.lower == node.lower[i] && v.upper == node.upper[i]);
        let storage;
        let relaxed: &Model = if unchanged {
            reduced
        } else {
            let mut m = reduced.clone();
            for (i, v) in m.vars.iter_mut().enumerate() {
                v.lower = node.lower[i];
                v.upper = node.upper[i];
            }
            storage = m;
            &storage
        };
        let start = match &node.warm {
            Some(warm) => Start::Warm(warm),
            None => Start::Cold,
        };
        let (sol, warm) = match solve_lp_core(relaxed, start, stats) {
            Ok(s) => s,
            Err(SolveError::Infeasible) => continue,
            Err(e) => return Err(e),
        };

        // Bound: prune if the relaxation cannot beat the incumbent.
        if let Some(best) = &incumbent {
            if !better(sol.objective, best.objective) {
                continue;
            }
        }

        // Find the most fractional integer variable.
        let mut branch_var = None;
        let mut worst_frac = INT_TOL;
        for (i, v) in reduced.vars.iter().enumerate() {
            if !v.integer {
                continue;
            }
            let x = sol.values[i];
            let frac = (x - x.round()).abs();
            if frac > worst_frac {
                worst_frac = frac;
                branch_var = Some(i);
            }
        }

        match branch_var {
            None => {
                // Integral: candidate solution.
                let is_better = incumbent
                    .as_ref()
                    .is_none_or(|best| better(sol.objective, best.objective));
                if is_better {
                    incumbent = Some(sol);
                }
            }
            Some(i) => {
                let x = sol.values[i];
                let floor = x.floor();
                // Down branch: x ≤ floor.
                let new_up = match node.upper[i] {
                    Some(u) => u.min(floor),
                    None => floor,
                };
                let mut down_upper = node.upper.clone();
                down_upper[i] = Some(new_up);
                let down = Node {
                    lower: node.lower.clone(),
                    upper: down_upper,
                    warm: Some(warm.clone()),
                };
                // Up branch: x ≥ floor + 1.
                let mut up_lower = node.lower;
                up_lower[i] = up_lower[i].max(floor + 1.0);
                let up = Node {
                    lower: up_lower,
                    upper: node.upper,
                    warm: Some(warm),
                };
                stack.push(down);
                stack.push(up);
            }
        }
    }

    // Map the incumbent back onto the original variable space and price
    // it with the original objective (presolve may have rewritten
    // coefficients and dropped constants).
    let best = incumbent.ok_or(SolveError::Infeasible)?;
    let values = pre.postsolve(&best.values);
    let objective = model
        .objective
        .iter()
        .zip(&values)
        .map(|(c, v)| c * v)
        .sum();
    Ok(Solution { objective, values })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    #[test]
    fn knapsack_needs_branching() {
        // max 8x1 + 11x2 + 6x3 + 4x4, 5x1+7x2+4x3+3x4 ≤ 14, xi ∈ {0,1}
        // LP optimum is fractional; ILP optimum is 21 (x1=0,x2=1,x3=1,x4=1).
        let mut m = Model::new(crate::model::Sense::Maximize);
        let xs: Vec<_> = (0..4)
            .map(|i| m.add_int_var(&format!("x{i}"), 0, Some(1)))
            .collect();
        m.add_le(
            &[(xs[0], 5.0), (xs[1], 7.0), (xs[2], 4.0), (xs[3], 3.0)],
            14.0,
        );
        m.set_objective(&[(xs[0], 8.0), (xs[1], 11.0), (xs[2], 6.0), (xs[3], 4.0)]);
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective.round() as i64, 21);
        assert_eq!(sol.int_value(xs[1]), 1);
        assert_eq!(sol.int_value(xs[2]), 1);
        assert_eq!(sol.int_value(xs[3]), 1);
    }

    #[test]
    fn integral_relaxation_skips_branching() {
        let mut m = Model::new(crate::model::Sense::Maximize);
        let x = m.add_int_var("x", 0, Some(7));
        m.set_objective(&[(x, 1.0)]);
        let sol = m.solve().unwrap();
        assert_eq!(sol.int_value(x), 7);
    }

    #[test]
    fn infeasible_integer_gap() {
        // 2x = 3 has a fractional LP solution but no integer one.
        let mut m = Model::new(crate::model::Sense::Maximize);
        let x = m.add_int_var("x", 0, Some(10));
        m.add_eq(&[(x, 2.0)], 3.0);
        m.set_objective(&[(x, 1.0)]);
        assert_eq!(m.solve(), Err(SolveError::Infeasible));
    }

    #[test]
    fn minimize_ilp() {
        // min x + y s.t. 3x + 2y ≥ 7, integer → (1,2) = 3.
        let mut m = Model::new(crate::model::Sense::Minimize);
        let x = m.add_int_var("x", 0, None);
        let y = m.add_int_var("y", 0, None);
        m.add_ge(&[(x, 3.0), (y, 2.0)], 7.0);
        m.set_objective(&[(x, 1.0), (y, 1.0)]);
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective.round() as i64, 3);
    }

    #[test]
    fn mixed_integer() {
        // y continuous, x integer: max x + y, x + y ≤ 3.5, x ≤ 2.2.
        let mut m = Model::new(crate::model::Sense::Maximize);
        let x = m.add_int_var("x", 0, None);
        let y = m.add_var("y", 0.0, None);
        m.add_le(&[(x, 1.0), (y, 1.0)], 3.5);
        m.add_le(&[(x, 1.0)], 2.2);
        m.set_objective(&[(x, 1.0), (y, 1.0)]);
        let sol = m.solve().unwrap();
        assert!((sol.objective - 3.5).abs() < 1e-6);
        assert_eq!(sol.int_value(x), 2);
    }

    #[test]
    fn presolve_shrinks_ipet_style_systems() {
        // entry is fixed at 1 and flow conservation chains propagate it:
        // presolve should eliminate structure before any pivot happens.
        let mut m = Model::new(crate::model::Sense::Maximize);
        let entry = m.add_int_var("entry", 1, Some(1));
        let t = m.add_int_var("t", 0, None);
        let e = m.add_int_var("e", 0, None);
        let b = m.add_int_var("b", 0, None);
        m.add_eq(&[(t, 1.0), (e, 1.0), (entry, -1.0)], 0.0);
        m.add_le(&[(b, 1.0), (t, -5.0)], 0.0);
        m.set_objective(&[(t, 3.0), (e, 1.0), (b, 2.0)]);
        let mut stats = LpStats::default();
        let sol = m.solve_with_stats(&mut stats).unwrap();
        assert_eq!(sol.objective.round() as i64, 13); // t=1, e=0, b=5
        assert_eq!(sol.int_value(entry), 1);
        assert!(
            stats.presolve_removed > 0,
            "the fixed entry variable alone must be presolved away"
        );
    }

    #[test]
    fn stats_accumulate_across_the_tree() {
        let mut m = Model::new(crate::model::Sense::Maximize);
        let xs: Vec<_> = (0..4)
            .map(|i| m.add_int_var(&format!("x{i}"), 0, Some(1)))
            .collect();
        m.add_le(
            &[(xs[0], 5.0), (xs[1], 7.0), (xs[2], 4.0), (xs[3], 3.0)],
            14.0,
        );
        m.set_objective(&[(xs[0], 8.0), (xs[1], 11.0), (xs[2], 6.0), (xs[3], 4.0)]);
        let mut stats = LpStats::default();
        let sol = m.solve_with_stats(&mut stats).unwrap();
        assert_eq!(sol.objective.round() as i64, 21);
        assert!(stats.pivots > 0, "branching knapsack must pivot");
    }
}
