//! Depth-first branch-and-bound on top of the simplex.
//!
//! IPET relaxations are usually integral already (the constraint matrices
//! are network-like), so branch-and-bound rarely branches — but it must
//! exist for the flow-fact constraints that break total unimodularity
//! (mutual exclusions, relative capacity constraints).

use crate::model::{Model, Sense, Solution, SolveError};
use crate::sparse::BasisSnapshot;

const INT_TOL: f64 = 1e-6;

/// Solves a mixed-integer program by LP-based branch-and-bound.
///
/// # Errors
///
/// [`SolveError::Infeasible`] if no integral solution exists,
/// [`SolveError::Unbounded`] if the relaxation is unbounded,
/// [`SolveError::IterationLimit`] past `model.max_nodes` nodes.
pub fn solve_ilp(model: &Model) -> Result<Solution, SolveError> {
    // Each stack entry is a set of tightened bounds overlaying the model,
    // plus the parent relaxation's basis. A child differs from its parent
    // by exactly one variable bound, so the parent's optimal basis is the
    // canonical warm start: `solve_lp_from` reuses it when it stays
    // primal-feasible under the tightened bound and falls back to a cold
    // two-phase start otherwise. Search order, pruning, and the incumbent
    // are untouched — the tree is identical, only node solves get cheaper.
    #[derive(Clone)]
    struct Node {
        lower: Vec<f64>,
        upper: Vec<Option<f64>>,
        warm: Option<BasisSnapshot>,
    }

    let root = Node {
        lower: model.vars.iter().map(|v| v.lower).collect(),
        upper: model.vars.iter().map(|v| v.upper).collect(),
        warm: None,
    };

    let mut stack = vec![root];
    let mut incumbent: Option<Solution> = None;
    let mut nodes = 0usize;

    let better = |candidate: f64, best: f64| match model.sense {
        Sense::Maximize => candidate > best + INT_TOL,
        Sense::Minimize => candidate < best - INT_TOL,
    };

    while let Some(node) = stack.pop() {
        nodes += 1;
        if nodes > model.max_nodes {
            return Err(SolveError::IterationLimit);
        }

        // Solve the relaxation with the node's bounds.
        let mut relaxed = model.clone();
        for (i, v) in relaxed.vars.iter_mut().enumerate() {
            v.lower = node.lower[i];
            v.upper = node.upper[i];
            if v.upper.is_some_and(|u| u < v.lower - INT_TOL) {
                // Empty box.
                v.upper = Some(v.lower - 1.0); // force infeasibility below
            }
        }
        if relaxed
            .vars
            .iter()
            .any(|v| v.upper.is_some_and(|u| u < v.lower))
        {
            continue;
        }
        let (sol, basis) = match crate::sparse::solve_lp_from(&relaxed, node.warm.as_ref()) {
            Ok(s) => s,
            Err(SolveError::Infeasible) => continue,
            Err(e) => return Err(e),
        };

        // Bound: prune if the relaxation cannot beat the incumbent.
        if let Some(best) = &incumbent {
            if !better(sol.objective, best.objective) {
                continue;
            }
        }

        // Find the most fractional integer variable.
        let mut branch_var = None;
        let mut worst_frac = INT_TOL;
        for (i, v) in model.vars.iter().enumerate() {
            if !v.integer {
                continue;
            }
            let x = sol.values[i];
            let frac = (x - x.round()).abs();
            if frac > worst_frac {
                worst_frac = frac;
                branch_var = Some(i);
            }
        }

        match branch_var {
            None => {
                // Integral: candidate solution.
                let is_better = incumbent
                    .as_ref()
                    .is_none_or(|best| better(sol.objective, best.objective));
                if is_better {
                    incumbent = Some(sol);
                }
            }
            Some(i) => {
                let x = sol.values[i];
                let floor = x.floor();
                // Down branch: x ≤ floor.
                let mut down = node.clone();
                let new_up = match down.upper[i] {
                    Some(u) => u.min(floor),
                    None => floor,
                };
                down.upper[i] = Some(new_up);
                down.warm = Some(basis.clone());
                // Up branch: x ≥ floor + 1.
                let mut up = node;
                up.lower[i] = up.lower[i].max(floor + 1.0);
                up.warm = Some(basis);
                stack.push(down);
                stack.push(up);
            }
        }
    }

    incumbent.ok_or(SolveError::Infeasible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    #[test]
    fn knapsack_needs_branching() {
        // max 8x1 + 11x2 + 6x3 + 4x4, 5x1+7x2+4x3+3x4 ≤ 14, xi ∈ {0,1}
        // LP optimum is fractional; ILP optimum is 21 (x1=0,x2=1,x3=1,x4=1).
        let mut m = Model::new(crate::model::Sense::Maximize);
        let xs: Vec<_> = (0..4)
            .map(|i| m.add_int_var(&format!("x{i}"), 0, Some(1)))
            .collect();
        m.add_le(
            &[(xs[0], 5.0), (xs[1], 7.0), (xs[2], 4.0), (xs[3], 3.0)],
            14.0,
        );
        m.set_objective(&[(xs[0], 8.0), (xs[1], 11.0), (xs[2], 6.0), (xs[3], 4.0)]);
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective.round() as i64, 21);
        assert_eq!(sol.int_value(xs[1]), 1);
        assert_eq!(sol.int_value(xs[2]), 1);
        assert_eq!(sol.int_value(xs[3]), 1);
    }

    #[test]
    fn integral_relaxation_skips_branching() {
        let mut m = Model::new(crate::model::Sense::Maximize);
        let x = m.add_int_var("x", 0, Some(7));
        m.set_objective(&[(x, 1.0)]);
        let sol = m.solve().unwrap();
        assert_eq!(sol.int_value(x), 7);
    }

    #[test]
    fn infeasible_integer_gap() {
        // 2x = 3 has a fractional LP solution but no integer one.
        let mut m = Model::new(crate::model::Sense::Maximize);
        let x = m.add_int_var("x", 0, Some(10));
        m.add_eq(&[(x, 2.0)], 3.0);
        m.set_objective(&[(x, 1.0)]);
        assert_eq!(m.solve(), Err(SolveError::Infeasible));
    }

    #[test]
    fn minimize_ilp() {
        // min x + y s.t. 3x + 2y ≥ 7, integer → (1,2) = 3.
        let mut m = Model::new(crate::model::Sense::Minimize);
        let x = m.add_int_var("x", 0, None);
        let y = m.add_int_var("y", 0, None);
        m.add_ge(&[(x, 3.0), (y, 2.0)], 7.0);
        m.set_objective(&[(x, 1.0), (y, 1.0)]);
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective.round() as i64, 3);
    }

    #[test]
    fn mixed_integer() {
        // y continuous, x integer: max x + y, x + y ≤ 3.5, x ≤ 2.2.
        let mut m = Model::new(crate::model::Sense::Maximize);
        let x = m.add_int_var("x", 0, None);
        let y = m.add_var("y", 0.0, None);
        m.add_le(&[(x, 1.0), (y, 1.0)], 3.5);
        m.add_le(&[(x, 1.0)], 2.2);
        m.set_objective(&[(x, 1.0), (y, 1.0)]);
        let sol = m.solve().unwrap();
        assert!((sol.objective - 3.5).abs() < 1e-6);
        assert_eq!(sol.int_value(x), 2);
    }
}
