//! Structural invariants of the graph analyses, property-tested over
//! randomly generated (but well-formed) control-flow graphs:
//!
//! * dominator facts hold by brute-force path checking,
//! * every back edge lands in a loop that contains its source,
//! * loop nesting is consistent (child ⊆ parent, depths increase),
//! * peeling preserves the address multiset and the reachable terminators.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wcet_cfg::block::BlockId;
use wcet_cfg::dom::Dominators;
use wcet_cfg::graph::{reconstruct, Cfg, TargetResolver};
use wcet_cfg::loops::LoopForest;
use wcet_isa::builder::ProgramBuilder;
use wcet_isa::{AluOp, Cond, Image, Reg};

/// Builds a random structured program (sequences, diamonds, loops —
/// always reducible) whose CFG shape varies with the seed.
fn random_structured(seed: u64) -> Image {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new(0x1000);
    let mut n = 0usize;
    let mut fresh = |s: &str| {
        n += 1;
        format!("{s}{n}")
    };
    b.label("main");
    let depth = rng.gen_range(1..4usize);
    emit(&mut b, &mut rng, &mut fresh, depth);
    b.halt();
    b.build("main").expect("links")
}

fn emit(
    b: &mut ProgramBuilder,
    rng: &mut StdRng,
    fresh: &mut impl FnMut(&str) -> String,
    depth: usize,
) {
    for _ in 0..rng.gen_range(1..4usize) {
        match rng.gen_range(0..3u32) {
            0 => {
                b.alui(AluOp::Add, Reg::new(1), Reg::new(1), 1);
            }
            1 => {
                // Diamond.
                let (t, j) = (fresh("t"), fresh("j"));
                b.branch(Cond::Eq, Reg::new(10), Reg::ZERO, &t);
                b.alui(AluOp::Add, Reg::new(2), Reg::new(2), 1);
                b.jump(&j);
                b.label(&t);
                if depth > 0 {
                    emit(b, rng, fresh, depth - 1);
                } else {
                    b.nop();
                }
                b.label(&j);
                b.nop();
            }
            _ => {
                // Counter loop, possibly with nested structure.
                let head = fresh("h");
                b.li(Reg::new(8), rng.gen_range(1..6));
                b.label(&head);
                if depth > 0 && rng.gen_bool(0.5) {
                    emit(b, rng, fresh, depth - 1);
                } else {
                    b.alui(AluOp::Add, Reg::new(3), Reg::new(3), 1);
                }
                b.alui(AluOp::Sub, Reg::new(8), Reg::new(8), 1);
                b.branch(Cond::Ne, Reg::new(8), Reg::ZERO, &head);
            }
        }
    }
}

/// Brute-force dominance: does every entry→`b` path pass through `a`?
fn dominates_brute(cfg: &Cfg, a: BlockId, b: BlockId) -> bool {
    if a == b {
        return true;
    }
    // b unreachable when a is removed ⇒ a dominates b.
    let mut visited = vec![false; cfg.block_count()];
    let mut stack = vec![cfg.entry_block()];
    while let Some(x) = stack.pop() {
        if x == a || visited[x.0] {
            continue;
        }
        visited[x.0] = true;
        for &s in &cfg.succs[x.0] {
            stack.push(s);
        }
    }
    !visited[b.0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_dominators_match_brute_force(seed in 0u64..5000) {
        let image = random_structured(seed);
        let p = reconstruct(&image, &TargetResolver::empty()).expect("builds");
        let cfg = p.entry_cfg();
        let dom = Dominators::compute(cfg);
        for (a, _) in cfg.iter() {
            for (b, _) in cfg.iter() {
                prop_assert_eq!(
                    dom.dominates(a, b),
                    dominates_brute(cfg, a, b),
                    "dominance({}, {}) disagrees (seed {})",
                    a,
                    b,
                    seed
                );
            }
        }
    }

    #[test]
    fn prop_loop_forest_invariants(seed in 0u64..5000) {
        let image = random_structured(seed);
        let p = reconstruct(&image, &TargetResolver::empty()).expect("builds");
        let cfg = p.entry_cfg();
        let dom = Dominators::compute(cfg);
        let forest = LoopForest::compute(cfg, &dom);

        // 1. Structured generation only produces reducible loops.
        for l in forest.loops() {
            prop_assert!(!l.irreducible, "seed {seed}: spurious irreducible loop");
            // 2. The header dominates every loop block.
            for &blk in l.blocks.iter() {
                prop_assert!(dom.dominates(l.header, blk));
            }
            // 3. Back edges start inside and end at the header.
            for &(src, dst) in &l.back_edges {
                prop_assert!(l.blocks.contains(&src));
                prop_assert_eq!(dst, l.header);
            }
            // 4. Nesting consistency.
            if let Some(parent) = l.parent {
                let pinfo = forest.info(parent);
                prop_assert!(l.blocks.is_subset(&pinfo.blocks));
                prop_assert_eq!(l.depth, pinfo.depth + 1);
            }
        }

        // 5. Every CFG back edge (target dominates source) belongs to a loop.
        for (u, v) in cfg.edges() {
            if dom.dominates(v, u) {
                let in_some_loop = forest
                    .loops()
                    .iter()
                    .any(|l| l.header == v && l.blocks.contains(&u));
                prop_assert!(in_some_loop, "back edge {} -> {} missed (seed {})", u, v, seed);
            }
        }
    }

    #[test]
    fn prop_peel_preserves_structure(seed in 0u64..5000) {
        let image = random_structured(seed);
        let p = reconstruct(&image, &TargetResolver::empty()).expect("builds");
        let cfg = p.entry_cfg();
        let dom = Dominators::compute(cfg);
        let forest = LoopForest::compute(cfg, &dom);
        let (peeled, skipped) = wcet_cfg::unroll::peel_all(cfg, &forest);
        prop_assert!(skipped.is_empty(), "structured programs are reducible");

        // Block count grows by exactly the peeled loops' sizes.
        let expected_extra: usize = forest
            .top_level()
            .iter()
            .map(|l| l.blocks.len())
            .sum();
        prop_assert_eq!(peeled.block_count(), cfg.block_count() + expected_extra);

        // The peeled CFG still reaches a halt from its entry.
        let rpo = peeled.reverse_postorder();
        prop_assert!(rpo.iter().any(|&b| matches!(
            peeled.block(b).term,
            wcet_cfg::block::Terminator::Halt
        )));

        // Every reachable block keeps a valid instruction sequence (start
        // address matches its first instruction).
        for &b in &rpo {
            let blk = peeled.block(b);
            if let Some((first, _)) = blk.insts.first() {
                prop_assert_eq!(*first, blk.start);
            }
        }
    }
}
