//! Error type for control-flow reconstruction.

use std::fmt;

use wcet_isa::{Addr, IsaError};

/// Errors produced while reconstructing control flow from a binary.
#[derive(Debug, Clone, PartialEq)]
pub enum CfgError {
    /// The underlying binary failed to decode.
    Decode(IsaError),
    /// Control flow leaves the code segment (e.g. a branch into data).
    FlowLeavesCode {
        /// The instruction transferring control.
        from: Addr,
        /// The out-of-code target.
        to: Addr,
    },
    /// A function entry address holds no instruction.
    BadEntry {
        /// The bad entry address.
        entry: Addr,
    },
    /// A resolver-supplied indirect target is not a valid instruction
    /// address.
    BadResolvedTarget {
        /// The indirect instruction.
        at: Addr,
        /// The invalid target.
        target: Addr,
    },
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::Decode(e) => write!(f, "decode failure during reconstruction: {e}"),
            CfgError::FlowLeavesCode { from, to } => {
                write!(
                    f,
                    "control flow from {from} leaves the code segment (target {to})"
                )
            }
            CfgError::BadEntry { entry } => {
                write!(f, "function entry {entry} holds no instruction")
            }
            CfgError::BadResolvedTarget { at, target } => {
                write!(
                    f,
                    "resolved indirect target {target} at {at} is not a code address"
                )
            }
        }
    }
}

impl std::error::Error for CfgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CfgError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for CfgError {
    fn from(e: IsaError) -> Self {
        CfgError::Decode(e)
    }
}
