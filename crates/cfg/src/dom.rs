//! Dominator trees via the iterative Cooper–Harvey–Kennedy algorithm.
//!
//! Dominance is the backbone of natural-loop detection: a back edge is an
//! edge whose target dominates its source, and a loop whose header does
//! *not* dominate some in-edge source is irreducible — the structure the
//! paper's rule 14.4 discussion identifies as fatal for automatic loop
//! bounding.

use crate::block::BlockId;
use crate::graph::Cfg;

/// The dominator tree of one function's CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dominators {
    /// Immediate dominator of each block (`idom[entry] == entry`);
    /// `None` for blocks unreachable from the entry.
    idom: Vec<Option<BlockId>>,
    /// Reverse postorder number of each block (entry = 0).
    rpo_number: Vec<usize>,
}

impl Dominators {
    /// Computes dominators for `cfg`.
    ///
    /// # Example
    ///
    /// ```
    /// use wcet_isa::asm::assemble;
    /// use wcet_cfg::graph::{reconstruct, TargetResolver};
    /// use wcet_cfg::dom::Dominators;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let image = assemble("main: beq r1, r0, a\n nop\na: halt")?;
    /// let p = reconstruct(&image, &TargetResolver::empty())?;
    /// let cfg = p.entry_cfg();
    /// let dom = Dominators::compute(cfg);
    /// // The entry dominates every block.
    /// for (id, _) in cfg.iter() {
    ///     assert!(dom.dominates(cfg.entry_block(), id));
    /// }
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn compute(cfg: &Cfg) -> Dominators {
        let n = cfg.block_count();
        let rpo = cfg.reverse_postorder();
        let mut rpo_number = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_number[b.0] = i;
        }

        let entry = cfg.entry_block();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.0] = Some(entry);

        let intersect = |idom: &[Option<BlockId>], rpo_number: &[usize], a: BlockId, b: BlockId| {
            let mut x = a;
            let mut y = b;
            while x != y {
                while rpo_number[x.0] > rpo_number[y.0] {
                    x = idom[x.0].expect("processed block has idom");
                }
                while rpo_number[y.0] > rpo_number[x.0] {
                    y = idom[y.0].expect("processed block has idom");
                }
            }
            x
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // First processed predecessor.
                let mut new_idom: Option<BlockId> = None;
                for &p in &cfg.preds[b.0] {
                    if idom[p.0].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_number, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.0] != Some(ni) {
                        idom[b.0] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        Dominators { idom, rpo_number }
    }

    /// The immediate dominator of `b` (`None` for the entry itself or
    /// unreachable blocks).
    #[must_use]
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        match self.idom[b.0] {
            Some(d) if d != b => Some(d),
            _ => None,
        }
    }

    /// Returns true if `a` dominates `b` (reflexive: every block dominates
    /// itself).
    #[must_use]
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.0] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Returns true if `b` is reachable from the entry.
    #[must_use]
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom[b.0].is_some()
    }

    /// Reverse postorder number of `b` (entry = 0).
    #[must_use]
    pub fn rpo_number(&self, b: BlockId) -> usize {
        self.rpo_number[b.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{reconstruct, TargetResolver};
    use wcet_isa::asm::assemble;

    fn dom_of(src: &str) -> (crate::graph::Program, Dominators) {
        let p = reconstruct(&assemble(src).unwrap(), &TargetResolver::empty()).unwrap();
        let d = Dominators::compute(p.entry_cfg());
        (p, d)
    }

    #[test]
    fn diamond_dominators() {
        let (p, dom) =
            dom_of("main: beq r1, r0, then\n li r2, 1\n j join\nthen: li r2, 2\njoin: halt");
        let cfg = p.entry_cfg();
        let entry = cfg.entry_block();
        let join = cfg
            .iter()
            .find(|(_, b)| matches!(b.term, crate::block::Terminator::Halt))
            .unwrap()
            .0;
        // Join's immediate dominator is the entry (neither arm dominates it).
        assert_eq!(dom.idom(join), Some(entry));
        assert!(dom.dominates(entry, join));
        assert!(!dom.dominates(join, entry));
    }

    #[test]
    fn loop_header_dominates_body() {
        let (p, dom) =
            dom_of("main: li r1, 4\nhead: beq r1, r0, done\n subi r1, r1, 1\n j head\ndone: halt");
        let cfg = p.entry_cfg();
        let head = cfg.block_at(p.entry.offset(4)).unwrap();
        let body = cfg.block_at(p.entry.offset(8)).unwrap();
        assert!(dom.dominates(head, body));
        assert_eq!(dom.idom(body), Some(head));
    }

    #[test]
    fn entry_has_no_idom() {
        let (p, dom) = dom_of("main: halt");
        assert_eq!(dom.idom(p.entry_cfg().entry_block()), None);
        assert!(dom.is_reachable(p.entry_cfg().entry_block()));
    }

    #[test]
    fn dominance_is_transitive_on_chain() {
        let (p, dom) =
            dom_of("main: nop\n beq r1, r0, a\n nop\na: nop\n beq r2, r0, b\n nop\nb: halt");
        let cfg = p.entry_cfg();
        let rpo = cfg.reverse_postorder();
        // Entry dominates everything reachable.
        for &b in &rpo {
            assert!(dom.dominates(cfg.entry_block(), b));
        }
    }
}
