//! The call graph: recursion detection and bottom-up analysis order.
//!
//! MISRA-C:2004 rule 16.2 forbids direct and indirect recursion; the paper
//! explains why: recursion creates cycles in the call graph, which — like
//! irreducible loops — cannot be bounded automatically and poison the
//! bottom-up WCET computation. [`CallGraph::recursive_functions`] is the
//! binary-level check behind that rule, and
//! [`CallGraph::bottom_up_order`] is the schedule used by the
//! interprocedural path analysis (callees before callers).

use std::collections::{BTreeMap, BTreeSet};

use wcet_isa::Addr;

use crate::graph::Program;

/// The program call graph over function entry addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallGraph {
    /// Caller entry → set of callee entries.
    callees: BTreeMap<Addr, BTreeSet<Addr>>,
    /// Callee entry → set of caller entries.
    callers: BTreeMap<Addr, BTreeSet<Addr>>,
    /// Call sites: `(site address, caller entry, callee entry)`.
    sites: Vec<(Addr, Addr, Addr)>,
    /// Functions participating in a call-graph cycle.
    recursive: BTreeSet<Addr>,
    /// Functions in bottom-up (callee-first) order; recursive SCCs appear
    /// as arbitrary-order groups.
    bottom_up: Vec<Addr>,
    /// Strongly connected components, callee-first.
    sccs: Vec<Vec<Addr>>,
}

impl CallGraph {
    /// Builds the call graph of a reconstructed program.
    ///
    /// # Example
    ///
    /// ```
    /// use wcet_isa::asm::assemble;
    /// use wcet_cfg::graph::{reconstruct, TargetResolver};
    /// use wcet_cfg::callgraph::CallGraph;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let image = assemble("main: call f\n halt\nf: call f\n ret")?;
    /// let p = reconstruct(&image, &TargetResolver::empty())?;
    /// let cg = CallGraph::build(&p);
    /// assert_eq!(cg.recursive_functions().len(), 1); // f calls itself
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn build(program: &Program) -> CallGraph {
        let mut callees: BTreeMap<Addr, BTreeSet<Addr>> = BTreeMap::new();
        let mut callers: BTreeMap<Addr, BTreeSet<Addr>> = BTreeMap::new();
        let mut sites = Vec::new();
        for (&fun, cfg) in &program.functions {
            callees.entry(fun).or_default();
            for (site, targets) in cfg.call_sites() {
                for callee in targets {
                    callees.entry(fun).or_default().insert(callee);
                    callers.entry(callee).or_default().insert(fun);
                    sites.push((site, fun, callee));
                }
            }
        }

        let (recursive, bottom_up, sccs) = scc_analysis(&callees);

        CallGraph {
            callees,
            callers,
            sites,
            recursive,
            bottom_up,
            sccs,
        }
    }

    /// Direct callees of `fun`.
    #[must_use]
    pub fn callees_of(&self, fun: Addr) -> Vec<Addr> {
        self.callees
            .get(&fun)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Direct callers of `fun`.
    #[must_use]
    pub fn callers_of(&self, fun: Addr) -> Vec<Addr> {
        self.callers
            .get(&fun)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// All call sites as `(site address, caller, callee)`.
    #[must_use]
    pub fn sites(&self) -> &[(Addr, Addr, Addr)] {
        &self.sites
    }

    /// Functions involved in direct or indirect recursion.
    #[must_use]
    pub fn recursive_functions(&self) -> Vec<Addr> {
        self.recursive.iter().copied().collect()
    }

    /// Returns true if `fun` participates in a call-graph cycle.
    #[must_use]
    pub fn is_recursive(&self, fun: Addr) -> bool {
        self.recursive.contains(&fun)
    }

    /// Returns true if the program has any recursion at all.
    #[must_use]
    pub fn has_recursion(&self) -> bool {
        !self.recursive.is_empty()
    }

    /// Functions in callee-before-caller order — the schedule for
    /// bottom-up interprocedural WCET computation.
    #[must_use]
    pub fn bottom_up_order(&self) -> &[Addr] {
        &self.bottom_up
    }

    /// The members of `fun`'s call-graph cycle (including `fun`), or just
    /// `[fun]` when it is not recursive.
    #[must_use]
    pub fn scc_members(&self, fun: Addr) -> Vec<Addr> {
        self.sccs
            .iter()
            .find(|c| c.contains(&fun))
            .cloned()
            .unwrap_or_else(|| vec![fun])
    }

    /// The reverse-dependency closure of `seeds`: every function that can
    /// (transitively) reach a seed through call edges, *including* the
    /// seeds themselves. This is the dirtiness propagation primitive of
    /// the incremental re-analysis engine: when a function's content
    /// changes, exactly this set of WCET results may change — a caller's
    /// bound embeds its callees' bounds, so invalidation flows
    /// callee-to-caller, never sideways.
    #[must_use]
    pub fn transitive_callers(&self, seeds: &BTreeSet<Addr>) -> BTreeSet<Addr> {
        let mut dirty: BTreeSet<Addr> = seeds.clone();
        let mut work: Vec<Addr> = seeds.iter().copied().collect();
        while let Some(f) = work.pop() {
            for caller in self.callers.get(&f).into_iter().flatten() {
                if dirty.insert(*caller) {
                    work.push(*caller);
                }
            }
        }
        dirty
    }

    /// The bottom-up *wavefront*: SCC groups partitioned into levels such
    /// that every callee outside a group lies in an earlier level. Groups
    /// within one level share no call edges, so their analyses are
    /// independent — the schedule for the parallel per-function phases.
    ///
    /// Determinism: concatenating the levels (and the groups within each
    /// level, in order) yields a fixed callee-before-caller order; members
    /// of a group appear in the same relative order as in
    /// [`Self::bottom_up_order`].
    #[must_use]
    pub fn bottom_up_levels(&self) -> Vec<Vec<Vec<Addr>>> {
        let mut scc_of: BTreeMap<Addr, usize> = BTreeMap::new();
        for (k, comp) in self.sccs.iter().enumerate() {
            for &f in comp {
                scc_of.insert(f, k);
            }
        }
        // Tarjan emits SCCs callee-first, so every callee group's level is
        // final by the time its callers are leveled.
        let mut level = vec![0usize; self.sccs.len()];
        for (k, comp) in self.sccs.iter().enumerate() {
            let mut lvl = 0;
            for f in comp {
                for callee in self.callees.get(f).into_iter().flatten() {
                    let ck = scc_of[callee];
                    if ck != k {
                        lvl = lvl.max(level[ck] + 1);
                    }
                }
            }
            level[k] = lvl;
        }
        let depth = level.iter().map(|&l| l + 1).max().unwrap_or(0);
        let mut levels = vec![Vec::new(); depth];
        for (k, comp) in self.sccs.iter().enumerate() {
            levels[level[k]].push(comp.clone());
        }
        levels
    }
}

/// Tarjan SCC over the call graph; returns (recursive set, bottom-up
/// order, SCC partition).
fn scc_analysis(
    callees: &BTreeMap<Addr, BTreeSet<Addr>>,
) -> (BTreeSet<Addr>, Vec<Addr>, Vec<Vec<Addr>>) {
    struct State<'a> {
        graph: &'a BTreeMap<Addr, BTreeSet<Addr>>,
        index: usize,
        indices: BTreeMap<Addr, usize>,
        lowlink: BTreeMap<Addr, usize>,
        on_stack: BTreeSet<Addr>,
        stack: Vec<Addr>,
        comps: Vec<Vec<Addr>>,
    }

    fn connect(s: &mut State<'_>, v: Addr) {
        s.indices.insert(v, s.index);
        s.lowlink.insert(v, s.index);
        s.index += 1;
        s.stack.push(v);
        s.on_stack.insert(v);
        let succs: Vec<Addr> = s
            .graph
            .get(&v)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default();
        for w in succs {
            if !s.indices.contains_key(&w) {
                connect(s, w);
                let low = s.lowlink[&v].min(s.lowlink[&w]);
                s.lowlink.insert(v, low);
            } else if s.on_stack.contains(&w) {
                let low = s.lowlink[&v].min(s.indices[&w]);
                s.lowlink.insert(v, low);
            }
        }
        if s.lowlink[&v] == s.indices[&v] {
            let mut comp = Vec::new();
            loop {
                let w = s.stack.pop().expect("nonempty");
                s.on_stack.remove(&w);
                comp.push(w);
                if w == v {
                    break;
                }
            }
            s.comps.push(comp);
        }
    }

    let mut state = State {
        graph: callees,
        index: 0,
        indices: BTreeMap::new(),
        lowlink: BTreeMap::new(),
        on_stack: BTreeSet::new(),
        stack: Vec::new(),
        comps: Vec::new(),
    };
    for &fun in callees.keys() {
        if !state.indices.contains_key(&fun) {
            connect(&mut state, fun);
        }
    }

    let mut recursive = BTreeSet::new();
    let mut bottom_up = Vec::new();
    // Tarjan emits SCCs in reverse topological order: callees first.
    for comp in &state.comps {
        let self_loop = comp.len() == 1
            && callees
                .get(&comp[0])
                .is_some_and(|s| s.contains(&comp[0]));
        if comp.len() > 1 || self_loop {
            recursive.extend(comp.iter().copied());
        }
        bottom_up.extend(comp.iter().copied());
    }
    let sccs = state.comps;
    (recursive, bottom_up, sccs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{reconstruct, TargetResolver};
    use wcet_isa::asm::assemble;

    fn cg(src: &str) -> (Program, CallGraph) {
        let p = reconstruct(&assemble(src).unwrap(), &TargetResolver::empty()).unwrap();
        let g = CallGraph::build(&p);
        (p, g)
    }

    #[test]
    fn acyclic_program_not_recursive() {
        let (p, g) = cg("main: call f\n call g\n halt\nf: ret\ng: call f\n ret");
        assert!(!g.has_recursion());
        // Bottom-up order puts every callee before its callers, so `main`
        // comes last and `f` (called by both others) comes before `g`.
        let order = g.bottom_up_order();
        assert_eq!(*order.last().unwrap(), p.entry, "main analyzed last");
        let f = p.functions.keys().copied().find(|&a| g.callees_of(a).is_empty()).unwrap();
        let g_fun = p
            .functions
            .keys()
            .copied()
            .find(|&a| a != p.entry && a != f)
            .unwrap();
        let pos_of = |x: Addr| order.iter().position(|&a| a == x).unwrap();
        assert!(pos_of(f) < pos_of(g_fun));
    }

    #[test]
    fn direct_recursion_detected() {
        let (_, g) = cg("main: call f\n halt\nf: call f\n ret");
        assert_eq!(g.recursive_functions().len(), 1);
    }

    #[test]
    fn indirect_recursion_detected() {
        let (p, g) = cg(
            "main: call f\n halt\nf: beq r1, r0, fdone\n call g\nfdone: ret\ng: call f\n ret",
        );
        assert_eq!(g.recursive_functions().len(), 2, "f and g form a cycle");
        assert!(!g.is_recursive(p.entry));
    }

    #[test]
    fn wavefront_levels_respect_call_edges() {
        // main → f, g; g → f. Levels: {f}, {g}, {main}.
        let (p, g) = cg("main: call f\n call g\n halt\nf: ret\ng: call f\n ret");
        let levels = g.bottom_up_levels();
        assert_eq!(levels.len(), 3);
        for level in &levels {
            assert_eq!(level.len(), 1, "chain graph: one group per level");
        }
        assert_eq!(levels[2][0], vec![p.entry]);
        // Every callee sits in a strictly earlier level than its caller.
        let level_of = |x: Addr| {
            levels
                .iter()
                .position(|lvl| lvl.iter().any(|grp| grp.contains(&x)))
                .unwrap()
        };
        for f in p.functions.keys() {
            for callee in g.callees_of(*f) {
                assert!(level_of(callee) < level_of(*f));
            }
        }
        // Flattened levels cover exactly the bottom-up order's functions.
        let flat: Vec<Addr> = levels.iter().flatten().flatten().copied().collect();
        let mut sorted = flat.clone();
        sorted.sort_unstable();
        let mut expected = g.bottom_up_order().to_vec();
        expected.sort_unstable();
        assert_eq!(sorted, expected);
    }

    #[test]
    fn independent_callees_share_a_level() {
        let (p, g) = cg("main: call f\n call g\n halt\nf: ret\ng: ret");
        let levels = g.bottom_up_levels();
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].len(), 2, "f and g are independent");
        assert_eq!(levels[1], vec![vec![p.entry]]);
    }

    #[test]
    fn recursive_cycle_stays_one_group() {
        let (p, g) = cg(
            "main: call f\n halt\nf: beq r1, r0, fdone\n call g\nfdone: ret\ng: call f\n ret",
        );
        let levels = g.bottom_up_levels();
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].len(), 1, "the f/g cycle is one group");
        assert_eq!(levels[0][0].len(), 2);
        assert_eq!(levels[1], vec![vec![p.entry]]);
    }

    #[test]
    fn transitive_callers_closure() {
        // main → g → f, main → h. Dirtying f reaches g and main but not h.
        let (p, g) = cg(
            "main: call g\n call h\n halt\nf: ret\ng: call f\n ret\nh: ret",
        );
        let f = p
            .functions
            .keys()
            .copied()
            .find(|&a| g.callees_of(a).is_empty() && !g.callers_of(a).is_empty()
                && g.callers_of(a) != vec![p.entry])
            .unwrap();
        let dirty = g.transitive_callers(&BTreeSet::from([f]));
        assert!(dirty.contains(&f), "seeds are included");
        assert!(dirty.contains(&p.entry), "root is reached through g");
        assert_eq!(dirty.len(), 3, "h is untouched: {dirty:?}");

        // The empty seed set stays empty; dirtying the root stays at the
        // root (nothing calls main).
        assert!(g.transitive_callers(&BTreeSet::new()).is_empty());
        assert_eq!(
            g.transitive_callers(&BTreeSet::from([p.entry])),
            BTreeSet::from([p.entry])
        );
    }

    #[test]
    fn transitive_callers_through_cycles() {
        // f ↔ g cycle called by main: dirtying f reaches g (cycle member)
        // and main.
        let (p, g) = cg(
            "main: call f\n halt\nf: beq r1, r0, fdone\n call g\nfdone: ret\ng: call f\n ret",
        );
        let f = g.recursive_functions()[0];
        let dirty = g.transitive_callers(&BTreeSet::from([f]));
        assert_eq!(dirty.len(), 3, "both cycle members and main: {dirty:?}");
        assert!(dirty.contains(&p.entry));
    }

    #[test]
    fn callers_and_callees() {
        let (p, g) = cg("main: call f\n halt\nf: ret");
        let f = p.functions.keys().copied().find(|&a| a != p.entry).unwrap();
        assert_eq!(g.callees_of(p.entry), vec![f]);
        assert_eq!(g.callers_of(f), vec![p.entry]);
        assert_eq!(g.sites().len(), 1);
    }
}
