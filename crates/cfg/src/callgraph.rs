//! The call graph: recursion detection and bottom-up analysis order.
//!
//! MISRA-C:2004 rule 16.2 forbids direct and indirect recursion; the paper
//! explains why: recursion creates cycles in the call graph, which — like
//! irreducible loops — cannot be bounded automatically and poison the
//! bottom-up WCET computation. [`CallGraph::recursive_functions`] is the
//! binary-level check behind that rule, and
//! [`CallGraph::bottom_up_order`] is the schedule used by the
//! interprocedural path analysis (callees before callers).

use std::collections::{BTreeMap, BTreeSet};

use wcet_isa::Addr;

use crate::graph::Program;

/// The program call graph over function entry addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallGraph {
    /// Caller entry → set of callee entries.
    callees: BTreeMap<Addr, BTreeSet<Addr>>,
    /// Callee entry → set of caller entries.
    callers: BTreeMap<Addr, BTreeSet<Addr>>,
    /// Call sites: `(site address, caller entry, callee entry)`.
    sites: Vec<(Addr, Addr, Addr)>,
    /// Functions participating in a call-graph cycle.
    recursive: BTreeSet<Addr>,
    /// Functions in bottom-up (callee-first) order; recursive SCCs appear
    /// as arbitrary-order groups.
    bottom_up: Vec<Addr>,
    /// Strongly connected components, callee-first.
    sccs: Vec<Vec<Addr>>,
}

impl CallGraph {
    /// Builds the call graph of a reconstructed program.
    ///
    /// # Example
    ///
    /// ```
    /// use wcet_isa::asm::assemble;
    /// use wcet_cfg::graph::{reconstruct, TargetResolver};
    /// use wcet_cfg::callgraph::CallGraph;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let image = assemble("main: call f\n halt\nf: call f\n ret")?;
    /// let p = reconstruct(&image, &TargetResolver::empty())?;
    /// let cg = CallGraph::build(&p);
    /// assert_eq!(cg.recursive_functions().len(), 1); // f calls itself
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn build(program: &Program) -> CallGraph {
        let mut callees: BTreeMap<Addr, BTreeSet<Addr>> = BTreeMap::new();
        let mut callers: BTreeMap<Addr, BTreeSet<Addr>> = BTreeMap::new();
        let mut sites = Vec::new();
        for (&fun, cfg) in &program.functions {
            callees.entry(fun).or_default();
            for (site, targets) in cfg.call_sites() {
                for callee in targets {
                    callees.entry(fun).or_default().insert(callee);
                    callers.entry(callee).or_default().insert(fun);
                    sites.push((site, fun, callee));
                }
            }
        }

        let (recursive, bottom_up, sccs) = scc_analysis(&callees);

        CallGraph {
            callees,
            callers,
            sites,
            recursive,
            bottom_up,
            sccs,
        }
    }

    /// Direct callees of `fun`.
    #[must_use]
    pub fn callees_of(&self, fun: Addr) -> Vec<Addr> {
        self.callees
            .get(&fun)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Direct callers of `fun`.
    #[must_use]
    pub fn callers_of(&self, fun: Addr) -> Vec<Addr> {
        self.callers
            .get(&fun)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// All call sites as `(site address, caller, callee)`.
    #[must_use]
    pub fn sites(&self) -> &[(Addr, Addr, Addr)] {
        &self.sites
    }

    /// Functions involved in direct or indirect recursion.
    #[must_use]
    pub fn recursive_functions(&self) -> Vec<Addr> {
        self.recursive.iter().copied().collect()
    }

    /// Returns true if `fun` participates in a call-graph cycle.
    #[must_use]
    pub fn is_recursive(&self, fun: Addr) -> bool {
        self.recursive.contains(&fun)
    }

    /// Returns true if the program has any recursion at all.
    #[must_use]
    pub fn has_recursion(&self) -> bool {
        !self.recursive.is_empty()
    }

    /// Functions in callee-before-caller order — the schedule for
    /// bottom-up interprocedural WCET computation.
    #[must_use]
    pub fn bottom_up_order(&self) -> &[Addr] {
        &self.bottom_up
    }

    /// The members of `fun`'s call-graph cycle (including `fun`), or just
    /// `[fun]` when it is not recursive.
    #[must_use]
    pub fn scc_members(&self, fun: Addr) -> Vec<Addr> {
        self.sccs
            .iter()
            .find(|c| c.contains(&fun))
            .cloned()
            .unwrap_or_else(|| vec![fun])
    }

    /// The reverse-dependency closure of `seeds`: every function that can
    /// (transitively) reach a seed through call edges, *including* the
    /// seeds themselves. This is the dirtiness propagation primitive of
    /// the incremental re-analysis engine: when a function's content
    /// changes, exactly this set of WCET results may change — a caller's
    /// bound embeds its callees' bounds, so invalidation flows
    /// callee-to-caller, never sideways.
    #[must_use]
    pub fn transitive_callers(&self, seeds: &BTreeSet<Addr>) -> BTreeSet<Addr> {
        let mut dirty: BTreeSet<Addr> = seeds.clone();
        let mut work: Vec<Addr> = seeds.iter().copied().collect();
        while let Some(f) = work.pop() {
            for caller in self.callers.get(&f).into_iter().flatten() {
                if dirty.insert(*caller) {
                    work.push(*caller);
                }
            }
        }
        dirty
    }

    /// The bottom-up *wavefront*: SCC groups partitioned into levels such
    /// that every callee outside a group lies in an earlier level. Groups
    /// within one level share no call edges, so their analyses are
    /// independent — the schedule for the parallel per-function phases.
    ///
    /// Determinism: concatenating the levels (and the groups within each
    /// level, in order) yields a fixed callee-before-caller order; members
    /// of a group appear in the same relative order as in
    /// [`Self::bottom_up_order`].
    #[must_use]
    pub fn bottom_up_levels(&self) -> Vec<Vec<Vec<Addr>>> {
        let mut scc_of: BTreeMap<Addr, usize> = BTreeMap::new();
        for (k, comp) in self.sccs.iter().enumerate() {
            for &f in comp {
                scc_of.insert(f, k);
            }
        }
        // Tarjan emits SCCs callee-first, so every callee group's level is
        // final by the time its callers are leveled.
        let mut level = vec![0usize; self.sccs.len()];
        for (k, comp) in self.sccs.iter().enumerate() {
            let mut lvl = 0;
            for f in comp {
                for callee in self.callees.get(f).into_iter().flatten() {
                    let ck = scc_of[callee];
                    if ck != k {
                        lvl = lvl.max(level[ck] + 1);
                    }
                }
            }
            level[k] = lvl;
        }
        let depth = level.iter().map(|&l| l + 1).max().unwrap_or(0);
        let mut levels = vec![Vec::new(); depth];
        for (k, comp) in self.sccs.iter().enumerate() {
            levels[level[k]].push(comp.clone());
        }
        levels
    }
}

// ---------------------------------------------------------------------
// Call-string contexts (VIVU-style context expansion)
// ---------------------------------------------------------------------

/// Identifier of one *(function, call string)* analysis context. Indexes
/// [`ContextTable::info`]. Ids are assigned in `(function, call string)`
/// order, so iteration over them is deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CtxId(pub usize);

impl std::fmt::Display for CtxId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ctx{}", self.0)
    }
}

/// One enumerated context: a function together with the (truncated) call
/// string under which it is analyzed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextInfo {
    /// The function this context belongs to.
    pub function: Addr,
    /// Call-site addresses, outermost first, most recent call last;
    /// length ≤ the enumeration depth. Empty for the task entry, for
    /// members of recursive SCCs (truncated to the merged behaviour),
    /// and for every function at depth 0.
    pub call_string: Vec<Addr>,
    /// Producing call edges `(caller context, call-site address)`, in
    /// sorted order. Empty for the entry function's root context and for
    /// fallback contexts of functions without a resolved call path.
    pub preds: Vec<(CtxId, Addr)>,
}

/// The enumerated *(function, call string)* contexts of a program: the
/// unit set of the context-sensitive pipeline. At depth 0 every function
/// has exactly one context with the empty string — the classic merged
/// analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextTable {
    depth: usize,
    contexts: Vec<ContextInfo>,
    by_function: BTreeMap<Addr, Vec<CtxId>>,
    /// `(caller context, site, callee)` → callee context.
    edges: BTreeMap<(CtxId, Addr, Addr), CtxId>,
}

impl ContextTable {
    /// The enumeration depth `k`.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total number of contexts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.contexts.len()
    }

    /// Returns true if no contexts were enumerated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.contexts.is_empty()
    }

    /// The context data for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn info(&self, id: CtxId) -> &ContextInfo {
        &self.contexts[id.0]
    }

    /// The contexts of one function, in id order. Every reconstructed
    /// function has at least one.
    #[must_use]
    pub fn ctxs_of(&self, fun: Addr) -> &[CtxId] {
        self.by_function
            .get(&fun)
            .map(Vec::as_slice)
            .unwrap_or_default()
    }

    /// The context a call from `caller_ctx` at `site` targets when it
    /// resolves to `callee`. `None` only for call edges that were not
    /// part of the enumeration (e.g. an unreachable caller context).
    #[must_use]
    pub fn callee_ctx(&self, caller_ctx: CtxId, site: Addr, callee: Addr) -> Option<CtxId> {
        self.edges.get(&(caller_ctx, site, callee)).copied()
    }

    /// Iterates over all `(id, info)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (CtxId, &ContextInfo)> {
        self.contexts.iter().enumerate().map(|(i, c)| (CtxId(i), c))
    }
}

impl CallGraph {
    /// Enumerates the *(function, call-string)* contexts reachable from
    /// `entry`, with call strings truncated to the last `depth` sites —
    /// the virtual-inlining unit set (reference \[13\]'s VIVU scheme,
    /// restricted to call contexts; loop contexts stay with the virtual
    /// unroller).
    ///
    /// Truncation rules:
    ///
    /// * `depth == 0` — every function keeps the empty string: exactly
    ///   today's merged per-function analysis.
    /// * recursive functions (members of call-graph cycles) are truncated
    ///   to the empty string — the existing SCC-merged behaviour — so the
    ///   enumeration terminates without annotations.
    /// * otherwise a call from `(caller, s)` at `site` reaches
    ///   `(callee, last_k(s · site))`.
    ///
    /// `functions` is the full reconstructed function set; any member
    /// without a resolved call path from `entry` (e.g. reached only
    /// through unresolved indirections) receives a fallback empty-string
    /// context with no producers, so the pipeline still analyzes it
    /// (conservatively, from the ⊤ entry state).
    #[must_use]
    pub fn enumerate_contexts<'a>(
        &self,
        functions: impl IntoIterator<Item = &'a Addr>,
        entry: Addr,
        depth: usize,
    ) -> ContextTable {
        type Key = (Addr, Vec<Addr>);
        // Call sites grouped by caller for the walk below.
        let mut sites_of: BTreeMap<Addr, Vec<(Addr, Addr)>> = BTreeMap::new();
        for &(site, caller, callee) in &self.sites {
            sites_of.entry(caller).or_default().push((site, callee));
        }

        let mut preds: BTreeMap<Key, BTreeSet<(Key, Addr)>> = BTreeMap::new();
        let root: Key = (entry, Vec::new());
        preds.insert(root.clone(), BTreeSet::new());
        let mut work: Vec<Key> = vec![root];
        while let Some(key) = work.pop() {
            let (fun, string) = &key;
            for (site, callee) in sites_of.get(fun).into_iter().flatten() {
                let child_string = if depth == 0 || self.is_recursive(*callee) {
                    Vec::new()
                } else {
                    let mut s = string.clone();
                    s.push(*site);
                    if s.len() > depth {
                        s.drain(..s.len() - depth);
                    }
                    s
                };
                let child: Key = (*callee, child_string);
                let entry = preds.entry(child.clone()).or_insert_with(|| {
                    work.push(child.clone());
                    BTreeSet::new()
                });
                entry.insert((key.clone(), *site));
            }
        }
        // Fallback contexts for functions without a resolved call path.
        let covered: BTreeSet<Addr> = preds.keys().map(|(f, _)| *f).collect();
        for &fun in functions {
            if !covered.contains(&fun) {
                preds.insert((fun, Vec::new()), BTreeSet::new());
            }
        }

        // Ids in sorted (function, string) order — `preds` is a BTreeMap,
        // so its iteration order *is* that order.
        let ids: BTreeMap<Key, CtxId> = preds
            .keys()
            .enumerate()
            .map(|(i, k)| (k.clone(), CtxId(i)))
            .collect();
        let mut contexts = Vec::with_capacity(preds.len());
        let mut by_function: BTreeMap<Addr, Vec<CtxId>> = BTreeMap::new();
        let mut edges: BTreeMap<(CtxId, Addr, Addr), CtxId> = BTreeMap::new();
        for ((fun, string), pred_keys) in &preds {
            let id = ids[&(*fun, string.clone())];
            let pred_ids: Vec<(CtxId, Addr)> = pred_keys
                .iter()
                .map(|(pk, site)| (ids[pk], *site))
                .collect();
            for &(caller, site) in &pred_ids {
                edges.insert((caller, site, *fun), id);
            }
            by_function.entry(*fun).or_default().push(id);
            contexts.push(ContextInfo {
                function: *fun,
                call_string: string.clone(),
                preds: pred_ids,
            });
        }
        ContextTable {
            depth,
            contexts,
            by_function,
            edges,
        }
    }
}

/// Tarjan SCC over the call graph; returns (recursive set, bottom-up
/// order, SCC partition).
fn scc_analysis(
    callees: &BTreeMap<Addr, BTreeSet<Addr>>,
) -> (BTreeSet<Addr>, Vec<Addr>, Vec<Vec<Addr>>) {
    struct State<'a> {
        graph: &'a BTreeMap<Addr, BTreeSet<Addr>>,
        index: usize,
        indices: BTreeMap<Addr, usize>,
        lowlink: BTreeMap<Addr, usize>,
        on_stack: BTreeSet<Addr>,
        stack: Vec<Addr>,
        comps: Vec<Vec<Addr>>,
    }

    fn connect(s: &mut State<'_>, v: Addr) {
        s.indices.insert(v, s.index);
        s.lowlink.insert(v, s.index);
        s.index += 1;
        s.stack.push(v);
        s.on_stack.insert(v);
        let succs: Vec<Addr> = s
            .graph
            .get(&v)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default();
        for w in succs {
            if !s.indices.contains_key(&w) {
                connect(s, w);
                let low = s.lowlink[&v].min(s.lowlink[&w]);
                s.lowlink.insert(v, low);
            } else if s.on_stack.contains(&w) {
                let low = s.lowlink[&v].min(s.indices[&w]);
                s.lowlink.insert(v, low);
            }
        }
        if s.lowlink[&v] == s.indices[&v] {
            let mut comp = Vec::new();
            loop {
                let w = s.stack.pop().expect("nonempty");
                s.on_stack.remove(&w);
                comp.push(w);
                if w == v {
                    break;
                }
            }
            s.comps.push(comp);
        }
    }

    let mut state = State {
        graph: callees,
        index: 0,
        indices: BTreeMap::new(),
        lowlink: BTreeMap::new(),
        on_stack: BTreeSet::new(),
        stack: Vec::new(),
        comps: Vec::new(),
    };
    for &fun in callees.keys() {
        if !state.indices.contains_key(&fun) {
            connect(&mut state, fun);
        }
    }

    let mut recursive = BTreeSet::new();
    let mut bottom_up = Vec::new();
    // Tarjan emits SCCs in reverse topological order: callees first.
    for comp in &state.comps {
        let self_loop =
            comp.len() == 1 && callees.get(&comp[0]).is_some_and(|s| s.contains(&comp[0]));
        if comp.len() > 1 || self_loop {
            recursive.extend(comp.iter().copied());
        }
        bottom_up.extend(comp.iter().copied());
    }
    let sccs = state.comps;
    (recursive, bottom_up, sccs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{reconstruct, TargetResolver};
    use wcet_isa::asm::assemble;

    fn cg(src: &str) -> (Program, CallGraph) {
        let p = reconstruct(&assemble(src).unwrap(), &TargetResolver::empty()).unwrap();
        let g = CallGraph::build(&p);
        (p, g)
    }

    #[test]
    fn acyclic_program_not_recursive() {
        let (p, g) = cg("main: call f\n call g\n halt\nf: ret\ng: call f\n ret");
        assert!(!g.has_recursion());
        // Bottom-up order puts every callee before its callers, so `main`
        // comes last and `f` (called by both others) comes before `g`.
        let order = g.bottom_up_order();
        assert_eq!(*order.last().unwrap(), p.entry, "main analyzed last");
        let f = p
            .functions
            .keys()
            .copied()
            .find(|&a| g.callees_of(a).is_empty())
            .unwrap();
        let g_fun = p
            .functions
            .keys()
            .copied()
            .find(|&a| a != p.entry && a != f)
            .unwrap();
        let pos_of = |x: Addr| order.iter().position(|&a| a == x).unwrap();
        assert!(pos_of(f) < pos_of(g_fun));
    }

    #[test]
    fn direct_recursion_detected() {
        let (_, g) = cg("main: call f\n halt\nf: call f\n ret");
        assert_eq!(g.recursive_functions().len(), 1);
    }

    #[test]
    fn indirect_recursion_detected() {
        let (p, g) =
            cg("main: call f\n halt\nf: beq r1, r0, fdone\n call g\nfdone: ret\ng: call f\n ret");
        assert_eq!(g.recursive_functions().len(), 2, "f and g form a cycle");
        assert!(!g.is_recursive(p.entry));
    }

    #[test]
    fn wavefront_levels_respect_call_edges() {
        // main → f, g; g → f. Levels: {f}, {g}, {main}.
        let (p, g) = cg("main: call f\n call g\n halt\nf: ret\ng: call f\n ret");
        let levels = g.bottom_up_levels();
        assert_eq!(levels.len(), 3);
        for level in &levels {
            assert_eq!(level.len(), 1, "chain graph: one group per level");
        }
        assert_eq!(levels[2][0], vec![p.entry]);
        // Every callee sits in a strictly earlier level than its caller.
        let level_of = |x: Addr| {
            levels
                .iter()
                .position(|lvl| lvl.iter().any(|grp| grp.contains(&x)))
                .unwrap()
        };
        for f in p.functions.keys() {
            for callee in g.callees_of(*f) {
                assert!(level_of(callee) < level_of(*f));
            }
        }
        // Flattened levels cover exactly the bottom-up order's functions.
        let flat: Vec<Addr> = levels.iter().flatten().flatten().copied().collect();
        let mut sorted = flat.clone();
        sorted.sort_unstable();
        let mut expected = g.bottom_up_order().to_vec();
        expected.sort_unstable();
        assert_eq!(sorted, expected);
    }

    #[test]
    fn independent_callees_share_a_level() {
        let (p, g) = cg("main: call f\n call g\n halt\nf: ret\ng: ret");
        let levels = g.bottom_up_levels();
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].len(), 2, "f and g are independent");
        assert_eq!(levels[1], vec![vec![p.entry]]);
    }

    #[test]
    fn recursive_cycle_stays_one_group() {
        let (p, g) =
            cg("main: call f\n halt\nf: beq r1, r0, fdone\n call g\nfdone: ret\ng: call f\n ret");
        let levels = g.bottom_up_levels();
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].len(), 1, "the f/g cycle is one group");
        assert_eq!(levels[0][0].len(), 2);
        assert_eq!(levels[1], vec![vec![p.entry]]);
    }

    #[test]
    fn transitive_callers_closure() {
        // main → g → f, main → h. Dirtying f reaches g and main but not h.
        let (p, g) = cg("main: call g\n call h\n halt\nf: ret\ng: call f\n ret\nh: ret");
        let f = p
            .functions
            .keys()
            .copied()
            .find(|&a| {
                g.callees_of(a).is_empty()
                    && !g.callers_of(a).is_empty()
                    && g.callers_of(a) != vec![p.entry]
            })
            .unwrap();
        let dirty = g.transitive_callers(&BTreeSet::from([f]));
        assert!(dirty.contains(&f), "seeds are included");
        assert!(dirty.contains(&p.entry), "root is reached through g");
        assert_eq!(dirty.len(), 3, "h is untouched: {dirty:?}");

        // The empty seed set stays empty; dirtying the root stays at the
        // root (nothing calls main).
        assert!(g.transitive_callers(&BTreeSet::new()).is_empty());
        assert_eq!(
            g.transitive_callers(&BTreeSet::from([p.entry])),
            BTreeSet::from([p.entry])
        );
    }

    #[test]
    fn transitive_callers_through_cycles() {
        // f ↔ g cycle called by main: dirtying f reaches g (cycle member)
        // and main.
        let (p, g) =
            cg("main: call f\n halt\nf: beq r1, r0, fdone\n call g\nfdone: ret\ng: call f\n ret");
        let f = g.recursive_functions()[0];
        let dirty = g.transitive_callers(&BTreeSet::from([f]));
        assert_eq!(dirty.len(), 3, "both cycle members and main: {dirty:?}");
        assert!(dirty.contains(&p.entry));
    }

    #[test]
    fn depth_zero_contexts_are_one_per_function() {
        let (p, g) = cg("main: call f\n call g\n halt\nf: ret\ng: call f\n ret");
        let table = g.enumerate_contexts(p.functions.keys(), p.entry, 0);
        assert_eq!(table.len(), p.functions.len());
        for (id, info) in table.iter() {
            assert!(info.call_string.is_empty(), "depth 0 keeps empty strings");
            assert_eq!(table.ctxs_of(info.function), &[id]);
        }
        // Every resolved call edge maps onto the callee's single context.
        for &(site, caller, callee) in g.sites() {
            let caller_ctx = table.ctxs_of(caller)[0];
            assert_eq!(
                table.callee_ctx(caller_ctx, site, callee),
                Some(table.ctxs_of(callee)[0])
            );
        }
    }

    #[test]
    fn depth_one_distinguishes_call_sites() {
        // main calls f twice: two distinct depth-1 contexts, each with one
        // producing edge from main's root context.
        let (p, g) = cg("main: call f\n call f\n halt\nf: ret");
        let f = p.functions.keys().copied().find(|&a| a != p.entry).unwrap();
        let table = g.enumerate_contexts(p.functions.keys(), p.entry, 1);
        assert_eq!(
            table.ctxs_of(p.entry).len(),
            1,
            "entry keeps its root context"
        );
        let f_ctxs = table.ctxs_of(f);
        assert_eq!(f_ctxs.len(), 2, "one context per call site");
        let main_ctx = table.ctxs_of(p.entry)[0];
        for &ctx in f_ctxs {
            let info = table.info(ctx);
            assert_eq!(info.function, f);
            assert_eq!(info.call_string.len(), 1);
            assert_eq!(info.preds, vec![(main_ctx, info.call_string[0])]);
            assert_eq!(
                table.callee_ctx(main_ctx, info.call_string[0], f),
                Some(ctx)
            );
        }
    }

    #[test]
    fn depth_truncation_keeps_most_recent_sites() {
        // main → g → f at depth 1: f's string holds only g's call site.
        let (p, g) = cg("main: call g\n halt\ng: call f\n ret\nf: ret");
        let f = p
            .functions
            .keys()
            .copied()
            .find(|&a| g.callees_of(a).is_empty())
            .unwrap();
        let table = g.enumerate_contexts(p.functions.keys(), p.entry, 1);
        let f_ctxs = table.ctxs_of(f);
        assert_eq!(f_ctxs.len(), 1);
        let info = table.info(f_ctxs[0]);
        assert_eq!(info.call_string.len(), 1, "truncated to the last site");
        let g_fun = g.callers_of(f)[0];
        let g_site = g
            .sites()
            .iter()
            .find(|(_, caller, callee)| *caller == g_fun && *callee == f)
            .map(|(s, _, _)| *s)
            .unwrap();
        assert_eq!(info.call_string, vec![g_site]);

        // Depth 2 keeps the full chain.
        let deep = g.enumerate_contexts(p.functions.keys(), p.entry, 2);
        let info2 = deep.info(deep.ctxs_of(f)[0]);
        assert_eq!(info2.call_string.len(), 2, "room for both sites");
    }

    #[test]
    fn recursion_truncates_to_merged_context() {
        let (p, g) =
            cg("main: call f\n halt\nf: beq r1, r0, fdone\n call g\nfdone: ret\ng: call f\n ret");
        let table = g.enumerate_contexts(p.functions.keys(), p.entry, 3);
        for f in g.recursive_functions() {
            let ctxs = table.ctxs_of(f);
            assert_eq!(ctxs.len(), 1, "recursive SCC members stay merged");
            assert!(table.info(ctxs[0]).call_string.is_empty());
        }
        assert!(!table.is_empty());
        assert_eq!(table.depth(), 3);
    }

    #[test]
    fn every_function_has_a_context() {
        let (p, g) = cg("main: call f\n halt\nf: ret");
        for depth in [0, 1, 4] {
            let table = g.enumerate_contexts(p.functions.keys(), p.entry, depth);
            for f in p.functions.keys() {
                assert!(
                    !table.ctxs_of(*f).is_empty(),
                    "function {f} has a context at depth {depth}"
                );
            }
        }
    }

    #[test]
    fn callers_and_callees() {
        let (p, g) = cg("main: call f\n halt\nf: ret");
        let f = p.functions.keys().copied().find(|&a| a != p.entry).unwrap();
        assert_eq!(g.callees_of(p.entry), vec![f]);
        assert_eq!(g.callers_of(f), vec![p.entry]);
        assert_eq!(g.sites().len(), 1);
    }
}
