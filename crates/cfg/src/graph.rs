//! Whole-program control-flow reconstruction.
//!
//! This is the "Decoding Phase → Control-flow Graph" arrow of the paper's
//! Figure 1. Reconstruction starts from the task entry point, discovers
//! function entries through call instructions, partitions each function
//! into basic blocks, and wires intraprocedural edges.
//!
//! Indirect control flow (function pointers, computed jumps) cannot be
//! followed without knowing its targets — the paper's first tier-one
//! challenge. The [`TargetResolver`] carries externally supplied target
//! sets (from value analysis of jump tables or from user annotations);
//! unresolved indirections are recorded per function so the analyzer can
//! report exactly *why* a WCET bound is not computable.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use wcet_isa::{Addr, Image, Inst};

use crate::block::{BasicBlock, BlockId, Terminator};
use crate::error::CfgError;

/// Externally supplied targets for indirect calls and jumps, keyed by the
/// address of the indirect instruction.
///
/// Produced by the value analysis (when it can pin a jump-table register to
/// a finite set) or by `call ... targets ...` / `access ...` annotations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TargetResolver {
    /// `CallInd` instruction address → possible callee entries.
    pub call_targets: HashMap<Addr, Vec<Addr>>,
    /// `JumpInd` instruction address → possible jump targets.
    pub jump_targets: HashMap<Addr, Vec<Addr>>,
}

impl TargetResolver {
    /// A resolver that knows nothing (every indirection stays unresolved).
    #[must_use]
    pub fn empty() -> TargetResolver {
        TargetResolver::default()
    }

    /// Registers callee targets for the indirect call at `at`
    /// (duplicates are merged).
    pub fn add_call_targets(&mut self, at: Addr, targets: impl IntoIterator<Item = Addr>) {
        let list = self.call_targets.entry(at).or_default();
        list.extend(targets);
        list.sort();
        list.dedup();
    }

    /// Registers jump targets for the indirect jump at `at`
    /// (duplicates are merged).
    pub fn add_jump_targets(&mut self, at: Addr, targets: impl IntoIterator<Item = Addr>) {
        let list = self.jump_targets.entry(at).or_default();
        list.extend(targets);
        list.sort();
        list.dedup();
    }

    /// Returns true if no targets are registered at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.call_targets.is_empty() && self.jump_targets.is_empty()
    }
}

/// One function's control-flow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    /// Entry address of the function.
    pub entry: Addr,
    /// Basic blocks; `BlockId` indexes this vector. Block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
    /// Successor lists, parallel to `blocks`.
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessor lists, parallel to `blocks`.
    pub preds: Vec<Vec<BlockId>>,
    /// Addresses of unresolved indirect terminators inside this function.
    pub unresolved: Vec<Addr>,
    /// Leader address → block, ordered so CFG debug output (and thus
    /// every rendered `AnalysisReport`) is deterministic.
    pub(crate) block_of_addr: BTreeMap<Addr, BlockId>,
}

impl Cfg {
    /// Number of basic blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The entry block (always `BlockId(0)`).
    #[must_use]
    pub fn entry_block(&self) -> BlockId {
        BlockId(0)
    }

    /// The block starting at `addr`, if any.
    #[must_use]
    pub fn block_at(&self, addr: Addr) -> Option<BlockId> {
        self.block_of_addr.get(&addr).copied()
    }

    /// The block *containing* the instruction at `addr`, if any.
    #[must_use]
    pub fn block_containing(&self, addr: Addr) -> Option<BlockId> {
        self.blocks
            .iter()
            .position(|b| b.contains(addr))
            .map(BlockId)
    }

    /// The block data for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0]
    }

    /// Iterates over `(BlockId, &BasicBlock)`.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i), b))
    }

    /// All edges as `(from, to)` pairs.
    #[must_use]
    pub fn edges(&self) -> Vec<(BlockId, BlockId)> {
        self.succs
            .iter()
            .enumerate()
            .flat_map(|(i, ss)| ss.iter().map(move |&s| (BlockId(i), s)))
            .collect()
    }

    /// Exit blocks: blocks ending in `Ret` or `Halt` (and, conservatively,
    /// unresolved indirect jumps, which may leave the function).
    #[must_use]
    pub fn exit_blocks(&self) -> Vec<BlockId> {
        self.iter()
            .filter(|(_, b)| {
                matches!(b.term, Terminator::Ret | Terminator::Halt)
                    || (matches!(b.term, Terminator::JumpInd { .. }) && b.term.is_unresolved())
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// Reverse postorder of the blocks from the entry.
    #[must_use]
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::with_capacity(self.blocks.len());
        // Iterative DFS with an explicit "children done" marker.
        let mut stack = vec![(self.entry_block(), false)];
        while let Some((node, children_done)) = stack.pop() {
            if children_done {
                post.push(node);
                continue;
            }
            if visited[node.0] {
                continue;
            }
            visited[node.0] = true;
            stack.push((node, true));
            for &s in &self.succs[node.0] {
                if !visited[s.0] {
                    stack.push((s, false));
                }
            }
        }
        post.reverse();
        post
    }

    /// All direct and resolved-indirect call sites in this function as
    /// `(site address, callee entries)`.
    #[must_use]
    pub fn call_sites(&self) -> Vec<(Addr, Vec<Addr>)> {
        let mut sites = Vec::new();
        for b in &self.blocks {
            match &b.term {
                Terminator::Call { callee, .. } => {
                    let site = b.site_addr();
                    sites.push((site, vec![*callee]));
                }
                Terminator::CallInd { callees, .. } if !callees.is_empty() => {
                    let site = b.site_addr();
                    sites.push((site, callees.clone()));
                }
                _ => {}
            }
        }
        sites
    }
}

/// The reconstructed whole program: one [`Cfg`] per discovered function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The task entry point.
    pub entry: Addr,
    /// Function entry address → that function's CFG.
    pub functions: BTreeMap<Addr, Cfg>,
    /// All decoded instructions by address (the analyses share this view).
    pub insts: BTreeMap<Addr, Inst>,
}

impl Program {
    /// The CFG of the function entered at `entry`, if reconstructed.
    #[must_use]
    pub fn cfg(&self, entry: Addr) -> Option<&Cfg> {
        self.functions.get(&entry)
    }

    /// The CFG of the task entry function.
    ///
    /// # Panics
    ///
    /// Panics if reconstruction did not produce the entry function (which
    /// `reconstruct` guarantees it does).
    #[must_use]
    pub fn entry_cfg(&self) -> &Cfg {
        self.functions
            .get(&self.entry)
            .expect("entry function always reconstructed")
    }

    /// Addresses of all unresolved indirections across all functions.
    #[must_use]
    pub fn unresolved_sites(&self) -> Vec<Addr> {
        let mut sites: Vec<Addr> = self
            .functions
            .values()
            .flat_map(|cfg| cfg.unresolved.iter().copied())
            .collect();
        sites.sort();
        sites.dedup();
        sites
    }

    /// Total basic blocks across all functions.
    #[must_use]
    pub fn total_blocks(&self) -> usize {
        self.functions.values().map(Cfg::block_count).sum()
    }
}

/// Reconstructs the whole-program control flow from a binary image.
///
/// # Errors
///
/// Fails if the binary does not decode, if control flow leaves the code
/// segment, or if the resolver supplies an invalid target.
///
/// # Example
///
/// ```
/// use wcet_isa::asm::assemble;
/// use wcet_cfg::graph::{reconstruct, TargetResolver};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let image = assemble("main: call f\n halt\nf: ret")?;
/// let program = reconstruct(&image, &TargetResolver::empty())?;
/// assert_eq!(program.functions.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn reconstruct(image: &Image, resolver: &TargetResolver) -> Result<Program, CfgError> {
    let insts: BTreeMap<Addr, Inst> = image.decode_code()?.into_iter().collect();

    let mut functions = BTreeMap::new();
    let mut pending: VecDeque<Addr> = VecDeque::new();
    pending.push_back(image.entry);
    let mut seen: BTreeSet<Addr> = BTreeSet::new();

    while let Some(entry) = pending.pop_front() {
        if !seen.insert(entry) {
            continue;
        }
        let cfg = build_function(entry, &insts, resolver)?;
        // Discover callees.
        for b in &cfg.blocks {
            match &b.term {
                Terminator::Call { callee, .. } => pending.push_back(*callee),
                Terminator::CallInd { callees, .. } => pending.extend(callees.iter().copied()),
                _ => {}
            }
        }
        functions.insert(entry, cfg);
    }

    Ok(Program {
        entry: image.entry,
        functions,
        insts,
    })
}

/// Builds one function's CFG by intraprocedural discovery from `entry`.
fn build_function(
    entry: Addr,
    insts: &BTreeMap<Addr, Inst>,
    resolver: &TargetResolver,
) -> Result<Cfg, CfgError> {
    if !insts.contains_key(&entry) {
        return Err(CfgError::BadEntry { entry });
    }

    // Pass 1: discover the reachable instruction set and the leaders.
    let mut reachable: BTreeSet<Addr> = BTreeSet::new();
    let mut leaders: BTreeSet<Addr> = BTreeSet::new();
    leaders.insert(entry);
    let mut unresolved: Vec<Addr> = Vec::new();
    let mut work = vec![entry];

    let check_target = |from: Addr, to: Addr| -> Result<(), CfgError> {
        if insts.contains_key(&to) {
            Ok(())
        } else {
            Err(CfgError::FlowLeavesCode { from, to })
        }
    };

    while let Some(addr) = work.pop() {
        if !reachable.insert(addr) {
            continue;
        }
        let inst = match insts.get(&addr) {
            Some(i) => *i,
            None => {
                return Err(CfgError::FlowLeavesCode {
                    from: addr,
                    to: addr,
                })
            }
        };
        match inst {
            Inst::Branch { target, .. } | Inst::FBranch { target, .. } => {
                check_target(addr, target)?;
                leaders.insert(target);
                leaders.insert(addr.next());
                work.push(target);
                work.push(addr.next());
            }
            Inst::Jump { target } => {
                check_target(addr, target)?;
                leaders.insert(target);
                work.push(target);
            }
            Inst::Call { target } => {
                check_target(addr, target)?;
                // Callee handled interprocedurally; continue after return.
                leaders.insert(addr.next());
                work.push(addr.next());
            }
            Inst::CallInd { .. } => {
                let callees = resolver
                    .call_targets
                    .get(&addr)
                    .cloned()
                    .unwrap_or_default();
                for c in &callees {
                    check_target(addr, *c).map_err(|_| CfgError::BadResolvedTarget {
                        at: addr,
                        target: *c,
                    })?;
                }
                if callees.is_empty() {
                    unresolved.push(addr);
                }
                leaders.insert(addr.next());
                work.push(addr.next());
            }
            Inst::JumpInd { .. } => {
                let targets = resolver
                    .jump_targets
                    .get(&addr)
                    .cloned()
                    .unwrap_or_default();
                for t in &targets {
                    check_target(addr, *t).map_err(|_| CfgError::BadResolvedTarget {
                        at: addr,
                        target: *t,
                    })?;
                    leaders.insert(*t);
                    work.push(*t);
                }
                if targets.is_empty() {
                    unresolved.push(addr);
                }
            }
            Inst::Ret | Inst::Halt => {}
            _ => {
                // Straight-line: fall through.
                work.push(addr.next());
            }
        }
    }

    // Pass 2: carve blocks between leaders.
    let leaders: Vec<Addr> = leaders
        .into_iter()
        .filter(|a| reachable.contains(a))
        .collect();
    let leader_set: BTreeSet<Addr> = leaders.iter().copied().collect();

    let mut blocks: Vec<BasicBlock> = Vec::new();
    let mut block_of_addr: BTreeMap<Addr, BlockId> = BTreeMap::new();

    // The entry block must be BlockId(0): emit it first.
    let ordered: Vec<Addr> = std::iter::once(entry)
        .chain(leaders.iter().copied().filter(|&a| a != entry))
        .collect();

    for &leader in &ordered {
        let mut body = Vec::new();
        let mut cursor = leader;
        let term = loop {
            let inst = insts[&cursor];
            body.push((cursor, inst));
            if inst.is_terminator() {
                break make_terminator(cursor, inst, resolver);
            }
            let next = cursor.next();
            if leader_set.contains(&next) || !reachable.contains(&next) {
                break Terminator::Fallthrough { next };
            }
            cursor = next;
        };
        let id = BlockId(blocks.len());
        block_of_addr.insert(leader, id);
        blocks.push(BasicBlock {
            start: leader,
            insts: body,
            term,
            ctx: 0,
        });
    }

    // Pass 3: wire edges.
    let mut succs = vec![Vec::new(); blocks.len()];
    let mut preds = vec![Vec::new(); blocks.len()];
    for (i, b) in blocks.iter().enumerate() {
        for target in b.term.successor_addrs() {
            if let Some(&to) = block_of_addr.get(&target) {
                succs[i].push(to);
                preds[to.0].push(BlockId(i));
            }
        }
    }

    unresolved.sort();
    unresolved.dedup();

    Ok(Cfg {
        entry,
        blocks,
        succs,
        preds,
        unresolved,
        block_of_addr,
    })
}

fn make_terminator(at: Addr, inst: Inst, resolver: &TargetResolver) -> Terminator {
    match inst {
        Inst::Branch { cond, target, .. } => Terminator::CondBranch {
            cond: Some(cond),
            taken: target,
            fallthrough: at.next(),
            float: false,
        },
        Inst::FBranch { target, .. } => Terminator::CondBranch {
            cond: None,
            taken: target,
            fallthrough: at.next(),
            float: true,
        },
        Inst::Jump { target } => Terminator::Jump { target },
        Inst::Call { target } => Terminator::Call {
            callee: target,
            ret_to: at.next(),
        },
        Inst::CallInd { .. } => Terminator::CallInd {
            callees: resolver.call_targets.get(&at).cloned().unwrap_or_default(),
            ret_to: at.next(),
        },
        Inst::JumpInd { .. } => Terminator::JumpInd {
            targets: resolver.jump_targets.get(&at).cloned().unwrap_or_default(),
        },
        Inst::Ret => Terminator::Ret,
        Inst::Halt => Terminator::Halt,
        _ => unreachable!("non-terminator passed to make_terminator"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_isa::asm::assemble;

    fn program(src: &str) -> Program {
        reconstruct(&assemble(src).unwrap(), &TargetResolver::empty()).unwrap()
    }

    #[test]
    fn straight_line_single_block() {
        let p = program("main: li r1, 1\n li r2, 2\n halt");
        let cfg = p.entry_cfg();
        assert_eq!(cfg.block_count(), 1);
        assert_eq!(cfg.blocks[0].len(), 3);
        assert!(matches!(cfg.blocks[0].term, Terminator::Halt));
    }

    #[test]
    fn diamond_shape() {
        let p = program("main: beq r1, r0, then\n li r2, 1\n j join\nthen: li r2, 2\njoin: halt");
        let cfg = p.entry_cfg();
        assert_eq!(cfg.block_count(), 4);
        // Entry has two successors, join has two predecessors.
        assert_eq!(cfg.succs[0].len(), 2);
        let join = cfg.block_at(p.entry.offset(16)).unwrap();
        assert_eq!(cfg.preds[join.0].len(), 2);
    }

    #[test]
    fn loop_back_edge_exists() {
        let p = program("main: li r1, 4\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt");
        let cfg = p.entry_cfg();
        let edges = cfg.edges();
        let loop_block = cfg.block_at(p.entry.offset(4)).unwrap();
        assert!(edges.contains(&(loop_block, loop_block)), "self back edge");
    }

    #[test]
    fn functions_discovered_through_calls() {
        let p = program("main: call f\n call g\n halt\nf: ret\ng: call f\n ret");
        assert_eq!(p.functions.len(), 3);
        let g_entry = p.functions.keys().copied().max().unwrap();
        let g = p.cfg(g_entry).unwrap();
        assert_eq!(g.call_sites().len(), 1);
    }

    #[test]
    fn call_splits_block() {
        let p = program("main: li r1, 1\n call f\n li r2, 2\n halt\nf: ret");
        let cfg = p.entry_cfg();
        assert_eq!(cfg.block_count(), 2);
        assert!(matches!(cfg.blocks[0].term, Terminator::Call { .. }));
    }

    #[test]
    fn unresolved_indirect_call_recorded() {
        let p = program("main: li r1, 0x1000\n callr r1\n halt");
        let cfg = p.entry_cfg();
        assert_eq!(cfg.unresolved.len(), 1);
        assert!(p.unresolved_sites().len() == 1);
    }

    #[test]
    fn resolver_resolves_indirect_call() {
        let image = assemble("main: la r1, f\n callr r1\n halt\nf: ret").unwrap();
        let callr_addr = image
            .decode_code()
            .unwrap()
            .iter()
            .find(|(_, i)| matches!(i, Inst::CallInd { .. }))
            .map(|(a, _)| *a)
            .unwrap();
        let f = image.symbol("f").unwrap();
        let mut resolver = TargetResolver::empty();
        resolver.add_call_targets(callr_addr, [f]);
        let p = reconstruct(&image, &resolver).unwrap();
        assert!(p.unresolved_sites().is_empty());
        assert!(p.cfg(f).is_some(), "callee discovered via resolver");
    }

    #[test]
    fn resolver_jump_table() {
        let image = assemble(
            "main: la r1, case_a\n jr r1\ncase_a: li r2, 1\n halt\ncase_b: li r2, 2\n halt",
        )
        .unwrap();
        let jr = image
            .decode_code()
            .unwrap()
            .iter()
            .find(|(_, i)| matches!(i, Inst::JumpInd { .. }))
            .map(|(a, _)| *a)
            .unwrap();
        let mut resolver = TargetResolver::empty();
        resolver.add_jump_targets(
            jr,
            [
                image.symbol("case_a").unwrap(),
                image.symbol("case_b").unwrap(),
            ],
        );
        let p = reconstruct(&image, &resolver).unwrap();
        let cfg = p.entry_cfg();
        let jr_block = cfg.block_containing(jr).unwrap();
        assert_eq!(cfg.succs[jr_block.0].len(), 2);
        assert!(cfg.unresolved.is_empty());
    }

    #[test]
    fn flow_leaving_code_is_error() {
        // A jump past the end of the code segment must be reported.
        let mut b = wcet_isa::builder::ProgramBuilder::new(0x1000);
        b.label("main");
        b.inst(Inst::Jump {
            target: Addr(0x2000),
        });
        let image = b.build("main").unwrap();
        assert!(matches!(
            reconstruct(&image, &TargetResolver::empty()),
            Err(CfgError::FlowLeavesCode { .. })
        ));

        // Falling off the end of the code segment is the same error.
        let mut b = wcet_isa::builder::ProgramBuilder::new(0x1000);
        b.label("main");
        b.nop();
        let image = b.build("main").unwrap();
        assert!(matches!(
            reconstruct(&image, &TargetResolver::empty()),
            Err(CfgError::FlowLeavesCode { .. })
        ));
    }

    #[test]
    fn reverse_postorder_starts_at_entry() {
        let p = program("main: beq r1, r0, a\n nop\n j b\na: nop\nb: halt");
        let cfg = p.entry_cfg();
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], cfg.entry_block());
        assert_eq!(rpo.len(), cfg.block_count());
    }

    #[test]
    fn exit_blocks_found() {
        let p = program("main: beq r1, r0, a\n halt\na: halt");
        let cfg = p.entry_cfg();
        assert_eq!(cfg.exit_blocks().len(), 2);
    }
}
