//! Unreachable-code detection (MISRA-C:2004 rule 14.1).
//!
//! The paper notes that unreachable code is doubly harmful for static
//! timing analysis: the analysis computes an *over-approximation* of the
//! control flow, so dead code both bloats the state space and can be
//! dragged onto spurious worst-case paths. This module compares the image's
//! code segment against the instructions actually covered by the
//! reconstructed control flow and reports the gaps.

use wcet_isa::{Addr, Image};

use crate::graph::Program;

/// A maximal contiguous range of code bytes never reached by any function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadRange {
    /// First unreachable instruction address.
    pub start: Addr,
    /// One past the last unreachable instruction address.
    pub end: Addr,
}

impl DeadRange {
    /// Number of instruction words in the range.
    #[must_use]
    pub fn inst_count(&self) -> u32 {
        (self.end.0 - self.start.0) / 4
    }
}

/// Coverage report: which instructions of the image the reconstructed
/// program can actually reach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageReport {
    /// Total instruction words in the code segment.
    pub total_insts: u32,
    /// Instruction words covered by some basic block.
    pub covered_insts: u32,
    /// Unreachable ranges, in ascending address order.
    pub dead_ranges: Vec<DeadRange>,
}

impl CoverageReport {
    /// Fraction of the code segment that is reachable (1.0 = fully live).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.total_insts == 0 {
            1.0
        } else {
            f64::from(self.covered_insts) / f64::from(self.total_insts)
        }
    }

    /// Returns true if the image satisfies rule 14.1 (no unreachable code).
    #[must_use]
    pub fn is_fully_reachable(&self) -> bool {
        self.dead_ranges.is_empty()
    }
}

/// Computes which image instructions the program's control flow covers.
///
/// # Example
///
/// ```
/// use wcet_isa::asm::assemble;
/// use wcet_cfg::graph::{reconstruct, TargetResolver};
/// use wcet_cfg::reach::coverage;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // The `li r9` after the jump can never execute.
/// let image = assemble("main: j done\n li r9, 1\ndone: halt")?;
/// let p = reconstruct(&image, &TargetResolver::empty())?;
/// let report = coverage(&image, &p);
/// assert!(!report.is_fully_reachable());
/// assert_eq!(report.dead_ranges.len(), 1);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn coverage(image: &Image, program: &Program) -> CoverageReport {
    let base = image.code.base;
    let total = image.code_len() as u32;

    let mut covered = vec![false; total as usize];
    for cfg in program.functions.values() {
        for block in &cfg.blocks {
            for (addr, _) in &block.insts {
                let idx = (addr.0 - base.0) / 4;
                if let Some(slot) = covered.get_mut(idx as usize) {
                    *slot = true;
                }
            }
        }
    }

    let covered_insts = covered.iter().filter(|&&c| c).count() as u32;
    let mut dead_ranges = Vec::new();
    let mut i = 0usize;
    while i < covered.len() {
        if covered[i] {
            i += 1;
            continue;
        }
        let start = base.offset(4 * i as i64);
        while i < covered.len() && !covered[i] {
            i += 1;
        }
        let end = base.offset(4 * i as i64);
        dead_ranges.push(DeadRange { start, end });
    }

    CoverageReport {
        total_insts: total,
        covered_insts,
        dead_ranges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{reconstruct, TargetResolver};
    use wcet_isa::asm::assemble;

    fn report(src: &str) -> CoverageReport {
        let image = assemble(src).unwrap();
        let p = reconstruct(&image, &TargetResolver::empty()).unwrap();
        coverage(&image, &p)
    }

    #[test]
    fn fully_live_program() {
        let r = report("main: li r1, 1\n halt");
        assert!(r.is_fully_reachable());
        assert_eq!(r.coverage(), 1.0);
    }

    #[test]
    fn code_after_halt_is_dead() {
        let r = report("main: halt\n nop\n nop");
        assert!(!r.is_fully_reachable());
        assert_eq!(r.dead_ranges.len(), 1);
        assert_eq!(r.dead_ranges[0].inst_count(), 2);
        assert!(r.coverage() < 1.0);
    }

    #[test]
    fn uncalled_function_is_dead() {
        let r = report("main: halt\nunused: li r1, 1\n ret");
        assert!(!r.is_fully_reachable());
        assert_eq!(r.dead_ranges[0].inst_count(), 2);
    }

    #[test]
    fn multiple_dead_ranges() {
        let r = report("main: j a\n nop\na: j b\n nop\nb: halt");
        assert_eq!(r.dead_ranges.len(), 2);
        assert_eq!(r.covered_insts, 3);
        assert_eq!(r.total_insts, 5);
    }
}
