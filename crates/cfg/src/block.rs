//! Basic blocks and their terminators.

use std::fmt;

use wcet_isa::{Addr, Cond, Inst};

/// Index of a basic block within one function's [`crate::graph::Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub usize);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// How a basic block transfers control.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Conditional two-way branch.
    CondBranch {
        /// The integer condition, if this is an integer branch; `None`
        /// for floating-point branches (whose outcome the value analysis
        /// cannot see — the heart of MISRA rule 13.4).
        cond: Option<Cond>,
        /// Target when the condition holds.
        taken: Addr,
        /// Target when it does not.
        fallthrough: Addr,
        /// True if this is a floating-point branch.
        float: bool,
    },
    /// Unconditional direct jump.
    Jump {
        /// The jump target.
        target: Addr,
    },
    /// Direct call; control continues at `ret_to` after the callee
    /// returns. (The call edge itself lives in the call graph.)
    Call {
        /// Callee entry address.
        callee: Addr,
        /// Return-continuation address.
        ret_to: Addr,
    },
    /// Indirect call through a register. `callees` holds the resolved
    /// target set — empty means *unresolved*, the tier-one "function
    /// pointer" challenge.
    CallInd {
        /// Resolved callee entries (possibly empty).
        callees: Vec<Addr>,
        /// Return-continuation address.
        ret_to: Addr,
    },
    /// Indirect jump through a register; `targets` as for `CallInd`.
    JumpInd {
        /// Resolved jump targets (possibly empty).
        targets: Vec<Addr>,
    },
    /// Function return.
    Ret,
    /// Machine stop.
    Halt,
    /// No control transfer: execution falls through into the next leader.
    Fallthrough {
        /// The next block's start address.
        next: Addr,
    },
}

impl Terminator {
    /// Returns true if the terminator's targets are not statically known
    /// (unresolved indirect control flow).
    #[must_use]
    pub fn is_unresolved(&self) -> bool {
        match self {
            Terminator::CallInd { callees, .. } => callees.is_empty(),
            Terminator::JumpInd { targets } => targets.is_empty(),
            _ => false,
        }
    }

    /// Intraprocedural successor addresses of this terminator.
    #[must_use]
    pub fn successor_addrs(&self) -> Vec<Addr> {
        match self {
            Terminator::CondBranch {
                taken, fallthrough, ..
            } => vec![*taken, *fallthrough],
            Terminator::Jump { target } => vec![*target],
            Terminator::Call { ret_to, .. } | Terminator::CallInd { ret_to, .. } => vec![*ret_to],
            Terminator::JumpInd { targets } => targets.clone(),
            Terminator::Ret | Terminator::Halt => vec![],
            Terminator::Fallthrough { next } => vec![*next],
        }
    }
}

/// A maximal single-entry straight-line instruction sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub start: Addr,
    /// The instructions, including the terminating one (if any — a block
    /// ending by fallthrough has no terminator instruction of its own).
    pub insts: Vec<(Addr, Inst)>,
    /// How the block ends.
    pub term: Terminator,
    /// Virtual-unrolling context: 0 for the original block; peeled copies
    /// get 1, 2, ... (see [`crate::unroll`]).
    pub ctx: u32,
}

impl BasicBlock {
    /// Address one past the last instruction.
    #[must_use]
    pub fn end(&self) -> Addr {
        self.insts.last().map_or(self.start, |(a, _)| a.next())
    }

    /// The address of the block's last instruction — the canonical
    /// *site* key of a call terminator. Everything that prices, joins,
    /// or summarizes per call site ([`crate::graph::Cfg::call_sites`],
    /// the pre-call state snapshots, IPET per-site costs, footprint
    /// maps) must key on exactly this address; deriving it ad hoc in
    /// each consumer risked the keys silently diverging.
    #[must_use]
    pub fn site_addr(&self) -> Addr {
        self.insts.last().map_or(self.start, |(a, _)| *a)
    }

    /// Number of instructions in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns true if the block holds no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Returns true if `addr` is one of the block's instruction addresses.
    #[must_use]
    pub fn contains(&self, addr: Addr) -> bool {
        self.insts.iter().any(|(a, _)| *a == addr)
    }
}

impl fmt::Display for BasicBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "block {} (ctx {}):", self.start, self.ctx)?;
        for (addr, inst) in &self.insts {
            writeln!(f, "  {addr}: {inst}")?;
        }
        write!(f, "  -> {:?}", self.term)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminator_successors() {
        let t = Terminator::CondBranch {
            cond: Some(Cond::Eq),
            taken: Addr(0x10),
            fallthrough: Addr(0x20),
            float: false,
        };
        assert_eq!(t.successor_addrs(), vec![Addr(0x10), Addr(0x20)]);
        assert!(Terminator::Ret.successor_addrs().is_empty());
        assert!(Terminator::Halt.successor_addrs().is_empty());
    }

    #[test]
    fn unresolved_detection() {
        assert!(Terminator::JumpInd { targets: vec![] }.is_unresolved());
        assert!(!Terminator::JumpInd {
            targets: vec![Addr(4)]
        }
        .is_unresolved());
        assert!(Terminator::CallInd {
            callees: vec![],
            ret_to: Addr(8)
        }
        .is_unresolved());
        assert!(!Terminator::Ret.is_unresolved());
    }

    #[test]
    fn block_extent() {
        let b = BasicBlock {
            start: Addr(0x100),
            insts: vec![(Addr(0x100), Inst::Nop), (Addr(0x104), Inst::Halt)],
            term: Terminator::Halt,
            ctx: 0,
        };
        assert_eq!(b.end(), Addr(0x108));
        assert_eq!(b.len(), 2);
        assert!(b.contains(Addr(0x104)));
        assert!(!b.contains(Addr(0x108)));
    }
}
