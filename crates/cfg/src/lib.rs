//! # wcet-cfg — control-flow reconstruction and graph analyses
//!
//! This crate implements the control-flow half of the paper's Figure 1
//! pipeline: reconstructing a control-flow graph from a decoded binary and
//! the graph analyses every later phase depends on.
//!
//! * [`block`] — basic blocks and terminators,
//! * [`graph`] — per-function CFGs and whole-program reconstruction,
//!   including the handling of *function pointers* (tier-one challenge:
//!   indirect calls and jumps are unresolved until a resolver — produced
//!   by value analysis or annotations — supplies targets),
//! * [`dom`] — dominator trees (iterative Cooper–Harvey–Kennedy),
//! * [`loops`] — the loop-nesting forest with *irreducible loop*
//!   detection (tier-one challenge of Section 3.2: multi-entry loops from
//!   `goto`/hand-written assembly cannot be bounded automatically),
//! * [`callgraph`] — the call graph with recursion detection (MISRA rule
//!   16.2),
//! * [`reach`] — unreachable-code detection at the image level (MISRA
//!   rule 14.1),
//! * [`unroll`] — virtual loop unrolling (context expansion), the
//!   precision-enhancing technique of Theiling/Ferdinand/Wilhelm cited by
//!   the paper's rule 14.4 discussion, which irreducible loops forfeit.
//!
//! # Example
//!
//! ```
//! use wcet_isa::asm::assemble;
//! use wcet_cfg::graph::{reconstruct, TargetResolver};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let image = assemble(
//!     "main: li r1, 4\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt",
//! )?;
//! let program = reconstruct(&image, &TargetResolver::empty())?;
//! let cfg = program.cfg(image.entry).expect("entry function exists");
//! assert_eq!(cfg.block_count(), 3); // prologue, loop body, exit
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod block;
pub mod callgraph;
pub mod dom;
pub mod graph;
pub mod loops;
pub mod reach;
pub mod unroll;

mod error;

pub use block::{BasicBlock, BlockId, Terminator};
pub use error::CfgError;
pub use graph::{reconstruct, Cfg, Program, TargetResolver};
pub use loops::{LoopForest, LoopId, LoopInfo};
