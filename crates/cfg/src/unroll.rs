//! Virtual loop unrolling (context expansion).
//!
//! aiT's precision-enhancing "virtual unrolling" (Theiling, Ferdinand,
//! Wilhelm — reference \[13\] of the paper) analyzes the first iteration of
//! a loop separately from the steady state: the first iteration takes the
//! cold-cache misses, the remaining iterations run from a warm cache, so
//! per-context block times are far tighter than one pessimistic time for
//! all iterations.
//!
//! The paper's rule 14.4 discussion points out that **irreducible loops
//! forfeit this technique** ("certain precision-enhancing analysis
//! techniques, such as virtual loop unrolling, are not applicable") —
//! [`peel`] therefore refuses irreducible loops, and the benches
//! demonstrate the resulting precision loss.

#![allow(clippy::needless_range_loop)] // index-parallel arrays

use std::collections::{BTreeMap, HashMap};

use crate::block::BlockId;
use crate::graph::Cfg;
use crate::loops::{LoopForest, LoopId};

/// Peels the first iteration of a reducible loop, returning a new CFG in
/// which the loop body exists twice: a *first-iteration* copy (`ctx` one
/// higher than the original) that entry edges now reach, and the original
/// *steady-state* body that back edges target.
///
/// Returns `None` if the loop is irreducible — multi-entry loops have no
/// well-defined first iteration, which is exactly the paper's point.
///
/// # Example
///
/// ```
/// use wcet_isa::asm::assemble;
/// use wcet_cfg::graph::{reconstruct, TargetResolver};
/// use wcet_cfg::dom::Dominators;
/// use wcet_cfg::loops::LoopForest;
/// use wcet_cfg::unroll::peel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let image = assemble(
///     "main: li r1, 8\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt",
/// )?;
/// let p = reconstruct(&image, &TargetResolver::empty())?;
/// let cfg = p.entry_cfg();
/// let forest = LoopForest::compute(cfg, &Dominators::compute(cfg));
/// let peeled = peel(cfg, &forest, forest.loops()[0].id).expect("reducible");
/// assert_eq!(peeled.block_count(), cfg.block_count() + 1);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn peel(cfg: &Cfg, forest: &LoopForest, loop_id: LoopId) -> Option<Cfg> {
    let info = forest.info(loop_id);
    if info.irreducible {
        return None;
    }
    let header = info.header;

    let n = cfg.block_count();
    // New ids: originals keep 0..n, copies are appended in ascending
    // original-id order.
    let mut copy_of: HashMap<BlockId, BlockId> = HashMap::new();
    for (k, &b) in info.blocks.iter().enumerate() {
        copy_of.insert(b, BlockId(n + k));
    }

    let mut blocks = cfg.blocks.clone();
    for &b in info.blocks.iter() {
        let mut copy = cfg.blocks[b.0].clone();
        copy.ctx += 1;
        blocks.push(copy);
    }

    let total = blocks.len();
    let mut succs: Vec<Vec<BlockId>> = vec![Vec::new(); total];

    // Original blocks.
    for u in 0..n {
        let u_id = BlockId(u);
        for &v in &cfg.succs[u] {
            let rewired = if v == header && !info.blocks.contains(&u_id) {
                // Entry edge from outside the loop: enter the peeled copy.
                copy_of[&header]
            } else {
                v
            };
            succs[u].push(rewired);
        }
    }

    // First-iteration copies.
    for (&orig, &copy) in &copy_of {
        for &v in &cfg.succs[orig.0] {
            let rewired = if v == header {
                // Back edge out of the first iteration: continue in the
                // steady-state body.
                header
            } else if let Some(&cv) = copy_of.get(&v) {
                cv
            } else {
                // Exit edge: unchanged.
                v
            };
            succs[copy.0].push(rewired);
        }
    }

    let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); total];
    for (u, ss) in succs.iter().enumerate() {
        for &v in ss {
            preds[v.0].push(BlockId(u));
        }
    }

    let mut new_cfg = Cfg {
        entry: cfg.entry,
        blocks,
        succs,
        preds,
        unresolved: cfg.unresolved.clone(),
        block_of_addr: BTreeMap::new(),
    };

    // If the function entry block itself belongs to the loop, the peeled
    // copy must become the entry: swap it into slot 0.
    if info.blocks.contains(&cfg.entry_block()) {
        let copy = copy_of[&cfg.entry_block()];
        swap_blocks(&mut new_cfg, BlockId(0), copy);
    }

    // Rebuild the address map pointing at context-0 blocks.
    new_cfg.block_of_addr = new_cfg
        .blocks
        .iter()
        .enumerate()
        .filter(|(_, b)| b.ctx == 0)
        .map(|(i, b)| (b.start, BlockId(i)))
        .collect();

    Some(new_cfg)
}

/// Peels the first iteration of every reducible top-level loop, outermost
/// first. Irreducible loops are skipped (and reported in the return).
///
/// Returns the expanded CFG together with the ids of the loops that could
/// not be peeled.
#[must_use]
pub fn peel_all(cfg: &Cfg, forest: &LoopForest) -> (Cfg, Vec<LoopId>) {
    let mut current = cfg.clone();
    let mut skipped = Vec::new();
    // Peel only top-level loops of the original forest: after one peel the
    // block ids shift, so we recompute the forest each round and peel the
    // first remaining un-peeled reducible loop (identified by header
    // address still having only ctx-0 incarnations... simpler: one pass
    // over the original top-level loops by header address).
    let headers: Vec<(wcet_isa::Addr, bool)> = forest
        .top_level()
        .iter()
        .map(|l| (cfg.block(l.header).start, l.irreducible))
        .collect();
    for (header_addr, irreducible) in headers {
        if irreducible {
            // Identify the loop id in the *original* forest for reporting.
            if let Some(l) = forest
                .loops()
                .iter()
                .find(|l| cfg.block(l.header).start == header_addr)
            {
                skipped.push(l.id);
            }
            continue;
        }
        let dom = crate::dom::Dominators::compute(&current);
        let f = LoopForest::compute(&current, &dom);
        let target = f.loops().iter().find(|l| {
            current.block(l.header).start == header_addr && current.block(l.header).ctx == 0
        });
        if let Some(l) = target {
            if let Some(next) = peel(&current, &f, l.id) {
                current = next;
            }
        }
    }
    (current, skipped)
}

fn swap_blocks(cfg: &mut Cfg, a: BlockId, b: BlockId) {
    cfg.blocks.swap(a.0, b.0);
    cfg.succs.swap(a.0, b.0);
    cfg.preds.swap(a.0, b.0);
    let remap = |id: &mut BlockId| {
        if *id == a {
            *id = b;
        } else if *id == b {
            *id = a;
        }
    };
    for list in cfg.succs.iter_mut().chain(cfg.preds.iter_mut()) {
        for id in list.iter_mut() {
            remap(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Dominators;
    use crate::graph::{reconstruct, TargetResolver};
    use wcet_isa::asm::assemble;

    fn setup(src: &str) -> (Cfg, LoopForest) {
        let p = reconstruct(&assemble(src).unwrap(), &TargetResolver::empty()).unwrap();
        let cfg = p.entry_cfg().clone();
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        (cfg, forest)
    }

    #[test]
    fn peel_simple_loop_adds_copy() {
        let (cfg, forest) = setup("main: li r1, 8\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt");
        let peeled = peel(&cfg, &forest, forest.loops()[0].id).unwrap();
        assert_eq!(peeled.block_count(), cfg.block_count() + 1);
        // Exactly one ctx-1 block, and the loop entry edge reaches it.
        let copies: Vec<BlockId> = peeled
            .iter()
            .filter(|(_, b)| b.ctx == 1)
            .map(|(id, _)| id)
            .collect();
        assert_eq!(copies.len(), 1);
        let entry_succs = &peeled.succs[peeled.entry_block().0];
        assert!(entry_succs.contains(&copies[0]));
    }

    #[test]
    fn peeled_cfg_still_loops_in_steady_state() {
        let (cfg, forest) = setup("main: li r1, 8\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt");
        let peeled = peel(&cfg, &forest, forest.loops()[0].id).unwrap();
        let dom = Dominators::compute(&peeled);
        let f2 = LoopForest::compute(&peeled, &dom);
        assert_eq!(f2.len(), 1, "steady-state loop remains");
        // The steady-state loop excludes the peeled copy.
        let steady = &f2.loops()[0];
        for &b in steady.blocks.iter() {
            assert_eq!(peeled.block(b).ctx, 0);
        }
    }

    #[test]
    fn irreducible_loop_refused() {
        let (cfg, forest) = setup(
            r#"
            main: beq r1, r0, b
            a:    subi r2, r2, 1
                  j b
            b:    addi r2, r2, 1
                  bne r2, r0, a
                  halt
            "#,
        );
        assert!(forest.loops()[0].irreducible);
        assert!(peel(&cfg, &forest, forest.loops()[0].id).is_none());
        let (out, skipped) = peel_all(&cfg, &forest);
        assert_eq!(out.block_count(), cfg.block_count());
        assert_eq!(skipped.len(), 1);
    }

    #[test]
    fn peel_all_handles_multiple_loops() {
        let (cfg, forest) = setup(
            r#"
            main: li r1, 3
            l1:   subi r1, r1, 1
                  bne r1, r0, l1
                  li r2, 5
            l2:   subi r2, r2, 1
                  bne r2, r0, l2
                  halt
            "#,
        );
        assert_eq!(forest.len(), 2);
        let (out, skipped) = peel_all(&cfg, &forest);
        assert!(skipped.is_empty());
        assert_eq!(out.block_count(), cfg.block_count() + 2);
    }

    #[test]
    fn peeled_entry_loop_keeps_entry_semantics() {
        // The function entry block is itself the loop header.
        let (cfg, forest) = setup("main: subi r1, r1, 1\n bne r1, r0, main\n halt");
        let l = forest.loops()[0].id;
        let peeled = peel(&cfg, &forest, l).unwrap();
        // The entry block must now be the first-iteration copy.
        assert_eq!(peeled.block(peeled.entry_block()).ctx, 1);
        // And the CFG still reaches a Halt block.
        let rpo = peeled.reverse_postorder();
        assert!(rpo
            .iter()
            .any(|&b| matches!(peeled.block(b).term, crate::block::Terminator::Halt)));
    }
}
